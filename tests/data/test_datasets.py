"""Tests for the synthetic datasets and the data loader."""

import numpy as np
import pytest

from repro.data import (
    BOS,
    EOS,
    PAD,
    DataLoader,
    SyntheticDetectionDataset,
    SyntheticImageDataset,
    SyntheticTranslationDataset,
    synthetic_cifar,
    synthetic_imagenet,
)


class TestVisionDataset:
    def test_shapes_and_labels(self):
        dataset = SyntheticImageDataset(num_samples=32, num_classes=5, image_size=12, seed=0)
        image, label = dataset[0]
        assert image.shape == (3, 12, 12)
        assert 0 <= label < 5
        assert len(dataset) == 32

    def test_reproducible_with_seed(self):
        a = SyntheticImageDataset(num_samples=16, seed=7)
        b = SyntheticImageDataset(num_samples=16, seed=7)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = SyntheticImageDataset(num_samples=16, seed=1)
        b = SyntheticImageDataset(num_samples=16, seed=2)
        assert not np.allclose(a.images, b.images)

    def test_classes_are_separable(self):
        """Nearest-prototype classification should beat chance by a wide margin."""
        dataset = SyntheticImageDataset(num_samples=200, num_classes=4, image_size=12,
                                        noise=0.5, max_shift=0, seed=3)
        flattened = dataset.images.reshape(len(dataset), -1)
        prototypes = dataset.prototypes.reshape(4, -1)
        predictions = np.argmax(flattened @ prototypes.T, axis=1)
        accuracy = (predictions == dataset.labels).mean()
        assert accuracy > 0.9

    def test_split_is_disjoint_and_complete(self):
        dataset = SyntheticImageDataset(num_samples=50, seed=0)
        train, validation = dataset.split(0.8)
        assert len(train) == 40
        assert len(validation) == 10
        np.testing.assert_array_equal(np.concatenate([train.labels, validation.labels]),
                                      dataset.labels)

    def test_convenience_constructors(self):
        cifar = synthetic_cifar(num_samples=8)
        imagenet = synthetic_imagenet(num_samples=8)
        assert cifar.num_classes == 10
        assert imagenet.num_classes == 20
        assert imagenet.image_size > cifar.image_size

    def test_arrays_accessor(self):
        dataset = SyntheticImageDataset(num_samples=10, seed=0)
        images, labels = dataset.arrays()
        assert images.shape[0] == labels.shape[0] == 10


class TestTranslationDataset:
    def test_token_layout(self):
        dataset = SyntheticTranslationDataset(num_samples=20, vocab_size=16, seed=0)
        sources, targets_in, targets_out = dataset.arrays()
        assert sources.shape == targets_in.shape == targets_out.shape
        assert np.all(targets_in[:, 0] == BOS)
        # Every target output sequence ends with EOS before padding.
        for row in targets_out:
            non_pad = row[row != PAD]
            assert non_pad[-1] == EOS

    def test_target_is_reverse_and_shift_of_source(self):
        dataset = SyntheticTranslationDataset(num_samples=5, vocab_size=10, seed=1)
        sources, _, targets_out = dataset.arrays()
        content = dataset.vocab_size - 3
        for source, target in zip(sources, targets_out):
            tokens = source[(source != PAD) & (source != EOS)]
            expected = ((tokens[::-1] - 3 + 1) % content) + 3
            np.testing.assert_array_equal(target[:len(tokens)], expected)

    def test_vocab_too_small_rejected(self):
        with pytest.raises(ValueError):
            SyntheticTranslationDataset(vocab_size=3)

    def test_reference_sentences_strip_special_tokens(self):
        dataset = SyntheticTranslationDataset(num_samples=4, seed=0)
        for sentence in dataset.reference_sentences():
            assert PAD not in sentence
            assert EOS not in sentence
            assert len(sentence) >= dataset.min_length

    def test_split(self):
        dataset = SyntheticTranslationDataset(num_samples=20, seed=0)
        train, validation = dataset.split(0.75)
        assert len(train) == 15
        assert len(validation) == 5
        assert validation.vocab_size == dataset.vocab_size


class TestDetectionDataset:
    def test_target_layout(self):
        dataset = SyntheticDetectionDataset(num_samples=10, num_classes=3, image_size=16,
                                            grid_size=4, seed=0)
        image, target = dataset[0]
        assert image.shape == (3, 16, 16)
        assert target.shape == (4, 4, 8)

    def test_object_cells_match_ground_truth_count(self):
        dataset = SyntheticDetectionDataset(num_samples=20, max_objects=1, seed=0)
        _, targets = dataset.arrays()
        for index, boxes in enumerate(dataset.ground_truth_boxes()):
            assert targets[index][..., 4].sum() == len(boxes)

    def test_boxes_within_image(self):
        dataset = SyntheticDetectionDataset(num_samples=20, seed=1)
        for boxes in dataset.ground_truth_boxes():
            for x, y, w, h, class_id in boxes:
                assert 0 <= x - w / 2 and x + w / 2 <= 1.0 + 1e-9
                assert 0 <= y - h / 2 and y + h / 2 <= 1.0 + 1e-9
                assert 0 <= class_id < dataset.num_classes

    def test_object_pixels_brighter_than_background(self):
        dataset = SyntheticDetectionDataset(num_samples=5, noise=0.05, seed=2)
        image, _ = dataset[0]
        box = dataset.ground_truth_boxes()[0][0]
        x0 = int((box[0] - box[2] / 2) * dataset.image_size)
        y0 = int((box[1] - box[3] / 2) * dataset.image_size)
        assert image[:, y0 + 1, x0 + 1].mean() > 0.2

    def test_invalid_grid_rejected(self):
        with pytest.raises(ValueError):
            SyntheticDetectionDataset(image_size=30, grid_size=4)

    def test_split(self):
        dataset = SyntheticDetectionDataset(num_samples=10, seed=0)
        train, validation = dataset.split(0.6)
        assert len(train) == 6
        assert len(validation) == 4
        assert len(validation.ground_truth_boxes()) == 4


class TestDataLoader:
    def test_batches_cover_dataset(self):
        dataset = SyntheticImageDataset(num_samples=37, seed=0)
        loader = DataLoader(dataset, batch_size=8, shuffle=False)
        total = sum(len(labels) for _, labels in loader)
        assert total == 37
        assert len(loader) == 5

    def test_drop_last(self):
        dataset = SyntheticImageDataset(num_samples=37, seed=0)
        loader = DataLoader(dataset, batch_size=8, shuffle=False, drop_last=True)
        sizes = [len(labels) for _, labels in loader]
        assert sizes == [8, 8, 8, 8]
        assert len(loader) == 4

    def test_shuffle_changes_order_between_epochs(self):
        dataset = SyntheticImageDataset(num_samples=64, seed=0)
        loader = DataLoader(dataset, batch_size=64, shuffle=True, seed=3)
        first_epoch = next(iter(loader))[1]
        second_epoch = next(iter(loader))[1]
        assert not np.array_equal(first_epoch, second_epoch)

    def test_tuple_targets_stacked_elementwise(self):
        dataset = SyntheticTranslationDataset(num_samples=12, seed=0)
        loader = DataLoader(dataset, batch_size=4, shuffle=False)
        sources, (decoder_inputs, decoder_targets) = next(iter(loader))
        assert sources.shape[0] == 4
        assert decoder_inputs.shape == decoder_targets.shape

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(SyntheticImageDataset(num_samples=4), batch_size=0)
