"""Tests for the SRAM model, the FAST system breakdown (Table III) and the iso-area baselines."""

import pytest

from repro.hardware.mac import fmac_design
from repro.hardware.sram import SRAMBank, SRAMSubsystem
from repro.hardware.system import (
    CLOCK_HZ,
    PAPER_ARRAY_DIMS,
    PAPER_TABLE3,
    FASTSystem,
    iso_area_systems,
)


class TestSRAM:
    def test_bank_area_scales_with_capacity(self):
        assert SRAMBank(32.0).area_units > SRAMBank(16.0).area_units

    def test_subsystem_capacity(self):
        subsystem = SRAMSubsystem("weight_sram", num_banks=128, bank=SRAMBank(16.0))
        assert subsystem.capacity_kb == 2048

    def test_power_increases_with_bandwidth(self):
        subsystem = SRAMSubsystem("data_sram")
        assert subsystem.power_w(bandwidth_gbps=128) > subsystem.power_w(bandwidth_gbps=16)

    def test_paper_configuration_power(self):
        """Three 128 x 16 kB SRAMs dissipate ~3.4 W (Table III)."""
        total = sum(SRAMSubsystem(name).power_w() for name in ("w", "d", "g"))
        assert total == pytest.approx(PAPER_TABLE3["memory_subsystem"]["power_w"], rel=0.15)


class TestFASTSystemBreakdown:
    @pytest.fixture(scope="class")
    def system(self):
        return FASTSystem()

    def test_default_configuration(self, system):
        assert system.array_rows == 256
        assert system.array_cols == 64
        assert system.num_macs == 256 * 64
        assert system.clock_hz == CLOCK_HZ == 500e6

    def test_total_power_close_to_paper(self, system):
        paper_total = sum(entry["power_w"] for entry in PAPER_TABLE3.values())
        assert system.total_power_w() == pytest.approx(paper_total, rel=0.1)

    def test_area_fractions_close_to_paper(self, system):
        breakdown = system.area_breakdown()
        assert set(breakdown) == set(PAPER_TABLE3)
        for name, fraction in breakdown.items():
            assert fraction == pytest.approx(PAPER_TABLE3[name]["area_fraction"], abs=0.05), name

    def test_array_and_memory_dominate_area(self, system):
        breakdown = system.area_breakdown()
        assert breakdown["systolic_array"] > 0.4
        assert breakdown["memory_subsystem"] > 0.3
        assert breakdown["data_generator"] < 0.02

    def test_power_breakdown_close_to_paper(self, system):
        for name, power in system.power_breakdown().items():
            assert power == pytest.approx(PAPER_TABLE3[name]["power_w"], rel=0.2), name

    def test_fractions_sum_to_one(self, system):
        assert sum(system.area_breakdown().values()) == pytest.approx(1.0)

    def test_larger_array_increases_array_share(self):
        small = FASTSystem(array_rows=128, array_cols=64)
        large = FASTSystem(array_rows=512, array_cols=64)
        assert large.area_breakdown()["systolic_array"] > small.area_breakdown()["systolic_array"]

    def test_more_sram_increases_memory_share(self):
        small = FASTSystem(sram_banks=64)
        large = FASTSystem(sram_banks=256)
        assert large.area_breakdown()["memory_subsystem"] > small.area_breakdown()["memory_subsystem"]


class TestIsoAreaSystems:
    @pytest.fixture(scope="class")
    def systems(self):
        return iso_area_systems()

    def test_all_evaluated_formats_present(self, systems):
        expected = {"fast_adaptive", "low_bfp", "mid_bfp", "high_bfp", "hfp8", "msfp12",
                    "int12", "int8", "bfloat16", "nvidia_mp", "fp16", "fp32"}
        assert expected <= set(systems)

    def test_paper_array_dimensions_used(self, systems):
        assert (systems["hfp8"].array_rows, systems["hfp8"].array_cols) == PAPER_ARRAY_DIMS["hfp8"]
        assert (systems["bfloat16"].array_rows, systems["bfloat16"].array_cols) == (180, 180)
        assert (systems["fast_adaptive"].array_rows, systems["fast_adaptive"].array_cols) == (256, 64)

    def test_bfp_systems_share_fast_hardware(self, systems):
        for name in ("low_bfp", "mid_bfp", "high_bfp", "fast_adaptive"):
            assert systems[name].bfp_chunked
            assert systems[name].values_per_mac == 16

    def test_scalar_systems_are_single_value(self, systems):
        for name in ("fp32", "fp16", "bfloat16", "int12", "hfp8", "msfp12"):
            assert systems[name].values_per_mac == 1
            assert not systems[name].bfp_chunked

    def test_peak_throughput_ordering(self, systems):
        """At one pass, the FAST array has the highest peak MAC rate; FP32 the lowest."""
        fast_peak = systems["fast_adaptive"].peak_macs_per_cycle(passes=1)
        assert fast_peak > systems["hfp8"].peak_macs_per_cycle()
        assert systems["hfp8"].peak_macs_per_cycle() > systems["bfloat16"].peak_macs_per_cycle()
        assert systems["bfloat16"].peak_macs_per_cycle() > systems["fp32"].peak_macs_per_cycle()

    def test_passes_divide_peak_rate(self, systems):
        system = systems["fast_adaptive"]
        assert system.peak_macs_per_cycle(passes=4) == pytest.approx(
            system.peak_macs_per_cycle(passes=1) / 4)

    def test_shared_power_default(self, systems):
        powers = {config.power_w for config in systems.values()}
        assert len(powers) == 1
        assert powers.pop() == pytest.approx(FASTSystem().total_power_w())

    def test_power_override(self):
        systems = iso_area_systems(total_power_w=10.0)
        assert all(config.power_w == 10.0 for config in systems.values())

    def test_derived_int8_array_larger_than_int12(self, systems):
        assert systems["int8"].num_macs > systems["int12"].num_macs
