"""Tests for the functional fMAC: chunked BFP dot products are bit-exact."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bfp import bfp_quantize, bfp_quantize_tensor
from repro.core.chunks import passes_required
from repro.hardware.fmac import bfp_matmul, fmac_dot_product, fmac_group_dot


def quantize_vector(values, mantissa_bits, group_size=16):
    return bfp_quantize_tensor(values, mantissa_bits=mantissa_bits, group_size=group_size,
                               exponent_bits=8)


class TestGroupDot:
    def test_matches_float_dot_product(self, rng):
        a = rng.standard_normal(16)
        b = rng.standard_normal(16)
        qa = quantize_vector(a, 4)
        qb = quantize_vector(b, 4)
        result = fmac_group_dot(
            qa.signs[0, 0], qa.mantissas[0, 0], int(qa.exponents[0, 0]), 4,
            qb.signs[0, 0], qb.mantissas[0, 0], int(qb.exponents[0, 0]), 4,
        )
        expected = float(np.dot(qa.to_float(), qb.to_float()))
        assert result.value == pytest.approx(expected, rel=1e-12)

    @pytest.mark.parametrize("bits_a,bits_b,expected_passes", [(2, 2, 1), (4, 2, 2), (2, 4, 2), (4, 4, 4)])
    def test_pass_counts(self, rng, bits_a, bits_b, expected_passes):
        a = rng.standard_normal(16)
        b = rng.standard_normal(16)
        qa = quantize_vector(a, bits_a)
        qb = quantize_vector(b, bits_b)
        result = fmac_group_dot(
            qa.signs[0, 0], qa.mantissas[0, 0], int(qa.exponents[0, 0]), bits_a,
            qb.signs[0, 0], qb.mantissas[0, 0], int(qb.exponents[0, 0]), bits_b,
        )
        assert result.passes == expected_passes
        assert result.multiplications == expected_passes * 16

    def test_mixed_precision_matches_float(self, rng):
        """The headline feature: a 4-bit x 2-bit dot product in 2 passes is exact."""
        a = rng.standard_normal(16)
        b = rng.standard_normal(16)
        qa = quantize_vector(a, 4)
        qb = quantize_vector(b, 2)
        result = fmac_group_dot(
            qa.signs[0, 0], qa.mantissas[0, 0], int(qa.exponents[0, 0]), 4,
            qb.signs[0, 0], qb.mantissas[0, 0], int(qb.exponents[0, 0]), 2,
        )
        expected = float(np.dot(qa.to_float(), qb.to_float()))
        assert result.value == pytest.approx(expected, rel=1e-12)

    def test_zero_group(self):
        zeros = np.zeros(16)
        q = quantize_vector(zeros, 2)
        result = fmac_group_dot(q.signs[0, 0], q.mantissas[0, 0], int(q.exponents[0, 0]), 2,
                                q.signs[0, 0], q.mantissas[0, 0], int(q.exponents[0, 0]), 2)
        assert result.value == 0.0


class TestVectorDot:
    def test_multi_group_accumulation(self, rng):
        a = rng.standard_normal(64)
        b = rng.standard_normal(64)
        qa = quantize_vector(a, 4)
        qb = quantize_vector(b, 4)
        result = fmac_dot_product(qa, qb)
        assert result.value == pytest.approx(float(np.dot(qa.to_float(), qb.to_float())), rel=1e-12)
        assert result.passes == 4 * 4  # 4 groups x 4 passes each

    def test_shape_mismatch_rejected(self, rng):
        qa = quantize_vector(rng.standard_normal(32), 2)
        qb = quantize_vector(rng.standard_normal(16), 2)
        with pytest.raises(ValueError):
            fmac_dot_product(qa, qb)

    def test_group_size_mismatch_rejected(self, rng):
        values = rng.standard_normal(32)
        qa = bfp_quantize_tensor(values, mantissa_bits=2, group_size=16, exponent_bits=8)
        qb = bfp_quantize_tensor(values, mantissa_bits=2, group_size=8, exponent_bits=8)
        with pytest.raises(ValueError):
            fmac_dot_product(qa, qb)


class TestBFPMatmul:
    def test_matches_quantized_numpy_matmul(self, rng):
        a = rng.standard_normal((3, 32))
        b = rng.standard_normal((32, 2))
        result, passes = bfp_matmul(a, b, mantissa_bits_a=4, mantissa_bits_b=4,
                                    group_size=16, exponent_bits=8)
        a_q = bfp_quantize(a, 4, 16, 8, axis=1)
        b_q = bfp_quantize(b.T, 4, 16, 8, axis=1).T
        np.testing.assert_allclose(result, a_q @ b_q, rtol=1e-10)
        assert passes == 3 * 2 * 2 * passes_required(4, 4)

    def test_variable_precision_pass_count(self, rng):
        a = rng.standard_normal((2, 16))
        b = rng.standard_normal((16, 2))
        _, passes_low = bfp_matmul(a, b, 2, 2)
        _, passes_mixed = bfp_matmul(a, b, 4, 2)
        _, passes_high = bfp_matmul(a, b, 4, 4)
        assert passes_mixed == 2 * passes_low
        assert passes_high == 4 * passes_low

    def test_close_to_unquantized_product_at_high_precision(self, rng):
        a = rng.standard_normal((4, 64))
        b = rng.standard_normal((64, 3))
        result, _ = bfp_matmul(a, b, 6, 6, group_size=16)
        relative_error = np.abs(result - a @ b).max() / np.abs(a @ b).max()
        assert relative_error < 0.05

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            bfp_matmul(rng.standard_normal((2, 8)), rng.standard_normal((9, 2)))


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=2 ** 32 - 1), st.sampled_from([(2, 2), (4, 2), (4, 4)]))
def test_property_chunked_dot_equals_direct_integer_dot(seed, precision):
    """For random BFP groups, chunked evaluation equals the direct dot product."""
    bits_a, bits_b = precision
    rng = np.random.default_rng(seed)
    a = rng.standard_normal(16) * 10.0 ** rng.integers(-3, 3)
    b = rng.standard_normal(16) * 10.0 ** rng.integers(-3, 3)
    qa = quantize_vector(a, bits_a)
    qb = quantize_vector(b, bits_b)
    result = fmac_group_dot(
        qa.signs[0, 0], qa.mantissas[0, 0], int(qa.exponents[0, 0]), bits_a,
        qb.signs[0, 0], qb.mantissas[0, 0], int(qb.exponents[0, 0]), bits_b,
    )
    expected = float(np.dot(qa.to_float(), qb.to_float()))
    assert result.value == pytest.approx(expected, rel=1e-10, abs=1e-18)


class TestVectorizedMatmulEquivalence:
    """The einsum-based bfp_matmul must be bit-exact with the per-group fMAC loop."""

    @pytest.mark.parametrize("shape,bits_a,bits_b", [
        ((3, 32, 2), 4, 4), ((2, 16, 2), 2, 2), ((4, 48, 3), 4, 2), ((2, 20, 2), 3, 5),
    ])
    def test_matches_scalar_group_dot_loop(self, rng, shape, bits_a, bits_b):
        rows, inner, cols = shape
        a = rng.standard_normal((rows, inner))
        b = rng.standard_normal((inner, cols))
        result, passes = bfp_matmul(a, b, bits_a, bits_b, group_size=16, exponent_bits=8)

        a_q = bfp_quantize_tensor(a, mantissa_bits=bits_a, group_size=16, exponent_bits=8, axis=1)
        b_q = bfp_quantize_tensor(b.T, mantissa_bits=bits_b, group_size=16, exponent_bits=8, axis=1)
        expected = np.zeros((rows, cols))
        expected_passes = 0
        groups = a_q.exponents.shape[1]
        for i in range(rows):
            for j in range(cols):
                for g in range(groups):
                    partial = fmac_group_dot(
                        a_q.signs[i, g], a_q.mantissas[i, g], int(a_q.exponents[i, g]), bits_a,
                        b_q.signs[j, g], b_q.mantissas[j, g], int(b_q.exponents[j, g]), bits_b,
                    )
                    expected[i, j] += partial.value
                    expected_passes += partial.passes
        np.testing.assert_array_equal(result, expected)
        assert passes == expected_passes


class TestVectorizedDotProduct:
    """fmac_dot_product routes through the chunk-pair einsum; the scalar
    per-group walk is kept as fmac_dot_product_reference and must agree
    bit-for-bit (value, passes and multiplication counts)."""

    @pytest.mark.parametrize("size", [16, 33, 64, 100, 7])
    @pytest.mark.parametrize("bits_a,bits_b", [(4, 4), (2, 4), (4, 2), (2, 2), (5, 3)])
    def test_matches_scalar_reference(self, rng, size, bits_a, bits_b):
        from repro.hardware.fmac import fmac_dot_product_reference
        a = quantize_vector(rng.standard_normal(size) * 10.0 ** rng.integers(-3, 3, size=size),
                            bits_a)
        b = quantize_vector(rng.standard_normal(size), bits_b)
        fast = fmac_dot_product(a, b)
        ref = fmac_dot_product_reference(a, b)
        assert fast.value == ref.value
        assert fast.passes == ref.passes
        assert fast.multiplications == ref.multiplications

    def test_wide_chunks_match_scalar_reference(self, rng):
        from repro.hardware.fmac import fmac_dot_product_reference
        a = quantize_vector(rng.standard_normal(48), 6)
        b = quantize_vector(rng.standard_normal(48), 6)
        fast = fmac_dot_product(a, b, chunk_bits=3)
        ref = fmac_dot_product_reference(a, b, chunk_bits=3)
        assert fast.value == ref.value
        assert fast.passes == ref.passes

    def test_mismatched_shapes_rejected(self, rng):
        a = quantize_vector(rng.standard_normal(32), 4)
        b = quantize_vector(rng.standard_normal(16), 4)
        with pytest.raises(ValueError, match="same shape"):
            fmac_dot_product(a, b)

    def test_mismatched_group_size_rejected(self, rng):
        a = quantize_vector(rng.standard_normal(32), 4, group_size=16)
        b = quantize_vector(rng.standard_normal(32), 4, group_size=8)
        with pytest.raises(ValueError, match="group size"):
            fmac_dot_product(a, b)
