"""Tests for the training-iteration time/energy model (Figures 19 and 20)."""

import numpy as np
import pytest

from repro.hardware.performance import (
    FORMAT_PRECISIONS,
    fast_adaptive_iteration_cost,
    format_iteration_costs,
    iteration_cost,
    modelled_fast_precisions,
    product_passes,
)
from repro.hardware.system import iso_area_systems
from repro.hardware.workloads import resnet18_workload

#: Figure 20 normalized training times for ResNet-18 (paper values).
PAPER_RESNET18_TIME = {
    "fp32": 8.71,
    "nvidia_mp": 5.84,
    "bfloat16": 3.94,
    "int12": 2.95,
    "msfp12": 2.32,
    "hfp8": 2.03,
    "mid_bfp": 1.86,
    "fast_adaptive": 1.00,
}


@pytest.fixture(scope="module")
def workload():
    return resnet18_workload()


@pytest.fixture(scope="module")
def systems():
    return iso_area_systems()


@pytest.fixture(scope="module")
def costs(workload, systems):
    return format_iteration_costs(workload, systems)


class TestProductPasses:
    def test_all_low_precision_single_pass(self):
        assert product_passes(2, 2, 2) == {"forward": 1, "grad_activation": 1, "grad_weight": 1}

    def test_all_high_precision_four_passes(self):
        assert product_passes(4, 4, 4) == {"forward": 4, "grad_activation": 4, "grad_weight": 4}

    def test_mixed_setting(self):
        passes = product_passes(4, 2, 2)
        assert passes == {"forward": 2, "grad_activation": 2, "grad_weight": 1}

    def test_single_tensor_promotion_adds_two_passes(self):
        """Promoting any one tensor to 4 bits touches two of the three products."""
        baseline = sum(product_passes(2, 2, 2).values())
        for triple in ((4, 2, 2), (2, 4, 2), (2, 2, 4)):
            assert sum(product_passes(*triple).values()) == baseline + 2


class TestIterationCost:
    def test_scalar_system_ignores_precisions(self, workload, systems):
        plain = iteration_cost(workload, systems["bfloat16"])
        with_precisions = iteration_cost(workload, systems["bfloat16"], (4, 4, 4))
        assert plain.cycles == with_precisions.cycles

    def test_bfp_passes_scale_cycles(self, workload, systems):
        low = iteration_cost(workload, systems["low_bfp"], (2, 2, 2))
        high = iteration_cost(workload, systems["high_bfp"], (4, 4, 4))
        assert high.cycles == pytest.approx(4 * low.cycles, rel=0.05)

    def test_seconds_and_energy_consistent(self, workload, systems):
        cost = iteration_cost(workload, systems["fp32"])
        assert cost.seconds == pytest.approx(cost.cycles / 500e6)
        assert cost.energy_joules == pytest.approx(cost.seconds * systems["fp32"].power_w)

    def test_per_layer_precision_list_stretched(self, workload, systems):
        triples = [(2, 2, 2), (4, 4, 4)]
        cost = iteration_cost(workload, systems["fast_adaptive"], triples)
        low = iteration_cost(workload, systems["fast_adaptive"], (2, 2, 2))
        high = iteration_cost(workload, systems["fast_adaptive"], (4, 4, 4))
        assert low.cycles < cost.cycles < high.cycles


class TestModelledFastTrajectory:
    def test_precision_grows_with_progress(self):
        early = np.mean(modelled_fast_precisions(20, 0.05))
        late = np.mean(modelled_fast_precisions(20, 0.95))
        assert late > early

    def test_precision_grows_with_depth(self):
        settings = modelled_fast_precisions(20, 0.5)
        shallow = np.mean(settings[:5])
        deep = np.mean(settings[-5:])
        assert deep >= shallow

    def test_only_supported_bitwidths(self):
        for progress in (0.0, 0.3, 0.7, 1.0):
            for triple in modelled_fast_precisions(10, progress):
                assert set(triple) <= {2, 4}

    def test_fast_adaptive_cost_between_low_and_high(self, workload, systems):
        fast = fast_adaptive_iteration_cost(workload, systems["fast_adaptive"])
        low = iteration_cost(workload, systems["low_bfp"], (2, 2, 2))
        high = iteration_cost(workload, systems["high_bfp"], (4, 4, 4))
        assert low.cycles < fast.cycles < high.cycles

    def test_measured_trajectory_accepted(self, workload, systems):
        trajectory = [[(2, 2, 2)] * 5, [(4, 4, 4)] * 5]
        cost = fast_adaptive_iteration_cost(workload, systems["fast_adaptive"],
                                            precision_trajectory=trajectory)
        low = iteration_cost(workload, systems["fast_adaptive"], (2, 2, 2))
        high = iteration_cost(workload, systems["fast_adaptive"], (4, 4, 4))
        assert cost.cycles == pytest.approx((low.cycles + high.cycles) / 2, rel=0.01)

    def test_empty_trajectory_rejected(self, workload, systems):
        with pytest.raises(ValueError):
            fast_adaptive_iteration_cost(workload, systems["fast_adaptive"], precision_trajectory=[])


class TestFigure20Shape:
    def test_every_system_costed(self, costs, systems):
        assert set(costs) == set(systems)

    def test_fast_adaptive_is_fastest(self, costs):
        fastest = min(costs.values(), key=lambda cost: cost.seconds)
        assert fastest.name in ("fast_adaptive", "low_bfp")
        assert costs["fast_adaptive"].seconds <= costs["mid_bfp"].seconds

    def test_relative_time_ordering_matches_paper(self, costs):
        fast_seconds = costs["fast_adaptive"].seconds
        measured = {name: costs[name].seconds / fast_seconds for name in PAPER_RESNET18_TIME}
        paper_order = sorted(PAPER_RESNET18_TIME, key=PAPER_RESNET18_TIME.get)
        measured_order = sorted(measured, key=measured.get)
        assert measured_order == paper_order

    def test_relative_times_within_30_percent_of_paper(self, costs):
        fast_seconds = costs["fast_adaptive"].seconds
        for name, reported in PAPER_RESNET18_TIME.items():
            measured = costs[name].seconds / fast_seconds
            assert measured == pytest.approx(reported, rel=0.3), name

    def test_fp32_slowdown_in_paper_band(self, costs):
        """The headline 2-6x claim implies FP32 is ~8-10x slower than FAST-Adaptive."""
        ratio = costs["fp32"].seconds / costs["fast_adaptive"].seconds
        assert 6.0 < ratio < 12.0

    def test_energy_tracks_time_at_iso_power(self, costs):
        for cost in costs.values():
            assert cost.energy_joules == pytest.approx(cost.seconds * costs["fp32"].power_watts,
                                                       rel=1e-6)

    def test_format_precisions_table(self):
        assert FORMAT_PRECISIONS["low_bfp"] == (2, 2, 2)
        assert FORMAT_PRECISIONS["mid_bfp"] == (3, 3, 3)
        assert FORMAT_PRECISIONS["high_bfp"] == (4, 4, 4)
