"""Tests for the paper-scale workload descriptions."""

import pytest

from repro.hardware.workloads import (
    GemmShape,
    conv_gemm,
    mobilenet_v2_workload,
    paper_workloads,
    resnet18_workload,
    resnet50_workload,
    transformer_workload,
    vgg16_workload,
    yolov2_workload,
)


class TestGemmShape:
    def test_mac_count(self):
        shape = GemmShape("layer", 4, 5, 6)
        assert shape.macs == 120

    def test_backward_products_permute_dimensions(self):
        shape = GemmShape("layer", 64, 576, 1000)
        grad_a = shape.backward_activation()
        grad_w = shape.backward_weight()
        assert (grad_a.m, grad_a.k, grad_a.n) == (576, 64, 1000)
        assert (grad_w.m, grad_w.k, grad_w.n) == (64, 1000, 576)
        # All three products have the same MAC count (Figure 3).
        assert shape.macs == grad_a.macs == grad_w.macs

    def test_conv_gemm_dimensions(self):
        shape = conv_gemm("conv", in_channels=64, out_channels=128, kernel=3, out_hw=56, batch=256)
        assert shape.m == 128
        assert shape.k == 64 * 9
        assert shape.n == 256 * 56 * 56


class TestWorkloads:
    def test_all_six_models_present(self):
        workloads = paper_workloads()
        assert set(workloads) == {"resnet18", "resnet50", "mobilenet_v2", "vgg16",
                                  "transformer", "yolov2"}

    def test_resnet18_total_flops_close_to_published(self):
        """ResNet-18 forward pass is ~1.8 GFLOPs (0.9 GMACs) per 224x224 image."""
        workload = resnet18_workload(batch=1)
        forward_macs = sum(layer.macs for layer in workload.layers)
        assert forward_macs == pytest.approx(1.8e9, rel=0.25)

    def test_resnet50_heavier_than_resnet18(self):
        assert resnet50_workload().total_training_macs() > resnet18_workload().total_training_macs()

    def test_vgg16_is_the_heaviest_cnn(self):
        """VGG-16 (~15.5 GFLOPs/image) dwarfs ResNet-18 and MobileNet-v2."""
        vgg = vgg16_workload(batch=1)
        forward_macs = sum(layer.macs for layer in vgg.layers)
        assert forward_macs == pytest.approx(15.5e9, rel=0.3)

    def test_mobilenet_lighter_than_resnet18(self):
        mobilenet = sum(layer.macs for layer in mobilenet_v2_workload(batch=1).layers)
        resnet = sum(layer.macs for layer in resnet18_workload(batch=1).layers)
        assert mobilenet < resnet / 2

    def test_training_macs_are_triple_forward_macs(self):
        workload = resnet18_workload(batch=16)
        forward = sum(layer.macs for layer in workload.layers)
        assert workload.total_training_macs() == 3 * forward

    def test_batch_size_scales_streaming_dimension(self):
        small = resnet18_workload(batch=32)
        large = resnet18_workload(batch=256)
        assert large.total_training_macs() == pytest.approx(8 * small.total_training_macs(), rel=1e-6)

    def test_transformer_layer_count_and_target(self):
        workload = transformer_workload()
        assert workload.target_metric == 35.0
        # 12 encoder layers x 8 GEMMs + output projection.
        assert workload.num_layers == 12 * 8 + 1

    def test_yolo_target_is_map(self):
        workload = yolov2_workload()
        assert workload.target_name.startswith("mAP")
        assert workload.batch_size == 64

    def test_targets_match_figure_20_captions(self):
        workloads = paper_workloads()
        assert workloads["resnet18"].target_metric == 68.0
        assert workloads["resnet50"].target_metric == 75.0
        assert workloads["vgg16"].target_metric == 69.0
        assert workloads["yolov2"].target_metric == 73.0
