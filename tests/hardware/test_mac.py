"""Tests for the MAC design cost models (Table IV)."""

import pytest

from repro.hardware.mac import (
    PAPER_TABLE4,
    bfp_group_mac_design,
    fmac_design,
    fp_mac_design,
    hfp8_mac_design,
    int_mac_design,
    table4_designs,
)


class TestIndividualDesigns:
    def test_fmac_has_group_throughput(self):
        design = fmac_design(group_size=16)
        assert design.values_per_cycle == 16
        assert design.name == "fmac"

    def test_int_mac_naming_and_throughput(self):
        design = int_mac_design(12)
        assert design.name == "int12"
        assert design.values_per_cycle == 16

    def test_fp_mac_area_grows_with_mantissa(self):
        assert fp_mac_design(8, 7).area_units < fp_mac_design(8, 23).area_units

    def test_int_area_scales_roughly_quadratically(self):
        """Fixed point multiplier cost is quadratic in bitwidth (Section III-B)."""
        int8 = int_mac_design(8).area_units
        int16 = int_mac_design(16).area_units
        assert int16 / int8 > 2.0

    def test_hfp8_cheaper_than_bfloat16(self):
        assert hfp8_mac_design().area_units < fp_mac_design(8, 7, name="bfloat16").area_units

    def test_bfp_group_mac_grows_with_mantissa(self):
        assert bfp_group_mac_design(2, 8).area_units < bfp_group_mac_design(6, 8).area_units

    def test_larger_group_amortizes_accumulator(self):
        """Area per value decreases with group size (the fMAC's key advantage)."""
        small = fmac_design(group_size=4)
        large = fmac_design(group_size=32)
        assert large.area_units / 32 < small.area_units / 4


class TestTable4:
    @pytest.fixture(scope="class")
    def designs(self):
        return {design.name: design for design in table4_designs()}

    def test_all_rows_present(self, designs):
        assert set(designs) == set(PAPER_TABLE4)

    def test_area_ordering_matches_paper(self, designs):
        paper_order = sorted(PAPER_TABLE4, key=lambda name: PAPER_TABLE4[name]["area"])
        baseline = designs["fmac"]
        model_order = sorted(designs, key=lambda name: designs[name].relative_area(baseline))
        assert model_order == paper_order

    def test_fmac_is_smallest(self, designs):
        baseline = designs["fmac"]
        for name, design in designs.items():
            if name != "fmac":
                assert design.relative_area(baseline) > 2.0

    def test_relative_areas_within_40_percent_of_paper(self, designs):
        baseline = designs["fmac"]
        for name, design in designs.items():
            modelled = design.relative_area(baseline)
            reported = PAPER_TABLE4[name]["area"]
            assert modelled == pytest.approx(reported, rel=0.4), name

    def test_power_within_40_percent_of_paper(self, designs):
        for name, design in designs.items():
            assert design.power_mw == pytest.approx(PAPER_TABLE4[name]["power_mw"], rel=0.4), name

    def test_fpga_resources_within_tolerance_of_paper(self, designs):
        for name, design in designs.items():
            assert design.lut == pytest.approx(PAPER_TABLE4[name]["lut"], rel=0.3), name
            assert design.ff == pytest.approx(PAPER_TABLE4[name]["ff"], rel=0.35), name

    def test_power_ordering_matches_area_ordering(self, designs):
        ordered = sorted(designs.values(), key=lambda d: d.area_units)
        powers = [design.power_mw for design in ordered]
        assert powers == sorted(powers)
