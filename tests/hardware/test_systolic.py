"""Tests for the systolic array functional model and the tiled cycle model."""

import numpy as np
import pytest

from repro.hardware.systolic import SystolicArray, tiled_matmul_cycles


class TestSystolicDataflows:
    """The three dataflows of Figure 12 produce the correct matrix products."""

    def test_forward_pass(self, rng):
        array = SystolicArray(8, 8)
        weights = rng.standard_normal((4, 6))       # N x C
        activations = rng.standard_normal((6, 10))  # C x M
        output, stats = array.forward(weights, activations)
        np.testing.assert_allclose(output, weights @ activations)
        assert stats.mac_operations == 4 * 6 * 10

    def test_backward_activation_gradients_without_transpose(self, rng):
        """∇A = W^T ∇O computed while W stays in its forward orientation."""
        array = SystolicArray(8, 8)
        weights = rng.standard_normal((4, 6))
        output_gradients = rng.standard_normal((4, 10))
        gradients, _ = array.backward_activations(weights, output_gradients)
        np.testing.assert_allclose(gradients, weights.T @ output_gradients)

    def test_backward_weight_gradients(self, rng):
        array = SystolicArray(8, 8)
        output_gradients = rng.standard_normal((4, 10))
        activations = rng.standard_normal((6, 10))
        gradients, _ = array.backward_weights(output_gradients, activations)
        np.testing.assert_allclose(gradients, output_gradients @ activations.T)

    def test_paper_figure12_example(self):
        """The worked numeric example of Figure 12."""
        array = SystolicArray(4, 4)
        weights = np.array([[2.0, 3.0], [0.0, 1.0]])
        activations = np.array([[1.0, 4.0], [5.0, 2.0]])
        # Forward: W A with A entering from below -- Figure 12a shows O = [[2,7],[10,17]]
        # for O = A W in their ordering; our convention computes W @ A.
        output, _ = array.forward(weights, activations)
        np.testing.assert_allclose(output, weights @ activations)

    def test_training_roundtrip_consistency(self, rng):
        """Forward + both backward products satisfy the chain rule identity."""
        array = SystolicArray(16, 16)
        weights = rng.standard_normal((5, 7))
        activations = rng.standard_normal((7, 9))
        output, _ = array.forward(weights, activations)
        upstream = rng.standard_normal(output.shape)
        grad_activations, _ = array.backward_activations(weights, upstream)
        grad_weights, _ = array.backward_weights(upstream, activations)
        # Check against autograd-style references.
        np.testing.assert_allclose(grad_activations, weights.T @ upstream)
        np.testing.assert_allclose(grad_weights, upstream @ activations.T)

    def test_oversized_operand_rejected(self, rng):
        array = SystolicArray(2, 2)
        with pytest.raises(ValueError, match="exceeds array"):
            array.forward(rng.standard_normal((4, 4)), rng.standard_normal((4, 2)))

    def test_dimension_mismatch_rejected(self, rng):
        array = SystolicArray(8, 8)
        with pytest.raises(ValueError):
            array.forward(rng.standard_normal((2, 3)), rng.standard_normal((4, 2)))

    def test_cycle_counts_scale_with_stream_length(self, rng):
        array = SystolicArray(8, 8)
        _, short = array.forward(rng.standard_normal((4, 4)), rng.standard_normal((4, 10)))
        _, long = array.forward(rng.standard_normal((4, 4)), rng.standard_normal((4, 100)))
        assert long.cycles - short.cycles == 90

    def test_invalid_array_shape(self):
        with pytest.raises(ValueError):
            SystolicArray(0, 4)


class TestTiledCycles:
    def test_zero_work(self):
        assert tiled_matmul_cycles(0, 10, 10, 8, 8) == 0

    def test_compute_bound_scaling(self):
        base = tiled_matmul_cycles(256, 1024, 100000, 256, 64, k_per_cycle=16, passes=1)
        doubled = tiled_matmul_cycles(256, 1024, 200000, 256, 64, k_per_cycle=16, passes=1)
        assert doubled == pytest.approx(2 * base, rel=0.01)

    def test_passes_multiply_compute_time(self):
        one = tiled_matmul_cycles(256, 1024, 100000, 256, 64, k_per_cycle=16, passes=1)
        four = tiled_matmul_cycles(256, 1024, 100000, 256, 64, k_per_cycle=16, passes=4)
        assert four == pytest.approx(4 * one, rel=0.01)

    def test_group_mac_is_16x_faster_at_iso_cells(self):
        scalar = tiled_matmul_cycles(256, 1024, 100000, 256, 64, k_per_cycle=1)
        grouped = tiled_matmul_cycles(256, 1024, 100000, 256, 64, k_per_cycle=16)
        assert scalar / grouped == pytest.approx(16, rel=0.05)

    def test_tiling_overhead_counted(self):
        small_array = tiled_matmul_cycles(512, 2048, 1000, 128, 64, k_per_cycle=16)
        large_array = tiled_matmul_cycles(512, 2048, 1000, 512, 128, k_per_cycle=16)
        assert small_array > large_array

    def test_peak_throughput_formula(self):
        """With no tiling overhead, cycles ~= MACs / peak rate."""
        cycles = tiled_matmul_cycles(100, 100, 1000000, 256, 64, k_per_cycle=16, passes=1)
        expected = 100 * 100 * 1000000 / (256 * 64 * 16)
        assert cycles == pytest.approx(expected, rel=0.01)
