"""Tests for the multi-chip scaling model (the paper's future-work extension)."""

import pytest

from repro.hardware.multichip import (
    Interconnect,
    gradient_traffic_bits,
    multichip_iteration,
    scaling_sweep,
)
from repro.hardware.workloads import resnet18_workload


@pytest.fixture(scope="module")
def workload():
    return resnet18_workload()


class TestGradientTraffic:
    def test_fp32_volume_matches_parameter_count(self, workload):
        parameters = sum(layer.m * layer.k for layer in workload.layers)
        assert gradient_traffic_bits(workload, "fp32") == 32 * parameters

    def test_bfp_exchange_is_much_smaller(self, workload):
        fp32 = gradient_traffic_bits(workload, "fp32")
        bfp = gradient_traffic_bits(workload, "bfp", mantissa_bits=4)
        assert fp32 / bfp > 4.0

    def test_low_precision_exchange_even_smaller(self, workload):
        high = gradient_traffic_bits(workload, "bfp", mantissa_bits=4)
        low = gradient_traffic_bits(workload, "bfp", mantissa_bits=2)
        assert low < high

    def test_unknown_format_rejected(self, workload):
        with pytest.raises(ValueError):
            gradient_traffic_bits(workload, "fp8")


class TestMultiChipIteration:
    def test_single_chip_has_no_communication(self, workload):
        result = multichip_iteration(workload, 1)
        assert result.communication_seconds == 0.0
        assert result.speedup == pytest.approx(1.0)
        assert result.efficiency == pytest.approx(1.0)

    def test_invalid_chip_count(self, workload):
        with pytest.raises(ValueError):
            multichip_iteration(workload, 0)

    def test_speedup_grows_but_efficiency_drops(self, workload):
        sweep = scaling_sweep(workload, chip_counts=(1, 2, 4, 8))
        speedups = [sweep[count].speedup for count in (1, 2, 4, 8)]
        efficiencies = [sweep[count].efficiency for count in (1, 2, 4, 8)]
        assert speedups == sorted(speedups)
        assert efficiencies == sorted(efficiencies, reverse=True)
        assert sweep[8].speedup < 8.0  # communication keeps it sub-linear

    def test_communication_fraction_grows_with_chips(self, workload):
        sweep = scaling_sweep(workload, chip_counts=(2, 4, 16))
        assert sweep[2].communication_fraction < sweep[16].communication_fraction

    def test_bfp_exchange_scales_better_than_fp32(self, workload):
        bfp = multichip_iteration(workload, 8, exchange_format="bfp")
        fp32 = multichip_iteration(workload, 8, exchange_format="fp32")
        assert bfp.speedup > fp32.speedup

    def test_faster_interconnect_improves_efficiency(self, workload):
        slow = multichip_iteration(workload, 8, interconnect=Interconnect(bandwidth_gbps=25))
        fast = multichip_iteration(workload, 8, interconnect=Interconnect(bandwidth_gbps=400))
        assert fast.efficiency > slow.efficiency

    def test_fixed_precision_mode(self, workload):
        result = multichip_iteration(workload, 4, fast_adaptive=False)
        assert result.total_seconds > 0.0
