"""Tests for exponent statistics (Fig. 6), sensitivity sweeps (Fig. 18) and report rendering."""

import numpy as np
import pytest

from repro.analysis.exponent_stats import (
    difference_histogram,
    exponent_differences,
    exponent_spread_report,
)
from repro.analysis.reports import format_comparison, format_series, format_table
from repro.analysis.sensitivity import (
    quantization_snr,
    quantization_snr_sweep,
    accuracy_sweep,
    sweep_table,
)
from repro.core.bfp import BFPConfig


class TestExponentDifferences:
    def test_all_equal_values_have_zero_difference(self):
        values = np.full((2, 16), 3.0)
        differences = exponent_differences(values, 16)
        np.testing.assert_array_equal(differences, np.zeros(32))

    def test_known_differences(self):
        values = np.array([8.0, 4.0, 1.0, 0.5] + [8.0] * 12)
        differences = exponent_differences(values, 16)
        assert sorted(differences[:4]) == [0.0, 1.0, 3.0, 4.0]

    def test_zeros_excluded(self):
        values = np.array([4.0, 0.0, 0.0, 0.0] * 4)
        differences = exponent_differences(values, 16)
        assert differences.size == 4  # only the non-zero values

    def test_histogram_sums_to_100(self, rng):
        values = rng.standard_normal(256)
        histogram = difference_histogram(values, 16)
        assert sum(histogram.values()) == pytest.approx(100.0)

    def test_gradients_have_wider_spread_than_weights(self, rng, gradient_like_tensor):
        """The Figure 6 observation: gradients show larger exponent differences."""
        weights = rng.standard_normal(256) * 0.1
        weight_report = exponent_spread_report("weights", weights)
        gradient_report = exponent_spread_report("gradients", gradient_like_tensor)
        for group_size in (8, 16, 32):
            assert gradient_report.mean_difference[group_size] > \
                weight_report.mean_difference[group_size]

    def test_spread_grows_with_group_size(self, gradient_like_tensor):
        """Larger groups push the distribution right (Figure 6, top to bottom)."""
        report = exponent_spread_report("gradients", gradient_like_tensor)
        assert report.mean_difference[8] <= report.mean_difference[16] <= report.mean_difference[32]

    def test_truncated_fraction_larger_for_small_mantissa(self, gradient_like_tensor):
        narrow = exponent_spread_report("g", gradient_like_tensor, mantissa_bits=2)
        wide = exponent_spread_report("g", gradient_like_tensor, mantissa_bits=6)
        assert narrow.truncated_fraction[16] >= wide.truncated_fraction[16]


class TestSensitivity:
    def test_snr_increases_with_mantissa_bits(self, rng):
        values = rng.standard_normal((16, 64))
        snrs = [quantization_snr(values, bits, 16) for bits in (2, 3, 4, 5)]
        assert snrs == sorted(snrs)

    def test_snr_decreases_with_group_size(self, gradient_like_tensor):
        snrs = [quantization_snr(gradient_like_tensor, 4, group_size) for group_size in (8, 16, 32)]
        assert snrs[0] >= snrs[1] >= snrs[2]

    def test_sweep_covers_figure18_grid(self, rng):
        points = quantization_snr_sweep(rng.standard_normal(256))
        assert len(points) == 12
        table = sweep_table(points)
        assert (16, 4) in table

    def test_accuracy_sweep_passes_configs(self):
        seen = []

        def fake_train(config: BFPConfig) -> float:
            seen.append((config.group_size, config.mantissa_bits))
            return config.mantissa_bits * 10.0

        points = accuracy_sweep(fake_train, group_sizes=(8, 16), mantissa_bits=(2, 4))
        assert len(points) == 4
        assert set(seen) == {(8, 2), (8, 4), (16, 2), (16, 4)}
        assert sweep_table(points)[(8, 4)] == 40.0

    def test_exact_values_have_infinite_snr(self):
        values = np.array([1.0, 2.0, -1.0, 0.5] * 4)
        assert quantization_snr(values, 8, 16) == np.inf


class TestReports:
    def test_format_table_alignment_and_values(self):
        text = format_table(["name", "value"], [["fp32", 1.0], ["fast", 0.5]], title="Results")
        lines = text.splitlines()
        assert lines[0] == "Results"
        assert "fp32" in text and "0.50" in text
        assert len(lines) == 5

    def test_none_rendered_as_na(self):
        text = format_table(["name", "value"], [["int8", None]])
        assert "N/A" in text

    def test_format_series(self):
        text = format_series("accuracy", {1: 10.0, 2: 20.0})
        assert text.startswith("accuracy:")
        assert "2: 20.00" in text

    def test_format_comparison_includes_reference(self):
        text = format_comparison(["format", "measured", "paper"],
                                 {"fp32": 1.0}, {"fp32": 1.1})
        assert "1.10" in text
        assert "fp32" in text
