"""The global gate: hook install/uninstall and zero-overhead-when-off."""

import tracemalloc

import numpy as np
import pytest

from repro import observability
from repro.core import kernels
from repro.core.bfp import BFPConfig
from repro.nn import functional


@pytest.fixture(autouse=True)
def clean_gate():
    """Every test starts and ends disabled with fresh state."""
    observability.set_enabled(False)
    observability.reset()
    yield
    observability.set_enabled(False)
    observability.reset()


CONFIG = BFPConfig(exponent_bits=8, group_size=16)


def run_quantize(rows=8, cols=64):
    rng = np.random.default_rng(0)
    x = rng.standard_normal((rows, cols))
    return kernels.bfp_quantize_fast(x, CONFIG.mantissa_bits, CONFIG.group_size)


class TestGate:
    def test_disabled_by_default_and_hooks_absent(self):
        assert not observability.enabled()
        assert kernels._PROFILER is None
        assert functional._PROFILER is None
        assert observability.active_tracer() is None

    def test_enable_installs_hooks_and_returns_previous(self):
        assert observability.set_enabled(True) is False
        try:
            assert observability.enabled()
            assert kernels._PROFILER is not None
            assert functional._PROFILER is not None
            assert observability.set_enabled(True) is True  # idempotent
        finally:
            assert observability.set_enabled(False) is True
        assert kernels._PROFILER is None
        assert functional._PROFILER is None

    def test_enabled_kernels_record_metrics(self):
        observability.set_enabled(True)
        result = run_quantize()
        assert np.all(np.isfinite(result))
        registry = observability.registry()
        calls = registry.get("kernel_calls_total", kernel="bfp_quantize_fast")
        elements = registry.get("kernel_elements_total",
                                kernel="bfp_quantize_fast")
        hist = registry.get("kernel_call_ms", kernel="bfp_quantize_fast")
        assert calls is not None and calls.value >= 1
        assert elements is not None and elements.value >= result.size
        assert hist is not None and hist.count >= 1

    def test_sample_rate_zero_keeps_metrics_but_disarms_tracing(self):
        observability.set_enabled(True, sample_rate=0.0)
        assert observability.enabled()
        assert observability.active_tracer() is None

    def test_reset_points_hooks_at_fresh_registry(self):
        observability.set_enabled(True)
        run_quantize()
        old_registry = observability.registry()
        observability.reset()
        assert observability.registry() is not old_registry
        run_quantize()
        fresh = observability.registry().get("kernel_calls_total",
                                             kernel="bfp_quantize_fast")
        assert fresh is not None and fresh.value >= 1


class TestDisabledOverhead:
    def test_disabled_gate_allocates_nothing_in_observability_code(self):
        """Acceptance: with the gate off, a hot kernel call performs zero
        allocations attributable to the observability package -- the hook
        is one module-global load and a None check."""
        run_quantize()  # prime caches outside the measurement
        observability_filter = tracemalloc.Filter(
            True, "*/repro/observability/*")
        tracemalloc.start(10)
        try:
            run_quantize()
            snapshot = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        suspicious = snapshot.filter_traces([observability_filter]).statistics(
            "lineno")
        assert suspicious == [], [str(stat) for stat in suspicious]

    def test_disabled_quantize_output_identical_to_enabled(self):
        """The hooks must not perturb numerics: same bits either way."""
        disabled = run_quantize()
        observability.set_enabled(True)
        enabled_result = run_quantize()
        np.testing.assert_array_equal(disabled, enabled_result)
