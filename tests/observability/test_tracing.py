"""Tracer: sampling determinism, schema round-trip, bounded buffers."""

import json

import pytest

from repro.observability.tracing import (
    PIPELINE_STAGES,
    Tracer,
    validate_chrome_trace,
)


class TestSampling:
    def test_rate_one_traces_everything(self):
        tracer = Tracer(sample_rate=1.0)
        assert [tracer.sample() for _ in range(4)] == [1, 2, 3, 4]

    def test_deterministic_every_nth(self):
        tracer = Tracer(sample_rate=0.25)
        decisions = [tracer.sample() for _ in range(12)]
        assert decisions == [1, None, None, None,
                             2, None, None, None,
                             3, None, None, None]

    def test_rate_zero_disarms(self):
        tracer = Tracer(sample_rate=0.0)
        assert not tracer.armed
        assert tracer.sample() is None

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            Tracer(sample_rate=1.5)


class TestEventsAndExport:
    def test_chrome_round_trip_validates(self, tmp_path):
        """Export -> json.load -> schema validation, with every pipeline
        stage present (the viewer-compatibility acceptance check)."""
        tracer = Tracer()
        start = 1.0
        for stage in PIPELINE_STAGES:
            tracer.add_event(stage, start, 0.002, args={"trace_id": 1})
            start += 0.002
        path = tracer.export(tmp_path / "trace.json")
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["displayTimeUnit"] == "ms"
        count = validate_chrome_trace(payload, require_stages=PIPELINE_STAGES)
        assert count == len(PIPELINE_STAGES)
        # Events are in ts order and carry microsecond timestamps.
        ts = [event["ts"] for event in payload["traceEvents"]]
        assert ts == sorted(ts)
        assert payload["traceEvents"][0]["ts"] == pytest.approx(1e6)
        assert payload["traceEvents"][0]["dur"] == pytest.approx(2e3)

    def test_span_context_manager_records_duration(self):
        fake_now = [10.0]
        tracer = Tracer(clock=lambda: fake_now[0])
        with tracer.span("compute", args={"batch": 4}):
            fake_now[0] += 0.5
        (event,) = tracer.events()
        assert event["name"] == "compute"
        assert event["dur"] == pytest.approx(0.5e6)
        assert event["args"] == {"batch": 4}

    def test_negative_duration_clamped(self):
        tracer = Tracer()
        tracer.add_event("x", 1.0, -0.1)
        assert tracer.events()[0]["dur"] == 0.0

    def test_buffer_is_bounded_keeping_newest(self):
        tracer = Tracer(max_events=10)
        for index in range(25):
            tracer.add_event(f"e{index}", float(index), 0.001)
        events = tracer.events()
        assert len(events) == 10
        assert events[0]["name"] == "e15" and events[-1]["name"] == "e24"

    def test_drain_then_extend_moves_events_across_tracers(self):
        """The worker piggyback path: drain in the worker, extend in the
        parent, events survive verbatim."""
        worker, parent = Tracer(), Tracer()
        worker.add_event("compute", 2.0, 0.01, pid=1234, tid=1)
        drained = worker.drain()
        assert len(worker) == 0
        parent.extend(drained)
        (event,) = parent.events()
        assert event["pid"] == 1234 and event["name"] == "compute"
        with pytest.raises(ValueError):
            parent.extend([{"ts": 1.0}])  # nameless event is malformed


class TestValidator:
    def test_rejects_wrong_container(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"events": []})

    def test_rejects_bad_event_fields(self):
        base = {"name": "x", "ph": "X", "ts": 0.0, "dur": 1.0,
                "pid": 1, "tid": 1}
        for corruption in ({"name": ""}, {"ph": "B"}, {"ts": -1.0},
                           {"dur": "fast"}, {"pid": "main"}):
            event = dict(base, **corruption)
            with pytest.raises(ValueError):
                validate_chrome_trace({"traceEvents": [event]})

    def test_missing_stage_is_named_in_the_error(self):
        tracer = Tracer()
        tracer.add_event("submit", 0.0, 0.1)
        with pytest.raises(ValueError, match="transport"):
            validate_chrome_trace(tracer.to_chrome(),
                                  require_stages=("submit", "transport"))
