"""Metrics registry: histogram accuracy, exposition formats, delta protocol."""

import json
import threading

import numpy as np
import pytest

from repro.observability.metrics import (
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    log_buckets,
    validate_prometheus_text,
)


class TestLogBuckets:
    def test_geometric_spacing_and_range(self):
        bounds = log_buckets(1e-2, 1e5, per_decade=16)
        assert bounds[0] == pytest.approx(1e-2)
        assert bounds[-1] >= 1e5
        ratios = np.diff(np.log10(bounds))
        assert np.allclose(ratios, 1.0 / 16, atol=1e-9)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            log_buckets(1.0, 0.5)
        with pytest.raises(ValueError):
            log_buckets(0.0, 10.0)


class TestHistogramAccuracy:
    def test_quantiles_match_exact_percentiles_within_bucket_error(self):
        """Acceptance: p50/p95/p99 from the fixed-bucket histogram track
        exact sample percentiles within the bucket resolution (16 buckets
        per decade -> adjacent bounds differ by ~15.5%, interpolation gets
        well under half of that on smooth data)."""
        rng = np.random.default_rng(7)
        samples = rng.lognormal(mean=2.5, sigma=1.0, size=20_000)
        hist = LatencyHistogram("t")
        for value in samples:
            hist.observe(value)
        for q in (0.50, 0.95, 0.99):
            exact = float(np.percentile(samples, q * 100.0))
            estimated = hist.quantile(q)
            assert abs(estimated - exact) / exact < 0.05, (q, estimated, exact)

    def test_exact_count_sum_min_max_mean(self):
        values = [0.5, 3.0, 42.0, 999.0]
        hist = LatencyHistogram("t")
        for value in values:
            hist.observe(value)
        assert hist.count == len(values)
        assert hist.sum == pytest.approx(sum(values))
        assert hist.mean == pytest.approx(np.mean(values))
        # Quantile interpolation is clamped by observed extremes.
        assert hist.quantile(0.0) >= 0.5 - 1e-9
        assert hist.quantile(1.0) <= 999.0 + 1e-9

    def test_empty_histogram_is_nan(self):
        hist = LatencyHistogram("t")
        assert np.isnan(hist.quantile(0.5))
        assert np.isnan(hist.mean)

    def test_merge_equals_single_stream(self):
        rng = np.random.default_rng(3)
        a_values, b_values = rng.exponential(10.0, 500), rng.exponential(20.0, 500)
        merged, a, b = (LatencyHistogram("t") for _ in range(3))
        for value in a_values:
            a.observe(value)
            merged.observe(value)
        for value in b_values:
            b.observe(value)
            merged.observe(value)
        a.merge(b)
        assert a.count == merged.count
        assert a.sum == pytest.approx(merged.sum)
        assert a.percentiles() == pytest.approx(merged.percentiles())

    def test_thread_safety_loses_no_observations(self):
        hist = LatencyHistogram("t")

        def hammer():
            for _ in range(2_000):
                hist.observe(1.0)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert hist.count == 16_000


class TestCounterAndGauge:
    def test_counter_monotonic(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4.0)
        assert counter.value == pytest.approx(5.0)
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_gauge_set_and_add(self):
        gauge = Gauge("g")
        gauge.set(3.0)
        gauge.add(-1.5)
        assert gauge.value == pytest.approx(1.5)


class TestRegistry:
    def test_get_or_create_is_idempotent_per_label_set(self):
        registry = MetricsRegistry()
        a = registry.counter("requests", server="s0")
        b = registry.counter("requests", server="s0")
        c = registry.counter("requests", server="s1")
        assert a is b and a is not c

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_snapshot_is_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("c", help="a counter").inc(2)
        registry.histogram("h").observe(5.0)
        snapshot = json.loads(json.dumps(registry.snapshot()))
        names = {metric["name"] for metric in snapshot["metrics"]}
        assert names == {"c", "h"}

    def test_prometheus_text_validates(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", server="s0").inc(3)
        registry.gauge("depth").set(2)
        hist = registry.histogram("latency_ms", server="s0")
        for value in (0.5, 5.0, 50.0, 5e6):  # includes overflow bucket
            hist.observe(value)
        text = registry.render_prometheus()
        assert validate_prometheus_text(text) > 0
        assert "# TYPE requests_total counter" in text
        assert 'le="+Inf"' in text

    def test_validator_rejects_broken_exposition(self):
        with pytest.raises(ValueError):
            validate_prometheus_text("this is not prometheus {{{\n")
        # Non-cumulative histogram buckets must be caught.
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="2"} 3\n'
            'h_bucket{le="+Inf"} 5\n'
            "h_sum 7\n"
            "h_count 5\n"
        )
        with pytest.raises(ValueError):
            validate_prometheus_text(bad)


class TestDeltaProtocol:
    def test_counter_delta_round_trip(self):
        source, sink = MetricsRegistry(), MetricsRegistry()
        source.counter("c").inc(3)
        sink.apply_delta(source.collect_delta())
        source.counter("c").inc(2)
        sink.apply_delta(source.collect_delta())
        assert sink.counter("c").value == pytest.approx(5.0)
        # Nothing new to ship -> no payload at all.
        assert source.collect_delta() is None

    def test_histogram_delta_preserves_quantiles(self):
        source, sink = MetricsRegistry(), MetricsRegistry()
        rng = np.random.default_rng(11)
        hist = source.histogram("h")
        for value in rng.exponential(25.0, 1_000):
            hist.observe(value)
        sink.apply_delta(source.collect_delta())
        mirrored = sink.histogram("h")
        assert mirrored.count == hist.count
        assert mirrored.percentiles() == pytest.approx(hist.percentiles())

    def test_extra_labels_rewrite_the_stream(self):
        """The cross-process path: a worker's unlabelled delta lands in the
        parent registry under that worker's shard labels."""
        worker, parent = MetricsRegistry(), MetricsRegistry()
        worker.counter("kernel_calls_total", kernel="gemm").inc(4)
        parent.apply_delta(worker.collect_delta(),
                           extra_labels={"shard": "0", "model": "mlp"})
        merged = parent.counter("kernel_calls_total", kernel="gemm",
                                shard="0", model="mlp")
        assert merged.value == pytest.approx(4.0)

    def test_respawned_source_keeps_adding(self):
        """A fresh worker restarts its registry at zero; deltas from the new
        incarnation must accumulate, not reset, in the aggregate."""
        parent = MetricsRegistry()
        first = MetricsRegistry()
        first.counter("c").inc(7)
        parent.apply_delta(first.collect_delta())
        respawned = MetricsRegistry()  # new process: counters start over
        respawned.counter("c").inc(2)
        parent.apply_delta(respawned.collect_delta())
        assert parent.counter("c").value == pytest.approx(9.0)
