"""Tests for the runtime invariant sanitizer.

Covers the acceptance case from the issue: a corrupted shared exponent in
a hand-built BFPTensor raises a clear diagnostic at construction, plus
mantissa bounds, sign-set checks, non-finite provenance records, and the
zero-overhead disabled path.
"""

import numpy as np
import pytest

from repro.core import bfp
from repro.devtools import sanitize
from repro.nn.tensor import Tensor


@pytest.fixture()
def sanitizer():
    san = sanitize.install()
    try:
        yield san
    finally:
        sanitize.uninstall()


def quantize(x=None, **overrides):
    if x is None:
        x = np.linspace(-2.0, 2.0, 64).reshape(4, 16)
    return bfp.bfp_quantize_tensor(x, **overrides)


def rebuild(t, **replacements):
    fields = dict(signs=t.signs, mantissas=t.mantissas, exponents=t.exponents,
                  config=t.config, shape=t.shape, axis=t.axis, pad=t.pad,
                  _moved_shape=t._moved_shape)
    fields.update(replacements)
    return bfp.BFPTensor(**fields)


class TestBFPInvariants:
    def test_kernel_built_tensor_passes(self, sanitizer):
        t = quantize(mantissa_bits=4, group_size=16)
        assert sanitizer.bfp_checked == 1
        assert sanitizer.bfp_failures == 0
        np.testing.assert_allclose(t.to_float(), quantize().to_float())

    def test_corrupt_shared_exponent_diagnostic(self, sanitizer):
        t = quantize(exponent_bits=8)
        bad = t.exponents.copy()
        bad[0, 0] = 900  # far outside the 8-bit window anchored at the max
        with pytest.raises(sanitize.SanitizerError) as excinfo:
            rebuild(t, exponents=bad)
        message = str(excinfo.value)
        assert "shared exponent" in message or "window" in message
        assert "8-bit" in message  # names the format that was violated
        assert sanitizer.bfp_failures == 1

    def test_exponent_outside_float64_range(self, sanitizer):
        t = quantize(exponent_bits=None)
        bad = t.exponents.copy()
        bad[0, 0] = 5000
        with pytest.raises(sanitize.SanitizerError, match="float64 range"):
            rebuild(t, exponents=bad)

    def test_mantissa_bound(self, sanitizer):
        t = quantize(mantissa_bits=4)
        bad = t.mantissas.copy()
        bad[0, 0, 0] = 16  # 2**4 is one past the top magnitude
        with pytest.raises(sanitize.SanitizerError, match=r"\[0, 15\]"):
            rebuild(t, mantissas=bad)

    def test_sign_set(self, sanitizer):
        t = quantize()
        bad = t.signs.copy()
        bad[0, 0, 0] = 3
        with pytest.raises(sanitize.SanitizerError, match="sign"):
            rebuild(t, signs=bad)

    def test_sign_mantissa_zero_mismatch(self, sanitizer):
        t = quantize()
        bad = t.signs.copy()
        flat = t.mantissas.reshape(-1)
        index = int(np.argmax(flat > 0))
        bad.reshape(-1)[index] = 0  # nonzero mantissa with a zero sign
        with pytest.raises(sanitize.SanitizerError, match="zero mismatch"):
            rebuild(t, signs=bad)

    def test_shape_mismatch(self, sanitizer):
        t = quantize()
        with pytest.raises(sanitize.SanitizerError, match="shape"):
            rebuild(t, exponents=t.exponents[:1])

    def test_deep_subnormal_groups_skip_roundtrip(self, sanitizer):
        # Values around 1e-300 produce shifts past float64's exact-subnormal
        # range; the round-trip check must skip them, not false-alarm.
        x = np.full((2, 16), 1e-300)
        t = quantize(x, exponent_bits=None)
        assert sanitizer.bfp_failures == 0
        np.testing.assert_allclose(t.to_float(), x, rtol=0.1)

    def test_disabled_gate_skips_checks(self):
        assert bfp._SANITIZER is None
        t = quantize()
        bad = t.exponents.copy()
        bad[0, 0] = 900
        rebuild(t, exponents=bad)  # no sanitizer, no raise


class TestNonFiniteProvenance:
    def test_origin_recorded_not_raised(self, sanitizer):
        a = Tensor(np.array([0.0, 1.0]), requires_grad=True)
        with np.errstate(divide="ignore"):
            out = a.log()  # -inf at index 0: an origin
        assert not np.isfinite(out.data).all()
        records = sanitizer.nonfinite_records()
        assert len(records) == 1
        record = records[0]
        assert record.op == "log"
        assert record.nonfinite == 1
        assert record.first_index == (0,)

    def test_propagation_not_double_counted(self, sanitizer):
        a = Tensor(np.array([0.0, 1.0]), requires_grad=True)
        with np.errstate(divide="ignore"):
            bad = a.log()
            _ = bad * 2.0  # parents already non-finite: not an origin
        assert len(sanitizer.nonfinite_records()) == 1

    def test_finite_ops_record_nothing(self, sanitizer):
        a = Tensor(np.ones(4), requires_grad=True)
        (a * 2.0 + 1.0).sum().backward()
        assert sanitizer.nonfinite_records() == []
        assert sanitizer.ops_checked > 0

    def test_record_log_is_bounded(self):
        san = sanitize.install(max_records=4)
        try:
            a = Tensor(np.array([0.0]), requires_grad=True)
            with np.errstate(divide="ignore"):
                for _ in range(10):
                    a.log()
            assert len(san.nonfinite_records()) == 4
        finally:
            sanitize.uninstall()


class TestInstall:
    def test_install_uninstall_flips_both_gates(self):
        from repro.nn import tensor as tensor_module

        san = sanitize.install()
        assert bfp._SANITIZER is san
        assert tensor_module._SANITIZER is san
        assert sanitize.current() is san
        sanitize.uninstall()
        assert bfp._SANITIZER is None
        assert tensor_module._SANITIZER is None
        assert sanitize.current() is None
