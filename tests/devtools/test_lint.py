"""Per-rule true-positive / true-negative / suppression tests for repro-lint.

Every rule gets at least one test proving it catches its bug class, one
proving it stays quiet on the compliant idiom, and one proving inline
suppressions work.  The final test is the acceptance gate: the actual
repo lints clean against the committed (empty) baseline.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.devtools.lint import (
    Baseline,
    Finding,
    default_rules,
    lint_paths,
    lint_source,
)
from repro.devtools.lint.rules import (
    BroadExceptRule,
    DtypePromotionRule,
    GateDisciplineRule,
    LockDisciplineRule,
    SeededRandomRule,
    VersionBumpRule,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

HOT_PATH = "src/repro/nn/example.py"       # in RL001/RL003 scope
SERVING_PATH = "src/repro/serving/example.py"  # in RL004/RL006 broad scope


def run(rule, source, path=HOT_PATH):
    return lint_source(path, textwrap.dedent(source), [rule()])


def codes(findings):
    return [f.rule for f in findings]


# --------------------------------------------------------------------------- #
# RL001 dtype promotion
# --------------------------------------------------------------------------- #
class TestDtypePromotion:
    def test_flags_bare_constructor(self):
        findings = run(DtypePromotionRule, """
            import numpy as np
            def f(n):
                return np.zeros((n, n))
        """)
        assert codes(findings) == ["RL001"]
        assert "dtype" in findings[0].message

    def test_quiet_with_dtype_keyword_or_positional(self):
        findings = run(DtypePromotionRule, """
            import numpy as np
            def f(n):
                a = np.zeros((n, n), dtype=np.float32)
                b = np.full((n,), 1.0, np.float32)
                c = np.zeros_like(a)
                d = np.arange(n)  # integer range: no promotion hazard
                return a, b, c, d
        """)
        assert findings == []

    def test_flags_float_arange(self):
        findings = run(DtypePromotionRule, """
            import numpy as np
            def f():
                return np.arange(0.0, 1.0, 0.1)
        """)
        assert codes(findings) == ["RL001"]

    def test_out_of_scope_path_is_quiet(self):
        findings = run(DtypePromotionRule, """
            import numpy as np
            def f(n):
                return np.zeros((n, n))
        """, path="src/repro/analysis/report.py")
        assert findings == []

    def test_inline_suppression(self):
        findings = run(DtypePromotionRule, """
            import numpy as np
            def f(n):
                return np.zeros((n, n))  # repro-lint: disable=RL001 -- test
        """)
        assert findings == []


# --------------------------------------------------------------------------- #
# RL002 version bump
# --------------------------------------------------------------------------- #
class TestVersionBump:
    def test_flags_data_store_without_bump(self):
        findings = run(VersionBumpRule, """
            def write(param, value):
                param.data = value
        """)
        assert codes(findings) == ["RL002"]
        assert "bump" in findings[0].message

    def test_flags_subscript_and_augmented_stores(self):
        findings = run(VersionBumpRule, """
            def write(param, value):
                param.data[...] = value

            def decay(param, factor):
                param.data *= factor
        """)
        assert codes(findings) == ["RL002", "RL002"]

    def test_quiet_with_bump_version_call(self):
        findings = run(VersionBumpRule, """
            def write(param, value):
                param.data = value
                param.bump_version()
        """)
        assert findings == []

    def test_quiet_with_getattr_idiom(self):
        findings = run(VersionBumpRule, """
            def write(param, value):
                param.data = value
                bump = getattr(param, "bump_version", None)
                if bump is not None:
                    bump()
        """)
        assert findings == []

    def test_quiet_on_self_data(self):
        findings = run(VersionBumpRule, """
            class Tensor:
                def load(self, value):
                    self.data = value
        """)
        assert findings == []

    def test_disable_next_line_suppression(self):
        findings = run(VersionBumpRule, """
            def write(param, value):
                # repro-lint: disable-next-line=RL002 -- test
                param.data = value
        """)
        assert findings == []


# --------------------------------------------------------------------------- #
# RL003 gate discipline
# --------------------------------------------------------------------------- #
class TestGateDiscipline:
    def test_flags_ungated_profiler_record(self):
        findings = run(GateDisciplineRule, """
            def hot(profiler_module):
                profiler = profiler_module.current
                profiler.record("kernel", 0.1, 100)
        """)
        assert codes(findings) == ["RL003"]
        assert "gate" in findings[0].message

    def test_quiet_behind_is_not_none(self):
        findings = run(GateDisciplineRule, """
            def hot():
                profiler = _PROFILER
                if profiler is not None:
                    profiler.record("kernel", 0.1, 100)
        """)
        assert findings == []

    def test_quiet_with_early_return_gate(self):
        findings = run(GateDisciplineRule, """
            def hot(self):
                tracer = self._tracer
                if tracer is None:
                    return
                tracer.add_event("span", 0.0, 1.0)
        """)
        assert findings == []

    def test_quiet_when_receiver_is_parameter(self):
        findings = run(GateDisciplineRule, """
            def report(profiler):
                profiler.record("kernel", 0.1, 100)
        """)
        assert findings == []

    def test_file_suppression(self):
        findings = run(GateDisciplineRule, """
            # repro-lint: disable-file=RL003 -- metrics endpoint module
            def hot():
                profiler = _PROFILER
                profiler.record("kernel", 0.1, 100)
        """)
        assert findings == []


# --------------------------------------------------------------------------- #
# RL004 lock discipline
# --------------------------------------------------------------------------- #
LOCKED_CLASS = """
    import threading

    class Server:
        def __init__(self):
            self._lock = threading.Lock()
            self._completed = 0  # guarded-by: _lock

        def ok(self):
            with self._lock:
                return self._completed

        def also_ok_locked(self):
            return self._completed
"""


class TestLockDiscipline:
    def test_flags_unlocked_access(self):
        findings = run(LockDisciplineRule, """
            import threading

            class Server:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._completed = 0  # guarded-by: _lock

                def racy(self):
                    return self._completed
        """, path=SERVING_PATH)
        assert codes(findings) == ["RL004"]
        assert "_lock" in findings[0].message

    def test_quiet_under_with_and_locked_suffix(self):
        findings = run(LockDisciplineRule, LOCKED_CLASS, path=SERVING_PATH)
        assert findings == []

    def test_nested_function_not_credited_with_enclosing_with(self):
        findings = run(LockDisciplineRule, """
            import threading

            class Server:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._completed = 0  # guarded-by: _lock

                def schedule(self):
                    with self._lock:
                        def callback():
                            return self._completed  # runs after release
                        return callback
        """, path=SERVING_PATH)
        assert codes(findings) == ["RL004"]

    def test_init_and_unannotated_attrs_exempt(self):
        findings = run(LockDisciplineRule, """
            import threading

            class Server:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._completed = 0  # guarded-by: _lock
                    self._completed = self._completed + 0
                    self._free = 0

                def read_free(self):
                    return self._free
        """, path=SERVING_PATH)
        assert findings == []

    def test_inline_suppression(self):
        findings = run(LockDisciplineRule, """
            import threading

            class Server:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._completed = 0  # guarded-by: _lock

                def racy(self):
                    return self._completed  # repro-lint: disable=RL004 -- test
        """, path=SERVING_PATH)
        assert findings == []


# --------------------------------------------------------------------------- #
# RL005 seeded randomness
# --------------------------------------------------------------------------- #
class TestSeededRandom:
    def test_flags_unseeded_default_rng(self):
        findings = run(SeededRandomRule, """
            import numpy as np
            def init():
                return np.random.default_rng()
        """)
        assert codes(findings) == ["RL005"]

    def test_flags_legacy_and_stdlib_apis(self):
        findings = run(SeededRandomRule, """
            import random
            import numpy as np
            def noisy():
                a = np.random.rand(3)
                b = random.random()
                return a, b
        """)
        assert codes(findings) == ["RL005", "RL005"]

    def test_quiet_with_seeded_rng(self):
        findings = run(SeededRandomRule, """
            import numpy as np
            def init(seed):
                rng = np.random.default_rng(seed)
                return rng.standard_normal(3)
        """)
        assert findings == []

    def test_quiet_outside_src(self):
        findings = run(SeededRandomRule, """
            import numpy as np
            def helper():
                return np.random.default_rng()
        """, path="tests/nn/test_example.py")
        assert findings == []

    def test_inline_suppression(self):
        findings = run(SeededRandomRule, """
            import numpy as np
            def init(rng=None):
                return rng or np.random.default_rng()  # repro-lint: disable=RL005 -- test
        """)
        assert findings == []


# --------------------------------------------------------------------------- #
# RL006 broad except
# --------------------------------------------------------------------------- #
class TestBroadExcept:
    def test_flags_bare_except_anywhere_in_src(self):
        findings = run(BroadExceptRule, """
            def load(path):
                try:
                    return open(path)
                except:
                    return None
        """, path="src/repro/data/loader.py")
        assert codes(findings) == ["RL006"]

    def test_flags_broad_except_in_serving(self):
        findings = run(BroadExceptRule, """
            def worker_loop(queue):
                while True:
                    try:
                        queue.get()
                    except Exception:
                        pass
        """, path=SERVING_PATH)
        assert codes(findings) == ["RL006"]

    def test_quiet_outside_broad_scope(self):
        findings = run(BroadExceptRule, """
            def probe():
                try:
                    return 1
                except Exception:
                    return None
        """, path="src/repro/analysis/report.py")
        assert findings == []

    def test_quiet_with_reraise(self):
        findings = run(BroadExceptRule, """
            def worker_loop(queue):
                try:
                    queue.get()
                except Exception as exc:
                    raise RuntimeError("worker died") from exc
        """, path=SERVING_PATH)
        assert findings == []

    def test_quiet_with_noqa_justification(self):
        findings = run(BroadExceptRule, """
            def supervise(run):
                try:
                    run()
                except Exception as exc:  # noqa: BLE001 - supervision boundary
                    log(exc)
        """, path=SERVING_PATH)
        assert findings == []


# --------------------------------------------------------------------------- #
# Engine mechanics: syntax errors, suppressions, baseline
# --------------------------------------------------------------------------- #
class TestEngine:
    def test_syntax_error_reports_rl000(self):
        findings = lint_source("src/repro/nn/bad.py", "def broken(:\n", default_rules())
        assert codes(findings) == ["RL000"]

    def test_disable_all_on_line(self):
        source = textwrap.dedent("""
            import numpy as np
            def f(n):
                return np.zeros((n, n))  # repro-lint: disable=all -- test
        """)
        assert lint_source(HOT_PATH, source, default_rules()) == []

    def test_fingerprint_is_line_number_independent(self):
        a = Finding("RL001", "src/x.py", 10, 4, "m", snippet="  np.zeros(n)")
        b = Finding("RL001", "src/x.py", 99, 4, "m", snippet="np.zeros(n)  ")
        assert a.fingerprint == b.fingerprint

    def test_baseline_masks_then_flags_regressions(self, tmp_path):
        finding = Finding("RL001", "src/x.py", 10, 4, "m", snippet="np.zeros(n)")
        path = tmp_path / "baseline.json"
        Baseline().save(path, [finding])
        baseline = Baseline.load(path)

        new, baselined, stale = baseline.filter([finding])
        assert (new, len(baselined), stale) == ([], 1, [])

        # A second occurrence of the same fingerprint is a regression.
        new, baselined, stale = baseline.filter([finding, finding])
        assert len(new) == 1 and len(baselined) == 1

        # A fixed finding shows up as stale.
        new, baselined, stale = baseline.filter([])
        assert new == [] and stale == [finding.fingerprint]

    def test_baseline_file_shape(self, tmp_path):
        finding = Finding("RL001", "src/x.py", 10, 4, "m", snippet="np.zeros(n)")
        path = tmp_path / "baseline.json"
        Baseline().save(path, [finding, finding])
        data = json.loads(path.read_text())
        assert data["findings"] == {finding.fingerprint: 2}

    def test_lint_paths_walks_files(self, tmp_path):
        package = tmp_path / "src" / "repro" / "nn"
        package.mkdir(parents=True)
        (package / "mod.py").write_text(
            "import numpy as np\n\n\ndef f(n):\n    return np.zeros(n)\n")
        findings = lint_paths([Path("src")], tmp_path, default_rules())
        assert codes(findings) == ["RL001"]
        assert findings[0].path == "src/repro/nn/mod.py"


# --------------------------------------------------------------------------- #
# Acceptance: the actual repo is clean against the committed baseline
# --------------------------------------------------------------------------- #
def test_repo_lints_clean():
    findings = lint_paths(
        [Path("src"), Path("tests"), Path("benchmarks")],
        REPO_ROOT,
        default_rules(),
    )
    baseline = Baseline.load(REPO_ROOT / ".repro-lint-baseline.json")
    new, _baselined, stale = baseline.filter(findings)
    assert new == [], "new lint findings:\n" + "\n".join(f.render() for f in new)
    assert stale == [], f"stale baseline entries: {stale}"


def test_committed_baseline_is_empty():
    data = json.loads((REPO_ROOT / ".repro-lint-baseline.json").read_text())
    assert data["findings"] == {}
