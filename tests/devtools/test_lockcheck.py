"""Tests for the dynamic lock-order detector.

The key property: an ABBA deadlock is detected from a *single-threaded*
trace -- each acquisition order only has to occur once, on any thread, so
the detector fires deterministically without ever constructing the racy
interleaving.
"""

import threading

import pytest

from repro.devtools import lockcheck


@pytest.fixture()
def detector():
    """Install around the test, record-only; always restore threading.Lock."""
    lockcheck.reset()
    lockcheck.install(raise_inline=False)
    try:
        yield lockcheck
    finally:
        lockcheck.uninstall()
        lockcheck.reset()


def _abba(a, b):
    with a:
        with b:
            pass
    with b:
        with a:
            pass


class TestLockOrder:
    def test_abba_inversion_detected_single_threaded(self, detector):
        a = threading.Lock()
        b = threading.Lock()
        _abba(a, b)
        with pytest.raises(lockcheck.LockOrderError) as excinfo:
            detector.check()
        assert "inversion" in str(excinfo.value)

    def test_consistent_order_is_clean(self, detector):
        a = threading.Lock()
        b = threading.Lock()
        for _ in range(3):
            with a:
                with b:
                    pass
        detector.check()  # no raise
        assert len(detector.edges()) == 1

    def test_inline_raise_mode_fires_at_acquisition(self):
        lockcheck.reset()
        lockcheck.install(raise_inline=True)
        try:
            a = threading.Lock()
            b = threading.Lock()
            with a:
                with b:
                    pass
            with pytest.raises(lockcheck.LockOrderError):
                _abba(a, b)
        finally:
            lockcheck.uninstall()
            lockcheck.reset()

    def test_indirect_cycle_through_three_locks(self, detector):
        a = threading.Lock()
        b = threading.Lock()
        c = threading.Lock()
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with c:
            with a:  # closes the A -> B -> C -> A cycle
                pass
        with pytest.raises(lockcheck.LockOrderError):
            detector.check()

    def test_same_creation_site_locks_are_exempt(self, detector):
        # One lock per metric instance, all born on the same line: ordering
        # between peers of the same "role" carries no discipline signal.
        locks = [threading.Lock() for _ in range(2)]
        with locks[0]:
            with locks[1]:
                pass
        with locks[1]:
            with locks[0]:
                pass
        detector.check()  # no raise

    def test_cross_thread_orders_combine(self, detector):
        a = threading.Lock()
        b = threading.Lock()
        with a:
            with b:
                pass

        def reversed_order():
            with b:
                with a:
                    pass

        worker = threading.Thread(target=reversed_order)
        worker.start()
        worker.join()
        with pytest.raises(lockcheck.LockOrderError):
            detector.check()


class TestLockProtocol:
    def test_tracked_lock_is_protocol_complete(self, detector):
        lock = threading.Lock()
        assert lock.acquire() is True
        assert lock.locked()
        assert lock.acquire(False) is False  # non-blocking on a held lock
        lock.release()
        assert not lock.locked()
        assert lock.acquire(True, 0.01) is True
        lock.release()

    def test_queue_and_condition_work_on_tracked_locks(self, detector):
        import queue

        q = queue.Queue()
        q.put("x")
        assert q.get(timeout=1) == "x"

        cond = threading.Condition(threading.Lock())
        with cond:
            cond.notify_all()

    def test_uninstall_restores_real_lock(self):
        lockcheck.install()
        lockcheck.uninstall()
        assert isinstance(threading.Lock(), type(threading.Lock()))
        # The factory is the original C implementation again.
        assert threading.Lock is lockcheck._RealLock


class TestGuards:
    def test_guard_violation_without_lock(self, detector):
        lock = threading.Lock()
        state = {"count": 0}
        detector.register_guard(state, lock, "server counters")
        with lock:
            detector.record_access(state)  # owning thread: fine
        with pytest.raises(lockcheck.GuardViolation) as excinfo:
            detector.record_access(state)
        assert "server counters" in str(excinfo.value)

    def test_unregistered_object_is_noop(self, detector):
        detector.record_access({"free": 1})  # no raise

    def test_assert_owned(self, detector):
        lock = threading.Lock()
        with pytest.raises(lockcheck.GuardViolation):
            detector.assert_owned(lock)
        with lock:
            detector.assert_owned(lock)  # no raise
