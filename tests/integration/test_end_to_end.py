"""Integration tests spanning the whole stack: data -> model -> quantized training ->
precision adaptation -> hardware cost, mirroring how the benchmarks use the library."""

import numpy as np
import pytest

from repro import nn
from repro.core.bfp import BFPConfig
from repro.data import DataLoader, SyntheticImageDataset
from repro.hardware import iso_area_systems, resnet18_workload
from repro.hardware.performance import fast_adaptive_iteration_cost, iteration_cost
from repro.models import MLP, resnet20
from repro.training import (
    ClassificationTrainer,
    FASTSchedule,
    FixedBFPSchedule,
    FP32Schedule,
    FormatSchedule,
    TemporalSchedule,
    iterations_to_target,
    normalize_entries,
    time_to_accuracy,
)


@pytest.fixture(scope="module")
def vision_data():
    dataset = SyntheticImageDataset(num_samples=160, num_classes=4, image_size=8,
                                    noise=0.5, seed=11)
    return dataset.split(0.75)


def train_mlp(schedule, data, epochs=3, seed=0, lr=0.1):
    train, validation = data
    model = MLP(3 * 8 * 8, [32], 4, rng=np.random.default_rng(seed))
    optimizer = nn.SGD(model.parameters(), lr=lr, momentum=0.9)
    trainer = ClassificationTrainer(model, optimizer, schedule)
    return trainer.fit(DataLoader(train, 24, seed=seed), DataLoader(validation, 64, shuffle=False),
                       epochs=epochs)


class TestFormatComparison:
    """A miniature Table II: different formats, same task, comparable accuracy ordering."""

    def test_high_precision_formats_match_fp32(self, vision_data):
        fp32 = train_mlp(FP32Schedule(), vision_data)
        bfloat16 = train_mlp(FormatSchedule("bfloat16"), vision_data)
        high_bfp = train_mlp(FixedBFPSchedule(4), vision_data)
        assert fp32.best_val_metric > 60.0
        assert bfloat16.best_val_metric >= fp32.best_val_metric - 15.0
        assert high_bfp.best_val_metric >= fp32.best_val_metric - 15.0

    def test_fast_adaptive_close_to_fp32(self, vision_data):
        # At this miniature scale the whole run sits in FAST's low-precision
        # early phase, so allow a wider accuracy gap than the paper's <0.1%
        # (which is measured after 60 ImageNet epochs with the high-precision
        # late phase included).
        fp32 = train_mlp(FP32Schedule(), vision_data)
        fast = train_mlp(FASTSchedule(evaluation_interval=4), vision_data)
        assert fast.best_val_metric >= 70.0
        assert fast.best_val_metric >= fp32.best_val_metric - 25.0


class TestStochasticRoundingMatters:
    """Section III-C: at 2-bit mantissas, SR for gradients is what keeps training alive."""

    def test_low_bfp_with_sr_learns_better_than_without(self, vision_data):
        with_sr = train_mlp(FixedBFPSchedule(2, stochastic_gradients=True, seed=1), vision_data,
                            epochs=4)
        without_sr = train_mlp(FixedBFPSchedule(2, stochastic_gradients=False, seed=1), vision_data,
                               epochs=4)
        assert with_sr.best_val_metric >= without_sr.best_val_metric - 5.0


class TestFASTPrecisionAdaptation:
    """Figure 17: the FAST policy's decisions become higher precision over time."""

    def test_precision_fraction_grows(self, vision_data):
        train, validation = vision_data
        model = resnet20(num_classes=4, width=4, rng=np.random.default_rng(0))
        optimizer = nn.SGD(model.parameters(), lr=0.05, momentum=0.9)
        schedule = FASTSchedule(evaluation_interval=2)
        trainer = ClassificationTrainer(model, optimizer, schedule)
        trainer.fit(DataLoader(train, 40, seed=0), epochs=2)
        history = schedule.setting_history()
        assert history
        iterations = sorted({key[1] for key in history})
        early_cut = iterations[len(iterations) // 3]
        late_cut = iterations[2 * len(iterations) // 3]
        early_bits = [np.mean(bits) for (layer, it), bits in history.items() if it <= early_cut]
        late_bits = [np.mean(bits) for (layer, it), bits in history.items() if it >= late_cut]
        assert np.mean(late_bits) >= np.mean(early_bits)

    def test_measured_trajectory_feeds_hardware_model(self, vision_data):
        train, _ = vision_data
        model = MLP(3 * 8 * 8, [32], 4, rng=np.random.default_rng(0))
        optimizer = nn.SGD(model.parameters(), lr=0.1)
        schedule = FASTSchedule(evaluation_interval=2)
        trainer = ClassificationTrainer(model, optimizer, schedule)
        result = trainer.fit(DataLoader(train, 40, seed=0), epochs=2)
        trajectory = [
            [(entry["weight"] or 2, entry["activation"] or 2, entry["gradient"] or 2)
             for entry in snapshot]
            for snapshot in result.precision_history
        ]
        systems = iso_area_systems()
        workload = resnet18_workload(batch=32)
        cost = fast_adaptive_iteration_cost(workload, systems["fast_adaptive"],
                                            precision_trajectory=trajectory)
        low = iteration_cost(workload, systems["low_bfp"], (2, 2, 2))
        high = iteration_cost(workload, systems["high_bfp"], (4, 4, 4))
        assert low.cycles <= cost.cycles <= high.cycles


class TestTemporalSchedulesEndToEnd:
    """Figure 9 (left) at miniature scale: low-to-high at least matches high-to-low."""

    def test_low_to_high_vs_high_to_low(self, vision_data):
        scores = {}
        for low_to_high in (True, False):
            results = [train_mlp(TemporalSchedule(low_to_high=low_to_high, seed=seed),
                                 vision_data, epochs=4, seed=seed)
                       for seed in (0, 1)]
            scores[low_to_high] = np.mean([result.best_val_metric for result in results])
        assert scores[True] >= scores[False] - 10.0


class TestTTAPipeline:
    """Figure 19/20 pipeline: accuracy curves + hardware model -> normalized TTA."""

    def test_normalized_tta_table(self, vision_data):
        fp32 = train_mlp(FP32Schedule(), vision_data, epochs=3)
        fast = train_mlp(FASTSchedule(evaluation_interval=4), vision_data, epochs=3)
        target = min(fp32.best_val_metric, fast.best_val_metric) - 5.0
        systems = iso_area_systems()
        workload = resnet18_workload(batch=32)
        costs = {
            "fp32": iteration_cost(workload, systems["fp32"]),
            "fast_adaptive": fast_adaptive_iteration_cost(workload, systems["fast_adaptive"]),
        }
        entries = [
            time_to_accuracy("fp32", fp32.val_metric_history, target,
                             costs["fp32"].seconds, systems["fp32"].power_w),
            time_to_accuracy("fast_adaptive", fast.val_metric_history, target,
                             costs["fast_adaptive"].seconds, systems["fast_adaptive"].power_w),
        ]
        table = normalize_entries(entries, "fast_adaptive")
        assert table["fast_adaptive"]["time"] == pytest.approx(1.0)
        assert table["fp32"]["time"] is not None
        # FP32 needs a similar number of iterations but each costs ~9x more.
        assert table["fp32"]["time"] > 2.0

    def test_iterations_to_target_consistency(self, vision_data):
        result = train_mlp(FP32Schedule(), vision_data, epochs=3)
        iterations = iterations_to_target(result.val_metric_history, result.best_val_metric)
        assert iterations is not None
        assert iterations <= len(result.val_metric_history)
