"""Tests for the fixed point formats and uniform quantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats.fixed import BinaryFormat, FixedPointFormat, INT8Format, INT12Format, uniform_quantize


class TestUniformQuantize:
    def test_max_value_exactly_representable(self, rng):
        values = rng.standard_normal(100)
        quantized = uniform_quantize(values, 8)
        index = np.argmax(np.abs(values))
        assert quantized[index] == pytest.approx(values[index])

    def test_error_bounded_by_half_step(self, rng):
        values = rng.standard_normal(500)
        for bits in (4, 8, 12):
            quantized = uniform_quantize(values, bits)
            step = np.abs(values).max() / ((1 << (bits - 1)) - 1)
            assert np.abs(quantized - values).max() <= step / 2 + 1e-12

    def test_more_bits_less_error(self, rng):
        values = rng.standard_normal(500)
        errors = [np.abs(uniform_quantize(values, bits) - values).mean() for bits in (4, 8, 12, 16)]
        assert all(a >= b for a, b in zip(errors, errors[1:]))

    def test_levels_are_discrete(self, rng):
        values = rng.standard_normal(200)
        quantized = uniform_quantize(values, 4)
        step = np.abs(values).max() / 7
        levels = np.round(quantized / step)
        np.testing.assert_allclose(quantized, levels * step, atol=1e-12)
        assert len(np.unique(levels)) <= 15

    def test_zero_tensor(self):
        np.testing.assert_array_equal(uniform_quantize(np.zeros(10), 8), np.zeros(10))

    def test_stochastic_variant_unbiased(self):
        rng = np.random.default_rng(0)
        values = np.full(20000, 0.4)
        values[0] = 1.0  # sets the scale
        quantized = uniform_quantize(values, 3, rng=rng, stochastic=True)
        assert abs(quantized[1:].mean() - 0.4) < 0.01

    def test_too_few_bits_rejected(self):
        with pytest.raises(ValueError):
            uniform_quantize(np.ones(4), 1)


class TestFixedPointFormats:
    def test_int8_int12_layout(self):
        assert INT8Format().total_bits == 8
        assert INT8Format().mantissa_bits == 7
        assert INT12Format().total_bits == 12
        assert INT12Format().bits_per_value == 12

    def test_int12_more_accurate_than_int8(self, rng):
        values = rng.standard_normal(1000)
        error8 = np.abs(INT8Format().quantize(values) - values).mean()
        error12 = np.abs(INT12Format().quantize(values) - values).mean()
        assert error12 < error8

    def test_custom_width(self):
        fmt = FixedPointFormat(6)
        assert fmt.name == "int6"
        assert fmt.mantissa_bits == 5

    def test_stochastic_gradients_flag(self, rng):
        fmt = FixedPointFormat(4, stochastic_gradients=True)
        values = rng.standard_normal(100)
        a = fmt.quantize(values, kind="gradient", rng=np.random.default_rng(0))
        b = fmt.quantize(values, kind="gradient", rng=np.random.default_rng(1))
        assert not np.allclose(a, b)

    def test_outliers_compress_the_grid(self, rng):
        """Per-tensor scaling means one outlier degrades everyone else (INT weakness)."""
        values = rng.standard_normal(256)
        with_outlier = values.copy()
        with_outlier[0] = 100.0
        error_plain = np.abs(INT8Format().quantize(values) - values)[1:].mean()
        error_outlier = np.abs(INT8Format().quantize(with_outlier) - with_outlier)[1:].mean()
        assert error_outlier > error_plain * 5


class TestBinaryFormat:
    def test_two_levels(self, rng):
        values = rng.standard_normal(100)
        quantized = BinaryFormat().quantize(values)
        assert len(np.unique(quantized)) == 2

    def test_sign_preserved(self, rng):
        values = rng.standard_normal(100)
        quantized = BinaryFormat().quantize(values)
        assert np.all(np.sign(quantized) == np.where(values >= 0, 1.0, -1.0))

    def test_one_bit(self):
        assert BinaryFormat().bits_per_value == 1.0


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=1, max_size=50),
       st.sampled_from([4, 8, 12]))
def test_property_uniform_quantize_within_range(values, bits):
    array = np.array(values)
    quantized = uniform_quantize(array, bits)
    assert np.all(np.abs(quantized) <= np.abs(array).max() + 1e-9)
