"""Tests for the related-work formats (Flexpoint, tile-based BFP)."""

import numpy as np
import pytest

from repro.formats import FlexpointFormat, TileBFPFormat, get_format
from repro.formats.blockfp import HighBFPFormat


class TestFlexpoint:
    def test_registered(self):
        assert isinstance(get_format("flexpoint"), FlexpointFormat)

    def test_shape_preserved(self, rng):
        values = rng.standard_normal((3, 5, 7))
        quantized = FlexpointFormat().quantize(values)
        assert quantized.shape == values.shape

    def test_high_precision_on_narrow_tensors(self, rng):
        values = rng.uniform(0.5, 1.5, size=512)
        quantized = FlexpointFormat().quantize(values)
        assert np.abs(quantized - values).max() / np.abs(values).max() < 2 ** -12

    def test_tensor_wide_exponent_hurts_wide_dynamic_range(self, rng):
        """The weakness FAST exploits: small values vanish next to a large outlier."""
        from repro.formats import BFPFormat

        values = rng.uniform(0.5, 1.5, size=512) * 1e-5
        values[0] = 100.0
        flexpoint_error = np.abs(FlexpointFormat(mantissa_bits=8).quantize(values) - values)[1:].mean()
        grouped = BFPFormat(mantissa_bits=8, group_size=16, exponent_bits=8)
        group_error = np.abs(grouped.quantize(values) - values)[1:].mean()
        # Per-group exponents adapt to the small values; a tensor-wide exponent
        # (same mantissa width) cannot.
        assert group_error < flexpoint_error

    def test_gradient_quantization_is_stochastic(self, rng):
        values = rng.standard_normal(64)
        fmt = FlexpointFormat(mantissa_bits=4)
        a = fmt.quantize(values, kind="gradient", rng=np.random.default_rng(0))
        b = fmt.quantize(values, kind="gradient", rng=np.random.default_rng(1))
        assert not np.allclose(a, b)

    def test_bits_per_value(self):
        assert FlexpointFormat(mantissa_bits=16).bits_per_value == 17.0


class TestTileBFP:
    def test_registered(self):
        assert isinstance(get_format("tile_bfp"), TileBFPFormat)

    def test_shape_preserved_with_padding(self, rng):
        values = rng.standard_normal((2, 3, 30, 50))  # not a multiple of the 24-wide tile
        quantized = TileBFPFormat().quantize(values)
        assert quantized.shape == values.shape

    def test_one_dimensional_fallback(self, rng):
        values = rng.standard_normal(100)
        assert TileBFPFormat().quantize(values).shape == (100,)

    def test_error_bounded_by_mantissa(self, rng):
        values = rng.standard_normal((48, 48))
        quantized = TileBFPFormat(mantissa_bits=12).quantize(values)
        assert np.abs(quantized - values).max() <= np.abs(values).max() * 2 ** -11 + 1e-12

    def test_quantization_is_local_to_tiles(self, rng):
        """A large value in one tile must not degrade a different tile."""
        values = rng.uniform(0.5, 1.5, size=(48, 48))
        tainted = values.copy()
        tainted[0, 0] = 1e6
        fmt = TileBFPFormat(mantissa_bits=6, tile=24)
        clean_far_tile = fmt.quantize(values)[24:, 24:]
        tainted_far_tile = fmt.quantize(tainted)[24:, 24:]
        np.testing.assert_allclose(clean_far_tile, tainted_far_tile)

    def test_large_tiles_need_wide_mantissas(self, rng):
        """The Section II-A argument: at group size 576 a narrow mantissa collapses."""
        values = rng.standard_normal((48, 48)) * np.exp(rng.normal(0, 2, size=(48, 48)))
        wide = np.abs(TileBFPFormat(mantissa_bits=12).quantize(values) - values).mean()
        narrow = np.abs(TileBFPFormat(mantissa_bits=4).quantize(values) - values).mean()
        group16 = np.abs(HighBFPFormat().quantize(values) - values).mean()
        assert narrow > wide
        assert group16 < narrow  # g=16/m=4 beats g=576/m=4

    def test_group_size_property(self):
        assert TileBFPFormat(tile=24).group_size == 576
