"""Tests for the scalar floating point formats (FP32/FP16/bfloat16/TF32/HFP8)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats.floating import (
    BFloat16Format,
    FP16Format,
    FP32Format,
    HFP8Format,
    NvidiaMixedPrecisionFormat,
    TensorFloat32Format,
    float_quantize,
)


class TestFloatQuantize:
    def test_exactly_representable_values_unchanged(self):
        values = np.array([1.0, 0.5, -2.0, 1.5, 0.0])
        np.testing.assert_array_equal(float_quantize(values, 5, 10), values)

    def test_mantissa_rounding(self):
        # 1 + 2^-12 is not representable with a 10-bit mantissa; it rounds to 1.
        value = np.array([1.0 + 2.0 ** -12])
        assert float_quantize(value, 5, 10)[0] == 1.0
        # ...but survives with a 12-bit mantissa.
        assert float_quantize(value, 5, 12)[0] == value[0]

    def test_saturation_at_max_value(self):
        # FP16 max normal is 65504.
        assert float_quantize(np.array([1e6]), 5, 10)[0] == pytest.approx(65504.0)
        assert float_quantize(np.array([-1e6]), 5, 10)[0] == pytest.approx(-65504.0)

    def test_relative_error_bound(self, rng):
        values = rng.standard_normal(1000)
        for exponent_bits, mantissa_bits in [(8, 7), (5, 10), (8, 10)]:
            quantized = float_quantize(values, exponent_bits, mantissa_bits)
            relative = np.abs(quantized - values) / np.abs(values)
            assert relative.max() <= 2.0 ** (-mantissa_bits) + 1e-12

    def test_truncate_mode_never_increases_magnitude(self, rng):
        values = rng.standard_normal(200)
        quantized = float_quantize(values, 8, 5, rounding="truncate")
        assert np.all(np.abs(quantized) <= np.abs(values) + 1e-15)

    def test_zero_preserved(self):
        assert float_quantize(np.array([0.0]), 4, 3)[0] == 0.0

    def test_small_values_use_subnormal_grid(self):
        # Smallest FP16 subnormal is 2^-24; half of that rounds to zero.
        tiny = np.array([2.0 ** -25, 2.0 ** -24])
        quantized = float_quantize(tiny, 5, 10)
        assert quantized[1] == pytest.approx(2.0 ** -24)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            float_quantize(np.zeros(1), 0, 3)
        with pytest.raises(ValueError):
            float_quantize(np.zeros(1), 5, -1)


class TestNamedFormats:
    def test_fp32_is_lossless_for_float32_values(self, rng):
        values = rng.standard_normal(100).astype(np.float32).astype(np.float64)
        np.testing.assert_array_equal(FP32Format().quantize(values), values)

    def test_bit_layouts_match_figure_2(self):
        assert (FP16Format.exponent_bits, FP16Format.mantissa_bits) == (5, 10)
        assert (BFloat16Format.exponent_bits, BFloat16Format.mantissa_bits) == (8, 7)
        assert (TensorFloat32Format.exponent_bits, TensorFloat32Format.mantissa_bits) == (8, 10)
        assert (HFP8Format.exponent_bits, HFP8Format.mantissa_bits) == (4, 3)

    def test_bfloat16_preserves_fp32_dynamic_range(self):
        values = np.array([1e-30, 1e30])
        quantized = BFloat16Format().quantize(values)
        assert quantized[0] > 0
        assert np.isfinite(quantized[1])
        # FP16 saturates the same values.
        fp16 = FP16Format().quantize(values)
        assert fp16[1] == pytest.approx(65504.0)

    def test_hfp8_uses_wider_exponent_for_gradients(self):
        values = np.array([3e-5])
        forward = HFP8Format().quantize(values, kind="activation")
        backward = HFP8Format().quantize(values, kind="gradient")
        # The 1-4-3 forward format flushes this to its small subnormal grid
        # much more coarsely than the 1-5-2 backward format.
        assert abs(backward[0] - values[0]) <= abs(forward[0] - values[0])

    def test_hfp8_forward_has_more_mantissa_precision(self, rng):
        values = rng.uniform(0.5, 2.0, size=1000)
        forward_error = np.abs(HFP8Format().quantize(values, kind="weight") - values).mean()
        backward_error = np.abs(HFP8Format().quantize(values, kind="gradient") - values).mean()
        assert forward_error < backward_error

    def test_nvidia_mp_quantizes_like_fp16(self, rng):
        values = rng.standard_normal(100)
        np.testing.assert_allclose(NvidiaMixedPrecisionFormat().quantize(values),
                                   FP16Format().quantize(values))

    def test_bits_per_value(self):
        assert FP16Format().bits_per_value == 16
        assert BFloat16Format().bits_per_value == 16
        assert HFP8Format().bits_per_value == 8

    def test_describe_mentions_fields(self):
        assert "e=8" in BFloat16Format().describe()
        assert "m=7" in BFloat16Format().describe()


@settings(max_examples=50, deadline=None)
@given(st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
       st.sampled_from([(8, 7), (5, 10), (4, 3), (5, 2)]))
def test_property_float_quantize_idempotent(value, layout):
    exponent_bits, mantissa_bits = layout
    once = float_quantize(np.array([value]), exponent_bits, mantissa_bits)
    twice = float_quantize(once, exponent_bits, mantissa_bits)
    np.testing.assert_array_equal(once, twice)
