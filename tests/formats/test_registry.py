"""Tests for the number-format registry."""

import numpy as np
import pytest

from repro.formats import registry
from repro.formats.base import NumberFormat
from repro.formats.registry import TABLE2_FORMATS, available_formats, get_format, register_format


class TestGetFormat:
    def test_all_table2_formats_resolve(self):
        for name in TABLE2_FORMATS:
            fmt = get_format(name)
            assert isinstance(fmt, NumberFormat)
            assert fmt.name == name

    def test_each_call_returns_fresh_instance(self):
        assert get_format("int8") is not get_format("int8")

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown number format"):
            get_format("posit16")

    def test_parametric_bfp_names(self):
        fmt = get_format("bfp_e3_m4_g8")
        assert fmt.exponent_bits == 3
        assert fmt.mantissa_bits == 4
        assert fmt.group_size == 8

    def test_malformed_bfp_name_raises(self):
        with pytest.raises(KeyError):
            get_format("bfp_x3")

    def test_kwargs_forwarded(self):
        fmt = get_format("low_bfp", stochastic_gradients=False)
        assert fmt.stochastic_gradients is False

    def test_quantization_runs_for_every_registered_format(self, rng):
        values = rng.standard_normal((2, 32))
        for name in available_formats():
            quantized = get_format(name).quantize(values, kind="weight")
            assert quantized.shape == values.shape
            assert np.all(np.isfinite(quantized))


class TestRegisterFormat:
    def test_register_and_retrieve(self):
        class MockFormat(NumberFormat):
            name = "mock_format"

            def quantize(self, x, kind="activation", rng=None):
                return np.asarray(x)

        register_format("mock_format", MockFormat)
        try:
            assert isinstance(get_format("mock_format"), MockFormat)
        finally:
            registry._REGISTRY.pop("mock_format", None)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_format("fp32", lambda: None)

    def test_table2_has_expected_columns(self):
        assert "fp32" in TABLE2_FORMATS
        assert "msfp12" in TABLE2_FORMATS
        assert len(TABLE2_FORMATS) == 10
