"""Tests for the block floating point formats (LowBFP/MidBFP/HighBFP/MSFP-12)."""

import numpy as np
import pytest

from repro.core.bfp import bfp_quantize
from repro.formats.blockfp import BFPFormat, HighBFPFormat, LowBFPFormat, MidBFPFormat, MSFP12Format


class TestNamedBFPFormats:
    def test_paper_configurations(self):
        assert (LowBFPFormat().exponent_bits, LowBFPFormat().mantissa_bits) == (3, 2)
        assert (MidBFPFormat().exponent_bits, MidBFPFormat().mantissa_bits) == (3, 3)
        assert (HighBFPFormat().exponent_bits, HighBFPFormat().mantissa_bits) == (3, 4)
        assert (MSFP12Format().exponent_bits, MSFP12Format().mantissa_bits) == (8, 3)
        for fmt in (LowBFPFormat(), MidBFPFormat(), HighBFPFormat(), MSFP12Format()):
            assert fmt.group_size == 16

    def test_accuracy_ordering_low_mid_high(self, rng):
        values = rng.standard_normal((8, 64))
        errors = {
            "low": np.abs(LowBFPFormat().quantize(values) - values).mean(),
            "mid": np.abs(MidBFPFormat().quantize(values) - values).mean(),
            "high": np.abs(HighBFPFormat().quantize(values) - values).mean(),
        }
        assert errors["low"] > errors["mid"] > errors["high"]

    def test_weight_activation_quantization_is_deterministic(self, rng):
        values = rng.standard_normal((4, 32))
        fmt = HighBFPFormat()
        a = fmt.quantize(values, kind="weight")
        b = fmt.quantize(values, kind="weight")
        np.testing.assert_array_equal(a, b)

    def test_gradient_quantization_is_stochastic(self, rng):
        values = rng.standard_normal((4, 32))
        fmt = LowBFPFormat(stochastic_gradients=True)
        a = fmt.quantize(values, kind="gradient", rng=np.random.default_rng(0))
        b = fmt.quantize(values, kind="gradient", rng=np.random.default_rng(1))
        assert not np.allclose(a, b)

    def test_msfp12_uses_nearest_rounding_everywhere(self, rng):
        values = rng.standard_normal((4, 32))
        fmt = MSFP12Format()
        a = fmt.quantize(values, kind="gradient", rng=np.random.default_rng(0))
        b = fmt.quantize(values, kind="gradient", rng=np.random.default_rng(1))
        np.testing.assert_array_equal(a, b)

    def test_matches_core_bfp_quantize(self, rng):
        values = rng.standard_normal((2, 32))
        fmt = HighBFPFormat()
        np.testing.assert_allclose(
            fmt.quantize(values, kind="weight"),
            bfp_quantize(values, mantissa_bits=4, group_size=16, exponent_bits=3),
        )

    def test_bits_per_value(self):
        assert LowBFPFormat().bits_per_value == pytest.approx(1 + 2 + 3 / 16)
        assert MSFP12Format().bits_per_value == pytest.approx(1 + 3 + 8 / 16)


class TestCustomBFPFormat:
    def test_name_derived_from_parameters(self):
        fmt = BFPFormat(mantissa_bits=5, group_size=8, exponent_bits=4)
        assert fmt.name == "bfp_e4_m5_g8"

    def test_explicit_name(self):
        assert BFPFormat(name="my_bfp").name == "my_bfp"

    def test_group_size_trades_accuracy(self, rng):
        """Smaller groups give lower quantization error (Figure 18 trend)."""
        values = rng.standard_normal((16, 96)) * np.exp(rng.normal(0, 1, size=(16, 96)))
        errors = []
        for group_size in (8, 16, 32):
            fmt = BFPFormat(mantissa_bits=4, group_size=group_size, exponent_bits=8)
            errors.append(np.abs(fmt.quantize(values) - values).mean())
        assert errors[0] <= errors[1] <= errors[2]

    def test_config_property_round_trips(self):
        fmt = BFPFormat(mantissa_bits=3, group_size=8, exponent_bits=5)
        config = fmt.config
        assert config.mantissa_bits == 3
        assert config.group_size == 8
        assert config.exponent_bits == 5
