"""Tests for the evaluation models: shapes, gradients, quantizability, structure."""

import numpy as np
import pytest

from repro import nn
from repro.models import (
    MLP,
    MobileNetV2,
    Seq2SeqTransformer,
    TinyYOLO,
    mobilenet_v2,
    resnet18,
    resnet20,
    resnet20_uniform,
    resnet50,
    tiny_yolo,
    transformer_small,
    vgg11,
    vgg16,
)
from repro.nn.quantized import BFPScheme, quantized_modules
from repro.nn.tensor import Tensor


RNG = np.random.default_rng(0)


class TestMLP:
    def test_forward_shape(self, rng):
        model = MLP(12, [8, 8], 3, rng=rng)
        assert model(rng.standard_normal((5, 12))).shape == (5, 3)

    def test_flattens_images(self, rng):
        model = MLP(3 * 4 * 4, [8], 2, rng=rng)
        assert model(rng.standard_normal((2, 3, 4, 4))).shape == (2, 2)

    def test_all_linear_layers_are_quantized_type(self, rng):
        model = MLP(6, [4], 2, rng=rng)
        assert len(quantized_modules(model)) == 2


class TestResNets:
    def test_resnet20_structure(self, rng):
        model = resnet20(num_classes=10, width=8, rng=rng)
        # 3 stages x 3 blocks x 2 convs + stem + downsample shortcuts (2) + fc = 22 layers.
        layers = quantized_modules(model)
        assert len(layers) == 22
        out = model(rng.standard_normal((2, 3, 16, 16)))
        assert out.shape == (2, 10)

    def test_resnet20_uniform_has_uniform_channels(self, rng):
        model = resnet20_uniform(num_classes=10, width=8, rng=rng)
        widths = {layer.out_channels for layer in quantized_modules(model)
                  if hasattr(layer, "out_channels")}
        assert widths == {8}
        assert model(rng.standard_normal((1, 3, 16, 16))).shape == (1, 10)

    def test_resnet18_forward(self, rng):
        model = resnet18(num_classes=5, width=8, rng=rng)
        assert model(rng.standard_normal((2, 3, 16, 16))).shape == (2, 5)

    def test_resnet50_uses_bottleneck_expansion(self, rng):
        model = resnet50(num_classes=4, width=4, rng=rng)
        assert model.classifier.in_features == 4 * 8 * 4  # width*8 channels x expansion 4
        assert model(rng.standard_normal((1, 3, 16, 16))).shape == (1, 4)

    def test_gradients_flow_through_skip_connections(self, rng):
        model = resnet20(num_classes=3, width=4, rng=rng)
        loss = nn.cross_entropy(model(rng.standard_normal((2, 3, 16, 16))), np.array([0, 1]))
        loss.backward()
        for name, parameter in model.named_parameters():
            if name.endswith("weight") and parameter.ndim == 4:
                assert parameter.grad is not None, name

    def test_downsample_halves_resolution(self, rng):
        model = resnet20(num_classes=2, width=4, rng=rng)
        # Input 16x16 -> stage strides 1, 2, 2 -> final feature map 4x4.
        features = model.stages(model.stem(Tensor(rng.standard_normal((1, 3, 16, 16)))).relu())
        assert features.shape[-2:] == (4, 4)


class TestVGGAndMobileNet:
    def test_vgg11_forward(self, rng):
        model = vgg11(num_classes=7, width=4, rng=rng)
        assert model(rng.standard_normal((2, 3, 16, 16))).shape == (2, 7)

    def test_vgg16_has_13_conv_layers(self, rng):
        model = vgg16(num_classes=10, width=2, rng=rng)
        convs = [m for m in quantized_modules(model) if isinstance(m, nn.QuantizedConv2d)]
        assert len(convs) == 13

    def test_mobilenet_forward(self, rng):
        model = mobilenet_v2(num_classes=6, width=4, rng=rng)
        assert model(rng.standard_normal((2, 3, 16, 16))).shape == (2, 6)

    def test_mobilenet_uses_depthwise_convolutions(self, rng):
        model = mobilenet_v2(num_classes=2, width=4, rng=rng)
        depthwise = [m for m in quantized_modules(model)
                     if isinstance(m, nn.QuantizedConv2d) and m.groups > 1]
        assert len(depthwise) >= 3
        for layer in depthwise:
            assert layer.groups == layer.in_channels

    def test_mobilenet_residual_only_at_matching_shapes(self, rng):
        model = MobileNetV2(((2, 8, 2, 1),), num_classes=2, stem_channels=8, rng=rng)
        blocks = list(model.blocks)
        assert blocks[0].use_residual  # 8 -> 8, stride 1
        assert model(rng.standard_normal((1, 3, 8, 8))).shape == (1, 2)


class TestTransformer:
    def test_forward_logits_shape(self, rng):
        model = transformer_small(vocab_size=20, max_length=12, rng=rng)
        src = rng.integers(0, 20, size=(2, 6))
        tgt = rng.integers(0, 20, size=(2, 5))
        assert model(src, tgt).shape == (2, 5, 20)

    def test_sequence_too_long_rejected(self, rng):
        model = transformer_small(vocab_size=10, max_length=4, rng=rng)
        with pytest.raises(ValueError):
            model.encode(np.zeros((1, 10), dtype=int))

    def test_greedy_decode_output_format(self, rng):
        model = transformer_small(vocab_size=12, max_length=8, rng=rng)
        generated = model.greedy_decode(rng.integers(3, 12, size=(3, 5)), bos_index=1, eos_index=2)
        assert generated.shape[0] == 3
        assert np.all(generated[:, 0] == 1)
        assert generated.shape[1] <= 8

    def test_decoder_is_causal(self, rng):
        model = transformer_small(vocab_size=15, max_length=10, rng=np.random.default_rng(1))
        src = rng.integers(3, 15, size=(1, 5))
        tgt = rng.integers(3, 15, size=(1, 6))
        base = model(src, tgt).data
        altered = tgt.copy()
        altered[0, 5] = (altered[0, 5] + 1) % 15
        changed = model(src, altered).data
        np.testing.assert_allclose(base[0, :5], changed[0, :5], atol=1e-8)

    def test_attention_projections_are_quantizable(self, rng):
        model = transformer_small(vocab_size=10, rng=rng)
        layers = quantized_modules(model)
        assert len(layers) > 10
        for layer in layers:
            layer.scheme = BFPScheme(stochastic_gradients=False)
        out = model(rng.integers(0, 10, size=(1, 4)), rng.integers(0, 10, size=(1, 4)))
        assert out.shape == (1, 4, 10)

    def test_gradients_reach_embedding(self, rng):
        model = transformer_small(vocab_size=10, rng=rng)
        src = rng.integers(0, 10, size=(2, 4))
        tgt_in = rng.integers(0, 10, size=(2, 4))
        tgt_out = rng.integers(0, 10, size=(2, 4))
        loss = nn.sequence_cross_entropy(model(src, tgt_in), tgt_out)
        loss.backward()
        assert model.embedding.weight.grad is not None


class TestYOLO:
    def test_output_grid_shape(self, rng):
        model = tiny_yolo(num_classes=3, image_size=32, width=4, rng=rng)
        out = model(rng.standard_normal((2, 3, 32, 32)))
        assert out.shape == (2, 4, 4, 5 + 3)

    def test_grid_size_derived_from_image_size(self, rng):
        model = tiny_yolo(num_classes=2, image_size=64, width=4, rng=rng)
        assert model.grid_size == 8

    def test_backbone_is_quantizable(self, rng):
        model = TinyYOLO(num_classes=2, width=4, rng=rng)
        assert len(quantized_modules(model)) == 4  # 3 backbone convs + head

    def test_gradients_flow(self, rng):
        from repro.models import yolo_loss

        model = tiny_yolo(num_classes=2, image_size=16, width=4, rng=rng)
        images = rng.standard_normal((2, 3, 16, 16))
        targets = np.zeros((2, 2, 2, 7))
        targets[:, 0, 0, 4] = 1.0
        targets[:, 0, 0, 5] = 1.0
        loss = yolo_loss(model(images), targets)
        loss.backward()
        assert model.head.weight.grad is not None
