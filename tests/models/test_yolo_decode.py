"""Tests for YOLO prediction decoding and the detection loss."""

import numpy as np
import pytest

from repro.models.yolo import decode_predictions, yolo_loss
from repro.nn.tensor import Tensor


def make_raw(grid=4, num_classes=3):
    """Raw head output with no confident cells."""
    raw = np.zeros((1, grid, grid, 5 + num_classes))
    raw[..., 4] = -10.0  # objectness logit ~ 0
    return raw


class TestDecodePredictions:
    def test_no_boxes_when_objectness_low(self):
        assert decode_predictions(make_raw()) == [[]]

    def test_single_confident_cell_decoded(self):
        raw = make_raw()
        raw[0, 1, 2, 4] = 10.0          # objectness ~ 1 in cell (row 1, col 2)
        raw[0, 1, 2, 0:2] = 0.0         # centre at the middle of the cell
        raw[0, 1, 2, 2:4] = 0.0         # width = height = 1 cell
        raw[0, 1, 2, 5 + 1] = 5.0       # class 1
        boxes = decode_predictions(raw)[0]
        assert len(boxes) == 1
        x, y, w, h, class_id, confidence = boxes[0]
        assert x == pytest.approx((2 + 0.5) / 4)
        assert y == pytest.approx((1 + 0.5) / 4)
        assert w == pytest.approx(0.25)
        assert h == pytest.approx(0.25)
        assert class_id == 1
        assert confidence > 0.99

    def test_threshold_filters_boxes(self):
        raw = make_raw()
        raw[0, 0, 0, 4] = 0.1  # objectness ~ 0.52
        assert len(decode_predictions(raw, threshold=0.9)[0]) == 0
        assert len(decode_predictions(raw, threshold=0.5)[0]) == 1

    def test_box_sizes_clipped_to_image(self):
        raw = make_raw()
        raw[0, 0, 0, 4] = 10.0
        raw[0, 0, 0, 2:4] = 10.0  # exp(10) cells wide -> clipped to 1.0
        box = decode_predictions(raw)[0][0]
        assert box[2] == 1.0
        assert box[3] == 1.0


class TestYoloLoss:
    def make_target(self, grid=2, num_classes=3):
        target = np.zeros((1, grid, grid, 5 + num_classes))
        target[0, 0, 0, 0:4] = (0.5, 0.5, 0.0, 0.0)
        target[0, 0, 0, 4] = 1.0
        target[0, 0, 0, 5] = 1.0
        return target

    def test_perfect_prediction_has_low_loss(self):
        target = self.make_target()
        prediction = np.zeros_like(target)
        prediction[..., 4] = -20.0                 # no object anywhere...
        prediction[0, 0, 0, 4] = 20.0              # ...except the target cell
        prediction[0, 0, 0, 0:2] = 0.0             # sigmoid(0) = 0.5 centre
        prediction[0, 0, 0, 5] = 20.0              # confident correct class
        prediction[0, 0, 0, 6:] = -20.0
        loss = yolo_loss(Tensor(prediction), target)
        assert loss.item() < 1e-3

    def test_wrong_class_increases_loss(self):
        target = self.make_target()
        good = np.zeros_like(target)
        good[..., 4] = -20.0
        good[0, 0, 0, 4] = 20.0
        good[0, 0, 0, 5] = 20.0
        good[0, 0, 0, 6:] = -20.0
        bad = good.copy()
        bad[0, 0, 0, 5], bad[0, 0, 0, 6] = -20.0, 20.0
        assert yolo_loss(Tensor(bad), target).item() > yolo_loss(Tensor(good), target).item()

    def test_false_positive_penalized_less_than_missed_object(self):
        """lambda_noobj < 1 down-weights no-object cells, as in the original YOLO."""
        target = self.make_target()
        missed = np.zeros_like(target)
        missed[..., 4] = -20.0  # predicts nothing at all
        false_positive = np.zeros_like(target)
        false_positive[..., 4] = -20.0
        false_positive[0, 0, 0, 4] = 20.0
        false_positive[0, 0, 0, 5] = 20.0
        false_positive[0, 0, 0, 6:] = -20.0
        false_positive[0, 1, 1, 4] = 20.0  # extra spurious detection
        assert yolo_loss(Tensor(false_positive), target).item() < \
            yolo_loss(Tensor(missed), target).item()

    def test_loss_differentiable(self, rng):
        target = self.make_target()
        prediction = Tensor(rng.standard_normal(target.shape), requires_grad=True)
        yolo_loss(prediction, target).backward()
        assert prediction.grad is not None
        assert np.all(np.isfinite(prediction.grad))
