"""Tests for YOLO prediction decoding and the detection loss."""

import numpy as np
import pytest

from repro.models.yolo import decode_predictions, yolo_loss
from repro.nn.tensor import Tensor


def make_raw(grid=4, num_classes=3):
    """Raw head output with no confident cells."""
    raw = np.zeros((1, grid, grid, 5 + num_classes))
    raw[..., 4] = -10.0  # objectness logit ~ 0
    return raw


class TestDecodePredictions:
    def test_no_boxes_when_objectness_low(self):
        assert decode_predictions(make_raw()) == [[]]

    def test_single_confident_cell_decoded(self):
        raw = make_raw()
        raw[0, 1, 2, 4] = 10.0          # objectness ~ 1 in cell (row 1, col 2)
        raw[0, 1, 2, 0:2] = 0.0         # centre at the middle of the cell
        raw[0, 1, 2, 2:4] = 0.0         # width = height = 1 cell
        raw[0, 1, 2, 5 + 1] = 5.0       # class 1
        boxes = decode_predictions(raw)[0]
        assert len(boxes) == 1
        x, y, w, h, class_id, confidence = boxes[0]
        assert x == pytest.approx((2 + 0.5) / 4)
        assert y == pytest.approx((1 + 0.5) / 4)
        assert w == pytest.approx(0.25)
        assert h == pytest.approx(0.25)
        assert class_id == 1
        assert confidence > 0.99

    def test_threshold_filters_boxes(self):
        raw = make_raw()
        raw[0, 0, 0, 4] = 0.1  # objectness ~ 0.52
        assert len(decode_predictions(raw, threshold=0.9)[0]) == 0
        assert len(decode_predictions(raw, threshold=0.5)[0]) == 1

    def test_box_sizes_clipped_to_image(self):
        raw = make_raw()
        raw[0, 0, 0, 4] = 10.0
        raw[0, 0, 0, 2:4] = 10.0  # exp(10) cells wide -> clipped to 1.0
        box = decode_predictions(raw)[0][0]
        assert box[2] == 1.0
        assert box[3] == 1.0


class TestYoloLoss:
    def make_target(self, grid=2, num_classes=3):
        target = np.zeros((1, grid, grid, 5 + num_classes))
        target[0, 0, 0, 0:4] = (0.5, 0.5, 0.0, 0.0)
        target[0, 0, 0, 4] = 1.0
        target[0, 0, 0, 5] = 1.0
        return target

    def test_perfect_prediction_has_low_loss(self):
        target = self.make_target()
        prediction = np.zeros_like(target)
        prediction[..., 4] = -20.0                 # no object anywhere...
        prediction[0, 0, 0, 4] = 20.0              # ...except the target cell
        prediction[0, 0, 0, 0:2] = 0.0             # sigmoid(0) = 0.5 centre
        prediction[0, 0, 0, 5] = 20.0              # confident correct class
        prediction[0, 0, 0, 6:] = -20.0
        loss = yolo_loss(Tensor(prediction), target)
        assert loss.item() < 1e-3

    def test_wrong_class_increases_loss(self):
        target = self.make_target()
        good = np.zeros_like(target)
        good[..., 4] = -20.0
        good[0, 0, 0, 4] = 20.0
        good[0, 0, 0, 5] = 20.0
        good[0, 0, 0, 6:] = -20.0
        bad = good.copy()
        bad[0, 0, 0, 5], bad[0, 0, 0, 6] = -20.0, 20.0
        assert yolo_loss(Tensor(bad), target).item() > yolo_loss(Tensor(good), target).item()

    def test_false_positive_penalized_less_than_missed_object(self):
        """lambda_noobj < 1 down-weights no-object cells, as in the original YOLO."""
        target = self.make_target()
        missed = np.zeros_like(target)
        missed[..., 4] = -20.0  # predicts nothing at all
        false_positive = np.zeros_like(target)
        false_positive[..., 4] = -20.0
        false_positive[0, 0, 0, 4] = 20.0
        false_positive[0, 0, 0, 5] = 20.0
        false_positive[0, 0, 0, 6:] = -20.0
        false_positive[0, 1, 1, 4] = 20.0  # extra spurious detection
        assert yolo_loss(Tensor(false_positive), target).item() < \
            yolo_loss(Tensor(missed), target).item()

    def test_loss_differentiable(self, rng):
        target = self.make_target()
        prediction = Tensor(rng.standard_normal(target.shape), requires_grad=True)
        yolo_loss(prediction, target).backward()
        assert prediction.grad is not None
        assert np.all(np.isfinite(prediction.grad))


class TestVectorizedDecodeEquivalence:
    """The vectorized decoder must reproduce the per-cell loop exactly."""

    @staticmethod
    def scalar_decode(raw, threshold=0.5):
        raw = np.asarray(raw)
        batch, grid_h, grid_w, _ = raw.shape
        results = []
        for b in range(batch):
            boxes = []
            for i in range(grid_h):
                for j in range(grid_w):
                    cell = raw[b, i, j]
                    objectness = 1.0 / (1.0 + np.exp(-cell[4]))
                    if objectness < threshold:
                        continue
                    tx, ty = 1.0 / (1.0 + np.exp(-cell[0])), 1.0 / (1.0 + np.exp(-cell[1]))
                    tw, th = np.exp(np.clip(cell[2], -6, 6)), np.exp(np.clip(cell[3], -6, 6))
                    boxes.append((float((j + tx) / grid_w), float((i + ty) / grid_h),
                                  float(min(tw / grid_w, 1.0)), float(min(th / grid_h, 1.0)),
                                  int(np.argmax(cell[5:])), float(objectness)))
            results.append(boxes)
        return results

    def test_matches_scalar_loop_on_random_grids(self):
        rng = np.random.default_rng(11)
        raw = rng.standard_normal((3, 5, 5, 8)) * 3
        for threshold in (0.3, 0.5, 0.9):
            assert decode_predictions(raw, threshold) == self.scalar_decode(raw, threshold)

    def test_matches_scalar_loop_when_everything_confident(self):
        rng = np.random.default_rng(12)
        raw = rng.standard_normal((2, 4, 4, 8))
        raw[..., 4] = 10.0
        assert decode_predictions(raw, 0.5) == self.scalar_decode(raw, 0.5)

    def test_nan_objectness_kept_like_scalar_loop(self):
        """NaN < threshold is False, so the scalar loop emitted the cell."""
        rng = np.random.default_rng(13)
        raw = rng.standard_normal((1, 3, 3, 8))
        raw[..., 4] = -10.0
        raw[0, 1, 1, 4] = np.nan
        vectorized = decode_predictions(raw, 0.5)
        scalar = self.scalar_decode(raw, 0.5)
        assert len(vectorized[0]) == len(scalar[0]) == 1
        # Tuple equality fails on NaN confidence; compare fields explicitly.
        for v_field, s_field in zip(vectorized[0][0], scalar[0][0]):
            assert (v_field == s_field) or (np.isnan(v_field) and np.isnan(s_field))
