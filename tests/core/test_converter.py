"""Tests for the BFP converter model and the relative-improvement statistic r(X)."""

import numpy as np
import pytest

from repro.core.bfp import BFPConfig, bfp_quantize
from repro.core.converter import BFPConverter, relative_improvement


class TestRelativeImprovement:
    def test_zero_for_already_coarse_values(self):
        """Values exactly representable with 2 mantissa bits gain nothing from 4."""
        values = np.array([[3.0, 1.0, -1.0, 2.0] * 4])
        assert relative_improvement(values) == pytest.approx(0.0)

    def test_positive_for_fine_grained_values(self, rng):
        values = rng.standard_normal((4, 64))
        assert relative_improvement(values) > 0.0

    def test_matches_equation_2(self, rng):
        values = rng.standard_normal((2, 32))
        config = BFPConfig(group_size=16, exponent_bits=8)
        low = bfp_quantize(values, 2, 16, 8)
        high = bfp_quantize(values, 4, 16, 8)
        expected = np.abs(high - low).sum() / np.abs(low).sum()
        assert relative_improvement(values, config) == pytest.approx(expected)

    def test_all_zero_tensor(self):
        assert relative_improvement(np.zeros((2, 16))) == 0.0

    def test_infinite_when_low_precision_truncates_everything(self):
        # One dominant value per group forces all others to zero at m=2; if the
        # dominant value itself is coarse the denominator is non-zero, so build
        # a group where even the max truncates to zero at low precision but not
        # at high precision -- impossible; instead check the inf path directly
        # with a crafted low==0, high!=0 case using a sub-normal-like spread.
        values = np.array([[1.0] + [1e-9] * 15])
        result = relative_improvement(values)
        assert np.isfinite(result)
        assert result >= 0.0

    def test_wide_dynamic_range_increases_improvement(self, rng):
        narrow = rng.uniform(0.9, 1.1, size=(4, 64))
        wide = narrow * np.exp(rng.normal(0, 3, size=(4, 64)))
        assert relative_improvement(wide) > relative_improvement(narrow)


class TestBFPConverter:
    def test_convert_uses_configured_bits(self, rng):
        converter = BFPConverter(BFPConfig(mantissa_bits=4, exponent_bits=8))
        result = converter.convert(rng.standard_normal((2, 32)))
        assert result.mantissa_bits == 4
        assert result.packed.mantissa_bits == 4
        assert result.quantized.shape == (2, 32)

    def test_convert_explicit_bits(self, rng):
        converter = BFPConverter()
        result = converter.convert(rng.standard_normal((2, 32)), mantissa_bits=2)
        assert result.mantissa_bits == 2

    def test_quantized_matches_fake_quant(self, rng):
        values = rng.standard_normal((2, 32))
        converter = BFPConverter(BFPConfig(mantissa_bits=4, exponent_bits=8, rounding="nearest"))
        result = converter.convert(values)
        np.testing.assert_allclose(result.quantized,
                                   bfp_quantize(values, 4, 16, 8, rounding="nearest"))

    def test_adaptive_selects_low_precision_below_threshold(self, rng):
        converter = BFPConverter()
        values = rng.standard_normal((2, 32))
        r_value = relative_improvement(values)
        low = converter.convert_adaptive(values, threshold=r_value + 0.1)
        high = converter.convert_adaptive(values, threshold=r_value - 0.1)
        assert low.mantissa_bits == 2
        assert high.mantissa_bits == 4

    def test_invalid_precision_pair_rejected(self):
        with pytest.raises(ValueError):
            BFPConverter(low_bits=4, high_bits=4)

    def test_relative_improvement_reported(self, rng):
        converter = BFPConverter()
        values = rng.standard_normal((2, 32))
        result = converter.convert(values)
        assert result.relative_improvement == pytest.approx(relative_improvement(values))
