"""Tests for BFP quantization (grouping, shared exponents, fake quantization, packing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.bfp import (
    MIN_EXPONENT,
    BFPConfig,
    bfp_quantize,
    bfp_quantize_tensor,
    compute_group_exponents,
    group_values,
    ungroup_values,
)


class TestBFPConfig:
    def test_defaults_match_paper(self):
        config = BFPConfig()
        assert config.group_size == 16
        assert config.mantissa_bits == 4

    def test_invalid_mantissa_rejected(self):
        with pytest.raises(ValueError):
            BFPConfig(mantissa_bits=0)

    def test_invalid_group_size_rejected(self):
        with pytest.raises(ValueError):
            BFPConfig(group_size=0)

    def test_with_mantissa_returns_copy(self):
        config = BFPConfig(mantissa_bits=4)
        low = config.with_mantissa(2)
        assert low.mantissa_bits == 2
        assert config.mantissa_bits == 4
        assert low.group_size == config.group_size

    def test_bits_per_value_matches_section_5d(self):
        # e=3, g=16: 3.19 bits/value for m=2 and 6.19 for m=4 (Section V-D).
        low = BFPConfig(mantissa_bits=2, group_size=16, exponent_bits=3)
        high = BFPConfig(mantissa_bits=4, group_size=16, exponent_bits=3)
        assert low.bits_per_value == pytest.approx(3.1875)
        assert high.bits_per_value == pytest.approx(6.1875)


class TestGrouping:
    def test_roundtrip_without_padding(self, rng):
        values = rng.standard_normal((3, 32))
        groups, pad, moved_shape = group_values(values, 16)
        assert pad == 0
        assert groups.shape == (3, 2, 16)
        restored = ungroup_values(groups, pad, moved_shape)
        np.testing.assert_array_equal(restored, values)

    def test_roundtrip_with_padding(self, rng):
        values = rng.standard_normal((2, 21))
        groups, pad, moved_shape = group_values(values, 16)
        assert pad == 11
        restored = ungroup_values(groups, pad, moved_shape)
        np.testing.assert_array_equal(restored, values)

    def test_grouping_along_other_axis(self, rng):
        values = rng.standard_normal((6, 4))
        groups, pad, moved_shape = group_values(values, 3, axis=0)
        restored = ungroup_values(groups, pad, moved_shape, axis=0)
        np.testing.assert_array_equal(restored, values)

    def test_scalar_input_handled(self):
        groups, pad, _ = group_values(np.float64(3.0), 16)
        assert groups.shape[-1] == 16
        assert pad == 15


class TestGroupExponents:
    def test_exponent_is_floor_log2_of_max(self):
        groups = np.array([[[0.75, 3.2, -1.5, 0.1]]])
        exponents = compute_group_exponents(groups)
        assert exponents[0, 0] == 1  # floor(log2(3.2)) == 1

    def test_all_zero_group_gets_min_exponent(self):
        groups = np.zeros((1, 2, 4))
        exponents = compute_group_exponents(groups)
        assert np.all(exponents == MIN_EXPONENT)

    def test_exponent_window_clamps_small_groups(self):
        # One huge group and one tiny group; with a 2-bit exponent field the
        # tiny group's exponent is clamped up to the window bottom.
        groups = np.array([[[1024.0, 512.0], [1e-6, 2e-6]]])
        unbounded = compute_group_exponents(groups, exponent_bits=None)
        bounded = compute_group_exponents(groups, exponent_bits=2)
        assert unbounded[0, 1] < bounded[0, 1]
        assert bounded[0, 1] == unbounded[0, 0] - 3


class TestBFPQuantize:
    def test_output_shape_and_dtype_preserved(self, rng):
        values = rng.standard_normal((5, 7, 11)).astype(np.float32)
        quantized = bfp_quantize(values, mantissa_bits=4)
        assert quantized.shape == values.shape
        assert quantized.dtype == values.dtype

    def test_group_max_error_bound(self, rng):
        """Quantization error is bounded by one quantization step of the group.

        (Half a step for interior values; up to one step for the group maximum,
        which can be clipped when it rounds up to ``2**m``.)
        """
        values = rng.standard_normal((8, 64))
        for bits in (2, 3, 4, 5):
            quantized = bfp_quantize(values, mantissa_bits=bits, group_size=16, exponent_bits=8)
            groups, _, _ = group_values(values, 16)
            exponents = compute_group_exponents(groups)
            steps = np.power(2.0, exponents.astype(float) - (bits - 1))
            errors, _, _ = group_values(np.abs(quantized - values), 16)
            assert np.all(errors <= steps[..., None] + 1e-12)

    def test_more_mantissa_bits_reduce_error(self, rng):
        values = rng.standard_normal((4, 64))
        errors = [np.abs(bfp_quantize(values, mantissa_bits=m, exponent_bits=8) - values).mean()
                  for m in (2, 3, 4, 6, 8)]
        assert all(a >= b for a, b in zip(errors, errors[1:]))

    def test_idempotent(self, rng):
        values = rng.standard_normal((4, 32))
        once = bfp_quantize(values, mantissa_bits=4, group_size=16, exponent_bits=8)
        twice = bfp_quantize(once, mantissa_bits=4, group_size=16, exponent_bits=8)
        np.testing.assert_allclose(once, twice)

    def test_zeros_stay_zero(self):
        values = np.zeros((2, 16))
        np.testing.assert_array_equal(bfp_quantize(values), values)

    def test_group_maximum_is_representable(self, rng):
        """The largest-magnitude value in each group keeps a full mantissa."""
        values = rng.standard_normal((4, 16)) * 10
        quantized = bfp_quantize(values, mantissa_bits=4, group_size=16, exponent_bits=8)
        max_positions = np.argmax(np.abs(values), axis=1)
        for row, col in enumerate(max_positions):
            relative_error = abs(quantized[row, col] - values[row, col]) / abs(values[row, col])
            assert relative_error < 2 ** (-3)

    def test_small_values_in_wide_group_truncate_to_zero(self):
        """A value whose exponent is far below the shared exponent loses all bits."""
        values = np.array([[8.0, 1e-4] + [0.0] * 14])
        quantized = bfp_quantize(values, mantissa_bits=2, group_size=16, rounding="truncate")
        assert quantized[0, 1] == 0.0

    def test_stochastic_rounding_unbiased_on_average(self):
        rng = np.random.default_rng(3)
        values = np.full((2000, 16), 0.3)
        quantized = bfp_quantize(values, mantissa_bits=2, group_size=16,
                                 rounding="stochastic", rng=rng, noise_bits=None)
        assert abs(quantized.mean() - 0.3) < 0.01

    def test_sign_preserved(self, rng):
        values = rng.standard_normal((4, 32))
        quantized = bfp_quantize(values, mantissa_bits=4, exponent_bits=8)
        nonzero = quantized != 0
        assert np.all(np.sign(quantized[nonzero]) == np.sign(values[nonzero]))


class TestBFPTensor:
    def test_roundtrip_matches_fake_quantization(self, rng):
        values = rng.standard_normal((6, 40))
        packed = bfp_quantize_tensor(values, mantissa_bits=4, group_size=16, exponent_bits=8)
        fake = bfp_quantize(values, mantissa_bits=4, group_size=16, exponent_bits=8)
        np.testing.assert_allclose(packed.to_float(), fake)

    def test_mantissas_fit_in_field(self, rng):
        values = rng.standard_normal((4, 32)) * 100
        for bits in (2, 4):
            packed = bfp_quantize_tensor(values, mantissa_bits=bits)
            assert packed.mantissas.max() <= (1 << bits) - 1
            assert packed.mantissas.min() >= 0

    def test_signs_are_ternary(self, rng):
        packed = bfp_quantize_tensor(rng.standard_normal((4, 32)))
        assert set(np.unique(packed.signs)) <= {-1, 0, 1}

    def test_storage_accounting(self, rng):
        values = rng.standard_normal((4, 32))
        packed = bfp_quantize_tensor(values, mantissa_bits=2, group_size=16, exponent_bits=3)
        # 8 groups x (3 + 16 * 1 * 3) bits
        assert packed.storage_bits() == 8 * 51
        assert packed.bits_per_value() == pytest.approx(8 * 51 / 128)

    def test_config_overrides(self, rng):
        config = BFPConfig(mantissa_bits=4, group_size=8)
        packed = bfp_quantize_tensor(rng.standard_normal(24), config=config, mantissa_bits=2)
        assert packed.mantissa_bits == 2
        assert packed.group_size == 8

    def test_num_values_excludes_padding(self, rng):
        packed = bfp_quantize_tensor(rng.standard_normal(20), group_size=16)
        assert packed.num_values == 20
        assert packed.num_groups == 2


@settings(max_examples=40, deadline=None)
@given(hnp.arrays(np.float64, st.integers(min_value=1, max_value=60),
                  elements=st.floats(min_value=-1e4, max_value=1e4,
                                     allow_nan=False, allow_infinity=False)))
def test_property_relative_group_error_bound(values):
    """For every group, the max error is at most 2^-(m-1) of the group maximum."""
    mantissa_bits = 4
    quantized = bfp_quantize(values, mantissa_bits=mantissa_bits, group_size=16, exponent_bits=None)
    groups, _, _ = group_values(values, 16)
    quantized_groups, _, _ = group_values(quantized, 16)
    group_max = np.abs(groups).max(axis=-1)
    errors = np.abs(quantized_groups - groups).max(axis=-1)
    bound = group_max * 2.0 ** (-(mantissa_bits - 1)) + 1e-12
    assert np.all(errors <= bound)


@settings(max_examples=40, deadline=None)
@given(hnp.arrays(np.float64, hnp.array_shapes(min_dims=1, max_dims=3, max_side=20),
                  elements=st.floats(min_value=-1e3, max_value=1e3,
                                     allow_nan=False, allow_infinity=False)),
       st.sampled_from([2, 3, 4]))
def test_property_packed_roundtrip_equals_fake_quant(values, mantissa_bits):
    packed = bfp_quantize_tensor(values, mantissa_bits=mantissa_bits, group_size=8, exponent_bits=8)
    fake = bfp_quantize(values, mantissa_bits=mantissa_bits, group_size=8, exponent_bits=8)
    np.testing.assert_allclose(packed.to_float(), fake, rtol=0, atol=0)
