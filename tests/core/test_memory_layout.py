"""Tests for the chunked BFP memory layout (Section V-D, Figure 15)."""

import numpy as np
import pytest

from repro.core.bfp import bfp_quantize_tensor
from repro.core.memory_layout import (
    BFPMemoryLayout,
    bits_per_group,
    bits_per_value,
    pack_group,
    unpack_group,
)


class TestBitAccounting:
    def test_paper_storage_figures(self):
        """3.2 bits/value for m=2 and 6.2 bits/value for m=4 with e=3, g=16."""
        assert bits_per_value(3, 16, 2) == pytest.approx(3.1875)
        assert bits_per_value(3, 16, 4) == pytest.approx(6.1875)

    def test_group_bits_formula(self):
        # e + g * (m/2) * 3
        assert bits_per_group(3, 16, 2) == 3 + 16 * 1 * 3
        assert bits_per_group(3, 16, 4) == 3 + 16 * 2 * 3
        assert bits_per_group(8, 16, 3) == 8 + 16 * 2 * 3

    def test_layout_tensor_bits_rounds_up_to_groups(self):
        layout = BFPMemoryLayout()
        assert layout.tensor_bits(17, 2) == 2 * layout.group_bits(2)

    def test_layout_value_bits(self):
        layout = BFPMemoryLayout(exponent_bits=3, group_size=16)
        assert layout.value_bits(2) == pytest.approx(3.1875)

    def test_bytes_conversion(self):
        layout = BFPMemoryLayout()
        assert layout.tensor_bytes(16, 2) == pytest.approx(layout.group_bits(2) / 8.0)


class TestPackUnpack:
    def test_roundtrip(self):
        signs = np.array([1, -1, 1, 0])
        mantissas = np.array([13, 7, 2, 0])
        packed = pack_group(signs, mantissas, exponent=5, mantissa_bits=4)
        signs_out, mantissas_out, exponent = unpack_group(packed)
        np.testing.assert_array_equal(mantissas_out, mantissas)
        np.testing.assert_array_equal(signs_out, signs)
        assert exponent == 5

    def test_word_per_chunk(self):
        packed = pack_group(np.array([1, 1]), np.array([9, 6]), exponent=0, mantissa_bits=4)
        assert len(packed["words"]) == 2
        # First word holds the high chunks of every mantissa (Figure 15b).
        assert packed["words"][0] == [(0, 0b10), (0, 0b01)]
        assert packed["words"][1] == [(0, 0b01), (0, 0b10)]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            pack_group(np.array([1, 1]), np.array([1]), exponent=0, mantissa_bits=2)

    def test_pack_tensor_covers_all_groups(self, rng):
        layout = BFPMemoryLayout(exponent_bits=3, group_size=16)
        tensor = bfp_quantize_tensor(rng.standard_normal((2, 32)), mantissa_bits=4,
                                     group_size=16, exponent_bits=3)
        packed = layout.pack_tensor(tensor)
        assert len(packed) == tensor.num_groups
        # Unpacking every group reproduces the stored mantissas.
        mantissas = tensor.mantissas.reshape(-1, 16)
        for index, group in enumerate(packed):
            _, unpacked_mantissas, _ = unpack_group(group)
            np.testing.assert_array_equal(unpacked_mantissas, mantissas[index])

    def test_discarding_low_chunk_gives_two_bit_mantissa(self):
        """Section V-D: dropping the low-order word converts m=4 storage to m=2."""
        mantissas = np.array([13, 7, 2, 0])
        packed = pack_group(np.array([1, 1, 1, 1]), mantissas, exponent=0, mantissa_bits=4)
        high_chunks = np.array([pair[1] for pair in packed["words"][0]])
        np.testing.assert_array_equal(high_chunks, mantissas >> 2)
