"""Tests for the pooled stochastic-rounding noise source."""

import numpy as np
import pytest

from repro.core.kernels import bfp_quantize_fast, bfp_quantize_reference
from repro.core.rounding import LFSR, NoisePool, VectorizedLFSR, draw_noise


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = NoisePool(7).uniform((1000,))
        b = NoisePool(7).uniform((1000,))
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = NoisePool(7).uniform((1000,))
        b = NoisePool(8).uniform((1000,))
        assert not np.array_equal(a, b)

    @pytest.mark.parametrize("partitions", [
        [(2600,)],
        [(300,), (300,), (2000,)],
        [(137,), (463,), (1000,), (1000,)],
        [(50, 52)],
    ])
    def test_partition_invariance_across_refills(self, partitions):
        """The value stream is independent of draw shapes, even when draws
        straddle refill boundaries (capacity 512 here)."""
        reference = NoisePool(42, capacity=512).uniform((2600,))
        pool = NoisePool(42, capacity=512)
        drawn = np.concatenate([pool.uniform(shape).ravel() for shape in partitions])
        np.testing.assert_array_equal(reference[:drawn.size], drawn)

    def test_draw_larger_than_capacity(self):
        small = NoisePool(1, capacity=128)
        large = NoisePool(1, capacity=128)
        chunked = np.concatenate([small.uniform((100,)) for _ in range(10)])
        at_once = large.uniform((1000,))
        np.testing.assert_array_equal(chunked, at_once)


class TestValues:
    @pytest.mark.parametrize("noise_bits", [1, 4, 8, 12])
    def test_values_on_the_quantized_grid(self, noise_bits):
        draws = NoisePool(3).uniform((5000,), noise_bits=noise_bits)
        assert draws.min() >= 0.0 and draws.max() < 1.0
        scaled = draws * (1 << noise_bits)
        np.testing.assert_array_equal(scaled, np.round(scaled))

    def test_narrow_widths_use_float32(self):
        assert NoisePool(0).uniform((10,), noise_bits=8).dtype == np.float32

    def test_full_precision_draws(self):
        draws = NoisePool(0).uniform((1000,), noise_bits=None)
        assert draws.dtype == np.float64
        assert draws.min() >= 0.0 and draws.max() < 1.0
        assert np.unique(draws).size > 990  # not quantized to a coarse grid

    def test_served_draws_are_read_only(self):
        draws = NoisePool(0).uniform((100,))
        with pytest.raises(ValueError):
            draws[0] = 0.5

    def test_shape_is_respected(self):
        assert NoisePool(0).uniform((3, 5, 7)).shape == (3, 5, 7)

    def test_reset_replays_nothing(self):
        pool = NoisePool(9)
        first = pool.uniform((100,)).copy()
        pool.reset()
        # reset drops buffered values but keeps the source state: the next
        # draw comes from fresh refills, not a replay of the first buffer.
        second = pool.uniform((100,))
        assert not np.array_equal(first, second)


class TestSources:
    def test_generator_source(self):
        source = np.random.default_rng(5)
        expected = NoisePool(np.random.default_rng(5)).uniform((100,))
        np.testing.assert_array_equal(NoisePool(source).uniform((100,)), expected)

    def test_lfsr_source_matches_direct_stream(self):
        """Refills draw whole blocks from the LFSR, so the pooled stream is
        the LFSR stream (which is inherently partition-invariant)."""
        pooled = NoisePool(VectorizedLFSR(seed=9), capacity=256)
        drawn = np.concatenate([pooled.uniform((100,)), pooled.uniform((412,))])
        direct = VectorizedLFSR(seed=9).uniform((512,))
        np.testing.assert_array_equal(drawn, direct)

    def test_lfsr_source_requires_noise_bits(self):
        with pytest.raises(ValueError, match="noise_bits"):
            NoisePool(LFSR(seed=1)).uniform((10,), noise_bits=None)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            NoisePool(0, capacity=0)


class TestQuantizationIntegration:
    def test_draw_noise_dispatches_to_pool(self):
        expected = NoisePool(4).uniform((64,), noise_bits=8)
        np.testing.assert_array_equal(draw_noise(NoisePool(4), (64,), 8), expected)

    def test_fast_vs_reference_bit_exact_with_equal_pools(self, rng):
        values = rng.standard_normal(4096)
        fast = bfp_quantize_fast(values, 4, 16, 8, "stochastic", rng=NoisePool(7))
        ref = bfp_quantize_reference(values, 4, 16, 8, "stochastic", rng=NoisePool(7))
        np.testing.assert_array_equal(fast, ref)

    def test_pooled_float32_noise_is_exact_in_float64(self, rng):
        """float32 noise values k/256 are exact, so quantizing float64 input
        with a pool matches quantizing with the same values as float64."""
        values = rng.standard_normal(512)
        pool = NoisePool(11)
        noise = NoisePool(11).uniform((512,), noise_bits=8)
        fast = bfp_quantize_fast(values, 4, 16, None, "stochastic", rng=pool)
        assert noise.dtype == np.float32
        np.testing.assert_array_equal(noise.astype(np.float64), noise)
        assert fast.dtype == np.float64

    def test_mean_preservation(self, rng):
        """Theorem 1 sanity: pooled stochastic rounding stays unbiased."""
        values = np.full(200_000, 0.3)
        quantized = bfp_quantize_fast(values, 4, 16, 8, "stochastic", rng=NoisePool(0))
        assert abs(quantized.mean() - 0.3) < 1e-3
