"""The batched LFSR must be bit-exact with the scalar golden reference.

The scalar :class:`~repro.core.rounding.LFSR` is the specification: the
vectorized implementation must emit the same bit stream, produce the same
uniform draws, and leave the register in the same state, for any interleaving
of scalar and vectorized use.
"""

import numpy as np
import pytest

from repro.core.rounding import LFSR, VectorizedLFSR


class TestStreamEquivalence:
    @pytest.mark.parametrize("seed", [0xACE1, 0x1234, 1, 0xBEEF])
    def test_uniform_matches_scalar_across_mixed_draws(self, seed):
        scalar = LFSR(seed=seed)
        vector = VectorizedLFSR(seed=seed)
        for shape, noise_bits in [((7,), 3), ((100,), 8), ((33, 5), 4),
                                  ((2000,), 8), ((3,), 1), ((77,), 5), ((513,), 3)]:
            np.testing.assert_array_equal(
                scalar.uniform(shape, noise_bits=noise_bits),
                vector.uniform(shape, noise_bits=noise_bits),
            )
            assert scalar.state == vector.state

    def test_large_draw_state_continuity(self):
        """After a large vectorized draw the register matches the scalar one."""
        scalar = LFSR(seed=0x5A5A)
        vector = VectorizedLFSR(seed=0x5A5A)
        np.testing.assert_array_equal(
            scalar.uniform((4000,), 8), vector.uniform((4000,), 8)
        )
        assert scalar.state == vector.state
        # ...and the streams keep agreeing bit by bit afterwards.
        assert [scalar.next_bit() for _ in range(64)] == [vector.next_bit() for _ in range(64)]

    def test_scalar_and_vector_calls_interleave(self):
        scalar = LFSR()
        vector = VectorizedLFSR()
        assert [scalar.next_bit() for _ in range(10)] == [vector.next_bit() for _ in range(10)]
        np.testing.assert_array_equal(scalar.uniform((500,), 8), vector.uniform((500,), 8))
        assert scalar.next_int(16) == vector.next_int(16)

    def test_narrow_register_with_clamped_taps(self):
        scalar = LFSR(seed=5, width=4)
        vector = VectorizedLFSR(seed=5, width=4)
        np.testing.assert_array_equal(
            scalar.uniform((300,), 2), vector.uniform((300,), 2)
        )
        assert scalar.state == vector.state

    def test_noise_bits_not_dividing_block(self):
        """noise_bits that do not divide 64 exercise the bit-matrix fallback."""
        scalar = LFSR(seed=0x77)
        vector = VectorizedLFSR(seed=0x77)
        np.testing.assert_array_equal(
            scalar.uniform((200,), 3), vector.uniform((200,), 3)
        )
        assert scalar.state == vector.state

    def test_small_draws_use_scalar_path(self):
        scalar = LFSR()
        vector = VectorizedLFSR()
        np.testing.assert_array_equal(scalar.uniform((5,), 8), vector.uniform((5,), 8))
        assert scalar.state == vector.state


class TestProperties:
    def test_values_quantized_to_noise_bits(self):
        draws = VectorizedLFSR().uniform((4096,), noise_bits=8)
        assert draws.min() >= 0.0
        assert draws.max() < 1.0
        np.testing.assert_array_equal(draws * 256, np.round(draws * 256))

    def test_rejects_wide_registers(self):
        with pytest.raises(ValueError):
            VectorizedLFSR(width=64)

    def test_rejects_zero_seed(self):
        with pytest.raises(ValueError):
            VectorizedLFSR(seed=0)

    def test_empty_draw(self):
        vector = VectorizedLFSR()
        state = vector.state
        assert vector.uniform((0,), 8).shape == (0,)
        assert vector.state == state


class TestScalarLFSRHoistedTaps:
    def test_next_bit_unchanged_by_tap_hoisting(self):
        """The hoisted tap mask reproduces the original per-call tap loop."""
        lfsr = LFSR(seed=0xACE1)
        state = lfsr.state
        expected_bits = []
        for _ in range(200):
            taps = [min(t, 16) for t in LFSR._TAPS]
            bit = 0
            for tap in taps:
                bit ^= (state >> (tap - 1)) & 1
            state = ((state << 1) | bit) & 0xFFFF
            expected_bits.append(bit)
        assert [lfsr.next_bit() for _ in range(200)] == expected_bits
