"""Tests for the precision policies (Equation 1, Algorithm 1, Figure 9 schedules)."""

import numpy as np
import pytest

from repro.core.bfp import BFPConfig
from repro.core.precision_policy import (
    SETTING_ORDER,
    FASTAdaptivePolicy,
    FixedPrecisionPolicy,
    LayerwisePrecisionPolicy,
    TemporalPrecisionPolicy,
    fast_threshold,
    setting_cost_rank,
)


class TestFastThreshold:
    def test_paper_hyperparameters_at_origin(self):
        assert fast_threshold(0, 0, 20, 100, alpha=0.6, beta=0.3) == pytest.approx(0.6)

    def test_decreases_with_iteration(self):
        early = fast_threshold(5, 10, 20, 100)
        late = fast_threshold(5, 90, 20, 100)
        assert late < early

    def test_decreases_with_depth(self):
        shallow = fast_threshold(1, 50, 20, 100)
        deep = fast_threshold(18, 50, 20, 100)
        assert deep < shallow

    def test_final_value(self):
        assert fast_threshold(20, 100, 20, 100, 0.6, 0.3) == pytest.approx(0.0)

    def test_invalid_totals(self):
        with pytest.raises(ValueError):
            fast_threshold(0, 0, 0, 100)


class TestSettingOrder:
    def test_eight_settings(self):
        assert len(SETTING_ORDER) == 8
        assert len(set(SETTING_ORDER)) == 8

    def test_extremes(self):
        assert SETTING_ORDER[0] == (2, 2, 2)
        assert SETTING_ORDER[-1] == (4, 4, 4)

    def test_gradient_promotion_costs_more_than_activation(self):
        """(4, 2, 2) ranks below (2, 2, 4), as discussed in Section VI-A."""
        assert setting_cost_rank(4, 2, 2) < setting_cost_rank(2, 2, 4)

    def test_unknown_setting_rejected(self):
        with pytest.raises(ValueError):
            setting_cost_rank(3, 3, 3)


class TestFixedPolicy:
    def test_always_returns_configured_bits(self):
        policy = FixedPrecisionPolicy(3)
        for layer in range(5):
            for iteration in (0, 10, 99):
                assert policy.select("weight", layer, iteration) == 3

    def test_history_recorded(self):
        policy = FixedPrecisionPolicy(2)
        policy.select("weight", 0, 0)
        policy.select("activation", 0, 0)
        assert len(policy.history) == 2


class TestTemporalPolicy:
    def test_low_to_high(self):
        policy = TemporalPrecisionPolicy(total_iterations=100, low_to_high=True)
        assert policy.select("weight", 0, 10) == 2
        assert policy.select("weight", 0, 80) == 4

    def test_high_to_low(self):
        policy = TemporalPrecisionPolicy(total_iterations=100, low_to_high=False)
        assert policy.select("weight", 0, 10) == 4
        assert policy.select("weight", 0, 80) == 2

    def test_switch_fraction(self):
        policy = TemporalPrecisionPolicy(total_iterations=100, switch_fraction=0.25)
        assert policy.select("weight", 0, 24) == 2
        assert policy.select("weight", 0, 25) == 4

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            TemporalPrecisionPolicy(100, switch_fraction=1.5)


class TestLayerwisePolicy:
    def test_low_to_high_over_depth(self):
        policy = LayerwisePrecisionPolicy(total_layers=20, low_to_high=True)
        assert policy.select("weight", 2, 0) == 2
        assert policy.select("weight", 18, 0) == 4

    def test_high_to_low_over_depth(self):
        policy = LayerwisePrecisionPolicy(total_layers=20, low_to_high=False)
        assert policy.select("weight", 2, 0) == 4
        assert policy.select("weight", 18, 0) == 2

    def test_independent_of_iteration(self):
        policy = LayerwisePrecisionPolicy(total_layers=10)
        assert policy.select("weight", 3, 0) == policy.select("weight", 3, 10000)


class TestFASTAdaptivePolicy:
    def make_policy(self, **kwargs):
        defaults = dict(total_layers=10, total_iterations=100,
                        config=BFPConfig(group_size=16, exponent_bits=8))
        defaults.update(kwargs)
        return FASTAdaptivePolicy(**defaults)

    def test_requires_tensor(self):
        policy = self.make_policy()
        with pytest.raises(ValueError):
            policy.select("weight", 0, 0)

    def test_coarse_tensor_stays_low_precision(self):
        policy = self.make_policy()
        coarse = np.array([[1.0, 0.5, -1.0, 2.0] * 4])
        assert policy.select("weight", 0, 0, tensor=coarse) == 2

    def test_fine_tensor_promoted_late_in_training(self, rng):
        policy = self.make_policy(alpha=0.6, beta=0.3)
        fine = rng.standard_normal((4, 64))
        late_bits = policy.select("weight", 9, 99, tensor=fine)
        assert late_bits == 4

    def test_precision_never_exceeds_high_bits(self, rng):
        policy = self.make_policy()
        for layer in range(10):
            bits = policy.select("gradient", layer, 50, tensor=rng.standard_normal((2, 32)))
            assert bits in (2, 4)

    def test_threshold_matches_equation(self):
        policy = self.make_policy(alpha=0.6, beta=0.3)
        assert policy.threshold(5, 50) == pytest.approx(0.6 - 0.3 * 0.5 - 0.3 * 0.5)

    def test_evaluation_interval_caches_decision(self, rng):
        policy = self.make_policy(evaluation_interval=10)
        tensor = rng.standard_normal((2, 32))
        first = policy.select("weight", 0, 0, tensor=tensor)
        # Different tensor within the interval: cached decision reused.
        second = policy.select("weight", 0, 5, tensor=rng.standard_normal((2, 32)) * 100)
        assert first == second

    def test_setting_history_collects_full_triples(self, rng):
        policy = self.make_policy()
        tensor = rng.standard_normal((2, 32))
        for kind in ("weight", "activation", "gradient"):
            policy.select(kind, 0, 0, tensor=tensor)
        history = policy.setting_history()
        assert (0, 0) in history
        assert len(history[(0, 0)]) == 3

    def test_average_precision_grows_over_training(self, rng):
        """The Figure 17 behaviour: precision increases with training progress."""
        policy = self.make_policy(alpha=0.6, beta=0.3)
        tensor = rng.standard_normal((8, 64))
        early = np.mean([policy.select("weight", layer, 1, tensor=tensor) for layer in range(10)])
        policy_late = self.make_policy(alpha=0.6, beta=0.3)
        late = np.mean([policy_late.select("weight", layer, 99, tensor=tensor) for layer in range(10)])
        assert late >= early
