"""Tests for rounding primitives and the LFSR noise source."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rounding import (
    LFSR,
    apply_rounding,
    round_nearest,
    round_stochastic,
    round_truncate,
)


class TestRoundNearest:
    def test_rounds_to_closest_integer(self):
        values = np.array([0.2, 0.7, 1.5, -0.2, -0.7, -1.5])
        expected = np.array([0.0, 1.0, 2.0, 0.0, -1.0, -2.0])
        np.testing.assert_array_equal(round_nearest(values), expected)

    def test_half_rounds_away_from_zero(self):
        np.testing.assert_array_equal(round_nearest(np.array([0.5, -0.5, 2.5])),
                                      np.array([1.0, -1.0, 3.0]))

    def test_integers_unchanged(self):
        values = np.array([-3.0, 0.0, 7.0])
        np.testing.assert_array_equal(round_nearest(values), values)


class TestRoundTruncate:
    def test_truncates_toward_zero(self):
        values = np.array([1.9, -1.9, 0.99, -0.99])
        expected = np.array([1.0, -1.0, 0.0, 0.0])
        np.testing.assert_array_equal(round_truncate(values), expected)

    def test_never_increases_magnitude(self, rng):
        values = rng.standard_normal(100) * 10
        truncated = round_truncate(values)
        assert np.all(np.abs(truncated) <= np.abs(values))


class TestRoundStochastic:
    def test_results_are_neighbouring_integers(self, rng):
        values = rng.standard_normal(200) * 5
        rounded = round_stochastic(values, rng=rng)
        distance = np.abs(rounded - values)
        assert np.all(distance < 1.0)
        assert np.all(rounded == np.round(rounded))

    def test_expected_value_is_unbiased(self):
        """Theorem 1: E[SR(x)] == x (up to the noise resolution)."""
        rng = np.random.default_rng(0)
        value = 2.0 / 3.0
        draws = round_stochastic(np.full(20000, value), rng=rng, noise_bits=None)
        assert abs(draws.mean() - value) < 0.02

    def test_noise_bits_quantize_probability(self):
        # With 1 noise bit the added noise is 0 or 0.5, so a fractional part of
        # 0.6 rounds up exactly when the noise is 0.5: probability one half.
        rng = np.random.default_rng(1)
        draws = round_stochastic(np.full(20000, 0.6), rng=rng, noise_bits=1)
        assert abs(draws.mean() - 0.5) < 0.02

    def test_lfsr_source_accepted(self):
        lfsr = LFSR(seed=0x1234)
        rounded = round_stochastic(np.array([0.5, 1.5, 2.5]), rng=lfsr)
        assert rounded.shape == (3,)
        assert np.all(rounded == np.round(rounded))

    def test_negative_values_round_between_neighbours(self, rng):
        values = -np.abs(rng.standard_normal(100) * 3)
        rounded = round_stochastic(values, rng=rng)
        assert np.all(rounded <= np.ceil(values))
        assert np.all(rounded >= np.floor(values))


class TestApplyRounding:
    def test_dispatch(self, rng):
        values = rng.standard_normal(10)
        np.testing.assert_array_equal(apply_rounding(values, "nearest"), round_nearest(values))
        np.testing.assert_array_equal(apply_rounding(values, "truncate"), round_truncate(values))

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError, match="unknown rounding mode"):
            apply_rounding(np.zeros(3), "floor")


class TestLFSR:
    def test_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            LFSR(seed=0)

    def test_bits_are_binary(self):
        lfsr = LFSR()
        bits = [lfsr.next_bit() for _ in range(64)]
        assert set(bits) <= {0, 1}

    def test_sequence_is_deterministic(self):
        a = LFSR(seed=0xBEEF)
        b = LFSR(seed=0xBEEF)
        assert [a.next_int(8) for _ in range(10)] == [b.next_int(8) for _ in range(10)]

    def test_uniform_in_unit_interval(self):
        lfsr = LFSR()
        values = lfsr.uniform((256,), noise_bits=8)
        assert values.min() >= 0.0
        assert values.max() < 1.0
        # The LFSR is maximal-length, so the values should spread out.
        assert values.std() > 0.2

    def test_state_visits_many_values(self):
        lfsr = LFSR(seed=1)
        states = {lfsr.next_int(16) for _ in range(200)}
        assert len(states) > 150


@settings(max_examples=50, deadline=None)
@given(st.floats(min_value=-100, max_value=100, allow_nan=False))
def test_nearest_error_at_most_half(value):
    assert abs(round_nearest(np.array([value]))[0] - value) <= 0.5 + 1e-12


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=-50, max_value=50, allow_nan=False), min_size=1, max_size=30))
def test_stochastic_rounding_error_below_one(values):
    rng = np.random.default_rng(7)
    array = np.array(values)
    rounded = round_stochastic(array, rng=rng)
    assert np.all(np.abs(rounded - array) < 1.0)
