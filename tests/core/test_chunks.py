"""Tests for mantissa chunk decomposition (variable precision fMAC support)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chunks import decompose_mantissas, num_chunks, passes_required, reconstruct_mantissas


class TestNumChunks:
    @pytest.mark.parametrize("bits,expected", [(1, 1), (2, 1), (3, 2), (4, 2), (5, 3), (8, 4)])
    def test_two_bit_chunks(self, bits, expected):
        assert num_chunks(bits) == expected

    def test_wider_chunks(self):
        assert num_chunks(8, chunk_bits=4) == 2

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            num_chunks(0)
        with pytest.raises(ValueError):
            num_chunks(4, chunk_bits=0)


class TestPassesRequired:
    def test_paper_examples(self):
        """The pass counts quoted in Sections I and V-B."""
        assert passes_required(2, 2) == 1
        assert passes_required(2, 4) == 2
        assert passes_required(4, 2) == 2
        assert passes_required(4, 4) == 4

    def test_odd_widths_round_up(self):
        assert passes_required(3, 3) == 4
        assert passes_required(3, 2) == 2

    def test_symmetry(self):
        for a in range(1, 9):
            for b in range(1, 9):
                assert passes_required(a, b) == passes_required(b, a)


class TestDecomposition:
    def test_chunks_msb_first(self):
        chunks, offsets = decompose_mantissas(np.array([0b1101]), 4)
        assert chunks.shape == (2, 1)
        assert chunks[0, 0] == 0b11
        assert chunks[1, 0] == 0b01
        assert offsets == [0, -2]

    def test_roundtrip(self):
        mantissas = np.arange(16)
        chunks, _ = decompose_mantissas(mantissas, 4)
        np.testing.assert_array_equal(reconstruct_mantissas(chunks), mantissas)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="unsigned"):
            decompose_mantissas(np.array([-1]), 4)

    def test_rejects_overflow(self):
        with pytest.raises(ValueError, match="does not fit"):
            decompose_mantissas(np.array([16]), 4)

    def test_value_reconstruction_with_offsets(self):
        """Chunks weighted by their exponent offsets reproduce the mantissa."""
        mantissas = np.array([13, 7, 0, 15])
        chunks, offsets = decompose_mantissas(mantissas, 4)
        base_shift = 4 - 2
        reconstructed = sum(chunks[k] * 2.0 ** (base_shift + offsets[k]) for k in range(2))
        np.testing.assert_array_equal(reconstructed, mantissas)

    def test_preserves_shape(self):
        mantissas = np.arange(12).reshape(3, 4) % 4
        chunks, _ = decompose_mantissas(mantissas, 2)
        assert chunks.shape == (1, 3, 4)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=40),
       st.sampled_from([2, 3, 4]))
def test_property_roundtrip_any_width(values, chunk_bits):
    mantissas = np.array(values)
    chunks, _ = decompose_mantissas(mantissas, 8, chunk_bits=chunk_bits)
    np.testing.assert_array_equal(reconstruct_mantissas(chunks, chunk_bits=chunk_bits), mantissas)
