"""Equivalence tests: the fused fast-path kernels vs. the seed reference.

The fast path must be *bit-identical* to the reference for deterministic
rounding (nearest/truncate), seed-reproducible for stochastic rounding, and
exactly correct on the power-of-two exponent edge cases that motivated the
frexp rewrite.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import kernels
from repro.core.bfp import bfp_quantize, bfp_quantize_tensor, compute_group_exponents, group_values
from repro.core.kernels import (
    bfp_quantize_fast,
    bfp_quantize_reference,
    shared_exponents,
    shared_exponents_reference,
)
from repro.core.rounding import LFSR, VectorizedLFSR
from repro.nn.functional import col2im, im2col


class TestFastPathBitExact:
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    @pytest.mark.parametrize("mode", ["nearest", "truncate"])
    @pytest.mark.parametrize("shape,axis", [((128,), -1), ((3, 50), -1), ((7, 33), 0), ((2, 3, 40), 1)])
    def test_deterministic_modes_bit_exact(self, rng, dtype, mode, shape, axis):
        scales = 10.0 ** rng.integers(-3, 4, size=shape)
        values = (rng.standard_normal(shape) * scales).astype(dtype)
        for exponent_bits in (8, 3, None):
            for mantissa_bits in (2, 4, 7):
                fast = bfp_quantize(values, mantissa_bits, 16, exponent_bits, mode, axis=axis)
                ref = bfp_quantize_reference(values, mantissa_bits, 16, exponent_bits, mode, axis=axis)
                assert fast.dtype == ref.dtype == dtype
                np.testing.assert_array_equal(fast, ref)

    @pytest.mark.parametrize("group_size", [1, 3, 5, 16, 17, 32])
    def test_odd_group_sizes_bit_exact(self, rng, group_size):
        values = rng.standard_normal((7, 33))
        fast = bfp_quantize(values, 4, group_size, 8, "nearest")
        ref = bfp_quantize_reference(values, 4, group_size, 8, "nearest")
        np.testing.assert_array_equal(fast, ref)

    def test_stochastic_generator_seed_reproducible(self, rng):
        values = rng.standard_normal((64, 64))
        for noise_bits in (8, 3, None):
            fast = bfp_quantize(values, 4, 16, 8, "stochastic",
                                rng=np.random.default_rng(42), noise_bits=noise_bits)
            ref = bfp_quantize_reference(values, 4, 16, 8, "stochastic",
                                         rng=np.random.default_rng(42), noise_bits=noise_bits)
            np.testing.assert_array_equal(fast, ref)

    def test_stochastic_lfsr_matches_reference_stream(self, rng):
        values = rng.standard_normal(333)
        ref = bfp_quantize_reference(values, 4, 16, 8, "stochastic", rng=LFSR(seed=7))
        fast_scalar = bfp_quantize(values, 4, 16, 8, "stochastic", rng=LFSR(seed=7))
        fast_vector = bfp_quantize(values, 4, 16, 8, "stochastic", rng=VectorizedLFSR(seed=7))
        np.testing.assert_array_equal(fast_scalar, ref)
        np.testing.assert_array_equal(fast_vector, ref)

    def test_subnormal_float32_falls_back_to_exact_ldexp(self):
        values = np.array([1e-40, 2e-40, 0.0, 5e-39] * 4, dtype=np.float32)
        fast = bfp_quantize(values, 4, 16, 8)
        ref = bfp_quantize_reference(values, 4, 16, 8)
        np.testing.assert_array_equal(fast, ref)

    def test_zero_and_scalar_inputs(self):
        np.testing.assert_array_equal(bfp_quantize(np.zeros((2, 16))), np.zeros((2, 16)))
        assert bfp_quantize_fast(np.float64(3.0)).shape == ()

    def test_relu_sparse_float32_with_zero_groups_bit_exact(self, rng):
        """All-zero groups (MIN_EXPONENT sentinel) must not perturb results.

        Regression for the fast path: a zero group's sentinel exponent pushes
        its shift past the float32-normal range; the kernel neutralizes those
        shifts (the group quantizes to zero regardless) instead of letting one
        zero group route the whole tensor down the slow fallback.
        """
        values = np.maximum(rng.standard_normal(4096), 0.0).astype(np.float32)
        values[:64] = 0.0  # guarantee whole zero groups
        for mode in ("nearest", "truncate"):
            fast = bfp_quantize(values, 4, 16, 8, mode)
            ref = bfp_quantize_reference(values, 4, 16, 8, mode)
            np.testing.assert_array_equal(fast, ref)

    def test_wide_mantissa_float32_upcasts_to_match_reference(self, rng):
        """m > 23 overflows float32's exact-offset range; kernel computes in f64."""
        values = rng.standard_normal(256).astype(np.float32)
        for mantissa_bits in (24, 26):
            fast = bfp_quantize(values, mantissa_bits, 16, 8, "nearest")
            ref = bfp_quantize_reference(values, mantissa_bits, 16, 8, "nearest")
            assert fast.dtype == np.float32
            np.testing.assert_array_equal(fast, ref)


class TestFrexpExponents:
    def test_matches_log2_reference_at_exact_powers_of_two(self):
        """Regression: frexp and the old log2 path agree at exact powers of two."""
        powers = np.array([2.0 ** k for k in range(-60, 61)])
        groups = powers.reshape(1, -1, 1)
        np.testing.assert_array_equal(
            shared_exponents(groups), shared_exponents_reference(groups)
        )
        expected = np.arange(-60, 61)
        np.testing.assert_array_equal(shared_exponents(groups)[0], expected)

    def test_exact_just_below_powers_of_two(self):
        """One ulp below 2**k the true floor(log2 x) is k-1; frexp gets it right.

        The rounded-log2 path puts log2(nextafter(2**k, 0)) within half an ulp
        of k and floors to k -- the edge case the frexp rewrite eliminates.
        """
        for k in (-10, -1, 0, 1, 3, 20):
            value = np.nextafter(2.0 ** k, 0.0)
            groups = np.array([[[value]]])
            assert shared_exponents(groups)[0, 0] == k - 1

    def test_window_clamp_matches_reference(self, rng):
        groups = rng.standard_normal((2, 8, 16)) * 10.0 ** rng.integers(-30, 30, size=(2, 8, 16))
        for bits in (2, 3, 8):
            np.testing.assert_array_equal(
                shared_exponents(groups, bits), shared_exponents_reference(groups, bits)
            )

    def test_zero_groups_clamped_into_window_like_reference(self):
        groups = np.array([[[1024.0] * 4, [0.0] * 4]])
        np.testing.assert_array_equal(
            shared_exponents(groups, 2), shared_exponents_reference(groups, 2)
        )


class TestDtypePropagation:
    def test_group_values_preserves_float32(self, rng):
        values = rng.standard_normal((3, 32)).astype(np.float32)
        groups, pad, _ = group_values(values, 16)
        assert groups.dtype == np.float32
        assert pad == 0

    def test_group_values_preserves_float32_with_padding(self, rng):
        values = rng.standard_normal((2, 21)).astype(np.float32)
        groups, pad, _ = group_values(values, 16)
        assert groups.dtype == np.float32
        assert pad == 11

    def test_group_values_promotes_integers(self):
        groups, _, _ = group_values(np.arange(32), 16)
        assert groups.dtype == np.float64

    def test_grouping_avoids_copy_when_aligned(self, rng):
        values = rng.standard_normal((4, 32))
        groups, pad, _ = kernels.group_for_quantization(values, 16)
        assert pad == 0
        assert np.shares_memory(groups, values)

    def test_col2im_preserves_float32(self, rng):
        x = rng.standard_normal((2, 3, 6, 6)).astype(np.float32)
        cols = im2col(x, 3, 3, 1, 1)
        assert cols.dtype == np.float32
        out = col2im(cols, x.shape, 3, 3, 1, 1)
        assert out.dtype == np.float32
        assert out.shape == x.shape

    def test_bfp_quantize_float32_stays_float32_end_to_end(self, rng):
        values = rng.standard_normal((5, 48)).astype(np.float32)
        assert bfp_quantize(values, 4, 16, 8).dtype == np.float32


@settings(max_examples=40, deadline=None)
@given(
    hnp.arrays(np.float64, hnp.array_shapes(min_dims=1, max_dims=3, max_side=24),
               elements=st.floats(min_value=-1e4, max_value=1e4,
                                  allow_nan=False, allow_infinity=False)),
    st.sampled_from([2, 3, 4]),
    st.sampled_from([4, 8, 16]),
)
def test_property_fast_equals_reference(values, mantissa_bits, group_size):
    # The fast path is bit-exact wherever the old log2 exponent derivation
    # was correct; one ulp below a power of two the reference itself is off
    # by one (covered by TestFrexpExponents), so skip those draws.
    groups, _, _ = group_values(values, group_size)
    assume(np.array_equal(shared_exponents(groups), shared_exponents_reference(groups)))
    fast = bfp_quantize(values, mantissa_bits, group_size, 8, "nearest")
    ref = bfp_quantize_reference(values, mantissa_bits, group_size, 8, "nearest")
    np.testing.assert_array_equal(fast, ref)


@settings(max_examples=40, deadline=None)
@given(
    hnp.arrays(np.float64, hnp.array_shapes(min_dims=1, max_dims=3, max_side=20),
               elements=st.floats(min_value=-1e3, max_value=1e3,
                                  allow_nan=False, allow_infinity=False)),
    st.sampled_from([2, 4]),
    st.data(),
)
def test_property_packed_roundtrip_any_axis(values, mantissa_bits, data):
    """bfp_quantize_tensor(x).to_float() == bfp_quantize(x) for any grouping axis."""
    axis = data.draw(st.integers(min_value=-values.ndim, max_value=values.ndim - 1))
    packed = bfp_quantize_tensor(values, mantissa_bits=mantissa_bits, group_size=8,
                                 exponent_bits=8, axis=axis)
    fake = bfp_quantize(values, mantissa_bits, 8, 8, axis=axis)
    np.testing.assert_allclose(packed.to_float(), fake, rtol=0, atol=0)
    assert packed.to_float().shape == values.shape


@settings(max_examples=30, deadline=None)
@given(hnp.arrays(np.float32, st.integers(min_value=1, max_value=70),
                  elements=st.floats(min_value=-1e4, max_value=1e4, width=32,
                                     allow_nan=False, allow_infinity=False)))
def test_property_float32_bit_exact_with_reference(values):
    groups, _, _ = group_values(values, 16)
    assume(np.array_equal(shared_exponents(groups), shared_exponents_reference(groups)))
    fast = bfp_quantize(values, 4, 16, 8, "nearest")
    ref = bfp_quantize_reference(values, 4, 16, 8, "nearest")
    assert fast.dtype == np.float32
    np.testing.assert_array_equal(fast, ref)


def test_compute_group_exponents_uses_exact_path():
    """The public helper now routes through the frexp kernel."""
    groups = np.array([[[0.75, 3.2, -1.5, 0.1]]])
    assert compute_group_exponents(groups)[0, 0] == 1
    value = np.nextafter(4.0, 0.0)
    assert compute_group_exponents(np.array([[[value]]]))[0, 0] == 1
