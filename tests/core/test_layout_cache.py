"""Tests for the persistent grouped-layout cache of the BFP fast path."""

import numpy as np
import pytest

from repro.core import kernels
from repro.core.bfp import bfp_quantize_tensor
from repro.core.kernels import (
    GroupedLayout,
    LayoutCache,
    bfp_quantize_fast,
    default_layout_cache,
    layout_cache_enabled,
    set_layout_cache_enabled,
)
from repro.core.rounding import NoisePool


@pytest.fixture(autouse=True)
def _fresh_cache_state():
    """Every test starts with an enabled, empty default cache."""
    previous = set_layout_cache_enabled(True)
    default_layout_cache().clear()
    yield
    set_layout_cache_enabled(previous)
    default_layout_cache().clear()


class TestGroupedLayout:
    def test_descriptor_matches_reference_grouping(self, rng):
        for shape, group_size, axis in [((7, 130), 16, -1), ((3, 5, 17), 8, -1),
                                        ((33,), 16, -1), ((6, 50), 16, 0),
                                        ((2, 3, 40), 17, 1)]:
            values = rng.standard_normal(shape)
            groups_ref, pad_ref, moved_ref = kernels.group_values_reference(values, group_size,
                                                                            axis=axis)
            layout = GroupedLayout(shape, np.float64, group_size, axis=axis)
            assert layout.pad == pad_ref
            assert layout.moved_shape == moved_ref
            np.testing.assert_array_equal(layout.group(values), groups_ref)

    def test_contiguous_unpadded_grouping_is_a_view(self, rng):
        values = rng.standard_normal((4, 64))
        layout = GroupedLayout(values.shape, values.dtype, 16)
        groups = layout.group(values)
        assert np.shares_memory(groups, values)

    def test_padded_grouping_reuses_one_workspace(self, rng):
        layout = GroupedLayout((3, 50), np.float64, 16)
        first = layout.group(rng.standard_normal((3, 50)))
        second = layout.group(rng.standard_normal((3, 50)))
        assert np.shares_memory(first, second)
        # Pad columns stay zero across reuse.
        assert np.all(second.reshape(3, -1)[:, 50:] == 0.0)

    def test_shape_mismatch_rejected(self, rng):
        layout = GroupedLayout((3, 50), np.float64, 16)
        with pytest.raises(ValueError, match="layout built for shape"):
            layout.group(rng.standard_normal((3, 51)))

    def test_ungroup_inverts_group(self, rng):
        values = rng.standard_normal((5, 23))
        layout = GroupedLayout(values.shape, values.dtype, 16)
        restored = layout.ungroup(layout.group(values).copy(), values.shape)
        np.testing.assert_array_equal(restored, values)


class TestCachedQuantizationBitExactness:
    SHAPES = [((7, 130), 16, -1), ((4, 64), 16, -1), ((3, 5, 17), 8, -1),
              ((33,), 16, -1), ((6, 50), 16, 0), ((2, 3, 40), 17, 1)]

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("mode", ["nearest", "truncate"])
    def test_cached_matches_uncached(self, rng, dtype, mode):
        for shape, group_size, axis in self.SHAPES:
            values = rng.standard_normal(shape).astype(dtype)
            cached = bfp_quantize_fast(values, 4, group_size, 8, mode, axis=axis)
            repeat = bfp_quantize_fast(values, 4, group_size, 8, mode, axis=axis)
            set_layout_cache_enabled(False)
            uncached = bfp_quantize_fast(values, 4, group_size, 8, mode, axis=axis)
            set_layout_cache_enabled(True)
            np.testing.assert_array_equal(cached, uncached)
            np.testing.assert_array_equal(cached, repeat)

    def test_cached_stochastic_seed_reproducible(self, rng):
        values = rng.standard_normal((7, 130))
        cached = bfp_quantize_fast(values, 4, 16, 8, "stochastic", rng=NoisePool(3))
        set_layout_cache_enabled(False)
        uncached = bfp_quantize_fast(values, 4, 16, 8, "stochastic", rng=NoisePool(3))
        set_layout_cache_enabled(True)
        np.testing.assert_array_equal(cached, uncached)

    def test_result_never_aliases_the_workspace(self, rng):
        """Back-to-back conversions of the same shape must not clobber results."""
        first_in = rng.standard_normal((3, 50))
        second_in = rng.standard_normal((3, 50))
        first = bfp_quantize_fast(first_in, 4, 16, 8, "nearest")
        first_copy = first.copy()
        bfp_quantize_fast(second_in, 4, 16, 8, "nearest")
        np.testing.assert_array_equal(first, first_copy)

    def test_packed_quantization_matches_uncached(self, rng):
        values = rng.standard_normal((5, 50))
        cached = bfp_quantize_tensor(values, mantissa_bits=4, group_size=16, exponent_bits=8)
        set_layout_cache_enabled(False)
        uncached = bfp_quantize_tensor(values, mantissa_bits=4, group_size=16, exponent_bits=8)
        set_layout_cache_enabled(True)
        np.testing.assert_array_equal(cached.signs, uncached.signs)
        np.testing.assert_array_equal(cached.mantissas, uncached.mantissas)
        np.testing.assert_array_equal(cached.exponents, uncached.exponents)
        np.testing.assert_array_equal(cached.to_float(), uncached.to_float())


class TestLayoutCache:
    def test_hit_returns_same_descriptor(self):
        cache = LayoutCache()
        first = cache.get((3, 50), np.float64, 16)
        second = cache.get((3, 50), np.float64, 16)
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_distinct_keys_get_distinct_layouts(self):
        cache = LayoutCache()
        base = cache.get((3, 50), np.float64, 16)
        assert cache.get((3, 50), np.float32, 16) is not base
        assert cache.get((3, 50), np.float64, 8) is not base
        assert cache.get((3, 50), np.float64, 16, axis=0) is not base

    def test_eviction_bound(self):
        cache = LayoutCache(max_entries=4)
        for n in range(10):
            cache.get((n + 1, 16), np.float64, 16)
        assert len(cache) == 4

    def test_lru_keeps_recently_used(self):
        cache = LayoutCache(max_entries=2)
        kept = cache.get((1, 16), np.float64, 16)
        cache.get((2, 16), np.float64, 16)
        cache.get((1, 16), np.float64, 16)   # refresh
        cache.get((3, 16), np.float64, 16)   # evicts (2, 16)
        assert cache.get((1, 16), np.float64, 16) is kept

    def test_mismatched_explicit_layout_rejected(self, rng):
        values = rng.standard_normal((4, 64))
        wrong_group = GroupedLayout((4, 64), np.float64, 8)
        with pytest.raises(ValueError, match="layout built for"):
            bfp_quantize_fast(values, 4, 16, 8, "nearest", layout=wrong_group)
        wrong_axis = GroupedLayout((64, 64), np.float64, 16, axis=0)
        with pytest.raises(ValueError, match="layout built for"):
            bfp_quantize_fast(rng.standard_normal((64, 64)), 4, 16, 8, "nearest",
                              layout=wrong_axis)
        wrong_dtype = GroupedLayout((4, 64), np.float32, 16)
        with pytest.raises(ValueError, match="layout built for"):
            bfp_quantize_fast(values, 4, 16, 8, "nearest", layout=wrong_dtype)

    def test_negative_axis_shares_the_entry(self):
        cache = LayoutCache()
        assert cache.get((3, 50), np.float64, 16, axis=-1) is \
            cache.get((3, 50), np.float64, 16, axis=1)

    def test_layout_for_resolves_integer_dtype(self):
        cache = LayoutCache()
        layout = cache.layout_for(np.arange(32), 16)
        assert layout.dtype == np.float64

    def test_disable_bypasses_default_cache(self, rng):
        values = rng.standard_normal((3, 50))
        set_layout_cache_enabled(False)
        assert not layout_cache_enabled()
        before = len(default_layout_cache())
        bfp_quantize_fast(values, 4, 16, 8, "nearest")
        assert len(default_layout_cache()) == before

    def test_integer_input_quantizes_identically(self):
        values = np.arange(-20, 30).reshape(5, 10)
        cached = bfp_quantize_fast(values, 4, 16, 8, "nearest")
        set_layout_cache_enabled(False)
        uncached = bfp_quantize_fast(values, 4, 16, 8, "nearest")
        set_layout_cache_enabled(True)
        np.testing.assert_array_equal(cached, uncached)
