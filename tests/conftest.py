"""Shared fixtures for the test suite.

``REPRO_SANITIZE=1`` runs the whole session with the runtime invariant
sanitizer installed (:mod:`repro.devtools.sanitize`): every
:class:`~repro.core.bfp.BFPTensor` built by any test is validated on
construction, and autograd ops log non-finite origins.  CI runs the core
and serving shards once in this mode.
"""

import os

import numpy as np
import pytest


@pytest.fixture(scope="session", autouse=True)
def runtime_sanitizer():
    """Session-wide invariant sanitizer, enabled by ``REPRO_SANITIZE=1``."""
    if os.environ.get("REPRO_SANITIZE") != "1":
        yield
        return
    from repro.devtools import sanitize

    sanitize.install()
    try:
        yield
    finally:
        sanitize.uninstall()


@pytest.fixture
def rng():
    """A deterministic random generator for reproducible tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_image_batch(rng):
    """A small NCHW image batch."""
    return rng.standard_normal((2, 3, 8, 8))


@pytest.fixture
def gradient_like_tensor(rng):
    """Values with the wide, log-normal-like dynamic range typical of gradients."""
    magnitudes = np.exp(rng.normal(-6.0, 3.0, size=(4, 64)))
    signs = rng.choice([-1.0, 1.0], size=(4, 64))
    return magnitudes * signs
