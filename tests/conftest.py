"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """A deterministic random generator for reproducible tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_image_batch(rng):
    """A small NCHW image batch."""
    return rng.standard_normal((2, 3, 8, 8))


@pytest.fixture
def gradient_like_tensor(rng):
    """Values with the wide, log-normal-like dynamic range typical of gradients."""
    magnitudes = np.exp(rng.normal(-6.0, 3.0, size=(4, 64)))
    signs = rng.choice([-1.0, 1.0], size=(4, 64))
    return magnitudes * signs
