"""Serving-suite fixtures: a per-test deadlock watchdog.

The serving tests exercise a threaded server on purpose, so a regression
that deadlocks the worker would otherwise hang the whole pytest run (and a
CI job) silently.  Every test in this directory runs under a watchdog:
if a single test exceeds the timeout, ``faulthandler`` dumps every thread's
stack to stderr and the process exits non-zero -- the build fails with a
diagnosis instead of hanging.  (Equivalent to ``pytest-timeout``'s thread
method, without the dependency; the container image has no network access
to install it.)

``REPRO_SERVING_TEST_TIMEOUT`` overrides the per-test limit in seconds
(CI pins it tighter than the generous local default).

``REPRO_LOCKCHECK=1`` additionally runs every serving test under the
dynamic lock-order detector (:mod:`repro.devtools.lockcheck`): locks
created during the test record their acquisition order, and the test
fails at teardown if any two code paths acquired the same pair of locks
in opposite orders -- a latent ABBA deadlock -- even though no thread
ever blocked.
"""

import faulthandler
import os
import sys

import pytest

from repro.devtools import lockcheck

DEFAULT_TIMEOUT_S = 120.0


@pytest.fixture(autouse=True)
def lock_order_check():
    """Fail the test on any lock-order inversion recorded while it ran."""
    if os.environ.get("REPRO_LOCKCHECK") != "1":
        yield
        return
    lockcheck.reset()
    # Record-only during the test body so the offending code path completes
    # and the server can shut down; the failure surfaces at teardown with
    # both acquisition sites in the message.
    lockcheck.install(raise_inline=False)
    try:
        yield
        lockcheck.check()
    finally:
        lockcheck.uninstall()
        lockcheck.reset()


@pytest.fixture(autouse=True)
def deadlock_watchdog():
    timeout = float(os.environ.get("REPRO_SERVING_TEST_TIMEOUT", DEFAULT_TIMEOUT_S))
    if timeout <= 0:  # escape hatch: 0 disables the watchdog (debugger use)
        yield
        return
    faulthandler.dump_traceback_later(timeout, exit=True, file=sys.stderr)
    try:
        yield
    finally:
        faulthandler.cancel_dump_traceback_later()
