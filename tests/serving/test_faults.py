"""Chaos suite: the server's robustness layer under injected faults.

Every test drives the real ``InferenceServer`` through a
``FaultInjectingEngine`` (deterministic: explicit call schedules, seeded
rates, or a ``threading.Event`` gate that freezes the engine at a known
point) and asserts the isolation/recovery invariants the robustness layer
claims: healthy requests survive poisoned batches, deadlines shed cleanly,
admission control bounds the queue, crashed engines recover under
supervision, and no code path ever leaks an unresolved future.
"""

import threading
import time

import numpy as np
import pytest

from repro.core.bfp import BFPConfig
from repro.models import MLP
from repro.serving import (
    BatchingConfig,
    DeadlineExceeded,
    EngineCrash,
    FaultInjectingEngine,
    FaultPlan,
    InferenceEngine,
    InferenceServer,
    InvalidRequest,
    NonFiniteOutput,
    ServerClosed,
    ServerOverloaded,
    ServerUnavailable,
    ServingError,
    TransientEngineError,
    freeze,
)
from repro.training.schedules import FixedBFPSchedule

CONFIG = BFPConfig(exponent_bits=8, group_size=16)
POISON = 777.0  # finite on purpose: passes submit validation, crashes the "kernel"


def make_engine(seed=0):
    model = MLP(32, [16], 4, rng=np.random.default_rng(seed))
    FixedBFPSchedule(4, config=CONFIG, seed=0).prepare(model, 4)
    model.eval()
    engine = InferenceEngine(freeze(model))
    engine.warmup(np.zeros((1, 32)))
    return engine


def faulty_engine(plan=None, gate=None, seed=0):
    return FaultInjectingEngine(make_engine(seed), plan, gate=gate)


def wait_until(predicate, timeout=10.0):
    start = time.monotonic()
    while time.monotonic() - start < timeout:
        if predicate():
            return True
        time.sleep(0.005)
    return False


class TestSubmitValidation:
    def test_nonfinite_payload_rejected(self):
        engine = make_engine()
        with InferenceServer(engine) as server:
            bad = np.zeros(32)
            bad[3] = np.nan
            with pytest.raises(InvalidRequest, match="non-finite"):
                server.submit(bad)

    def test_empty_and_non_numeric_payloads_rejected(self):
        engine = make_engine()
        with InferenceServer(engine) as server:
            with pytest.raises(InvalidRequest, match="empty"):
                server.submit(np.zeros((0, 32)))
            with pytest.raises(InvalidRequest, match="not numeric"):
                server.submit(np.array(["a", "b"]))

    def test_invalid_deadline_rejected(self):
        engine = make_engine()
        with InferenceServer(engine) as server:
            with pytest.raises(InvalidRequest, match="deadline_ms"):
                server.submit(np.zeros(32), deadline_ms=-5.0)

    def test_validation_can_be_disabled(self):
        engine = make_engine()
        config = BatchingConfig(max_batch_size=2, max_delay_ms=1.0,
                                validate_requests=False)
        with InferenceServer(engine, config) as server:
            bad = np.zeros(32)
            bad[0] = np.inf
            result = server.predict(bad, timeout=10)  # engine tolerates it
        assert result.output.shape == (4,)

    def test_invalid_request_is_a_value_error(self):
        assert issubclass(InvalidRequest, ValueError)
        assert issubclass(InvalidRequest, ServingError)


class TestPoisonIsolation:
    def test_full_batch_with_poison_isolates_exactly_the_offender(self, rng):
        """Deterministic single contaminated batch: plug the engine with one
        request, coalesce a full batch behind it, poison one member."""
        gate = threading.Event()
        engine = faulty_engine(FaultPlan(poison_marker=POISON), gate=gate)
        inputs = rng.standard_normal((8, 32))
        inputs[3, 0] = POISON
        config = BatchingConfig(max_batch_size=8, max_delay_ms=1.0, max_retries=1,
                                retry_backoff_ms=1.0)
        with InferenceServer(engine, config) as server:
            plug = server.submit(rng.standard_normal(32))
            assert wait_until(lambda: engine.entered == 1)  # plug is in flight
            futures = [server.submit(row) for row in inputs]
            gate.set()
            assert plug.result(timeout=10).output.shape == (4,)
            for index, future in enumerate(futures):
                if index == 3:
                    with pytest.raises(TransientEngineError, match="poison"):
                        future.result(timeout=10)
                else:
                    result = future.result(timeout=10)
                    expected = engine.model.predict(inputs[index][None])[0]
                    np.testing.assert_array_equal(result.output, expected)
                    assert result.timing.retries >= 1  # rode through a bisection
            stats = server.stats()
        assert stats["failed_requests"] == 1
        assert stats["requeues"] > 0
        assert stats["state"] == "healthy"
        assert engine.log.poison_hits >= 2  # original batch + poisoned halves

    def test_one_in_n_poison_every_healthy_request_resolves(self, rng):
        """The acceptance invariant: with 1-in-N requests poisoned, every
        healthy request in every contaminated batch still resolves."""
        engine = faulty_engine(FaultPlan(poison_marker=POISON))
        inputs = rng.standard_normal((24, 32))
        poison_indices = set(range(0, 24, 8))  # 1 in 8
        for index in poison_indices:
            inputs[index, 0] = POISON
        config = BatchingConfig(max_batch_size=8, max_delay_ms=5.0, max_retries=1,
                                retry_backoff_ms=1.0)
        with InferenceServer(engine, config) as server:
            futures = [server.submit(row) for row in inputs]
            for index, future in enumerate(futures):
                if index in poison_indices:
                    with pytest.raises(TransientEngineError):
                        future.result(timeout=30)
                else:
                    result = future.result(timeout=30)
                    expected = engine.model.predict(inputs[index][None])[0]
                    np.testing.assert_array_equal(result.output, expected)
            stats = server.stats()
        assert stats["failed_requests"] == len(poison_indices)
        assert stats["requests"] == 24 - len(poison_indices)


class TestTransientErrors:
    def test_singleton_transient_failure_retries_and_succeeds(self, rng):
        engine = faulty_engine(FaultPlan(transient_calls=(0,)))
        config = BatchingConfig(max_batch_size=4, max_delay_ms=1.0, max_retries=2,
                                retry_backoff_ms=1.0)
        with InferenceServer(engine, config) as server:
            result = server.predict(rng.standard_normal(32), timeout=10)
        assert result.timing.retries == 1
        assert engine.log.transient_errors == 1

    def test_retry_budget_exhaustion_fails_with_engine_error(self, rng):
        engine = faulty_engine(FaultPlan(transient_calls=(0, 1, 2, 3)))
        config = BatchingConfig(max_batch_size=4, max_delay_ms=1.0, max_retries=2,
                                retry_backoff_ms=1.0)
        with InferenceServer(engine, config) as server:
            future = server.submit(rng.standard_normal(32))
            with pytest.raises(TransientEngineError):
                future.result(timeout=10)
            stats = server.stats()
        assert stats["failed_requests"] == 1
        assert stats["requeues"] == 2  # bounded by max_retries


class TestNaNOutputIsolation:
    def test_poisoned_output_row_fails_only_that_request(self, rng):
        gate = threading.Event()
        engine = faulty_engine(FaultPlan(nan_calls=(1,)), gate=gate)
        config = BatchingConfig(max_batch_size=4, max_delay_ms=1.0,
                                validate_outputs=True)
        inputs = rng.standard_normal((4, 32))
        with InferenceServer(engine, config) as server:
            plug = server.submit(rng.standard_normal(32))        # engine call 0
            assert wait_until(lambda: engine.entered == 1)       # plug in flight
            futures = [server.submit(row) for row in inputs]     # engine call 1
            gate.set()
            assert plug.result(timeout=10).output.shape == (4,)
            for index, future in enumerate(futures):
                if index == 1:  # nan row = call_index % batch = 1
                    with pytest.raises(NonFiniteOutput, match="NaN"):
                        future.result(timeout=10)
                else:
                    result = future.result(timeout=10)
                    expected = engine.model.predict(inputs[index][None])[0]
                    np.testing.assert_array_equal(result.output, expected)
            stats = server.stats()
        assert stats["nonfinite_outputs"] == 1
        assert stats["requests"] == 4  # plug + 3 healthy


class TestDeadlines:
    def test_expired_requests_shed_before_assembly_in_order(self, rng):
        gate = threading.Event()
        engine = faulty_engine(gate=gate)
        config = BatchingConfig(max_batch_size=1, max_delay_ms=1.0)
        with InferenceServer(engine, config) as server:
            blocker = server.submit(rng.standard_normal(32))
            tight = server.submit(rng.standard_normal(32), deadline_ms=40.0)
            loose = server.submit(rng.standard_normal(32), deadline_ms=10_000.0)
            free = server.submit(rng.standard_normal(32))
            time.sleep(0.1)  # tight expires while the engine is held
            gate.set()
            assert blocker.result(timeout=10).output.shape == (4,)
            with pytest.raises(DeadlineExceeded, match="expired"):
                tight.result(timeout=10)
            loose_result = loose.result(timeout=10)
            assert loose_result.timing.deadline_ms == 10_000.0
            assert free.result(timeout=10).timing.deadline_ms is None
            stats = server.stats()
        assert stats["shed_deadline"] == 1
        # The shed request never cost an engine call.
        assert engine.log.calls == 3

    def test_watermark_sheds_expired_backlog(self, rng):
        gate = threading.Event()
        engine = faulty_engine(gate=gate)
        config = BatchingConfig(max_batch_size=64, max_delay_ms=50.0,
                                shed_watermark=2)
        with InferenceServer(engine, config) as server:
            blocker = server.submit(rng.standard_normal(32))
            doomed = [server.submit(rng.standard_normal(32), deadline_ms=10.0)
                      for _ in range(4)]
            time.sleep(0.08)
            gate.set()
            assert blocker.result(timeout=10).output.shape == (4,)
            for future in doomed:
                with pytest.raises(DeadlineExceeded):
                    future.result(timeout=10)
            stats = server.stats()
        assert stats["shed_deadline"] == 4
        assert stats["shed_watermark"] >= 1  # proactively shed, not at assembly


class TestAdmissionControl:
    def test_reject_policy_raises_at_capacity(self, rng):
        gate = threading.Event()
        engine = faulty_engine(gate=gate)
        config = BatchingConfig(max_batch_size=8, max_delay_ms=1.0,
                                max_queue_depth=2, admission_policy="reject")
        with InferenceServer(engine, config) as server:
            first = server.submit(rng.standard_normal(32))
            second = server.submit(rng.standard_normal(32))
            with pytest.raises(ServerOverloaded, match="capacity"):
                server.submit(rng.standard_normal(32))
            gate.set()
            assert first.result(timeout=10).output.shape == (4,)
            assert second.result(timeout=10).output.shape == (4,)
            # Capacity released on resolution: admission works again.
            assert server.predict(rng.standard_normal(32), timeout=10) is not None
            stats = server.stats()
        assert stats["rejected"] == 1

    def test_block_policy_times_out_then_raises(self, rng):
        gate = threading.Event()
        engine = faulty_engine(gate=gate)
        config = BatchingConfig(max_batch_size=8, max_delay_ms=1.0,
                                max_queue_depth=1, admission_policy="block",
                                block_timeout_ms=60.0)
        with InferenceServer(engine, config) as server:
            held = server.submit(rng.standard_normal(32))
            start = time.perf_counter()
            with pytest.raises(ServerOverloaded):
                server.submit(rng.standard_normal(32))
            waited = time.perf_counter() - start
            gate.set()
            held.result(timeout=10)
        assert waited >= 0.05  # actually blocked for the timeout

    def test_block_policy_admits_when_capacity_frees(self, rng):
        gate = threading.Event()
        engine = faulty_engine(gate=gate)
        config = BatchingConfig(max_batch_size=8, max_delay_ms=1.0,
                                max_queue_depth=1, admission_policy="block",
                                block_timeout_ms=5000.0)
        with InferenceServer(engine, config) as server:
            held = server.submit(rng.standard_normal(32))
            threading.Timer(0.03, gate.set).start()
            # Blocks until the first request resolves, then is admitted.
            result = server.predict(rng.standard_normal(32), timeout=10)
            held.result(timeout=10)
        assert result.output.shape == (4,)


class TestEngineSupervision:
    def test_crash_recovers_via_rewarm_and_serves_again(self, rng):
        engine = faulty_engine(FaultPlan(crash_calls=(0,), rewarms_to_recover=1))
        config = BatchingConfig(max_batch_size=4, max_delay_ms=1.0,
                                engine_restart_limit=2, restart_backoff_ms=1.0)
        with InferenceServer(engine, config) as server:
            doomed = server.submit(rng.standard_normal(32))
            with pytest.raises(EngineCrash, match="crashed while serving"):
                doomed.result(timeout=10)
            assert wait_until(lambda: server.stats()["state"] == "healthy")
            # Subsequent traffic is served by the restarted engine.
            result = server.predict(rng.standard_normal(32), timeout=10)
            assert result.output.shape == (4,)
            stats = server.stats()
        assert stats["engine_crashes"] == 1
        assert stats["engine_restarts"] == 1
        assert engine.log.rewarm_attempts >= 1

    def test_unrecoverable_crash_refuses_new_work(self, rng):
        engine = faulty_engine(FaultPlan(crash_calls=(0,), rewarms_to_recover=5))
        config = BatchingConfig(max_batch_size=4, max_delay_ms=1.0,
                                engine_restart_limit=1, restart_backoff_ms=1.0)
        server = InferenceServer(engine, config)
        doomed = server.submit(rng.standard_normal(32))
        with pytest.raises(EngineCrash):
            doomed.result(timeout=10)
        assert wait_until(lambda: server.stats()["state"] == "failed")
        with pytest.raises(ServerUnavailable, match="rewarm attempts failed"):
            server.submit(rng.standard_normal(32))
        server.close()  # clean close: handled failure, not a worker bug

    def test_recovery_under_sustained_chaos_traffic(self, rng):
        engine = faulty_engine(FaultPlan(seed=7, transient_rate=0.08,
                                         crash_calls=(5,), rewarms_to_recover=1))
        config = BatchingConfig(max_batch_size=8, max_delay_ms=2.0, max_retries=3,
                                retry_backoff_ms=1.0, engine_restart_limit=3,
                                restart_backoff_ms=1.0)
        inputs = rng.standard_normal((60, 32))
        failures = 0
        with InferenceServer(engine, config) as server:
            futures = [server.submit(row) for row in inputs]
            for future in futures:
                try:
                    future.result(timeout=30)  # every future must resolve
                except (ServingError, EngineCrash, TransientEngineError):
                    failures += 1
            assert wait_until(lambda: server.stats()["state"] == "healthy")
            # The server recovered: follow-up traffic completes.
            follow_up = [server.submit(row) for row in inputs[:10]]
            resolved = sum(1 for f in follow_up
                           if not isinstance(f.exception(timeout=30), Exception))
            stats = server.stats()
        assert engine.log.crashes == 1
        assert stats["engine_restarts"] == 1
        assert failures <= len(inputs) // 6  # transient blips mostly retried away
        assert resolved >= 9


class TestLifecycleRaces:
    def test_submit_during_close_raises_and_leaks_nothing(self, rng):
        gate = threading.Event()
        engine = faulty_engine(gate=gate)
        config = BatchingConfig(max_batch_size=4, max_delay_ms=1.0)
        server = InferenceServer(engine, config)
        held = server.submit(rng.standard_normal(32))
        closer = threading.Thread(target=server.close)
        closer.start()
        assert wait_until(lambda: server._closed)
        with pytest.raises(ServerClosed, match="closed"):
            server.submit(rng.standard_normal(32))
        gate.set()
        closer.join(timeout=15)
        assert not closer.is_alive()
        assert held.result(timeout=10).output.shape == (4,)

    def test_close_drains_pending_batches(self, rng):
        engine = make_engine()
        config = BatchingConfig(max_batch_size=64, max_delay_ms=10_000.0)
        server = InferenceServer(engine, config)
        futures = [server.submit(rng.standard_normal(32)) for _ in range(5)]
        futures.append(server.submit(rng.standard_normal((2, 16))))  # second bucket
        server.close()
        for future in futures:
            assert future.result(timeout=1).output is not None

    def test_close_without_drain_cancels_pending(self, rng):
        engine = make_engine()
        config = BatchingConfig(max_batch_size=64, max_delay_ms=10_000.0)
        server = InferenceServer(engine, config)
        futures = [server.submit(rng.standard_normal(32)) for _ in range(3)]
        server.close(drain=False)
        for future in futures:
            with pytest.raises(ServerClosed, match="before request completed"):
                future.result(timeout=1)

    def test_double_close_is_idempotent(self, rng):
        engine = make_engine()
        server = InferenceServer(engine)
        server.predict(rng.standard_normal(32), timeout=10)
        server.close()
        server.close()  # second close: no error, no hang

    def test_concurrent_closes_do_not_race(self, rng):
        engine = make_engine()
        server = InferenceServer(engine)
        errors = []

        def close_it():
            try:
                server.close()
            except Exception as error:  # pragma: no cover - diagnostic
                errors.append(error)

        threads = [threading.Thread(target=close_it) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=15)
        assert not errors

    def test_worker_death_resolves_futures_and_close_raises(self, rng):
        engine = make_engine()
        server = InferenceServer(engine, BatchingConfig(max_batch_size=4,
                                                        max_delay_ms=1.0))

        def boom(payload):
            raise RuntimeError("injected worker bug")

        server._bucket_key = boom
        future = server.submit(rng.standard_normal(32))
        with pytest.raises(RuntimeError, match="injected worker bug"):
            future.result(timeout=10)  # future resolved, not leaked
        with pytest.raises(RuntimeError, match="injected worker bug"):
            server.close()  # join re-raises with the worker's traceback
        with pytest.raises(ServerClosed):
            server.submit(rng.standard_normal(32))


class TestWorkerExitFault:
    """The worker_exit fault: hard process death, scheduled deterministically.

    In-process tests must not actually die, so they inject a recording
    ``exit_hook``; the cluster suite (``test_cluster.py``) runs the same
    fault with the real ``os._exit`` inside a worker process.
    """

    def test_scheduled_exit_runs_hook_with_exit_code(self):
        recorded = []
        plan = FaultPlan(exit_calls=(1,), exit_code=17)
        engine = FaultInjectingEngine(make_engine(), plan,
                                      exit_hook=recorded.append)
        batch = np.zeros((2, 32))
        engine.predict(batch)  # call 0: clean
        with pytest.raises(EngineCrash, match="injected worker exit at call 1"):
            engine.predict(batch)
        assert recorded == [17]
        assert engine.log.worker_exits == 1
        # Unlike a crash fault, an exit leaves no sticky down state in the
        # wrapper -- a real exit destroys the process, and a hooked one
        # must not wedge the engine for later calls.
        engine.predict(batch)
        assert engine.log.calls == 3

    def test_rate_based_exit_is_deterministic(self):
        def exits_for(seed):
            plan = FaultPlan(seed=seed, exit_rate=0.3)
            engine = FaultInjectingEngine(make_engine(), plan,
                                          exit_hook=lambda code: None)
            fired = []
            for index in range(20):
                try:
                    engine.predict(np.zeros((1, 32)))
                except EngineCrash:
                    fired.append(index)
            return fired

        first, second = exits_for(5), exits_for(5)
        assert first == second  # same seed, same schedule
        assert first  # 20 calls at 30%: some exits certainly fired
        assert exits_for(6) != first  # different seed, different schedule

    def test_exit_rate_validated(self):
        with pytest.raises(ValueError, match="exit_rate"):
            FaultPlan(exit_rate=1.5)
