"""Generation tier: KV-cached incremental decode + continuous batching.

Two layers of guarantees, tested separately:

* **Numerics** -- with an unquantized cache, one incremental
  ``decode_step`` must reproduce the full-recompute decoder's last-step
  logits *bit for bit* (same argmax, same everything), across dtypes,
  batch shapes and model depths.  With a BFP-quantized cache the
  divergence is bounded, not zero, and the packed blocks round-trip
  losslessly through :func:`bfp_quantize_tensor`.
* **Scheduling** -- the continuous-batching server admits and retires
  sequences between decode steps without perturbing its companions'
  tokens, honors deadlines mid-generation, drains cleanly, and fails
  admission loudly (``CacheExhausted`` is a ``ServerOverloaded``) when a
  request cannot ever fit the block pool.
"""

import threading
import time

import numpy as np
import pytest

from repro import observability
from repro.core.bfp import BFPConfig, bfp_quantize
from repro.models import transformer_base, transformer_small
from repro.observability import validate_chrome_trace
from repro.observability.tracing import GENERATION_STAGES
from repro.serving import freeze
from repro.serving.frozen import ActivationQuantizer, FrozenSeq2SeqTransformer
from repro.serving.generation import (
    CacheExhausted,
    GenerationConfig,
    GenerationServer,
    KVCacheManager,
)
from repro.serving.server import (
    DeadlineExceeded,
    InvalidRequest,
    ServerClosed,
    ServerOverloaded,
)
from repro.training.schedules import FixedBFPSchedule

CONFIG = BFPConfig(exponent_bits=8, group_size=16)
BOS, EOS = 1, 2


def frozen_seq2seq(builder=transformer_small, vocab=30, max_length=24, seed=11):
    model = builder(vocab_size=vocab, max_length=max_length,
                    rng=np.random.default_rng(seed))
    schedule = FixedBFPSchedule(4, config=CONFIG, seed=0)
    schedule.prepare(model, 8)
    model.eval()
    return freeze(model, meta={"bos_index": BOS, "eos_index": EOS})


def prompts(rng, count, low_len=4, high_len=10, vocab=30):
    return [rng.integers(3, vocab, size=int(rng.integers(low_len, high_len + 1)))
            for _ in range(count)]


def step_logits_both_paths(root: FrozenSeq2SeqTransformer, src, steps):
    """(incremental, recompute) per-step logits for a forced greedy rollout."""
    memory, memory_kv = root.prefill(src)
    cache = root.start_cache()
    generated = np.full((src.shape[0], 1), BOS, dtype=np.int64)
    incremental, recompute = [], []
    for step in range(steps):
        positions = np.full(src.shape[0], step, dtype=np.int64)
        logits = root.decode_step(generated[:, -1], positions, cache, memory_kv)
        decoded = root.decode(generated, memory, memory_kv=memory_kv)
        full = root.output_projection.run(decoded)[:, -1, :]
        incremental.append(logits)
        recompute.append(full)
        generated = np.concatenate(
            [generated, full.argmax(axis=-1)[:, None]], axis=1)
    return incremental, recompute


class TestIncrementalDecodeNumerics:
    @pytest.mark.parametrize("batch", [1, 3, 8])
    def test_step_logits_bit_identical_float64(self, rng, batch):
        root = frozen_seq2seq().root
        src = rng.integers(3, 30, size=(batch, 9))
        incremental, recompute = step_logits_both_paths(root, src, steps=7)
        for step, (inc, full) in enumerate(zip(incremental, recompute)):
            np.testing.assert_array_equal(inc, full, err_msg=f"step {step}")

    def test_step_logits_bit_identical_float32(self, rng):
        frozen = frozen_seq2seq().cast(np.float32)
        src = rng.integers(3, 30, size=(4, 8))
        incremental, recompute = step_logits_both_paths(frozen.root, src, steps=6)
        assert incremental[0].dtype == np.float32
        for step, (inc, full) in enumerate(zip(incremental, recompute)):
            np.testing.assert_array_equal(inc, full, err_msg=f"step {step}")

    def test_step_logits_bit_identical_deeper_model(self, rng):
        root = frozen_seq2seq(builder=transformer_base, max_length=16).root
        src = rng.integers(3, 30, size=(3, 7))
        incremental, recompute = step_logits_both_paths(root, src, steps=5)
        for step, (inc, full) in enumerate(zip(incremental, recompute)):
            np.testing.assert_array_equal(inc, full, err_msg=f"step {step}")

    def test_cached_greedy_token_identical_to_legacy(self, rng):
        root = frozen_seq2seq(seed=5).root
        src = rng.integers(3, 30, size=(6, 10))
        np.testing.assert_array_equal(
            root.greedy_decode_cached(src, BOS, EOS),
            root.greedy_decode(src, BOS, EOS))

    def test_early_retirement_identical_tokens(self, rng):
        root = frozen_seq2seq(seed=7).root
        src = rng.integers(3, 30, size=(8, 6))
        np.testing.assert_array_equal(
            root.greedy_decode(src, BOS, EOS, early_retirement=True),
            root.greedy_decode(src, BOS, EOS, early_retirement=False))

    def test_memory_kv_precompute_identical(self, rng):
        root = frozen_seq2seq().root
        src = rng.integers(3, 30, size=(3, 8))
        tgt = rng.integers(3, 30, size=(3, 6))
        memory = root.encode(src)
        np.testing.assert_array_equal(
            root.decode(tgt, memory, memory_kv=root.memory_kv(memory)),
            root.decode(tgt, memory))

    def test_quantized_cache_divergence_bounded(self, rng):
        """BFP-grid cache: logits drift, but stay within a tight envelope."""
        root = frozen_seq2seq().root
        src = rng.integers(3, 30, size=(4, 8))
        quantizer = ActivationQuantizer(8, 16, 8)
        memory, memory_kv = root.prefill(src)
        exact = root.start_cache()
        grid = root.start_cache(quantizer=quantizer)
        generated = np.full((4, 1), BOS, dtype=np.int64)
        worst_mean, worst_max = 0.0, 0.0
        for step in range(6):
            positions = np.full(4, step, dtype=np.int64)
            tokens = generated[:, -1]
            logits_exact = root.decode_step(tokens, positions, exact, memory_kv)
            logits_grid = root.decode_step(tokens, positions, grid, memory_kv)
            error = np.abs(logits_grid - logits_exact)
            worst_mean = max(worst_mean,
                             error.mean() / np.abs(logits_exact).mean())
            worst_max = max(worst_max, error.max() / np.abs(logits_exact).max())
            generated = np.concatenate(
                [generated, logits_exact.argmax(axis=-1)[:, None]], axis=1)
        # An untrained model's logits sit close together, so relative error
        # amplifies through softmax; the bound is "stays in a small envelope
        # and does not explode across steps", not bit-closeness.
        assert 0.0 < worst_mean < 0.25, f"mean relative divergence {worst_mean}"
        assert worst_max < 1.0, f"max relative divergence {worst_max}"


class TestKVCacheManager:
    def make(self, total_blocks=8, block_tokens=4, quantizer=None):
        return KVCacheManager(num_layers=2, num_heads=2, head_dim=8,
                              total_blocks=total_blocks,
                              block_tokens=block_tokens, quantizer=quantizer)

    def test_reserve_release_accounting(self):
        cache = self.make()
        assert cache.blocks_for(5) == 2 and cache.blocks_for(4) == 1
        cache.reserve(0, 5)
        cache.reserve(1, 4)
        assert cache.free_blocks == 5
        stats = cache.stats()
        assert stats.blocks_in_use == 3 and stats.sequences == 2
        cache.release(0)
        cache.release(1)
        assert cache.free_blocks == 8
        assert cache.stats().utilization == 0.0

    def test_exhaustion_raises(self):
        cache = self.make(total_blocks=2, block_tokens=4)
        cache.reserve(0, 8)
        assert not cache.can_reserve(1)
        with pytest.raises(CacheExhausted):
            cache.reserve(1, 1)
        assert isinstance(CacheExhausted("x"), ServerOverloaded)

    def test_append_gather_roundtrip(self, rng):
        cache = self.make()
        cache.reserve(0, 8)
        cache.reserve(1, 8)
        rows = {0: [], 1: []}
        for _ in range(5):
            k_new = rng.standard_normal((2, 2, 1, 8))
            v_new = rng.standard_normal((2, 2, 1, 8))
            for layer in range(2):
                cache.append_step([0, 1], layer, k_new, v_new)
            rows[0].append((k_new[0], v_new[0]))
            rows[1].append((k_new[1], v_new[1]))
        assert cache.length(0) == cache.length(1) == 5
        k, v = cache.gather([0, 1], layer=1, lengths=[5, 5])
        expected_k = np.stack([np.concatenate([r[0] for r in rows[0]], axis=1),
                               np.concatenate([r[0] for r in rows[1]], axis=1)])
        expected_v = np.stack([np.concatenate([r[1] for r in rows[0]], axis=1),
                               np.concatenate([r[1] for r in rows[1]], axis=1)])
        np.testing.assert_array_equal(k, expected_k)
        np.testing.assert_array_equal(v, expected_v)

    def test_quantized_blocks_pack_losslessly(self, rng):
        # head_dim == group_size: append-time per-head groups coincide with
        # the packed row's groups (the alignment the real models satisfy).
        quantizer = ActivationQuantizer(4, 16, 8)
        cache = KVCacheManager(num_layers=1, num_heads=2, head_dim=16,
                               total_blocks=4, block_tokens=4,
                               quantizer=quantizer)
        cache.reserve(0, 7)
        for _ in range(7):
            cache.append_step([0], 0, rng.standard_normal((1, 2, 1, 16)),
                              rng.standard_normal((1, 2, 1, 16)))
        packed = cache.packed_block(0, 0)
        k, _ = cache.gather([0], layer=0, lengths=[7])
        flat = k[0].transpose(1, 0, 2).reshape(7, -1)
        np.testing.assert_array_equal(packed.to_float(), flat)
        stats = cache.stats()
        assert stats.compression_vs_fp32 > 3.0
        # The cached rows already sit on the BFP grid: re-quantizing is a no-op.
        np.testing.assert_array_equal(
            flat, bfp_quantize(flat, mantissa_bits=4, group_size=16,
                               exponent_bits=8, rounding="nearest"))


class TestGenerationServer:
    def test_continuous_batching_matches_solo_decode(self, rng):
        """Admit/retire mid-flight must not perturb companion sequences."""
        frozen = frozen_seq2seq(seed=3)
        sources = prompts(rng, 6)
        caps = [4, 12, 6, 12, 5, 9]
        with GenerationServer(frozen, GenerationConfig(max_active=3)) as server:
            futures = [server.submit(src, max_new_tokens=cap)
                       for src, cap in zip(sources, caps)]
            batched = [f.result(timeout=60).tokens for f in futures]
        assert server.stats()["decode_steps"] > 0
        with GenerationServer(frozen, GenerationConfig(max_active=1)) as server:
            solo = [server.generate(src, max_new_tokens=cap, timeout=60).tokens
                    for src, cap in zip(sources, caps)]
        for got, want in zip(batched, solo):
            np.testing.assert_array_equal(got, want)

    def test_matches_legacy_greedy_decode(self, rng):
        frozen = frozen_seq2seq(seed=9)
        src = rng.integers(3, 30, size=10)
        reference = frozen.root.greedy_decode(src[None], BOS, EOS)[0]
        with GenerationServer(frozen) as server:
            result = server.generate(src, timeout=60)
        eos_hits = np.flatnonzero(reference == EOS)
        stop = eos_hits[0] + 1 if eos_hits.size else reference.shape[0]
        np.testing.assert_array_equal(result.tokens, reference[:stop])
        assert result.timing.finish_reason in ("eos", "length")
        assert result.timing.ttft_ms >= 0.0

    def test_streaming_tokens_match_future(self, rng):
        frozen = frozen_seq2seq()
        with GenerationServer(frozen) as server:
            stream = server.stream(rng.integers(3, 30, size=8),
                                   max_new_tokens=6)
            streamed = list(stream)
            result = stream.result(timeout=60)
        np.testing.assert_array_equal(np.array(streamed, dtype=np.int64),
                                      result.new_tokens)

    def test_deadline_expires_mid_generation(self, rng):
        frozen = frozen_seq2seq()
        root = frozen.root
        original = root.decode_step
        first_step_done = threading.Event()

        def slow_decode_step(*args, **kwargs):
            logits = original(*args, **kwargs)
            first_step_done.set()
            time.sleep(0.05)
            return logits

        root.decode_step = slow_decode_step
        try:
            with GenerationServer(frozen) as server:
                stream = server.stream(rng.integers(3, 30, size=8),
                                       max_new_tokens=20, deadline_ms=120)
                assert first_step_done.wait(timeout=30)
                with pytest.raises(DeadlineExceeded):
                    stream.result(timeout=60)
            assert server.stats()["failed"] == 1
        finally:
            root.decode_step = original

    def test_drain_completes_active_sequences(self, rng):
        frozen = frozen_seq2seq()
        server = GenerationServer(frozen, GenerationConfig(max_active=2))
        futures = [server.submit(src, max_new_tokens=10)
                   for src in prompts(rng, 4)]
        server.close(drain=True)
        for future in futures:
            assert future.result(timeout=60).tokens.shape[0] >= 2
        with pytest.raises(ServerClosed):
            server.submit(np.array([3, 4, 5]))

    def test_oversized_request_rejected_as_overloaded(self, rng):
        frozen = frozen_seq2seq()
        config = GenerationConfig(max_active=2, block_tokens=4, cache_blocks=2)
        with GenerationServer(frozen, config) as server:
            with pytest.raises(ServerOverloaded):
                server.submit(rng.integers(3, 30, size=6), max_new_tokens=16)
            assert server.stats()["rejected"] == 1

    def test_pool_contention_queues_instead_of_corrupting(self, rng):
        """Blocks for one worst-case sequence only: requests serialize."""
        frozen = frozen_seq2seq()
        config = GenerationConfig(max_active=4, block_tokens=4, cache_blocks=3)
        with GenerationServer(frozen, config) as server:
            futures = [server.submit(src, max_new_tokens=12)
                       for src in prompts(rng, 3)]
            results = [f.result(timeout=60) for f in futures]
        assert all(r.tokens[0] == BOS for r in results)
        stats = server.stats()
        assert stats["completed"] == 3
        assert stats["mean_batch_per_step"] <= 1.0 + 1e-9
        assert stats["cache"]["blocks_in_use"] == 0

    def test_invalid_requests(self):
        frozen = frozen_seq2seq()
        with GenerationServer(frozen) as server:
            with pytest.raises(InvalidRequest):
                server.submit(np.zeros((2, 3), dtype=np.int64))
            with pytest.raises(InvalidRequest):
                server.submit(np.array([0.5, 1.5]))
            with pytest.raises(InvalidRequest):
                server.submit(np.array([3, 4]), max_new_tokens=0)

    def test_quantized_cache_server_generates(self, rng):
        frozen = frozen_seq2seq()
        config = GenerationConfig(kv_mantissa_bits=4)
        with GenerationServer(frozen, config) as server:
            result = server.generate(rng.integers(3, 30, size=8),
                                     max_new_tokens=8, timeout=60)
        assert result.tokens.shape[0] >= 2
        assert server.stats()["cache"]["compression_vs_fp32"] > 3.0


class TestGenerationObservability:
    @pytest.fixture(autouse=True)
    def observability_sandbox(self):
        observability.set_enabled(False)
        observability.reset()
        yield
        observability.set_enabled(False)
        observability.reset()

    def test_metrics_and_trace_stages(self, rng):
        frozen = frozen_seq2seq()
        observability.set_enabled(True, sample_rate=1.0)
        with GenerationServer(frozen) as server:
            for src in prompts(rng, 3):
                server.generate(src, max_new_tokens=6, timeout=60)
        trace = observability.tracer().to_chrome()
        validate_chrome_trace(trace, require_stages=GENERATION_STAGES)
        names = {metric["name"]
                 for metric in observability.registry().snapshot()["metrics"]}
        for expected in ("generation_tokens_total", "generation_steps_total",
                         "generation_step_ms", "generation_ttft_ms",
                         "generation_active_sequences",
                         "generation_cache_blocks_used"):
            assert expected in names, f"missing metric {expected}"
        decode_events = [event for event in trace["traceEvents"]
                         if event["name"] == "decode_step"]
        assert decode_events and all(
            "batch" in event["args"] and "cache_blocks_used" in event["args"]
            for event in decode_events)
