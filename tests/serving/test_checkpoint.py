"""Checkpoint round-trips: freeze -> save -> load -> bit-identical outputs."""

import numpy as np
import pytest

from repro import nn
from repro.core.bfp import BFPConfig
from repro.models import (
    MLP,
    mobilenet_v2,
    resnet20,
    resnet50,
    tiny_yolo,
    transformer_small,
    vgg11,
)
from repro.serving import CheckpointError, freeze, load_frozen, load_state, save_frozen, save_state
from repro.training.schedules import FixedBFPSchedule, FP32Schedule

CONFIG = BFPConfig(exponent_bits=8, group_size=16)


def attach(model, schedule=None):
    schedule = schedule if schedule is not None else FixedBFPSchedule(4, config=CONFIG, seed=0)
    schedule.prepare(model, 8)
    model.eval()
    return model


FAMILY_BUILDERS = {
    "mlp": lambda rng: (MLP(64, [32], 10, rng=rng), (3, 64)),
    "vgg": lambda rng: (vgg11(width=4, rng=rng), (2, 3, 16, 16)),
    "resnet": lambda rng: (resnet20(width=4, rng=rng), (2, 3, 16, 16)),
    "resnet50": lambda rng: (resnet50(width=4, rng=rng), (2, 3, 16, 16)),
    "mobilenet": lambda rng: (mobilenet_v2(width=8, rng=rng), (2, 3, 16, 16)),
    "yolo": lambda rng: (tiny_yolo(num_classes=3, image_size=16, rng=rng), (2, 3, 16, 16)),
}


class TestFrozenRoundTrip:
    @pytest.mark.parametrize("family", sorted(FAMILY_BUILDERS))
    def test_logits_bit_identical_after_roundtrip(self, family, rng, tmp_path):
        model, input_shape = FAMILY_BUILDERS[family](np.random.default_rng(9))
        attach(model)
        inputs = rng.standard_normal(input_shape)
        frozen = freeze(model)
        with nn.no_grad():
            live = model(inputs).data
        path = save_frozen(frozen, tmp_path / f"{family}.npz")
        loaded = load_frozen(path)
        np.testing.assert_array_equal(loaded.predict(inputs), live)
        assert loaded.family == frozen.family

    def test_transformer_roundtrip_bit_identical(self, rng, tmp_path):
        model = transformer_small(vocab_size=30, max_length=12,
                                  rng=np.random.default_rng(4))
        attach(model)
        src = rng.integers(3, 30, size=(3, 8))
        tgt = rng.integers(3, 30, size=(3, 8))
        frozen = freeze(model, meta={"bos_index": 1, "eos_index": 2})
        path = save_frozen(frozen, tmp_path / "transformer.npz")
        loaded = load_frozen(path)
        np.testing.assert_array_equal(loaded.forward_logits(src, tgt),
                                      frozen.forward_logits(src, tgt))
        np.testing.assert_array_equal(loaded.predict(src), frozen.predict(src))
        assert loaded.meta["bos_index"] == 1 and loaded.meta["eos_index"] == 2

    def test_fp32_frozen_roundtrip(self, rng, tmp_path):
        model, input_shape = FAMILY_BUILDERS["mlp"](np.random.default_rng(1))
        attach(model, FP32Schedule())
        inputs = rng.standard_normal(input_shape)
        frozen = freeze(model)
        loaded = load_frozen(save_frozen(frozen, tmp_path / "fp32.npz"))
        np.testing.assert_array_equal(loaded.predict(inputs), frozen.predict(inputs))

    def test_packed_weights_stored_compactly(self, tmp_path):
        """Quantized weights land on disk as small integer arrays, not floats."""
        model, _ = FAMILY_BUILDERS["mlp"](np.random.default_rng(2))
        attach(model)
        path = save_frozen(freeze(model), tmp_path / "mlp.npz")
        with np.load(path) as data:
            packed_keys = [key for key in data.files if key.endswith("mantissas")]
            assert packed_keys, "expected packed mantissa arrays in the checkpoint"
            for key in packed_keys:
                assert data[key].dtype == np.uint8

    def test_rejects_non_frozen_file(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, values=np.zeros(3))
        with pytest.raises(ValueError, match="not a frozen-model checkpoint"):
            load_frozen(path)


class TestStateCheckpoint:
    def test_state_roundtrip_includes_batchnorm_buffers(self, rng, tmp_path):
        source = nn.Sequential(nn.Conv2d(3, 4, 3, padding=1, rng=np.random.default_rng(0)),
                               nn.BatchNorm2d(4), nn.ReLU())
        # Run a training step so the running statistics move off their init.
        source.train()
        with nn.no_grad():
            source(rng.standard_normal((4, 3, 8, 8)))
        target = nn.Sequential(nn.Conv2d(3, 4, 3, padding=1, rng=np.random.default_rng(99)),
                               nn.BatchNorm2d(4), nn.ReLU())
        path = save_state(source, tmp_path / "state.npz")
        load_state(target, path)
        for (name, value), (_, expected) in zip(sorted(target.state_dict().items()),
                                                sorted(source.state_dict().items())):
            np.testing.assert_array_equal(value, expected, err_msg=name)
        source.eval()
        target.eval()
        inputs = rng.standard_normal((2, 3, 8, 8))
        with nn.no_grad():
            np.testing.assert_array_equal(target(inputs).data, source(inputs).data)

    def test_load_state_invalidates_weight_caches(self, rng, tmp_path):
        model = MLP(16, [8], 4, rng=np.random.default_rng(0))
        attach(model)
        versions = [p.version for p in model.parameters()]
        path = save_state(model, tmp_path / "mlp_state.npz")
        load_state(model, path)
        assert all(p.version > v for p, v in zip(model.parameters(), versions))


class TestCorruptCheckpoints:
    """Damaged or mismatched checkpoints fail fast with named diagnostics."""

    def _frozen_path(self, tmp_path):
        model, _ = FAMILY_BUILDERS["mlp"](np.random.default_rng(0))
        attach(model)
        return save_frozen(freeze(model), tmp_path / "mlp.npz")

    def test_truncated_frozen_file_raises_checkpoint_error(self, tmp_path):
        path = self._frozen_path(tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointError, match="mlp.npz"):
            load_frozen(path)

    def test_non_zip_garbage_raises_checkpoint_error(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not a zip archive at all")
        with pytest.raises(CheckpointError, match="garbage.npz"):
            load_frozen(path)

    def test_missing_array_named_in_error(self, tmp_path):
        path = self._frozen_path(tmp_path)
        with np.load(path) as data:
            arrays = {key: data[key] for key in data.files}
        victim = next(key for key in sorted(arrays) if key.endswith("mantissas"))
        del arrays[victim]
        np.savez(path, **arrays)
        with pytest.raises(CheckpointError, match="missing 1 of"):
            load_frozen(path)
        with pytest.raises(CheckpointError, match=victim.split("/")[-1]):
            load_frozen(path)

    def test_corrupted_spec_raises_checkpoint_error(self, tmp_path):
        path = self._frozen_path(tmp_path)
        with np.load(path) as data:
            arrays = {key: data[key] for key in data.files}
        arrays["__spec__"] = np.array('{"format": "repro-frozen", truncated')
        np.savez(path, **arrays)
        with pytest.raises(CheckpointError, match="spec is corrupted"):
            load_frozen(path)

    def test_state_checkpoint_architecture_mismatch_names_keys(self, tmp_path):
        source = MLP(16, [8], 4, rng=np.random.default_rng(0))
        path = save_state(source, tmp_path / "state.npz")
        target = MLP(16, [8, 8], 4, rng=np.random.default_rng(1))
        with pytest.raises(CheckpointError, match="does not match the model"):
            load_state(target, path)
        # The error names concrete offending keys, not just a count.
        with pytest.raises(CheckpointError, match="missing"):
            load_state(target, path)

    def test_truncated_state_checkpoint_raises_checkpoint_error(self, tmp_path):
        model = MLP(16, [8], 4, rng=np.random.default_rng(0))
        path = save_state(model, tmp_path / "state.npz")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 3])
        with pytest.raises(CheckpointError, match="corrupted or truncated"):
            load_state(model, path)

    def test_missing_file_still_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_frozen(tmp_path / "nope.npz")

    def test_checkpoint_error_is_a_value_error(self):
        assert issubclass(CheckpointError, ValueError)
