"""Sharded serving tier: equivalence, routing, admission, supervision.

Every cluster here runs real worker processes (spawn) over real frozen
checkpoints with real shared-memory transport -- nothing is mocked, because
the subject under test *is* the process boundary.  Models are kept tiny
(the 32->16->4 MLP the rest of the serving suite uses) so worker startup is
a few hundred milliseconds.
"""

import os
from pathlib import Path

import numpy as np
import pytest

from repro.core.bfp import BFPConfig
from repro.models import MLP, transformer_small
from repro.serving import (
    BatchingConfig,
    ClusterConfig,
    EngineCrash,
    FaultPlan,
    InferenceEngine,
    InvalidRequest,
    ServerClosed,
    ServerOverloaded,
    ServerStats,
    ServingError,
    ShardedServer,
    WorkerSpec,
    WorkerStartupError,
    freeze,
    load_frozen,
    save_frozen,
)
from repro.training.schedules import FixedBFPSchedule

CONFIG = BFPConfig(exponent_bits=8, group_size=16)
SHM_DIR = Path("/dev/shm")


def repro_ring_segments():
    if not SHM_DIR.is_dir():
        return set()
    return {entry for entry in os.listdir(SHM_DIR)
            if entry.startswith("repro_ring_")}


def build_mlp_checkpoint(path, seed=0):
    model = MLP(32, [16], 4, rng=np.random.default_rng(seed))
    FixedBFPSchedule(4, config=CONFIG, seed=0).prepare(model, 4)
    model.eval()
    return save_frozen(freeze(model), path)


@pytest.fixture(scope="module")
def mlp_checkpoint(tmp_path_factory):
    return str(build_mlp_checkpoint(
        tmp_path_factory.mktemp("cluster") / "mlp.npz"))


@pytest.fixture(scope="module")
def seq_checkpoint(tmp_path_factory):
    model = transformer_small(vocab_size=20, max_length=12,
                              rng=np.random.default_rng(0))
    FixedBFPSchedule(4, config=CONFIG, seed=0).prepare(model, 4)
    model.eval()
    frozen = freeze(model, meta={"bos_index": 1, "eos_index": 2})
    return str(save_frozen(frozen,
                           tmp_path_factory.mktemp("cluster") / "seq.npz"))


def mlp_spec(checkpoint, model="mlp", **overrides):
    defaults = dict(checkpoint=checkpoint, model=model,
                    warmup_shapes=((1, 32),))
    defaults.update(overrides)
    return WorkerSpec(**defaults)


class TestEquivalenceAndOrdering:
    def test_results_bit_identical_to_local_engine(self, mlp_checkpoint, rng):
        """Batch-size-1 shards run the exact arithmetic of a local
        single-row forward, so outputs must match bit for bit after two
        shared-memory hops and a process boundary."""
        local = InferenceEngine(load_frozen(mlp_checkpoint))
        inputs = rng.standard_normal((12, 32))
        specs = [mlp_spec(mlp_checkpoint) for _ in range(2)]
        config = ClusterConfig(batching=BatchingConfig(max_batch_size=1,
                                                       max_delay_ms=0.0))
        with ShardedServer(specs, config) as cluster:
            futures = [cluster.submit(row) for row in inputs]
            outputs = [f.result(timeout=60).output for f in futures]
        for row, output in zip(inputs, outputs):
            assert np.array_equal(output, local.model.predict(row[None])[0])

    def test_batched_results_map_to_their_requests(self, mlp_checkpoint, rng):
        local = InferenceEngine(load_frozen(mlp_checkpoint))
        inputs = rng.standard_normal((24, 32))
        specs = [mlp_spec(mlp_checkpoint) for _ in range(2)]
        config = ClusterConfig(batching=BatchingConfig(max_batch_size=8,
                                                       max_delay_ms=10.0))
        with ShardedServer(specs, config) as cluster:
            futures = [cluster.submit(row) for row in inputs]
            results = [f.result(timeout=60) for f in futures]
        for row, result in zip(inputs, results):
            expected = local.model.predict(row[None])[0]
            np.testing.assert_allclose(result.output, expected,
                                       rtol=1e-9, atol=1e-12)

    def test_oversized_payloads_fall_back_to_pipe(self, mlp_checkpoint, rng):
        """Payloads larger than a ring slot must still serve correctly
        (pickled over the control pipe) and be counted."""
        local = InferenceEngine(load_frozen(mlp_checkpoint))
        inputs = rng.standard_normal((6, 32))  # one row = 256 B > 128 B slot
        specs = [mlp_spec(mlp_checkpoint)]
        config = ClusterConfig(
            batching=BatchingConfig(max_batch_size=2, max_delay_ms=5.0),
            slot_size=128, ring_slots=2)
        with ShardedServer(specs, config) as cluster:
            futures = [cluster.submit(row) for row in inputs]
            outputs = [f.result(timeout=60).output for f in futures]
            stats = cluster.stats()
        assert stats.oversized_transfers > 0
        for row, output in zip(inputs, outputs):
            np.testing.assert_allclose(output, local.model.predict(row[None])[0],
                                       rtol=1e-9, atol=1e-12)


class TestRoutingAndFamilies:
    def test_round_robin_uses_every_shard(self, mlp_checkpoint, rng):
        specs = [mlp_spec(mlp_checkpoint) for _ in range(2)]
        config = ClusterConfig(batching=BatchingConfig(max_batch_size=1,
                                                       max_delay_ms=0.0))
        with ShardedServer(specs, config) as cluster:
            for _ in range(8):
                cluster.predict(rng.standard_normal(32), timeout=60)
            shard_requests = [s.requests for s in cluster.stats().shards]
        assert shard_requests == [4, 4]

    def test_least_loaded_routing_serves_correctly(self, mlp_checkpoint, rng):
        local = InferenceEngine(load_frozen(mlp_checkpoint))
        specs = [mlp_spec(mlp_checkpoint) for _ in range(2)]
        config = ClusterConfig(routing="least_loaded",
                               batching=BatchingConfig(max_batch_size=4,
                                                       max_delay_ms=2.0))
        inputs = rng.standard_normal((16, 32))
        with ShardedServer(specs, config) as cluster:
            futures = [cluster.submit(row) for row in inputs]
            outputs = [f.result(timeout=60).output for f in futures]
        for row, output in zip(inputs, outputs):
            np.testing.assert_allclose(output, local.model.predict(row[None])[0],
                                       rtol=1e-9, atol=1e-12)

    def test_multiple_families_route_by_model(self, mlp_checkpoint, tmp_path, rng):
        other_checkpoint = str(build_mlp_checkpoint(tmp_path / "other.npz",
                                                    seed=9))
        local_a = InferenceEngine(load_frozen(mlp_checkpoint))
        local_b = InferenceEngine(load_frozen(other_checkpoint))
        specs = [mlp_spec(mlp_checkpoint, model="a"),
                 mlp_spec(other_checkpoint, model="b")]
        config = ClusterConfig(batching=BatchingConfig(max_batch_size=4,
                                                       max_delay_ms=2.0))
        row = rng.standard_normal(32)
        with ShardedServer(specs, config) as cluster:
            assert cluster.models == ("a", "b")
            out_a = cluster.predict(row, model="a", timeout=60).output
            out_b = cluster.predict(row, model="b", timeout=60).output
            with pytest.raises(InvalidRequest, match="unknown model"):
                cluster.submit(row, model="zebra")
            with pytest.raises(InvalidRequest, match="must name one"):
                cluster.submit(row)  # ambiguous: two families hosted
        assert np.array_equal(out_a, local_a.model.predict(row[None])[0])
        assert np.array_equal(out_b, local_b.model.predict(row[None])[0])
        assert not np.array_equal(out_a, out_b)  # different weights served

    def test_token_buckets_have_shard_affinity(self, seq_checkpoint, rng):
        """All requests padded to one bucket land on one shard, so each
        worker sees a single batch geometry per bucket (padding locality
        survives sharding)."""
        specs = [WorkerSpec(checkpoint=seq_checkpoint, model="seq",
                            warmup_shapes=((1, 6),), warmup_dtype="int64")
                 for _ in range(2)]
        config = ClusterConfig(batching=BatchingConfig(
            max_batch_size=4, max_delay_ms=2.0, pad_lengths=(6, 12),
            pad_value=0))
        with ShardedServer(specs, config) as cluster:
            short = [cluster.submit(rng.integers(3, 20, size=4))
                     for _ in range(6)]
            long = [cluster.submit(rng.integers(3, 20, size=10))
                    for _ in range(6)]
            for future in short + long:
                future.result(timeout=60)
            shard_requests = [s.requests for s in cluster.stats().shards]
        # Bucket 0 (len<=6) -> shard 0, bucket 1 (len<=12) -> shard 1.
        assert shard_requests == [6, 6]


class TestAdmissionControl:
    def test_reject_policy_bounds_cluster_queue(self, mlp_checkpoint, rng):
        # A scheduled latency fault holds the worker busy long enough that
        # the second submit deterministically finds the cluster at capacity.
        plan = FaultPlan(latency_calls=(0,), latency_ms=500.0)
        specs = [mlp_spec(mlp_checkpoint, fault_plan=plan)]
        config = ClusterConfig(
            batching=BatchingConfig(max_batch_size=1, max_delay_ms=0.0),
            max_queue_depth=1, admission_policy="reject")
        with ShardedServer(specs, config) as cluster:
            first = cluster.submit(rng.standard_normal(32))
            with pytest.raises(ServerOverloaded, match="capacity"):
                cluster.submit(rng.standard_normal(32))
            first.result(timeout=60)
            # Capacity released on completion: admission works again.
            cluster.predict(rng.standard_normal(32), timeout=60)
            assert cluster.stats().rejected >= 1

    def test_block_policy_times_out(self, mlp_checkpoint, rng):
        plan = FaultPlan(latency_calls=(0,), latency_ms=500.0)
        specs = [mlp_spec(mlp_checkpoint, fault_plan=plan)]
        config = ClusterConfig(
            batching=BatchingConfig(max_batch_size=1, max_delay_ms=0.0),
            max_queue_depth=1, admission_policy="block", block_timeout_ms=50.0)
        with ShardedServer(specs, config) as cluster:
            first = cluster.submit(rng.standard_normal(32))
            with pytest.raises(ServerOverloaded):
                cluster.submit(rng.standard_normal(32))
            first.result(timeout=60)


class TestSupervisionAndChaos:
    def test_worker_exit_loses_no_healthy_request(self, mlp_checkpoint, rng):
        """Acceptance criterion: kill a worker process mid-load (the
        worker_exit fault = os._exit inside the worker, no cleanup) and
        account for every request -- each either completes (possibly after
        the respawn) or fails fast with a descriptive EngineCrash.  Nothing
        hangs, nothing is silently dropped, and the cluster ends healthy."""
        plan = FaultPlan(exit_calls=(2,), exit_code=43)
        specs = [mlp_spec(mlp_checkpoint, fault_plan=plan),
                 mlp_spec(mlp_checkpoint)]
        config = ClusterConfig(batching=BatchingConfig(
            max_batch_size=4, max_delay_ms=2.0,
            engine_restart_limit=3, restart_backoff_ms=10.0))
        inputs = rng.standard_normal((40, 32))
        with ShardedServer(specs, config) as cluster:
            futures = [cluster.submit(row) for row in inputs]
            completed, crashed = 0, 0
            for future in futures:
                try:
                    future.result(timeout=120)
                    completed += 1
                except (EngineCrash, ServingError) as error:
                    crashed += 1
                    assert str(error)  # descriptive, not a bare failure
            stats = cluster.stats()
            # Every request resolved one way or the other...
            assert completed + crashed == len(inputs)
            # ...only the batch in flight at the kill could have failed...
            assert 0 < crashed <= 4
            # ...the dead worker was respawned and re-warmed...
            assert stats.worker_respawns >= 1
            assert stats.engine_crashes >= 1
            # ...and the cluster serves healthily again afterwards.
            for row in inputs[:8]:
                cluster.predict(row, timeout=60)
            assert cluster.stats().state == "healthy"
            assert all(s.state == "healthy" for s in cluster.stats().shards)

    def test_startup_failure_raises_and_leaks_nothing(self, tmp_path):
        before = repro_ring_segments()
        spec = WorkerSpec(checkpoint=str(tmp_path / "missing.npz"),
                          model="ghost")
        with pytest.raises(WorkerStartupError, match="ghost"):
            ShardedServer([spec], ClusterConfig(spawn_timeout_s=60.0))
        assert repro_ring_segments() <= before


class TestStatsAndLifecycle:
    def test_stats_aggregate_with_per_shard_entries(self, mlp_checkpoint, rng):
        specs = [mlp_spec(mlp_checkpoint) for _ in range(2)]
        config = ClusterConfig(batching=BatchingConfig(max_batch_size=4,
                                                       max_delay_ms=2.0))
        with ShardedServer(specs, config) as cluster:
            futures = [cluster.submit(rng.standard_normal(32))
                       for _ in range(16)]
            for future in futures:
                future.result(timeout=60)
            stats = cluster.stats()
        assert isinstance(stats, ServerStats)
        assert stats.workers == 2 and len(stats.shards) == 2
        assert stats.requests == 16
        assert sum(s.requests for s in stats.shards) == 16
        assert stats.state == "healthy"
        assert stats.latency_ms_p95 >= stats.latency_ms_p50 > 0
        assert all(isinstance(s, ServerStats) and s.shards == ()
                   for s in stats.shards)
        rendered = stats.as_dict()
        assert rendered["workers"] == 2 and len(rendered["shards"]) == 2

    def test_close_releases_every_segment_and_refuses_new_work(
            self, mlp_checkpoint, rng):
        before = repro_ring_segments()
        specs = [mlp_spec(mlp_checkpoint) for _ in range(2)]
        cluster = ShardedServer(specs, ClusterConfig())
        try:
            if SHM_DIR.is_dir():
                assert len(repro_ring_segments()) >= len(before) + 4
            cluster.predict(rng.standard_normal(32), timeout=60)
        finally:
            cluster.close()
        assert repro_ring_segments() <= before  # nothing leaked
        with pytest.raises(ServerClosed):
            cluster.submit(rng.standard_normal(32))
        cluster.close()  # idempotent
