"""Dynamic-batching server invariants: ordering, timeout flush, bucketing."""

import threading
import time

import numpy as np
import pytest

from repro.core.bfp import BFPConfig
from repro.models import MLP, transformer_small
from repro.serving import (
    BatchingConfig,
    InferenceEngine,
    InferenceServer,
    ServerStats,
    freeze,
)
from repro.training.schedules import FixedBFPSchedule

CONFIG = BFPConfig(exponent_bits=8, group_size=16)


def make_engine(rng_seed=0):
    model = MLP(32, [16], 4, rng=np.random.default_rng(rng_seed))
    FixedBFPSchedule(4, config=CONFIG, seed=0).prepare(model, 4)
    model.eval()
    engine = InferenceEngine(freeze(model))
    engine.warmup(np.zeros((1, 32)))
    return engine


def make_seq_engine(rng_seed=0, vocab=20, max_length=12):
    model = transformer_small(vocab_size=vocab, max_length=max_length,
                              rng=np.random.default_rng(rng_seed))
    FixedBFPSchedule(4, config=CONFIG, seed=0).prepare(model, 4)
    model.eval()
    frozen = freeze(model, meta={"bos_index": 1, "eos_index": 2})
    return InferenceEngine(frozen)


class TestOrderingAndCorrectness:
    def test_results_map_to_their_requests(self, rng):
        engine = make_engine()
        inputs = rng.standard_normal((40, 32))
        with InferenceServer(engine, BatchingConfig(max_batch_size=8,
                                                    max_delay_ms=20.0)) as server:
            futures = [server.submit(inputs[i]) for i in range(len(inputs))]
            results = [f.result(timeout=10) for f in futures]
        for i, result in enumerate(results):
            expected = engine.model.predict(inputs[i][None])[0]
            np.testing.assert_allclose(result.output, expected, rtol=1e-9, atol=1e-12)

    def test_batches_bounded_by_max_batch_size(self, rng):
        engine = make_engine()
        inputs = rng.standard_normal((30, 32))
        with InferenceServer(engine, BatchingConfig(max_batch_size=4,
                                                    max_delay_ms=50.0)) as server:
            futures = [server.submit(row) for row in inputs]
            results = [f.result(timeout=10) for f in futures]
        assert all(r.timing.batch_size <= 4 for r in results)
        assert max(r.timing.batch_size for r in results) > 1  # coalescing happened

    def test_sync_predict(self, rng):
        engine = make_engine()
        with InferenceServer(engine, BatchingConfig(max_batch_size=4,
                                                    max_delay_ms=1.0)) as server:
            result = server.predict(rng.standard_normal(32), timeout=10)
        assert result.output.shape == (4,)
        assert result.timing.total_ms >= result.timing.compute_ms


class TestTimeoutFlush:
    def test_single_request_flushes_on_timeout(self, rng):
        engine = make_engine()
        with InferenceServer(engine, BatchingConfig(max_batch_size=64,
                                                    max_delay_ms=10.0)) as server:
            start = time.perf_counter()
            result = server.submit(rng.standard_normal(32)).result(timeout=10)
            elapsed_ms = (time.perf_counter() - start) * 1e3
        assert result.timing.batch_size == 1
        # The flush must wait for the configured delay, not block forever.
        assert elapsed_ms >= 5.0

    def test_trickled_requests_all_complete(self, rng):
        engine = make_engine()
        with InferenceServer(engine, BatchingConfig(max_batch_size=64,
                                                    max_delay_ms=5.0)) as server:
            futures = []
            for _ in range(5):
                futures.append(server.submit(rng.standard_normal(32)))
                time.sleep(0.002)
            results = [f.result(timeout=10) for f in futures]
        assert len(results) == 5

    def test_close_flushes_pending(self, rng):
        engine = make_engine()
        server = InferenceServer(engine, BatchingConfig(max_batch_size=64,
                                                        max_delay_ms=10_000.0))
        future = server.submit(rng.standard_normal(32))
        server.close()
        assert future.result(timeout=1).output.shape == (4,)
        with pytest.raises(RuntimeError, match="closed"):
            server.submit(rng.standard_normal(32))


class TestBucketedPadding:
    def test_variable_lengths_share_padded_buckets(self, rng):
        engine = make_seq_engine()
        config = BatchingConfig(max_batch_size=8, max_delay_ms=30.0,
                                pad_lengths=(6, 10), pad_value=0)
        lengths = [4, 5, 6, 8, 9, 10, 3, 7]
        requests = [rng.integers(3, 20, size=length) for length in lengths]
        with InferenceServer(engine, config) as server:
            futures = [server.submit(request) for request in requests]
            results = [f.result(timeout=30) for f in futures]
        for request, result in zip(requests, results):
            bucket_length = 6 if len(request) <= 6 else 10
            assert result.timing.bucket == ("tokens", bucket_length)
            padded = np.pad(request, (0, bucket_length - len(request)))
            expected = engine.model.predict(padded[None])[0]
            np.testing.assert_array_equal(result.output, expected)

    def test_oversized_token_request_rejected(self, rng):
        engine = make_seq_engine()
        config = BatchingConfig(max_batch_size=4, max_delay_ms=5.0, pad_lengths=(6,))
        with InferenceServer(engine, config) as server:
            with pytest.raises(ValueError, match="exceeds the largest bucket"):
                server.submit(rng.integers(3, 20, size=9))

    def test_mixed_shapes_never_mix_batches(self, rng):
        engine = make_engine()
        # Same feature count reshaped differently must not share a batch.
        flat = rng.standard_normal(32)
        square = rng.standard_normal((2, 16))
        with InferenceServer(engine, BatchingConfig(max_batch_size=8,
                                                    max_delay_ms=10.0)) as server:
            result_flat = server.submit(flat).result(timeout=10)
            result_square = server.submit(square).result(timeout=10)
        assert result_flat.timing.bucket != result_square.timing.bucket


class TestAccountingAndErrors:
    def test_stats_aggregate(self, rng):
        engine = make_engine()
        with InferenceServer(engine, BatchingConfig(max_batch_size=8,
                                                    max_delay_ms=5.0)) as server:
            futures = [server.submit(rng.standard_normal(32)) for _ in range(16)]
            for future in futures:
                future.result(timeout=10)
            stats = server.stats()
        # stats() is a typed ServerStats dataclass (shared with the sharded
        # server); attribute access is the API, mapping access is kept for
        # report code that treats it like the dict it replaced.
        assert isinstance(stats, ServerStats)
        assert stats.requests == 16
        assert stats.batches >= 2
        assert stats.latency_ms_p95 >= stats.latency_ms_p50 > 0
        assert stats.throughput_rps > 0
        assert stats.workers == 1 and stats.shards == ()
        assert stats["requests"] == stats.requests  # mapping compatibility
        assert dict(stats)["batches"] == stats.batches
        with pytest.raises(KeyError):
            stats["no_such_counter"]
        assert stats.as_dict()["requests"] == 16

    def test_engine_failure_propagates_to_futures(self):
        engine = make_engine()
        with InferenceServer(engine, BatchingConfig(max_batch_size=4,
                                                    max_delay_ms=1.0)) as server:
            future = server.submit(np.zeros((7,)))  # wrong feature count
            with pytest.raises(ValueError):
                future.result(timeout=10)

    def test_concurrent_submitters(self, rng):
        engine = make_engine()
        inputs = rng.standard_normal((24, 32))
        outputs = {}
        errors = []

        def client(index):
            try:
                result = server.predict(inputs[index], timeout=20)
                outputs[index] = result.output
            except Exception as error:  # pragma: no cover - diagnostic
                errors.append(error)

        with InferenceServer(engine, BatchingConfig(max_batch_size=6,
                                                    max_delay_ms=10.0)) as server:
            threads = [threading.Thread(target=client, args=(i,)) for i in range(24)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        assert len(outputs) == 24
        for index, output in outputs.items():
            expected = engine.model.predict(inputs[index][None])[0]
            np.testing.assert_allclose(output, expected, rtol=1e-9, atol=1e-12)
