"""Frozen-model export: bit-identity with the live quantized model."""

import numpy as np
import pytest

from repro import nn
from repro.core.bfp import BFPConfig
from repro.models import (
    MLP,
    mobilenet_v2,
    resnet20,
    tiny_yolo,
    transformer_small,
    vgg11,
)
from repro.nn.quantized import BFPScheme, quantized_modules
from repro.serving import InferenceEngine, freeze, freeze_module
from repro.serving.frozen import FrozenConv2d, FrozenLinear, iter_ops
from repro.training.schedules import FASTSchedule, FixedBFPSchedule, FP32Schedule

CONFIG = BFPConfig(exponent_bits=8, group_size=16)
NARROW_CONFIG = BFPConfig(exponent_bits=3, group_size=16)


def attach(model, schedule):
    schedule.prepare(model, 8)
    model.eval()
    return model


def live_logits(model, inputs):
    with nn.no_grad():
        return model(inputs).data


FAMILY_BUILDERS = {
    "mlp": lambda rng: (MLP(64, [32, 16], 10, rng=rng), (3, 64)),
    "vgg": lambda rng: (vgg11(width=4, rng=rng), (2, 3, 16, 16)),
    "resnet": lambda rng: (resnet20(width=4, rng=rng), (2, 3, 16, 16)),
    "mobilenet": lambda rng: (mobilenet_v2(width=8, rng=rng), (2, 3, 16, 16)),
    "yolo": lambda rng: (tiny_yolo(num_classes=3, image_size=16, rng=rng), (2, 3, 16, 16)),
}


class TestBitIdentity:
    @pytest.mark.parametrize("family", sorted(FAMILY_BUILDERS))
    def test_bfp_scheme_logits_bit_identical(self, family, rng):
        model, input_shape = FAMILY_BUILDERS[family](np.random.default_rng(7))
        attach(model, FixedBFPSchedule(4, config=CONFIG, seed=0))
        inputs = rng.standard_normal(input_shape)
        frozen = freeze(model)
        np.testing.assert_array_equal(frozen.predict(inputs), live_logits(model, inputs))

    @pytest.mark.parametrize("family", ["mlp", "mobilenet"])
    def test_fp32_identity_scheme_bit_identical(self, family, rng):
        model, input_shape = FAMILY_BUILDERS[family](np.random.default_rng(3))
        attach(model, FP32Schedule())
        inputs = rng.standard_normal(input_shape)
        frozen = freeze(model)
        np.testing.assert_array_equal(frozen.predict(inputs), live_logits(model, inputs))

    def test_narrow_exponent_window_bit_identical(self, rng):
        model, input_shape = FAMILY_BUILDERS["mlp"](np.random.default_rng(5))
        attach(model, FixedBFPSchedule(2, config=NARROW_CONFIG, seed=0))
        inputs = rng.standard_normal(input_shape)
        frozen = freeze(model)
        np.testing.assert_array_equal(frozen.predict(inputs), live_logits(model, inputs))

    def test_transformer_teacher_forced_bit_identical(self, rng):
        model = transformer_small(vocab_size=30, max_length=12,
                                  rng=np.random.default_rng(11))
        attach(model, FixedBFPSchedule(4, config=CONFIG, seed=0))
        src = rng.integers(1, 30, size=(3, 10))
        tgt = rng.integers(1, 30, size=(3, 10))
        with nn.no_grad():
            live = model(src, tgt).data
        frozen = freeze(model)
        np.testing.assert_array_equal(frozen.forward_logits(src, tgt), live)

    def test_transformer_greedy_decode_bit_identical(self, rng):
        model = transformer_small(vocab_size=30, max_length=12,
                                  rng=np.random.default_rng(11))
        attach(model, FixedBFPSchedule(4, config=CONFIG, seed=0))
        src = rng.integers(3, 30, size=(4, 8))
        live = model.greedy_decode(src, bos_index=1, eos_index=2)
        frozen = freeze(model, meta={"bos_index": 1, "eos_index": 2})
        np.testing.assert_array_equal(frozen.predict(src), live)


class TestFastAdaptiveSnapshot:
    def test_snapshot_matches_equivalent_fixed_scheme(self, rng):
        model = MLP(64, [32], 10, rng=np.random.default_rng(6))
        attach(model, FASTSchedule(config=CONFIG, seed=0))
        frozen = freeze(model)
        frozen_layers = [op for op in iter_ops(frozen.root)
                         if isinstance(op, FrozenLinear)]
        reference = MLP(64, [32], 10, rng=np.random.default_rng(6))
        attach(reference, FASTSchedule(config=CONFIG, seed=0))
        for layer, frozen_layer in zip(quantized_modules(reference), frozen_layers):
            desc = frozen_layer.scheme_desc
            assert desc["frozen_from"] == "fast_adaptive"
            layer.scheme = BFPScheme(
                config=CONFIG, weight_bits=desc["weight_bits"],
                activation_bits=desc["activation_bits"], gradient_bits=4,
                stochastic_gradients=False)
        inputs = rng.standard_normal((3, 64))
        np.testing.assert_array_equal(frozen.predict(inputs),
                                      live_logits(reference, inputs))

    def test_freeze_does_not_record_into_policy(self):
        model = MLP(64, [32], 10, rng=np.random.default_rng(6))
        schedule = FASTSchedule(config=CONFIG, seed=0)
        attach(model, schedule)
        before = len(schedule.policy.history)
        freeze(model)
        assert len(schedule.policy.history) == before

    def test_freeze_supports_any_policy(self, rng):
        """Policies without high_bits (e.g. fixed) must still freeze."""
        from repro.core.precision_policy import FixedPrecisionPolicy
        from repro.nn.quantized import FASTScheme

        model = MLP(64, [32], 10, rng=np.random.default_rng(6))
        attach(model, FASTSchedule(config=CONFIG, seed=0))
        for layer in quantized_modules(model):
            layer.scheme = FASTScheme(FixedPrecisionPolicy(4), config=CONFIG,
                                      stochastic_gradients=False)
        frozen = freeze(model)
        descs = [op.scheme_desc for op in iter_ops(frozen.root)
                 if isinstance(op, FrozenLinear)]
        assert all(d["weight_bits"] == 4 and d["activation_bits"] == 4 for d in descs)
        inputs = rng.standard_normal((3, 64))
        np.testing.assert_array_equal(frozen.predict(inputs),
                                      live_logits(model, inputs))


class TestFrozenStructure:
    def test_dropout_is_stripped(self):
        model = nn.Sequential(nn.Linear(8, 8), nn.Dropout(0.5), nn.ReLU())
        frozen_op = freeze_module(model)
        kinds = [op.kind for op in iter_ops(frozen_op)]
        assert "identity" in kinds  # dropout froze to identity
        x = np.random.default_rng(0).standard_normal((4, 8))
        first = frozen_op.run(x)
        second = frozen_op.run(x)
        np.testing.assert_array_equal(first, second)

    def test_training_mode_model_freezes_to_eval_behavior(self, rng):
        """Freezing a model left in training mode still exports eval semantics."""
        model = nn.Sequential(nn.Linear(8, 8, rng=np.random.default_rng(0)),
                              nn.Dropout(0.9, rng=np.random.default_rng(1)))
        model.train()
        frozen_op = freeze_module(model)
        x = rng.standard_normal((4, 8))
        model.eval()
        with nn.no_grad():
            expected = model(x).data
        np.testing.assert_array_equal(frozen_op.run(x), expected)

    def test_unknown_module_raises(self):
        class Strange(nn.Module):
            def forward(self, x):
                return x

        with pytest.raises(TypeError, match="no freezer registered"):
            freeze_module(Strange())

    def test_storage_report_counts_packed_weights(self):
        model, _ = FAMILY_BUILDERS["mlp"](np.random.default_rng(2))
        attach(model, FixedBFPSchedule(4, config=CONFIG, seed=0))
        report = freeze(model).storage_report()
        assert report["packed_values"] > 0
        assert report["total_values"] == model.num_parameters()
        # 4-bit mantissas in the chunked layout beat FP32 by several times
        # on matmul-shaped weights.
        assert report["compression_vs_fp32"] > 3.0

    def test_gelu_avgpool_ops_match_live(self, rng):
        model = nn.Sequential(
            nn.Conv2d(3, 4, 3, padding=1, rng=np.random.default_rng(0)),
            nn.GELU(),
            nn.AvgPool2d(2),
            nn.Sigmoid(),
            nn.Tanh(),
            nn.Flatten(),
        )
        model.eval()
        inputs = rng.standard_normal((2, 3, 8, 8))
        frozen_op = freeze_module(model)
        np.testing.assert_array_equal(frozen_op.run(inputs), live_logits(model, inputs))


class TestFloat32Serving:
    def test_cast_holds_float32_through_gelu_and_pooling(self, rng):
        """No op may silently promote a cast pipeline back to float64
        (np.float64 scalar factors in GELU/attention did exactly that)."""
        model = nn.Sequential(
            nn.Conv2d(3, 4, 3, padding=1, rng=np.random.default_rng(0)),
            nn.GELU(), nn.AvgPool2d(2), nn.LeakyReLU(0.1), nn.Flatten(),
            nn.Linear(4 * 4 * 4, 5, rng=np.random.default_rng(1)),
        )
        model.eval()
        frozen = freeze(model).cast(np.float32)
        inputs = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
        out = frozen.predict(inputs)
        assert out.dtype == np.float32
        with nn.no_grad():
            reference = model(inputs.astype(np.float64)).data
        np.testing.assert_allclose(out, reference, rtol=1e-4, atol=1e-5)

    def test_cast_transformer_logits_stay_float32(self, rng):
        model = transformer_small(vocab_size=30, max_length=12,
                                  rng=np.random.default_rng(2))
        attach(model, FixedBFPSchedule(4, config=CONFIG, seed=0))
        src = rng.integers(1, 30, size=(2, 8))
        tgt = rng.integers(1, 30, size=(2, 8))
        with nn.no_grad():
            reference = model(src, tgt).data
        frozen = freeze(model).cast(np.float32)
        logits = frozen.forward_logits(src, tgt)
        assert logits.dtype == np.float32
        np.testing.assert_allclose(logits, reference, rtol=1e-3, atol=1e-4)

    def test_cast_roundtrips_through_checkpoint(self, rng, tmp_path):
        from repro.serving import load_frozen, save_frozen

        model, input_shape = FAMILY_BUILDERS["mlp"](np.random.default_rng(3))
        attach(model, FixedBFPSchedule(4, config=CONFIG, seed=0))
        frozen = freeze(model).cast(np.float32)
        inputs = rng.standard_normal(input_shape).astype(np.float32)
        loaded = load_frozen(save_frozen(frozen, tmp_path / "f32.npz"))
        out = loaded.predict(inputs)
        assert out.dtype == np.float32
        np.testing.assert_array_equal(out, frozen.predict(inputs))


class TestEngine:
    def test_warmup_and_stats(self, rng):
        model, input_shape = FAMILY_BUILDERS["mlp"](np.random.default_rng(1))
        attach(model, FixedBFPSchedule(4, config=CONFIG, seed=0))
        engine = InferenceEngine(freeze(model))
        warmup_s = engine.warmup(rng.standard_normal(input_shape))
        assert warmup_s > 0 and engine.warmed_up
        outputs = engine.predict(rng.standard_normal(input_shape))
        assert outputs.shape == (input_shape[0], 10)
        stats = engine.stats()
        assert stats["calls"] == 1  # warmup is untimed-for-stats
        assert stats["samples"] == input_shape[0]
        assert stats["throughput_sps"] > 0
