"""Open-loop load generator: arrival process, accounting, and honesty
(latency from scheduled arrival, failures counted, nothing lost)."""

import threading
import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.serving import (
    FamilyLoad,
    GenerationLoadGenerator,
    GenerationResult,
    GenerationTiming,
    LoadReport,
    OpenLoopGenerator,
    SequenceLoad,
    ServerOverloaded,
    poisson_arrivals,
)


class TestPoissonArrivals:
    def test_deterministic_for_fixed_seed(self):
        a = poisson_arrivals(200.0, 1.0, seed=3)
        b = poisson_arrivals(200.0, 1.0, seed=3)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, poisson_arrivals(200.0, 1.0, seed=4))

    def test_rate_and_window(self):
        offsets = poisson_arrivals(1000.0, 2.0, seed=0)
        assert offsets[0] >= 0 and offsets[-1] < 2.0
        assert np.all(np.diff(offsets) > 0)
        # Poisson count concentrates around qps * duration = 2000.
        assert 1700 < len(offsets) < 2300

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0.0, 1.0)
        with pytest.raises(ValueError):
            poisson_arrivals(100.0, -1.0)


class TestFamilyLoad:
    def test_validation(self):
        with pytest.raises(ValueError, match="at least one payload"):
            FamilyLoad(payloads=())
        with pytest.raises(ValueError, match="weight"):
            FamilyLoad(payloads=(np.zeros(4),), weight=0.0)


def immediate_submit(calls):
    """A fake server: records the call, resolves the future instantly."""

    def submit(payload, model=None, deadline_ms=None):
        calls.append((np.asarray(payload).shape, model, deadline_ms))
        future = Future()
        future.set_result(object())
        return future

    return submit


class TestOpenLoopGenerator:
    def test_counts_close_and_families_mix(self):
        calls = []
        mix = (FamilyLoad(payloads=(np.zeros(4),), model="a", weight=0.5),
               FamilyLoad(payloads=(np.zeros(8),), model="b", weight=0.5))
        report = OpenLoopGenerator(immediate_submit(calls), mix,
                                   qps=400.0, duration_s=0.25, seed=1).run()
        assert report.sent == len(calls) > 0
        assert report.completed == report.sent and report.failed == 0
        assert report.errors == ()
        models = {model for _, model, _ in calls}
        assert models == {"a", "b"}  # both families actually offered
        assert report.goodput_rps > 0
        assert report.latency_ms_p99 >= report.latency_ms_p50 >= 0

    def test_deterministic_schedule_for_fixed_seed(self):
        def shapes_for_run():
            calls = []
            OpenLoopGenerator(immediate_submit(calls),
                              (FamilyLoad(payloads=(np.zeros(2), np.zeros(3)),
                                          model="m"),),
                              qps=300.0, duration_s=0.2, seed=9).run()
            return [shape for shape, _, _ in calls]

        assert shapes_for_run() == shapes_for_run()

    def test_synchronous_rejections_counted_not_fatal(self):
        attempts = [0]

        def submit(payload):
            attempts[0] += 1
            if attempts[0] % 2 == 0:
                raise RuntimeError("rejected at admission")
            future = Future()
            future.set_result(object())
            return future

        mix = (FamilyLoad(payloads=(np.zeros(4),)),)
        report = OpenLoopGenerator(submit, mix, qps=300.0, duration_s=0.2,
                                   seed=2).run()
        assert report.sent == attempts[0]
        assert report.failed == dict(report.errors)["RuntimeError"]
        assert report.completed + report.failed == report.sent

    def test_failed_futures_counted_by_error_type(self):
        def submit(payload):
            future = Future()
            future.set_exception(TimeoutError("too slow"))
            return future

        mix = (FamilyLoad(payloads=(np.zeros(4),)),)
        report = OpenLoopGenerator(submit, mix, qps=200.0, duration_s=0.2,
                                   seed=3).run()
        assert report.completed == 0
        assert report.failed == report.sent
        assert dict(report.errors) == {"TimeoutError": report.sent}

    def test_latency_measured_from_scheduled_arrival(self):
        """A future resolved late must show the full latency even though
        the generator itself never blocked on it (open loop)."""
        pending = []

        def submit(payload):
            future = Future()
            pending.append(future)
            return future

        mix = (FamilyLoad(payloads=(np.zeros(2),)),)
        generator = OpenLoopGenerator(submit, mix, qps=100.0, duration_s=0.15,
                                      seed=4, drain_timeout_s=10.0)
        resolver = threading.Timer(0.4, lambda: [f.set_result(object())
                                                 for f in pending])
        resolver.start()
        try:
            report = generator.run()
        finally:
            resolver.cancel()
        assert report.completed == report.sent > 0
        # The first request was scheduled near t=0 and resolved at t~0.4s:
        # its latency must reflect that wait, not the submit overhead.
        assert report.latency_ms_p99 >= 200.0

    def test_unresolved_futures_counted_after_drain_timeout(self):
        def submit(payload):
            return Future()  # never resolves

        mix = (FamilyLoad(payloads=(np.zeros(2),)),)
        start = time.monotonic()
        report = OpenLoopGenerator(submit, mix, qps=100.0, duration_s=0.1,
                                   seed=5, drain_timeout_s=0.3).run()
        assert time.monotonic() - start < 5.0  # bounded by drain timeout
        assert report.completed == 0
        assert dict(report.errors)["Unresolved"] == report.sent

    def test_report_round_trips_to_dict(self):
        report = LoadReport(offered_qps=1.0, duration_s=1.0, sent=1,
                            completed=1, failed=0, goodput_rps=1.0,
                            latency_ms_mean=1.0, latency_ms_p50=1.0,
                            latency_ms_p95=1.0, latency_ms_p99=1.0,
                            max_slip_ms=0.0, drain_s=0.0,
                            errors=(("X", 2),))
        rendered = report.as_dict()
        assert rendered["errors"] == {"X": 2}
        assert rendered["goodput_rps"] == 1.0


class TestGenerationLoadGenerator:
    @staticmethod
    def fake_result(new_tokens: int):
        return GenerationResult(
            tokens=np.concatenate([[1], np.full(new_tokens - 1, 5), [2]]),
            timing=GenerationTiming(queue_ms=0.1, prefill_ms=0.2, ttft_ms=1.5,
                                    total_ms=3.0, steps=new_tokens,
                                    finish_reason="eos"))

    def test_sequence_load_validation(self):
        with pytest.raises(ValueError):
            SequenceLoad(prompts=())
        with pytest.raises(ValueError):
            SequenceLoad(prompts=(np.array([3, 4]),), max_new_tokens=0)

    def test_counts_tokens_and_rejections(self):
        calls = []

        def submit(prompt, max_new_tokens=None):
            calls.append(max_new_tokens)
            if len(calls) % 3 == 0:
                raise ServerOverloaded("full")
            future = Future()
            future.set_result(self.fake_result(max_new_tokens))
            return future

        mix = (SequenceLoad(prompts=(np.array([3, 4, 5]),), max_new_tokens=4),)
        report = GenerationLoadGenerator(submit, mix, qps=200.0,
                                         duration_s=0.1, seed=2,
                                         drain_timeout_s=5.0).run()
        assert report.sent == len(calls) > 0
        assert report.failed == len(calls) // 3
        assert dict(report.errors).get("ServerOverloaded", 0) == report.failed
        # Every completion carried max_new_tokens generated tokens.
        assert report.tokens_generated == report.completed * 4
        assert report.tokens_per_second > 0
        assert report.ttft_ms_p50 >= 1.5  # includes the server-side TTFT
        rendered = report.as_dict()
        assert rendered["errors"].get("ServerOverloaded", 0) == report.failed

    def test_peak_concurrency_tracked(self):
        pending = []

        def submit(prompt, max_new_tokens=None):
            future = Future()
            pending.append((future, max_new_tokens))
            return future

        mix = (SequenceLoad(prompts=(np.array([3]),), max_new_tokens=2),)
        generator = GenerationLoadGenerator(submit, mix, qps=100.0,
                                            duration_s=0.15, seed=3,
                                            drain_timeout_s=10.0)
        resolver = threading.Timer(
            0.4, lambda: [f.set_result(self.fake_result(n))
                          for f, n in pending])
        resolver.start()
        try:
            report = generator.run()
        finally:
            resolver.cancel()
        assert report.completed == report.sent > 0
        # Everything resolved at once, so all requests were in flight together.
        assert report.peak_concurrent_streams == report.sent
        assert report.latency_ms_p99 >= 200.0
