"""Shared-memory transport edge cases: oversized payloads, peer death
mid-transfer, and leak-free teardown (no stray ``/dev/shm`` segments,
resource-tracker warnings promoted to errors)."""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.serving import ShmRing, TransportError, attach_shared_memory

SHM_DIR = Path("/dev/shm")


def repro_ring_segments():
    if not SHM_DIR.is_dir():  # non-Linux: nothing to inspect
        return set()
    return {entry for entry in os.listdir(SHM_DIR)
            if entry.startswith("repro_ring_")}


class TestSlotLifecycle:
    def test_round_trip_is_bit_identical(self):
        with ShmRing(slot_size=4096, num_slots=2) as ring:
            payload = np.random.default_rng(0).standard_normal((8, 16))
            slot = ring.acquire()
            shape, dtype = ring.write(slot, payload)
            assert np.array_equal(ring.view(slot, shape, dtype), payload)
            ring.release(slot)

    def test_acquire_exhaustion_returns_none(self):
        with ShmRing(slot_size=64, num_slots=2) as ring:
            slots = [ring.acquire(), ring.acquire()]
            assert None not in slots
            assert ring.acquire() is None  # full: caller falls back to pickle
            ring.release(slots[0])
            assert ring.acquire() == slots[0]

    def test_double_release_and_bad_slot_rejected(self):
        with ShmRing(slot_size=64, num_slots=2) as ring:
            slot = ring.acquire()
            ring.release(slot)
            with pytest.raises(TransportError, match="released twice"):
                ring.release(slot)
            with pytest.raises(TransportError, match="out of range"):
                ring.release(99)


class TestOversizedPayloads:
    def test_fits_and_write_reject_payloads_larger_than_a_slot(self):
        with ShmRing(slot_size=128, num_slots=2) as ring:
            big = np.zeros(1024, dtype=np.float64)  # 8 KiB >> 128 B slot
            assert not ring.fits(big.nbytes)
            slot = ring.acquire()
            with pytest.raises(TransportError, match="exceeds"):
                ring.write(slot, big)
            # The slot survives the refused write and still serves payloads
            # that do fit -- an oversized request must not poison the ring.
            small = np.arange(16, dtype=np.float64)
            shape, dtype = ring.write(slot, small)
            assert np.array_equal(ring.view(slot, shape, dtype), small)

    def test_view_rejects_header_larger_than_a_slot(self):
        with ShmRing(slot_size=128, num_slots=1) as ring:
            with pytest.raises(TransportError, match="larger than"):
                ring.view(0, (1024,), "<f8")


class TestPeerDeathMidTransfer:
    def test_attacher_death_leaves_owner_ring_usable(self):
        """A peer that dies holding in-flight slots must not corrupt the
        ring: the owner resets its free list and keeps serving."""
        owner = ShmRing(slot_size=256, num_slots=2)
        try:
            taken = [owner.acquire(), owner.acquire()]
            owner.write(taken[0], np.arange(8, dtype=np.float64))
            # Simulate the peer: attach, view, die without any release
            # acknowledgement (its process just disappears).
            code = (
                "import sys; sys.path.insert(0, %r)\n"
                "from repro.serving import ShmRing\n"
                "import os\n"
                "ring = ShmRing.attach(%r, 256, 2)\n"
                "ring.view(%d, (8,), '<f8')\n"
                "os._exit(9)\n"
            ) % (str(Path(__file__).resolve().parents[2] / "src"),
                 owner.name, taken[0])
            process = subprocess.run([sys.executable, "-c", code], timeout=60)
            assert process.returncode == 9
            assert owner.free_slots == 0
            owner.reset()  # owner's recovery path after a peer death
            assert owner.free_slots == 2
            slot = owner.acquire()
            shape, dtype = owner.write(slot, np.full(4, 7.0))
            assert np.array_equal(owner.view(slot, shape, dtype), np.full(4, 7.0))
        finally:
            owner.close()

    def test_attach_validates_segment_size(self):
        with ShmRing(slot_size=64, num_slots=2) as ring:
            with pytest.raises(TransportError, match="smaller than"):
                ShmRing.attach(ring.name, slot_size=64, num_slots=999)


class TestCleanTeardown:
    def test_close_unlinks_the_segment(self):
        ring = ShmRing(slot_size=64, num_slots=1)
        name = ring.name
        assert name in repro_ring_segments() or not SHM_DIR.is_dir()
        ring.close()
        assert name not in repro_ring_segments()
        ring.close()  # idempotent
        with pytest.raises(TransportError, match="closed"):
            ring.acquire()

    def test_attacher_close_does_not_unlink(self):
        owner = ShmRing(slot_size=64, num_slots=1)
        try:
            peer = ShmRing.attach(owner.name, 64, 1)
            peer.close()
            if SHM_DIR.is_dir():
                assert owner.name in repro_ring_segments()
            # The owner can still serve after the peer detached.
            slot = owner.acquire()
            shape, dtype = owner.write(slot, np.ones(3))
            assert np.array_equal(owner.view(slot, shape, dtype), np.ones(3))
        finally:
            owner.close()
        assert owner.name not in repro_ring_segments()

    def test_full_lifecycle_is_warning_free(self):
        """Run a create/attach/transfer/close cycle in a subprocess with
        every warning promoted to an error and assert silence: no
        resource_tracker 'leaked shared_memory' warnings, no KeyError
        tracebacks from double-unregistration, no leftover segments."""
        src = str(Path(__file__).resolve().parents[2] / "src")
        code = (
            "import sys; sys.path.insert(0, sys.argv[1])\n"
            "import numpy as np\n"
            "from repro.serving import ShmRing\n"
            "owner = ShmRing(slot_size=1024, num_slots=2)\n"
            "peer = ShmRing.attach(owner.name, 1024, 2)\n"
            "slot = owner.acquire()\n"
            "shape, dtype = owner.write(slot, np.arange(32, dtype=np.float64))\n"
            "assert np.array_equal(peer.view(slot, shape, dtype),\n"
            "                      np.arange(32, dtype=np.float64))\n"
            "owner.release(slot)\n"
            "peer.close()\n"
            "owner.close()\n"
            "print('NAME=' + owner.name)\n"
        )
        process = subprocess.run(
            [sys.executable, "-W", "error", "-c", code, src],
            capture_output=True, text=True, timeout=60)
        assert process.returncode == 0, process.stderr
        assert process.stderr == ""  # tracker noise goes to stderr at exit
        name = process.stdout.strip().removeprefix("NAME=")
        assert name.startswith("repro_ring_")
        assert name not in repro_ring_segments()


class TestAttachHelper:
    def test_attach_shared_memory_maps_existing_segment(self):
        with ShmRing(slot_size=64, num_slots=1) as ring:
            segment = attach_shared_memory(ring.name)
            try:
                assert segment.size >= 64
            finally:
                segment.close()

    def test_invalid_geometry_rejected(self):
        with pytest.raises(TransportError, match="positive"):
            ShmRing(slot_size=0, num_slots=1)
        with pytest.raises(TransportError, match="positive"):
            ShmRing(slot_size=64, num_slots=0)
