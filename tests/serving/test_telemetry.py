"""Cross-process observability: traces, metric aggregation, EngineStats.

These tests drive the real multi-process serving tier with the global
observability gate on and assert the PR's acceptance criteria: a sampled
request trace through a 2-worker :class:`ShardedServer` shows every
pipeline stage with per-stage durations, worker metric deltas aggregate
into one cluster-wide registry view (surviving a worker respawn), and a
disabled gate leaves the hot path untouched.
"""

import numpy as np
import pytest

from repro import observability
from repro.core.bfp import BFPConfig
from repro.models import MLP
from repro.observability import validate_chrome_trace, validate_prometheus_text
from repro.observability.tracing import PIPELINE_STAGES
from repro.serving import (
    BatchingConfig,
    ClusterConfig,
    EngineCrash,
    EngineStats,
    FaultPlan,
    InferenceEngine,
    InferenceServer,
    ServingError,
    ShardedServer,
    WorkerSpec,
    freeze,
    save_frozen,
)
from repro.training.schedules import FixedBFPSchedule

CONFIG = BFPConfig(exponent_bits=8, group_size=16)


@pytest.fixture(autouse=True)
def observability_sandbox():
    """Each test starts disabled with fresh registry/tracer state."""
    observability.set_enabled(False)
    observability.reset()
    yield
    observability.set_enabled(False)
    observability.reset()


def build_mlp_checkpoint(path, seed=0):
    model = MLP(32, [16], 4, rng=np.random.default_rng(seed))
    FixedBFPSchedule(4, config=CONFIG, seed=0).prepare(model, 4)
    model.eval()
    return save_frozen(freeze(model), path)


@pytest.fixture(scope="module")
def mlp_checkpoint(tmp_path_factory):
    return str(build_mlp_checkpoint(
        tmp_path_factory.mktemp("telemetry") / "mlp.npz"))


def mlp_spec(checkpoint, **overrides):
    defaults = dict(checkpoint=checkpoint, model="mlp",
                    warmup_shapes=((1, 32),))
    defaults.update(overrides)
    return WorkerSpec(**defaults)


def frozen_engine(checkpoint):
    from repro.serving import load_frozen
    return InferenceEngine(load_frozen(checkpoint))


class TestEngineStats:
    def test_inference_engine_stats_is_typed_and_mapping_compatible(
            self, mlp_checkpoint, rng):
        engine = frozen_engine(mlp_checkpoint)
        engine.predict(rng.standard_normal((2, 32)))
        stats = engine.stats()
        assert isinstance(stats, EngineStats)
        assert stats.calls == 1 and stats.samples == 2
        # Mapping compatibility: the pre-dataclass dict idioms still work.
        assert stats["calls"] == 1
        assert "throughput_sps" in stats.keys()
        assert dict(stats)["samples"] == 2
        assert stats.as_dict()["calls"] == 1
        with pytest.raises(KeyError):
            stats["no_such_counter"]
        # Remote-only fields stay None for the in-process engine.
        assert stats.pid is None and stats.respawns is None

    def test_remote_engine_stats_same_type(self, mlp_checkpoint, rng):
        config = ClusterConfig(batching=BatchingConfig(max_batch_size=4,
                                                       max_delay_ms=2.0))
        with ShardedServer([mlp_spec(mlp_checkpoint)], config) as cluster:
            cluster.predict(rng.standard_normal(32), timeout=60)
            stats = cluster._shards[0].engine.stats()
        assert isinstance(stats, EngineStats)
        assert stats.alive is True and isinstance(stats.pid, int)
        assert stats["respawns"] == 0


class TestInProcessTracing:
    def test_server_trace_has_local_stages_and_metrics(self, mlp_checkpoint,
                                                       rng):
        observability.set_enabled(True, sample_rate=1.0)
        with InferenceServer(frozen_engine(mlp_checkpoint),
                             BatchingConfig(max_batch_size=4, max_delay_ms=2.0),
                             name="local") as server:
            futures = [server.submit(row)
                       for row in rng.standard_normal((12, 32))]
            results = [future.result(timeout=60) for future in futures]
        trace = observability.tracer().to_chrome()
        # In-process: every stage except transport (no process boundary).
        local_stages = tuple(s for s in PIPELINE_STAGES if s != "transport")
        validate_chrome_trace(trace, require_stages=local_stages)
        stage_names = {event["name"] for event in trace["traceEvents"]}
        assert "transport" not in stage_names
        timing = results[0].timing
        assert timing.trace_id is not None
        assert timing.transport_ms is None
        assert timing.assemble_ms >= 0.0
        assert timing.compute_ms >= 0.0
        registry = observability.registry()
        requests = registry.get("serving_requests_total", server="local")
        assert requests is not None and requests.value == len(futures)
        assert validate_prometheus_text(registry.render_prometheus()) > 0

    def test_sampling_rate_traces_a_subset(self, mlp_checkpoint, rng):
        observability.set_enabled(True, sample_rate=0.25)
        with InferenceServer(frozen_engine(mlp_checkpoint),
                             BatchingConfig(max_batch_size=4,
                                            max_delay_ms=2.0)) as server:
            futures = [server.submit(row)
                       for row in rng.standard_normal((16, 32))]
            results = [future.result(timeout=60) for future in futures]
        traced = [r.timing.trace_id for r in results
                  if r.timing.trace_id is not None]
        assert len(traced) == 4  # deterministic every-4th
        assert len(traced) == len(set(traced))


class TestShardedTracing:
    def test_two_worker_trace_covers_full_pipeline(self, mlp_checkpoint, rng):
        """Acceptance: a sampled request trace through a 2-worker
        ShardedServer shows queue, batch, transport, and compute stages
        with per-stage durations."""
        observability.set_enabled(True, sample_rate=1.0)
        config = ClusterConfig(batching=BatchingConfig(max_batch_size=4,
                                                       max_delay_ms=2.0))
        specs = [mlp_spec(mlp_checkpoint) for _ in range(2)]
        with ShardedServer(specs, config) as cluster:
            futures = [cluster.submit(row)
                       for row in rng.standard_normal((20, 32))]
            results = [future.result(timeout=60) for future in futures]
            prometheus = cluster.render_prometheus()
            snapshot = cluster.metrics_snapshot()
        trace = observability.tracer().to_chrome()
        validate_chrome_trace(trace, require_stages=PIPELINE_STAGES)
        durations = {}
        for event in trace["traceEvents"]:
            durations.setdefault(event["name"], []).append(event["dur"])
        # Per-stage durations: the engine forward and the queue wait are
        # real elapsed intervals, not zero-width markers.
        assert max(durations["compute"]) > 0.0
        assert max(durations["queue"]) > 0.0
        # The worker-side compute spans carry worker pids: more than one
        # process contributed events to the one timeline.
        assert len({event["pid"] for event in trace["traceEvents"]}) >= 3
        # Request timings expose the transport split.
        traced = [r.timing for r in results if r.timing.trace_id is not None]
        assert traced and all(t.transport_ms is not None for t in traced)
        assert all(t.transport_ms >= 0.0 for t in traced)
        # The cluster-wide registry holds worker kernel metrics labelled by
        # shard -- one view, per-shard breakdown.
        shards_seen = {dict(metric["labels"]).get("shard")
                       for metric in snapshot["metrics"]
                       if metric["name"] == "kernel_calls_total"}
        assert {"0", "1"} <= shards_seen
        assert validate_prometheus_text(prometheus) > 0

    def test_cluster_metrics_survive_worker_respawn(self, mlp_checkpoint, rng):
        """Deltas are additive: a respawned worker restarts its local
        registry at zero, and the cluster aggregate keeps growing."""
        observability.set_enabled(True, sample_rate=0.0)
        plan = FaultPlan(exit_calls=(2,), exit_code=43)
        specs = [mlp_spec(mlp_checkpoint, fault_plan=plan),
                 mlp_spec(mlp_checkpoint)]
        config = ClusterConfig(batching=BatchingConfig(
            max_batch_size=4, max_delay_ms=2.0,
            engine_restart_limit=3, restart_backoff_ms=10.0))

        def shard0_kernel_calls():
            return sum(metric["value"]
                       for metric in observability.registry().snapshot()["metrics"]
                       if metric["name"] == "kernel_calls_total"
                       and metric["labels"].get("shard") == "0")

        inputs = rng.standard_normal((40, 32))
        with ShardedServer(specs, config) as cluster:
            futures = [cluster.submit(row) for row in inputs]
            for future in futures:
                try:
                    future.result(timeout=120)
                except (EngineCrash, ServingError):
                    pass  # the batch in flight at the kill
            assert cluster.stats().worker_respawns >= 1
            before = shard0_kernel_calls()
            assert before > 0.0
            # Traffic served by the *respawned* worker keeps accumulating
            # under the same shard label.
            for row in inputs[:12]:
                cluster.predict(row, timeout=60)
            assert shard0_kernel_calls() > before

    def test_disabled_gate_leaves_no_telemetry(self, mlp_checkpoint, rng):
        config = ClusterConfig(batching=BatchingConfig(max_batch_size=4,
                                                       max_delay_ms=2.0))
        with ShardedServer([mlp_spec(mlp_checkpoint)], config) as cluster:
            futures = [cluster.submit(row)
                       for row in rng.standard_normal((8, 32))]
            results = [future.result(timeout=60) for future in futures]
            stats = cluster.stats()
        assert len(observability.tracer()) == 0
        assert observability.registry().snapshot()["metrics"] == []
        assert all(r.timing.trace_id is None for r in results)
        assert all(r.timing.transport_ms is None for r in results)
        # The always-on bounded histogram still yields percentiles.
        assert np.isfinite(stats.latency_ms_p50)
        assert np.isfinite(stats.latency_ms_p99)
