"""Tests for functional ops: im2col/conv2d, pooling, embedding, dropout, quant hooks."""

import numpy as np
import pytest

import repro.nn.functional as F
from repro.core.bfp import bfp_quantize
from repro.nn.tensor import Tensor


def reference_conv2d(x, weight, bias=None, stride=1, padding=1):
    """Direct (slow) convolution used as a reference."""
    batch, in_channels, height, width = x.shape
    out_channels, _, kernel_h, kernel_w = weight.shape
    padded = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (height + 2 * padding - kernel_h) // stride + 1
    out_w = (width + 2 * padding - kernel_w) // stride + 1
    output = np.zeros((batch, out_channels, out_h, out_w))
    for b in range(batch):
        for o in range(out_channels):
            for i in range(out_h):
                for j in range(out_w):
                    patch = padded[b, :, i * stride:i * stride + kernel_h,
                                   j * stride:j * stride + kernel_w]
                    output[b, o, i, j] = (patch * weight[o]).sum()
            if bias is not None:
                output[b, o] += bias[o]
    return output


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1)])
    def test_matches_direct_convolution(self, rng, stride, padding):
        x = rng.standard_normal((2, 3, 7, 7))
        weight = rng.standard_normal((4, 3, 3, 3))
        bias = rng.standard_normal(4)
        result = F.conv2d(Tensor(x), Tensor(weight), Tensor(bias), stride=stride, padding=padding)
        expected = reference_conv2d(x, weight, bias, stride=stride, padding=padding)
        np.testing.assert_allclose(result.data, expected, atol=1e-10)

    def test_1x1_convolution_is_channel_matmul(self, rng):
        x = rng.standard_normal((2, 4, 5, 5))
        weight = rng.standard_normal((6, 4, 1, 1))
        result = F.conv2d(Tensor(x), Tensor(weight)).data
        expected = np.einsum("oc,nchw->nohw", weight[:, :, 0, 0], x)
        np.testing.assert_allclose(result, expected, atol=1e-10)

    def test_output_shape(self, rng):
        x = Tensor(rng.standard_normal((1, 3, 16, 16)))
        weight = Tensor(rng.standard_normal((8, 3, 3, 3)))
        assert F.conv2d(x, weight, stride=2, padding=1).shape == (1, 8, 8, 8)

    def test_empty_output_rejected(self, rng):
        x = Tensor(rng.standard_normal((1, 1, 2, 2)))
        weight = Tensor(rng.standard_normal((1, 1, 5, 5)))
        with pytest.raises(ValueError):
            F.conv2d(x, weight)

    def test_im2col_col2im_adjoint(self, rng):
        """col2im is the adjoint of im2col: <im2col(x), y> == <x, col2im(y)>."""
        x = rng.standard_normal((1, 2, 5, 5))
        cols = F.im2col(x, 3, 3, 1, 1)
        y = rng.standard_normal(cols.shape)
        lhs = float((cols * y).sum())
        rhs = float((x * F.col2im(y, x.shape, 3, 3, 1, 1)).sum())
        assert lhs == pytest.approx(rhs)


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        result = F.max_pool2d(Tensor(x), 2).data
        np.testing.assert_array_equal(result[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_avg_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        result = F.avg_pool2d(Tensor(x), 2).data
        np.testing.assert_array_equal(result[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_pool_with_stride(self, rng):
        x = Tensor(rng.standard_normal((2, 3, 6, 6)))
        assert F.max_pool2d(x, 3, stride=3).shape == (2, 3, 2, 2)
        assert F.avg_pool2d(x, 2, stride=2).shape == (2, 3, 3, 3)


class TestEmbeddingDropout:
    def test_embedding_lookup(self, rng):
        weight = Tensor(rng.standard_normal((10, 4)))
        indices = np.array([[1, 3], [0, 9]])
        result = F.embedding(weight, indices)
        assert result.shape == (2, 2, 4)
        np.testing.assert_array_equal(result.data[0, 1], weight.data[3])

    def test_embedding_gradient_accumulates_repeats(self, rng):
        weight = Tensor(rng.standard_normal((5, 3)), requires_grad=True)
        F.embedding(weight, np.array([2, 2, 2])).sum().backward()
        np.testing.assert_allclose(weight.grad[2], [3.0, 3.0, 3.0])
        np.testing.assert_allclose(weight.grad[0], [0.0, 0.0, 0.0])

    def test_dropout_disabled_in_eval(self, rng):
        x = Tensor(rng.standard_normal((4, 4)))
        result = F.dropout(x, 0.5, training=False)
        assert result is x

    def test_dropout_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        result = F.dropout(x, 0.25, training=True, rng=rng)
        assert abs(result.data.mean() - 1.0) < 0.02
        zero_fraction = (result.data == 0).mean()
        assert abs(zero_fraction - 0.25) < 0.02

    def test_one_hot(self):
        encoded = F.one_hot(np.array([0, 2]), 3)
        np.testing.assert_array_equal(encoded, [[1, 0, 0], [0, 0, 1]])


class TestQuantizationHooks:
    def test_fake_quantize_values_quantized(self, rng):
        x = Tensor(rng.standard_normal((2, 32)), requires_grad=True)
        quantize = lambda v: bfp_quantize(v, mantissa_bits=2, group_size=16, exponent_bits=3)
        out = F.fake_quantize(x, quantize)
        np.testing.assert_allclose(out.data, quantize(x.data))

    def test_fake_quantize_straight_through_gradient(self, rng):
        x = Tensor(rng.standard_normal((2, 32)), requires_grad=True)
        out = F.fake_quantize(x, lambda v: np.zeros_like(v))
        (out * 3.0).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 32), 3.0))

    def test_quantize_gradient_identity_forward(self, rng):
        x = Tensor(rng.standard_normal((2, 16)), requires_grad=True)
        out = F.quantize_gradient(x, lambda g: g * 0 + 1.0)
        np.testing.assert_array_equal(out.data, x.data)

    def test_quantize_gradient_transforms_backward(self, rng):
        x = Tensor(rng.standard_normal((2, 16)), requires_grad=True)
        quantize = lambda g: bfp_quantize(g, mantissa_bits=2, group_size=16, exponent_bits=3)
        out = F.quantize_gradient(x, quantize)
        upstream = rng.standard_normal((2, 16))
        (out * Tensor(upstream)).sum().backward()
        np.testing.assert_allclose(x.grad, quantize(upstream))

    def test_linear_matches_numpy(self, rng):
        x = rng.standard_normal((4, 6))
        weight = rng.standard_normal((3, 6))
        bias = rng.standard_normal(3)
        result = F.linear(Tensor(x), Tensor(weight), Tensor(bias))
        np.testing.assert_allclose(result.data, x @ weight.T + bias)
