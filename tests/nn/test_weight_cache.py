"""Tests for the version-keyed weight-quantization cache of quantized layers."""

import numpy as np
import pytest

from repro import nn
from repro.core.bfp import BFPConfig
from repro.core.precision_policy import FASTAdaptivePolicy
from repro.nn.quantized import BFPScheme, FASTScheme, QuantizedConv2d, QuantizedLinear
from repro.nn.tensor import Tensor


class CountingBFPScheme(BFPScheme):
    """BFPScheme that counts weight-quantization invocations."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.weight_calls = 0

    def quantize_weight(self, values):
        self.weight_calls += 1
        return super().quantize_weight(values)


def make_linear(rng_seed=0):
    scheme = CountingBFPScheme(stochastic_gradients=False)
    layer = QuantizedLinear(8, 4, scheme=scheme, rng=np.random.default_rng(rng_seed))
    return layer, scheme


class TestCacheHits:
    def test_repeated_forward_quantizes_once(self, rng):
        layer, scheme = make_linear()
        x = Tensor(rng.standard_normal((3, 8)))
        outputs = [layer(x).data for _ in range(5)]
        assert scheme.weight_calls == 1
        for out in outputs[1:]:
            np.testing.assert_array_equal(outputs[0], out)

    def test_cached_output_matches_uncached(self, rng):
        layer, scheme = make_linear()
        x = Tensor(rng.standard_normal((3, 8)))
        cached = layer(x).data
        expected = scheme.quantize_activation(x.data) @ scheme.quantize_weight(layer.weight.data).T \
            + layer.bias.data
        np.testing.assert_allclose(cached, expected)

    def test_conv_layer_caches_too(self, rng):
        scheme = CountingBFPScheme(stochastic_gradients=False)
        layer = QuantizedConv2d(3, 4, 3, padding=1, scheme=scheme, rng=np.random.default_rng(0))
        x = Tensor(rng.standard_normal((2, 3, 6, 6)))
        a = layer(x).data
        b = layer(x).data
        assert scheme.weight_calls == 1
        np.testing.assert_array_equal(a, b)


class TestInvalidation:
    def test_optimizer_step_bumps_version_and_invalidates(self, rng):
        layer, scheme = make_linear()
        x = Tensor(rng.standard_normal((3, 8)))
        version_before = layer.weight.version
        layer(x).sum().backward()
        optimizer = nn.SGD(layer.parameters(), lr=0.5)
        optimizer.step()
        assert layer.weight.version == version_before + 1
        before = scheme.weight_calls
        layer(x)
        assert scheme.weight_calls == before + 1

    def test_changing_scheme_bits_invalidates(self, rng):
        layer, scheme = make_linear()
        x = Tensor(rng.standard_normal((3, 8)))
        layer(x)
        scheme.set_bits("weight", 2)
        layer(x)
        assert scheme.weight_calls == 2

    def test_load_state_dict_invalidates(self, rng):
        layer, scheme = make_linear()
        x = Tensor(rng.standard_normal((3, 8)))
        out_before = layer(x).data.copy()
        state = {name: value * 2.0 for name, value in layer.state_dict().items()}
        layer.load_state_dict(state)
        out_after = layer(x).data
        assert scheme.weight_calls == 2
        assert not np.allclose(out_before, out_after)

    def test_clear_weight_cache_forces_requantization(self, rng):
        layer, scheme = make_linear()
        x = Tensor(rng.standard_normal((3, 8)))
        layer(x)
        layer.clear_weight_cache()
        layer(x)
        assert scheme.weight_calls == 2

    def test_gradients_flow_with_cache_active(self, rng):
        layer, _ = make_linear()
        x = Tensor(rng.standard_normal((3, 8)), requires_grad=True)
        layer(x)  # prime the cache
        layer(x).sum().backward()
        assert layer.weight.grad is not None
        assert layer.weight.grad.shape == layer.weight.shape
        assert x.grad is not None


class TestUncachedSchemes:
    def test_fast_scheme_opts_out_of_caching(self, rng):
        """FASTScheme records a policy decision per call, so it must not cache."""
        policy = FASTAdaptivePolicy(total_layers=2, total_iterations=10,
                                    config=BFPConfig(exponent_bits=8))
        scheme = FASTScheme(policy)
        assert scheme.weight_cache_token() is None
        layer = QuantizedLinear(8, 4, scheme=scheme, rng=np.random.default_rng(0))
        x = Tensor(rng.standard_normal((3, 8)))
        history_len = len(policy.history)
        layer(x)
        layer(x)
        assert len(policy.history) > history_len + 1  # one decision per forward, per kind

    def test_base_scheme_token_is_none(self):
        from repro.nn.quantized import QuantizationScheme
        assert QuantizationScheme().weight_cache_token() is None


class TestParameterVersioning:
    def test_parameter_starts_at_version_zero(self):
        param = nn.Parameter(np.zeros(3))
        assert param.version == 0
        param.bump_version()
        assert param.version == 1

    def test_adam_bumps_versions(self, rng):
        layer, _ = make_linear()
        x = Tensor(rng.standard_normal((3, 8)))
        layer(x).sum().backward()
        optimizer = nn.Adam(layer.parameters(), lr=0.01)
        optimizer.step()
        assert layer.weight.version == 1

    def test_params_without_grad_not_bumped(self, rng):
        layer, _ = make_linear()
        optimizer = nn.SGD(layer.parameters(), lr=0.1)
        optimizer.step()  # no gradients accumulated
        assert layer.weight.version == 0
