"""Tests for the version-keyed weight-quantization cache of quantized layers."""

import numpy as np
import pytest

from repro import nn
from repro.core.bfp import BFPConfig
from repro.core.precision_policy import FASTAdaptivePolicy
from repro.nn.quantized import BFPScheme, FASTScheme, QuantizedConv2d, QuantizedLinear
from repro.nn.tensor import Tensor


class CountingBFPScheme(BFPScheme):
    """BFPScheme that counts weight-quantization invocations."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.weight_calls = 0

    def quantize_weight(self, values):
        self.weight_calls += 1
        return super().quantize_weight(values)


def make_linear(rng_seed=0):
    scheme = CountingBFPScheme(stochastic_gradients=False)
    layer = QuantizedLinear(8, 4, scheme=scheme, rng=np.random.default_rng(rng_seed))
    return layer, scheme


class TestCacheHits:
    def test_repeated_forward_quantizes_once(self, rng):
        layer, scheme = make_linear()
        x = Tensor(rng.standard_normal((3, 8)))
        outputs = [layer(x).data for _ in range(5)]
        assert scheme.weight_calls == 1
        for out in outputs[1:]:
            np.testing.assert_array_equal(outputs[0], out)

    def test_cached_output_matches_uncached(self, rng):
        layer, scheme = make_linear()
        x = Tensor(rng.standard_normal((3, 8)))
        cached = layer(x).data
        expected = scheme.quantize_activation(x.data) @ scheme.quantize_weight(layer.weight.data).T \
            + layer.bias.data
        np.testing.assert_allclose(cached, expected)

    def test_conv_layer_caches_too(self, rng):
        scheme = CountingBFPScheme(stochastic_gradients=False)
        layer = QuantizedConv2d(3, 4, 3, padding=1, scheme=scheme, rng=np.random.default_rng(0))
        x = Tensor(rng.standard_normal((2, 3, 6, 6)))
        a = layer(x).data
        b = layer(x).data
        assert scheme.weight_calls == 1
        np.testing.assert_array_equal(a, b)


class TestInvalidation:
    def test_optimizer_step_bumps_version_and_invalidates(self, rng):
        layer, scheme = make_linear()
        x = Tensor(rng.standard_normal((3, 8)))
        version_before = layer.weight.version
        layer(x).sum().backward()
        optimizer = nn.SGD(layer.parameters(), lr=0.5)
        optimizer.step()
        assert layer.weight.version == version_before + 1
        before = scheme.weight_calls
        layer(x)
        assert scheme.weight_calls == before + 1

    def test_changing_scheme_bits_invalidates(self, rng):
        layer, scheme = make_linear()
        x = Tensor(rng.standard_normal((3, 8)))
        layer(x)
        scheme.set_bits("weight", 2)
        layer(x)
        assert scheme.weight_calls == 2

    def test_load_state_dict_invalidates(self, rng):
        layer, scheme = make_linear()
        x = Tensor(rng.standard_normal((3, 8)))
        out_before = layer(x).data.copy()
        state = {name: value * 2.0 for name, value in layer.state_dict().items()}
        layer.load_state_dict(state)
        out_after = layer(x).data
        assert scheme.weight_calls == 2
        assert not np.allclose(out_before, out_after)

    def test_clear_weight_cache_forces_requantization(self, rng):
        layer, scheme = make_linear()
        x = Tensor(rng.standard_normal((3, 8)))
        layer(x)
        layer.clear_weight_cache()
        layer(x)
        assert scheme.weight_calls == 2

    def test_gradients_flow_with_cache_active(self, rng):
        layer, _ = make_linear()
        x = Tensor(rng.standard_normal((3, 8)), requires_grad=True)
        layer(x)  # prime the cache
        layer(x).sum().backward()
        assert layer.weight.grad is not None
        assert layer.weight.grad.shape == layer.weight.shape
        assert x.grad is not None


class CountingFASTScheme(FASTScheme):
    """FASTScheme that counts weight-quantization invocations."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.weight_calls = 0

    def _quantize_with_bits(self, values, kind, bits):
        from repro.formats.base import TensorKind
        if kind == TensorKind.WEIGHT:
            self.weight_calls += 1
        return super()._quantize_with_bits(values, kind, bits)


class TogglePolicy:
    """Minimal pure policy whose bits decision tests can flip at will."""

    def __init__(self, bits=2):
        self.bits = bits
        self.history = []

    def decide(self, tensor_kind, layer_index, iteration, tensor=None):
        from repro.core.precision_policy import PrecisionDecision
        return PrecisionDecision(layer_index, iteration, tensor_kind, self.bits)

    def select(self, tensor_kind, layer_index, iteration, tensor=None):
        decision = self.decide(tensor_kind, layer_index, iteration, tensor=tensor)
        self.history.append(decision)
        return decision.mantissa_bits


class TestFASTSchemeCaching:
    """The decision/quantization split lets adaptive training cache weights."""

    def make_fast_linear(self, policy=None):
        if policy is None:
            policy = FASTAdaptivePolicy(total_layers=2, total_iterations=10,
                                        config=BFPConfig(exponent_bits=8))
        scheme = CountingFASTScheme(policy, stochastic_gradients=False,
                                    config=BFPConfig(exponent_bits=8))
        layer = QuantizedLinear(8, 4, scheme=scheme, rng=np.random.default_rng(0))
        return layer, scheme, policy

    def test_repeated_forwards_quantize_once(self, rng):
        layer, scheme, _ = self.make_fast_linear()
        x = Tensor(rng.standard_normal((3, 8)))
        outputs = [layer(x).data for _ in range(5)]
        assert scheme.weight_calls == 1
        for out in outputs[1:]:
            np.testing.assert_array_equal(outputs[0], out)

    def test_every_forward_still_records_a_weight_decision(self, rng):
        layer, _, policy = self.make_fast_linear()
        x = Tensor(rng.standard_normal((3, 8)))
        layer(x)
        weight_decisions = sum(1 for d in policy.history if d.tensor_kind == "weight")
        layer(x)  # cache hit: decision recorded, quantization skipped
        after = sum(1 for d in policy.history if d.tensor_kind == "weight")
        assert after == weight_decisions + 1

    def test_version_bump_invalidates(self, rng):
        layer, scheme, _ = self.make_fast_linear()
        x = Tensor(rng.standard_normal((3, 8)))
        layer(x).sum().backward()
        nn.SGD(layer.parameters(), lr=0.5).step()
        before = scheme.weight_calls
        layer(x)
        assert scheme.weight_calls == before + 1

    def test_bits_flip_invalidates_without_version_change(self, rng):
        """A changed policy decision must refresh the cached weight even when
        the parameter version is unchanged."""
        policy = TogglePolicy(bits=2)
        layer, scheme, _ = self.make_fast_linear(policy)
        x = Tensor(rng.standard_normal((3, 8)))
        low = layer(x).data.copy()
        assert scheme.weight_calls == 1
        policy.bits = 4
        high = layer(x).data
        assert scheme.weight_calls == 2
        assert not np.allclose(low, high)
        assert scheme.precision_setting()["weight"] == 4

    def test_adaptive_threshold_flip_invalidates(self, rng):
        """Same, driven through the real FASTAdaptivePolicy threshold."""
        from repro.core.converter import relative_improvement
        layer, scheme, _ = self.make_fast_linear()
        r_value = relative_improvement(layer.weight.data,
                                       BFPConfig(exponent_bits=8), 2, 4)
        # Pin the threshold just above r(W) at iteration 0 (choose 2 bits)
        # and well below it at the final iteration (choose 4 bits).
        policy = FASTAdaptivePolicy(total_layers=1, total_iterations=10,
                                    alpha=r_value + 0.01, beta=0.5,
                                    config=BFPConfig(exponent_bits=8))
        scheme.policy = policy
        x = Tensor(rng.standard_normal((3, 8)))
        layer.clear_weight_cache()
        scheme.weight_calls = 0
        layer(x)
        assert scheme.precision_setting()["weight"] == 2
        scheme.iteration = 10
        layer(x)
        assert scheme.precision_setting()["weight"] == 4
        assert scheme.weight_calls == 2

    def test_token_requires_weight_values(self, rng):
        layer, scheme, _ = self.make_fast_linear()
        assert scheme.weight_cache_token() is None
        token = scheme.weight_cache_token(layer.weight.data)
        assert token is not None and token[0] == "fast"
        assert token[1] in (2, 4)

    def test_standalone_quantize_weight_selects_fresh(self, rng):
        layer, scheme, policy = self.make_fast_linear()
        values = rng.standard_normal((4, 32))
        before = len(policy.history)
        scheme.quantize_weight(values)
        assert len(policy.history) == before + 1

    def test_stale_pending_bits_not_reused_after_cache_hit(self, rng):
        """A cache-hit forward leaves a pending weight decision unconsumed; a
        later standalone quantize_weight on a different array must still
        select (and record) freshly instead of inheriting those bits."""
        layer, scheme, policy = self.make_fast_linear()
        x = Tensor(rng.standard_normal((3, 8)))
        layer(x)
        layer(x)  # cache hit: weight_cache_token sets pending, nothing consumes it
        other = rng.standard_normal((4, 32))
        before = len(policy.history)
        scheme.quantize_weight(other)
        assert len(policy.history) == before + 1


class TestUncachedSchemes:
    def test_base_scheme_token_is_none(self):
        from repro.nn.quantized import QuantizationScheme
        assert QuantizationScheme().weight_cache_token() is None
        assert QuantizationScheme().weight_cache_token(np.zeros(4)) is None


class TestParameterVersioning:
    def test_parameter_starts_at_version_zero(self):
        param = nn.Parameter(np.zeros(3))
        assert param.version == 0
        param.bump_version()
        assert param.version == 1

    def test_adam_bumps_versions(self, rng):
        layer, _ = make_linear()
        x = Tensor(rng.standard_normal((3, 8)))
        layer(x).sum().backward()
        optimizer = nn.Adam(layer.parameters(), lr=0.01)
        optimizer.step()
        assert layer.weight.version == 1

    def test_params_without_grad_not_bumped(self, rng):
        layer, _ = make_linear()
        optimizer = nn.SGD(layer.parameters(), lr=0.1)
        optimizer.step()  # no gradients accumulated
        assert layer.weight.version == 0
