"""Tests for multi-head attention and Transformer blocks."""

import numpy as np
import pytest

from repro import nn
from repro.nn.attention import (
    MultiHeadAttention,
    TransformerDecoderLayer,
    TransformerEncoderLayer,
    causal_mask,
    positional_encoding,
    scaled_dot_product_attention,
)
from repro.nn.tensor import Tensor


class TestAttentionPrimitives:
    def test_causal_mask_blocks_future(self):
        mask = causal_mask(4)
        assert mask.shape == (4, 4)
        assert np.all(mask[np.triu_indices(4, k=1)] < -1e8)
        assert np.all(mask[np.tril_indices(4)] == 0)

    def test_positional_encoding_shape_and_range(self):
        encoding = positional_encoding(10, 16)
        assert encoding.shape == (10, 16)
        assert np.abs(encoding).max() <= 1.0

    def test_positional_encoding_rows_distinct(self):
        encoding = positional_encoding(8, 32)
        distances = np.abs(encoding[:, None] - encoding[None, :]).sum(axis=-1)
        assert np.all(distances[~np.eye(8, dtype=bool)] > 0.1)

    def test_scaled_dot_product_attention_weights(self, rng):
        query = Tensor(rng.standard_normal((1, 1, 3, 4)))
        key = Tensor(rng.standard_normal((1, 1, 5, 4)))
        value = Tensor(rng.standard_normal((1, 1, 5, 4)))
        out = scaled_dot_product_attention(query, key, value)
        assert out.shape == (1, 1, 3, 4)

    def test_uniform_keys_average_values(self):
        """Identical keys give uniform attention, so the output is the mean value."""
        query = Tensor(np.ones((1, 1, 1, 2)))
        key = Tensor(np.ones((1, 1, 4, 2)))
        value = Tensor(np.arange(8.0).reshape(1, 1, 4, 2))
        out = scaled_dot_product_attention(query, key, value)
        np.testing.assert_allclose(out.data[0, 0, 0], value.data[0, 0].mean(axis=0))

    def test_causal_mask_prevents_information_flow(self, rng):
        """Changing a later position must not change earlier outputs under the mask."""
        attention = MultiHeadAttention(8, 2, rng=np.random.default_rng(0))
        x = rng.standard_normal((1, 4, 8))
        mask = causal_mask(4)
        base = attention(Tensor(x), mask=mask).data
        perturbed = x.copy()
        perturbed[0, 3] += 10.0
        changed = attention(Tensor(perturbed), mask=mask).data
        np.testing.assert_allclose(base[0, :3], changed[0, :3], atol=1e-10)
        assert not np.allclose(base[0, 3], changed[0, 3])


class TestMultiHeadAttention:
    def test_output_shape(self, rng):
        attention = MultiHeadAttention(16, 4, rng=rng)
        out = attention(Tensor(rng.standard_normal((2, 5, 16))))
        assert out.shape == (2, 5, 16)

    def test_embed_dim_must_divide(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(10, 3)

    def test_cross_attention_uses_memory(self, rng):
        attention = MultiHeadAttention(8, 2, rng=rng)
        query = Tensor(rng.standard_normal((1, 3, 8)))
        memory = rng.standard_normal((1, 6, 8))
        out_a = attention(query, key=Tensor(memory), value=Tensor(memory)).data
        out_b = attention(query, key=Tensor(memory * 2), value=Tensor(memory * 2)).data
        assert not np.allclose(out_a, out_b)

    def test_gradients_reach_all_projections(self, rng):
        attention = MultiHeadAttention(8, 2, rng=rng)
        out = attention(Tensor(rng.standard_normal((1, 4, 8)), requires_grad=True))
        out.sum().backward()
        for name, parameter in attention.named_parameters():
            if name.endswith("weight"):
                assert parameter.grad is not None, name


class TestTransformerLayers:
    def test_encoder_layer_shape_preserved(self, rng):
        layer = TransformerEncoderLayer(16, 4, 32, rng=rng)
        out = layer(Tensor(rng.standard_normal((2, 6, 16))))
        assert out.shape == (2, 6, 16)

    def test_decoder_layer_shape_preserved(self, rng):
        layer = TransformerDecoderLayer(16, 4, 32, rng=rng)
        memory = Tensor(rng.standard_normal((2, 7, 16)))
        out = layer(Tensor(rng.standard_normal((2, 5, 16))), memory, self_mask=causal_mask(5))
        assert out.shape == (2, 5, 16)

    def test_residual_path_keeps_input_influence(self, rng):
        """With tiny weights the encoder layer behaves nearly as identity."""
        layer = TransformerEncoderLayer(8, 2, 16, rng=np.random.default_rng(0))
        for parameter in layer.parameters():
            if parameter.ndim >= 2:
                parameter.data = parameter.data * 1e-4
        x = rng.standard_normal((1, 3, 8))
        out = layer(Tensor(x)).data
        np.testing.assert_allclose(out, x, atol=1e-2)

    def test_encoder_layer_is_quantizable(self, rng):
        from repro.nn.quantized import BFPScheme, quantized_modules

        layer = TransformerEncoderLayer(16, 4, 32, rng=rng)
        quantized = quantized_modules(layer)
        assert len(quantized) >= 6  # q, k, v, out projections + 2 ffn layers
        for module in quantized:
            module.scheme = BFPScheme(stochastic_gradients=False)
        out = layer(Tensor(rng.standard_normal((1, 4, 16))))
        assert out.shape == (1, 4, 16)
