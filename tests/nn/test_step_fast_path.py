"""Tests for the step-level fast paths in ``repro.nn.functional``:

* memoized im2col/scatter indices (and their cached/uncached equivalence),
* the BLAS/bincount convolution path vs. the einsum/add.at reference,
* the reshape-based non-overlapping max-pool fast path,
* dtype preservation in ``dropout`` and ``one_hot``.
"""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor


@pytest.fixture(autouse=True)
def _fast_path_defaults():
    """Each test starts from the enabled defaults with empty index caches."""
    prev_cache = F.set_im2col_cache_enabled(True)
    prev_conv = F.set_conv_fast_path_enabled(True)
    F.clear_im2col_cache()
    yield
    F.set_im2col_cache_enabled(prev_cache)
    F.set_conv_fast_path_enabled(prev_conv)
    F.clear_im2col_cache()


class TestIm2colMemoization:
    def test_hit_returns_identical_objects(self):
        shape = (2, 3, 8, 8)
        first = F.im2col_indices(shape, 3, 3, 1, 1)
        second = F.im2col_indices(shape, 3, 3, 1, 1)
        assert all(a is b for a, b in zip(first[:3], second[:3]))

    def test_batch_size_does_not_split_the_cache(self):
        first = F.im2col_indices((2, 3, 8, 8), 3, 3, 1, 1)
        second = F.im2col_indices((64, 3, 8, 8), 3, 3, 1, 1)
        assert first[0] is second[0]

    def test_memoized_indices_match_fresh_build(self):
        shape = (4, 5, 9, 7)
        cached = F.im2col_indices(shape, 3, 2, 2, 1)
        F.set_im2col_cache_enabled(False)
        fresh = F.im2col_indices(shape, 3, 2, 2, 1)
        for a, b in zip(cached, fresh):
            np.testing.assert_array_equal(a, b)

    def test_cached_arrays_are_read_only(self):
        k, i, j, _, _ = F.im2col_indices((2, 3, 8, 8), 3, 3, 1, 1)
        with pytest.raises(ValueError):
            k[0, 0] = 99

    def test_empty_output_still_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            F.im2col_indices((1, 1, 2, 2), 5, 5, 1, 0)

    def test_disabled_cache_stores_nothing(self):
        F.set_im2col_cache_enabled(False)
        F.clear_im2col_cache()
        F.im2col_indices((2, 3, 8, 8), 3, 3, 1, 1)
        assert not F.im2col_cache_enabled()
        F.set_im2col_cache_enabled(True)
        first = F.im2col_indices((2, 3, 8, 8), 3, 3, 1, 1)
        assert first[0] is F.im2col_indices((2, 3, 8, 8), 3, 3, 1, 1)[0]


class TestConvFastPath:
    def run_conv(self, rng, fast, stride=1, padding=1):
        F.set_conv_fast_path_enabled(fast)
        x = Tensor(rng.standard_normal((2, 3, 8, 8)), requires_grad=True)
        w = Tensor(rng.standard_normal((4, 3, 3, 3)), requires_grad=True)
        b = Tensor(rng.standard_normal(4), requires_grad=True)
        out = F.conv2d(x, w, b, stride=stride, padding=padding)
        out.sum().backward()
        return out.data, x.grad, w.grad, b.grad

    @pytest.mark.parametrize("stride,padding", [(1, 1), (2, 0), (1, 2)])
    def test_matmul_path_matches_einsum(self, stride, padding):
        fast = self.run_conv(np.random.default_rng(0), True, stride, padding)
        slow = self.run_conv(np.random.default_rng(0), False, stride, padding)
        for fast_arr, slow_arr in zip(fast, slow):
            np.testing.assert_allclose(fast_arr, slow_arr, rtol=1e-12, atol=1e-12)

    def test_col2im_bincount_bit_equals_add_at(self, rng):
        shape = (3, 3, 8, 8)
        out_side = (8 + 2 * 1 - 2) // 1 + 1
        cols = rng.standard_normal((3, 3 * 4, out_side * out_side))
        fast = F.col2im(cols, shape, 2, 2, 1, 1)
        F.set_conv_fast_path_enabled(False)
        slow = F.col2im(cols, shape, 2, 2, 1, 1)
        np.testing.assert_array_equal(fast, slow)

    def test_col2im_float32_keeps_dtype(self, rng):
        cols = rng.standard_normal((2, 4, 16)).astype(np.float32)
        out = F.col2im(cols, (2, 1, 8, 8), 2, 2, 2, 0)
        assert out.dtype == np.float32


class TestMaxPoolFastPath:
    def run_pool(self, x, fast, kernel, stride=None):
        F.set_conv_fast_path_enabled(fast)
        tensor = Tensor(x, requires_grad=True)
        out = F.max_pool2d(tensor, kernel, stride)
        out.sum().backward()
        return out.data, tensor.grad

    @pytest.mark.parametrize("shape,kernel", [((2, 3, 8, 8), 2), ((1, 2, 6, 6), 3)])
    def test_reshape_path_bit_equals_im2col(self, rng, shape, kernel):
        # Integer values create ties; both paths must pick the same winner.
        x = rng.integers(-3, 4, size=shape).astype(float)
        fast_out, fast_grad = self.run_pool(x, True, kernel)
        slow_out, slow_grad = self.run_pool(x, False, kernel)
        np.testing.assert_array_equal(fast_out, slow_out)
        np.testing.assert_array_equal(fast_grad, slow_grad)

    def test_overlapping_windows_use_im2col_path(self, rng):
        x = rng.standard_normal((1, 1, 6, 6))
        fast_out, fast_grad = self.run_pool(x, True, 3, stride=2)
        slow_out, slow_grad = self.run_pool(x, False, 3, stride=2)
        np.testing.assert_array_equal(fast_out, slow_out)
        np.testing.assert_array_equal(fast_grad, slow_grad)


class TestDtypePreservation:
    def test_dropout_mask_keeps_float32(self):
        x = Tensor(np.ones((64, 64), dtype=np.float32))
        assert x.data.dtype == np.float32  # Tensor preserves float32
        out = F.dropout(x, 0.5, training=True, rng=np.random.default_rng(0))
        assert out.data.dtype == np.float32

    def test_dropout_float64_values_unchanged_semantics(self):
        rng_a, rng_b = np.random.default_rng(3), np.random.default_rng(3)
        x = Tensor(np.ones((32, 32)))
        out = F.dropout(x, 0.25, training=True, rng=rng_a)
        mask = (rng_b.random((32, 32)) >= 0.25).astype(np.float64) / 0.75
        np.testing.assert_array_equal(out.data, mask)

    def test_one_hot_default_float64(self):
        encoded = F.one_hot(np.array([0, 2, 1]), 3)
        assert encoded.dtype == np.float64
        np.testing.assert_array_equal(encoded.sum(axis=1), np.ones(3))

    def test_one_hot_dtype_override(self):
        encoded = F.one_hot(np.array([0, 2, 1]), 3, dtype=np.float32)
        assert encoded.dtype == np.float32
        np.testing.assert_array_equal(
            encoded, F.one_hot(np.array([0, 2, 1]), 3).astype(np.float32))
