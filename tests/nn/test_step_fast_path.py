"""Tests for the step-level fast paths in ``repro.nn.functional``:

* memoized im2col/scatter indices (and their cached/uncached equivalence),
* the BLAS/bincount convolution path vs. the einsum/add.at reference,
* the reshape-based non-overlapping max-pool fast path,
* dtype preservation in ``dropout`` and ``one_hot``.
"""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor


@pytest.fixture(autouse=True)
def _fast_path_defaults():
    """Each test starts from the enabled defaults with empty index caches."""
    prev_cache = F.set_im2col_cache_enabled(True)
    prev_conv = F.set_conv_fast_path_enabled(True)
    F.clear_im2col_cache()
    yield
    F.set_im2col_cache_enabled(prev_cache)
    F.set_conv_fast_path_enabled(prev_conv)
    F.clear_im2col_cache()


class TestIm2colMemoization:
    def test_hit_returns_identical_objects(self):
        shape = (2, 3, 8, 8)
        first = F.im2col_indices(shape, 3, 3, 1, 1)
        second = F.im2col_indices(shape, 3, 3, 1, 1)
        assert all(a is b for a, b in zip(first[:3], second[:3]))

    def test_batch_size_does_not_split_the_cache(self):
        first = F.im2col_indices((2, 3, 8, 8), 3, 3, 1, 1)
        second = F.im2col_indices((64, 3, 8, 8), 3, 3, 1, 1)
        assert first[0] is second[0]

    def test_memoized_indices_match_fresh_build(self):
        shape = (4, 5, 9, 7)
        cached = F.im2col_indices(shape, 3, 2, 2, 1)
        F.set_im2col_cache_enabled(False)
        fresh = F.im2col_indices(shape, 3, 2, 2, 1)
        for a, b in zip(cached, fresh):
            np.testing.assert_array_equal(a, b)

    def test_cached_arrays_are_read_only(self):
        k, i, j, _, _ = F.im2col_indices((2, 3, 8, 8), 3, 3, 1, 1)
        with pytest.raises(ValueError):
            k[0, 0] = 99

    def test_empty_output_still_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            F.im2col_indices((1, 1, 2, 2), 5, 5, 1, 0)

    def test_disabled_cache_stores_nothing(self):
        F.set_im2col_cache_enabled(False)
        F.clear_im2col_cache()
        F.im2col_indices((2, 3, 8, 8), 3, 3, 1, 1)
        assert not F.im2col_cache_enabled()
        F.set_im2col_cache_enabled(True)
        first = F.im2col_indices((2, 3, 8, 8), 3, 3, 1, 1)
        assert first[0] is F.im2col_indices((2, 3, 8, 8), 3, 3, 1, 1)[0]


class TestConvFastPath:
    def run_conv(self, rng, fast, stride=1, padding=1):
        F.set_conv_fast_path_enabled(fast)
        x = Tensor(rng.standard_normal((2, 3, 8, 8)), requires_grad=True)
        w = Tensor(rng.standard_normal((4, 3, 3, 3)), requires_grad=True)
        b = Tensor(rng.standard_normal(4), requires_grad=True)
        out = F.conv2d(x, w, b, stride=stride, padding=padding)
        out.sum().backward()
        return out.data, x.grad, w.grad, b.grad

    @pytest.mark.parametrize("stride,padding", [(1, 1), (2, 0), (1, 2)])
    def test_matmul_path_matches_einsum(self, stride, padding):
        fast = self.run_conv(np.random.default_rng(0), True, stride, padding)
        slow = self.run_conv(np.random.default_rng(0), False, stride, padding)
        for fast_arr, slow_arr in zip(fast, slow):
            np.testing.assert_allclose(fast_arr, slow_arr, rtol=1e-12, atol=1e-12)

    def test_col2im_bincount_bit_equals_add_at(self, rng):
        shape = (3, 3, 8, 8)
        out_side = (8 + 2 * 1 - 2) // 1 + 1
        cols = rng.standard_normal((3, 3 * 4, out_side * out_side))
        fast = F.col2im(cols, shape, 2, 2, 1, 1)
        F.set_conv_fast_path_enabled(False)
        slow = F.col2im(cols, shape, 2, 2, 1, 1)
        np.testing.assert_array_equal(fast, slow)

    def test_col2im_float32_keeps_dtype(self, rng):
        cols = rng.standard_normal((2, 4, 16)).astype(np.float32)
        out = F.col2im(cols, (2, 1, 8, 8), 2, 2, 2, 0)
        assert out.dtype == np.float32

    def test_col2im_float32_fast_path_matches_add_at(self, rng):
        """The float32 fast scatter (float64 accumulate, one final round)
        agrees with the float32 ``add.at`` reference to rounding error."""
        cols = rng.standard_normal((2, 1 * 9, 64)).astype(np.float32)
        fast = F.col2im(cols, (2, 1, 8, 8), 3, 3, 1, 1)
        F.set_conv_fast_path_enabled(False)
        slow = F.col2im(cols, (2, 1, 8, 8), 3, 3, 1, 1)
        assert fast.dtype == slow.dtype == np.float32
        np.testing.assert_allclose(fast, slow, rtol=1e-5, atol=1e-6)


class TestGroupedConvFastPath:
    def run_grouped(self, rng, fast, groups, cin, cout, stride=1, padding=1):
        from repro import nn

        F.set_conv_fast_path_enabled(fast)
        layer = nn.Conv2d(cin, cout, 3, stride=stride, padding=padding,
                          groups=groups, rng=np.random.default_rng(7))
        x = Tensor(rng.standard_normal((2, cin, 8, 8)), requires_grad=True)
        out = layer(x)
        (out * out).sum().backward()
        result = (out.data, x.grad, layer.weight.grad, layer.bias.grad)
        layer.zero_grad()
        return result

    @pytest.mark.parametrize("groups,cin,cout", [(2, 4, 6), (6, 6, 6), (3, 9, 3)])
    def test_batched_group_matmul_matches_per_group_loop(self, groups, cin, cout):
        fast = self.run_grouped(np.random.default_rng(1), True, groups, cin, cout)
        slow = self.run_grouped(np.random.default_rng(1), False, groups, cin, cout)
        for fast_arr, slow_arr in zip(fast, slow):
            np.testing.assert_allclose(fast_arr, slow_arr, rtol=1e-10, atol=1e-10)

    def test_depthwise_strided(self):
        fast = self.run_grouped(np.random.default_rng(2), True, 4, 4, 4, stride=2)
        slow = self.run_grouped(np.random.default_rng(2), False, 4, 4, 4, stride=2)
        for fast_arr, slow_arr in zip(fast, slow):
            np.testing.assert_allclose(fast_arr, slow_arr, rtol=1e-10, atol=1e-10)

    def test_functional_groups_shape_validation(self, rng):
        x = Tensor(rng.standard_normal((1, 4, 5, 5)))
        w = Tensor(rng.standard_normal((4, 2, 3, 3)))
        with pytest.raises(ValueError, match="shape mismatch"):
            F.conv2d(x, w, groups=3)

    def test_conv2d_infer_matches_autograd_forward(self, rng):
        x = rng.standard_normal((2, 4, 6, 6))
        w = rng.standard_normal((6, 2, 3, 3))
        b = rng.standard_normal(6)
        expected = F.conv2d(Tensor(x), Tensor(w), Tensor(b), padding=1, groups=2).data
        np.testing.assert_array_equal(
            F.conv2d_infer(x, w, b, padding=1, groups=2), expected)


class TestAvgPoolFastPath:
    def run_pool(self, x, fast, kernel, stride=None):
        F.set_conv_fast_path_enabled(fast)
        tensor = Tensor(x, requires_grad=True)
        out = F.avg_pool2d(tensor, kernel, stride)
        out.sum().backward()
        return out.data, tensor.grad

    def test_power_of_two_window_bit_equals_im2col(self, rng):
        x = rng.standard_normal((2, 3, 8, 8))
        fast_out, fast_grad = self.run_pool(x, True, 2)
        slow_out, slow_grad = self.run_pool(x, False, 2)
        np.testing.assert_array_equal(fast_out, slow_out)
        np.testing.assert_array_equal(fast_grad, slow_grad)

    def test_odd_window_matches_to_rounding_with_exact_backward(self, rng):
        # A 9-element mean may pair elements differently across layouts;
        # the backward spread is bit-identical regardless.
        x = rng.standard_normal((1, 2, 6, 6))
        fast_out, fast_grad = self.run_pool(x, True, 3)
        slow_out, slow_grad = self.run_pool(x, False, 3)
        np.testing.assert_allclose(fast_out, slow_out, rtol=1e-13, atol=1e-15)
        np.testing.assert_array_equal(fast_grad, slow_grad)

    def test_overlapping_windows_use_im2col_path(self, rng):
        x = rng.standard_normal((1, 1, 6, 6))
        fast_out, fast_grad = self.run_pool(x, True, 3, stride=2)
        slow_out, slow_grad = self.run_pool(x, False, 3, stride=2)
        np.testing.assert_array_equal(fast_out, slow_out)
        np.testing.assert_array_equal(fast_grad, slow_grad)

    def test_infer_helpers_match_autograd(self, rng):
        x = rng.standard_normal((2, 3, 8, 8))
        np.testing.assert_array_equal(F.avg_pool2d_infer(x, 2),
                                      F.avg_pool2d(Tensor(x), 2).data)
        np.testing.assert_array_equal(F.max_pool2d_infer(x, 2),
                                      F.max_pool2d(Tensor(x), 2).data)
        np.testing.assert_array_equal(F.avg_pool2d_infer(x, 3, 2),
                                      F.avg_pool2d(Tensor(x), 3, 2).data)


class TestMaxPoolFastPath:
    def run_pool(self, x, fast, kernel, stride=None):
        F.set_conv_fast_path_enabled(fast)
        tensor = Tensor(x, requires_grad=True)
        out = F.max_pool2d(tensor, kernel, stride)
        out.sum().backward()
        return out.data, tensor.grad

    @pytest.mark.parametrize("shape,kernel", [((2, 3, 8, 8), 2), ((1, 2, 6, 6), 3)])
    def test_reshape_path_bit_equals_im2col(self, rng, shape, kernel):
        # Integer values create ties; both paths must pick the same winner.
        x = rng.integers(-3, 4, size=shape).astype(float)
        fast_out, fast_grad = self.run_pool(x, True, kernel)
        slow_out, slow_grad = self.run_pool(x, False, kernel)
        np.testing.assert_array_equal(fast_out, slow_out)
        np.testing.assert_array_equal(fast_grad, slow_grad)

    def test_overlapping_windows_use_im2col_path(self, rng):
        x = rng.standard_normal((1, 1, 6, 6))
        fast_out, fast_grad = self.run_pool(x, True, 3, stride=2)
        slow_out, slow_grad = self.run_pool(x, False, 3, stride=2)
        np.testing.assert_array_equal(fast_out, slow_out)
        np.testing.assert_array_equal(fast_grad, slow_grad)


class TestDtypePreservation:
    def test_dropout_mask_keeps_float32(self):
        x = Tensor(np.ones((64, 64), dtype=np.float32))
        assert x.data.dtype == np.float32  # Tensor preserves float32
        out = F.dropout(x, 0.5, training=True, rng=np.random.default_rng(0))
        assert out.data.dtype == np.float32

    def test_dropout_float64_values_unchanged_semantics(self):
        rng_a, rng_b = np.random.default_rng(3), np.random.default_rng(3)
        x = Tensor(np.ones((32, 32)))
        out = F.dropout(x, 0.25, training=True, rng=rng_a)
        mask = (rng_b.random((32, 32)) >= 0.25).astype(np.float64) / 0.75
        np.testing.assert_array_equal(out.data, mask)

    def test_one_hot_default_float64(self):
        encoded = F.one_hot(np.array([0, 2, 1]), 3)
        assert encoded.dtype == np.float64
        np.testing.assert_array_equal(encoded.sum(axis=1), np.ones(3))

    def test_one_hot_dtype_override(self):
        encoded = F.one_hot(np.array([0, 2, 1]), 3, dtype=np.float32)
        assert encoded.dtype == np.float32
        np.testing.assert_array_equal(
            encoded, F.one_hot(np.array([0, 2, 1]), 3).astype(np.float32))
