"""Tests for the SGD and Adam optimizers."""

import numpy as np
import pytest

from repro import nn
from repro.core.bfp import bfp_quantize
from repro.nn.modules import Parameter
from repro.nn.optim import SGD, Adam


def quadratic_loss(parameter):
    return ((parameter - 3.0) ** 2).sum()


class TestSGD:
    def test_single_step_matches_formula(self):
        parameter = Parameter(np.array([1.0]))
        optimizer = SGD([parameter], lr=0.1)
        loss = quadratic_loss(parameter)
        loss.backward()
        optimizer.step()
        # gradient = 2 * (1 - 3) = -4; update = 1 - 0.1 * (-4) = 1.4
        assert parameter.data[0] == pytest.approx(1.4)

    def test_converges_on_quadratic(self):
        parameter = Parameter(np.zeros(4))
        optimizer = SGD([parameter], lr=0.1)
        for _ in range(100):
            optimizer.zero_grad()
            quadratic_loss(parameter).backward()
            optimizer.step()
        np.testing.assert_allclose(parameter.data, np.full(4, 3.0), atol=1e-3)

    def test_momentum_accelerates(self):
        plain = Parameter(np.zeros(1))
        momentum = Parameter(np.zeros(1))
        optimizer_plain = SGD([plain], lr=0.01)
        optimizer_momentum = SGD([momentum], lr=0.01, momentum=0.9)
        for _ in range(20):
            for parameter, optimizer in ((plain, optimizer_plain), (momentum, optimizer_momentum)):
                optimizer.zero_grad()
                quadratic_loss(parameter).backward()
                optimizer.step()
        assert abs(momentum.data[0] - 3.0) < abs(plain.data[0] - 3.0)

    def test_weight_decay_pulls_toward_zero(self):
        parameter = Parameter(np.array([1.0]))
        optimizer = SGD([parameter], lr=0.1, weight_decay=0.5)
        optimizer.zero_grad()
        (parameter * 0.0).sum().backward()
        optimizer.step()
        assert parameter.data[0] == pytest.approx(1.0 - 0.1 * 0.5)

    def test_skips_parameters_without_grad(self):
        parameter = Parameter(np.array([1.0]))
        optimizer = SGD([parameter], lr=0.1)
        optimizer.step()
        assert parameter.data[0] == 1.0

    def test_update_quantizer_applied(self):
        parameter = Parameter(np.array([1.0, 0.3, -0.7, 0.05] * 4))
        quantizer = lambda w: bfp_quantize(w, mantissa_bits=4, group_size=16, exponent_bits=3)
        optimizer = SGD([parameter], lr=0.1, update_quantizer=quantizer)
        optimizer.zero_grad()
        (parameter ** 2).sum().backward()
        optimizer.step()
        np.testing.assert_allclose(parameter.data, quantizer(parameter.data))

    def test_empty_parameter_list_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_set_lr(self):
        parameter = Parameter(np.array([0.0]))
        optimizer = SGD([parameter], lr=0.1)
        optimizer.set_lr(0.01)
        assert optimizer.lr == 0.01


class TestAdam:
    def test_converges_on_quadratic(self):
        parameter = Parameter(np.zeros(3))
        optimizer = Adam([parameter], lr=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            quadratic_loss(parameter).backward()
            optimizer.step()
        np.testing.assert_allclose(parameter.data, np.full(3, 3.0), atol=1e-2)

    def test_first_step_size_close_to_lr(self):
        parameter = Parameter(np.array([0.0]))
        optimizer = Adam([parameter], lr=0.01)
        optimizer.zero_grad()
        (parameter * 5.0).sum().backward()
        optimizer.step()
        # With bias correction the first Adam step is ~lr regardless of scale.
        assert abs(parameter.data[0]) == pytest.approx(0.01, rel=1e-3)

    def test_adapts_per_parameter_scale(self):
        parameter = Parameter(np.array([0.0, 0.0]))
        optimizer = Adam([parameter], lr=0.05)
        for _ in range(50):
            optimizer.zero_grad()
            loss = ((parameter[0] - 1.0) ** 2) * 100.0 + (parameter[1] - 1.0) ** 2
            loss.backward()
            optimizer.step()
        assert abs(parameter.data[0] - 1.0) < 0.2
        assert abs(parameter.data[1] - 1.0) < 0.2

    def test_weight_decay(self):
        parameter = Parameter(np.array([1.0]))
        optimizer = Adam([parameter], lr=0.01, weight_decay=1.0)
        optimizer.zero_grad()
        (parameter * 0.0).sum().backward()
        optimizer.step()
        assert parameter.data[0] < 1.0

    def test_trains_linear_regression(self, rng):
        """End to end: Adam fits a small linear model."""
        true_weight = rng.standard_normal((3, 1))
        inputs = rng.standard_normal((64, 3))
        targets = inputs @ true_weight
        model = nn.Linear(3, 1, rng=rng)
        optimizer = Adam(model.parameters(), lr=0.05)
        for _ in range(150):
            optimizer.zero_grad()
            loss = nn.mse_loss(model(nn.Tensor(inputs)), targets)
            loss.backward()
            optimizer.step()
        assert loss.item() < 1e-2
