"""Tests for learning-rate schedulers and their trainer integration."""

import numpy as np
import pytest

from repro import nn
from repro.data import DataLoader, SyntheticImageDataset
from repro.models import MLP
from repro.nn.lr_scheduler import CosineAnnealingLR, MultiStepLR, StepLR, WarmupLR
from repro.nn.modules import Parameter
from repro.nn.optim import SGD
from repro.training import ClassificationTrainer, FP32Schedule


def make_optimizer(lr=0.1):
    return SGD([Parameter(np.zeros(3))], lr=lr)


class TestStepLR:
    def test_decays_every_step_size_epochs(self):
        optimizer = make_optimizer(0.1)
        scheduler = StepLR(optimizer, step_size=2, gamma=0.1)
        lrs = [scheduler.step() for _ in range(6)]
        assert lrs == pytest.approx([0.1, 0.1, 0.01, 0.01, 0.001, 0.001])
        assert optimizer.lr == pytest.approx(0.001)

    def test_invalid_step_size(self):
        with pytest.raises(ValueError):
            StepLR(make_optimizer(), step_size=0)


class TestMultiStepLR:
    def test_paper_yolo_recipe(self):
        """Divide by 10 at epochs 60 and 90 (Section VI preamble)."""
        optimizer = make_optimizer(1e-3)
        scheduler = MultiStepLR(optimizer, milestones=[60, 90], gamma=0.1)
        assert scheduler.get_lr(0) == pytest.approx(1e-3)
        assert scheduler.get_lr(59) == pytest.approx(1e-3)
        assert scheduler.get_lr(60) == pytest.approx(1e-4)
        assert scheduler.get_lr(89) == pytest.approx(1e-4)
        assert scheduler.get_lr(90) == pytest.approx(1e-5)

    def test_unsorted_milestones_handled(self):
        scheduler = MultiStepLR(make_optimizer(1.0), milestones=[9, 3], gamma=0.5)
        assert scheduler.get_lr(5) == pytest.approx(0.5)


class TestCosineAnnealingLR:
    def test_endpoints(self):
        scheduler = CosineAnnealingLR(make_optimizer(0.2), total_epochs=10, min_lr=0.02)
        assert scheduler.get_lr(0) == pytest.approx(0.2)
        assert scheduler.get_lr(10) == pytest.approx(0.02)

    def test_monotone_decay(self):
        scheduler = CosineAnnealingLR(make_optimizer(1.0), total_epochs=20)
        lrs = [scheduler.get_lr(epoch) for epoch in range(21)]
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_invalid_total(self):
        with pytest.raises(ValueError):
            CosineAnnealingLR(make_optimizer(), total_epochs=0)


class TestWarmupLR:
    def test_linear_warmup_then_delegate(self):
        optimizer = make_optimizer(0.4)
        after = StepLR(optimizer, step_size=100, gamma=0.1)
        scheduler = WarmupLR(optimizer, warmup_epochs=4, after=after)
        assert scheduler.get_lr(0) == pytest.approx(0.1)
        assert scheduler.get_lr(3) == pytest.approx(0.4)
        assert scheduler.get_lr(4) == pytest.approx(0.4)

    def test_invalid_warmup(self):
        with pytest.raises(ValueError):
            WarmupLR(make_optimizer(), warmup_epochs=0, after=StepLR(make_optimizer(), 1))


class TestTrainerIntegration:
    def test_scheduler_steps_once_per_epoch(self):
        dataset = SyntheticImageDataset(num_samples=48, num_classes=3, image_size=6, seed=0)
        train, _ = dataset.split(0.9)
        model = MLP(3 * 6 * 6, [16], 3, rng=np.random.default_rng(0))
        optimizer = nn.SGD(model.parameters(), lr=0.1)
        scheduler = StepLR(optimizer, step_size=1, gamma=0.5)
        trainer = ClassificationTrainer(model, optimizer, FP32Schedule())
        trainer.fit(DataLoader(train, 16, seed=0), epochs=3, lr_scheduler=scheduler)
        assert scheduler.last_epoch == 2
        assert optimizer.lr == pytest.approx(0.1 * 0.5 ** 2)
