"""Tests for the module system and the standard layers."""

import numpy as np
import pytest

from repro import nn


class TestModuleSystem:
    def test_parameter_registration(self):
        layer = nn.Linear(4, 3)
        names = [name for name, _ in layer.named_parameters()]
        assert "weight" in names
        assert "bias" in names

    def test_nested_module_traversal(self):
        model = nn.Sequential(nn.Linear(4, 8), nn.ReLU(), nn.Linear(8, 2))
        assert len(model.parameters()) == 4
        assert any(name.startswith("0.") for name, _ in model.named_parameters())
        assert len(model.modules()) >= 4

    def test_train_eval_propagates(self):
        model = nn.Sequential(nn.Linear(2, 2), nn.Dropout(0.5))
        model.eval()
        assert all(not module.training for module in model.modules())
        model.train()
        assert all(module.training for module in model.modules())

    def test_zero_grad(self):
        layer = nn.Linear(3, 2)
        out = layer(nn.Tensor(np.ones((1, 3)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_state_dict_roundtrip(self, rng):
        source = nn.Linear(4, 3, rng=rng)
        target = nn.Linear(4, 3, rng=np.random.default_rng(99))
        target.load_state_dict(source.state_dict())
        np.testing.assert_array_equal(source.weight.data, target.weight.data)

    def test_num_parameters(self):
        layer = nn.Linear(10, 5)
        assert layer.num_parameters() == 10 * 5 + 5

    def test_module_list(self):
        layers = nn.ModuleList([nn.Linear(2, 2) for _ in range(3)])
        assert len(layers) == 3
        assert len(layers.parameters()) == 6
        with pytest.raises(RuntimeError):
            layers(np.ones((1, 2)))

    def test_sequential_indexing_and_append(self):
        model = nn.Sequential(nn.Linear(2, 4))
        model.append(nn.ReLU())
        assert isinstance(model[1], nn.ReLU)
        assert len(model) == 2


class TestLayers:
    def test_linear_shapes(self, rng):
        layer = nn.Linear(6, 4, rng=rng)
        out = layer(nn.Tensor(rng.standard_normal((3, 6))))
        assert out.shape == (3, 4)

    def test_linear_without_bias(self, rng):
        layer = nn.Linear(6, 4, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_conv2d_shapes(self, rng):
        layer = nn.Conv2d(3, 8, 3, stride=2, padding=1, rng=rng)
        out = layer(nn.Tensor(rng.standard_normal((2, 3, 8, 8))))
        assert out.shape == (2, 8, 4, 4)

    def test_grouped_conv_matches_blockdiag(self, rng):
        """A grouped convolution equals independent convolutions per group."""
        layer = nn.Conv2d(4, 4, 3, padding=1, groups=2, bias=False, rng=rng)
        x = rng.standard_normal((1, 4, 5, 5))
        out = layer(nn.Tensor(x)).data
        first = nn.functional.conv2d(nn.Tensor(x[:, :2]), nn.Tensor(layer.weight.data[:2]),
                                     padding=1).data
        np.testing.assert_allclose(out[:, :2], first, atol=1e-10)

    def test_depthwise_conv(self, rng):
        layer = nn.Conv2d(6, 6, 3, padding=1, groups=6, rng=rng)
        out = layer(nn.Tensor(rng.standard_normal((2, 6, 4, 4))))
        assert out.shape == (2, 6, 4, 4)
        assert layer.weight.shape == (6, 1, 3, 3)

    def test_invalid_groups_rejected(self):
        with pytest.raises(ValueError):
            nn.Conv2d(4, 6, 3, groups=4)

    def test_batchnorm_normalizes_batch(self, rng):
        norm = nn.BatchNorm2d(3)
        x = rng.standard_normal((8, 3, 4, 4)) * 5 + 2
        out = norm(nn.Tensor(x)).data
        assert abs(out.mean()) < 1e-6
        assert abs(out.std() - 1.0) < 1e-2

    def test_batchnorm_running_stats_used_in_eval(self, rng):
        norm = nn.BatchNorm2d(2, momentum=0.5)
        x = rng.standard_normal((16, 2, 4, 4)) + 3.0
        norm(nn.Tensor(x))
        norm.eval()
        out = norm(nn.Tensor(x)).data
        # Running stats only partially converged, so the eval output is not
        # exactly normalized but must use the stored statistics.
        assert out.mean() != pytest.approx(0.0, abs=1e-6)

    def test_layernorm_normalizes_last_axis(self, rng):
        norm = nn.LayerNorm(8)
        out = norm(nn.Tensor(rng.standard_normal((4, 8)) * 3 + 1)).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-6)

    def test_embedding_shape(self, rng):
        embedding = nn.Embedding(20, 8, rng=rng)
        out = embedding(np.array([[1, 2, 3]]))
        assert out.shape == (1, 3, 8)

    def test_activations_forward(self, rng):
        x = nn.Tensor(rng.standard_normal((2, 4)))
        assert nn.ReLU()(x).shape == (2, 4)
        assert nn.Sigmoid()(x).shape == (2, 4)
        assert nn.Tanh()(x).shape == (2, 4)
        assert nn.GELU()(x).shape == (2, 4)
        assert nn.LeakyReLU(0.2)(x).shape == (2, 4)

    def test_gelu_close_to_relu_for_large_inputs(self):
        x = nn.Tensor(np.array([10.0, -10.0]))
        out = nn.GELU()(x).data
        np.testing.assert_allclose(out, [10.0, 0.0], atol=1e-3)

    def test_pooling_and_flatten(self, rng):
        x = nn.Tensor(rng.standard_normal((2, 3, 8, 8)))
        assert nn.MaxPool2d(2)(x).shape == (2, 3, 4, 4)
        assert nn.AvgPool2d(2)(x).shape == (2, 3, 4, 4)
        assert nn.GlobalAvgPool2d()(x).shape == (2, 3)
        assert nn.Flatten()(x).shape == (2, 3 * 8 * 8)

    def test_dropout_eval_mode_is_identity(self, rng):
        dropout = nn.Dropout(0.9, rng=rng)
        dropout.eval()
        x = rng.standard_normal((5, 5))
        np.testing.assert_array_equal(dropout(nn.Tensor(x)).data, x)

    def test_identity(self, rng):
        x = nn.Tensor(rng.standard_normal(4))
        assert nn.Identity()(x) is x


class TestEvalModeSemantics:
    def test_module_added_after_eval_inherits_mode(self):
        model = nn.Sequential(nn.Linear(4, 4))
        model.eval()
        model.append(nn.Dropout(0.5))
        assert all(not module.training for module in model.modules())
        model.train()
        model.append(nn.Dropout(0.5))
        assert all(module.training for module in model.modules())

    def test_attribute_assigned_submodule_inherits_mode(self):
        parent = nn.Sequential(nn.Linear(2, 2))
        parent.eval()
        child = nn.Dropout(0.5)
        assert child.training
        parent.extra = child
        assert not child.training

    def test_single_toggle_governs_dropout_behavior(self, rng):
        model = nn.Sequential(nn.Linear(8, 8, rng=rng), nn.Dropout(0.9, rng=rng))
        x = rng.standard_normal((4, 8))
        model.eval()
        first = model(nn.Tensor(x)).data
        second = model(nn.Tensor(x)).data
        np.testing.assert_array_equal(first, second)


class TestBuffers:
    def test_batchnorm_buffers_in_state_dict(self, rng):
        norm = nn.BatchNorm2d(3)
        norm(nn.Tensor(rng.standard_normal((4, 3, 5, 5))))
        state = norm.state_dict()
        assert "running_mean" in state and "running_var" in state
        assert not np.allclose(state["running_mean"], 0.0)

    def test_buffer_roundtrip_restores_eval_output(self, rng):
        source = nn.BatchNorm2d(3)
        source(nn.Tensor(rng.standard_normal((4, 3, 5, 5)) * 2.0 + 1.0))
        target = nn.BatchNorm2d(3)
        target.load_state_dict(source.state_dict())
        np.testing.assert_array_equal(target.running_mean, source.running_mean)
        np.testing.assert_array_equal(target.running_var, source.running_var)
        source.eval()
        target.eval()
        x = rng.standard_normal((2, 3, 5, 5))
        np.testing.assert_array_equal(target(nn.Tensor(x)).data,
                                      source(nn.Tensor(x)).data)

    def test_buffers_are_not_parameters(self):
        norm = nn.BatchNorm2d(4)
        names = [name for name, _ in norm.named_parameters()]
        assert "running_mean" not in names
        assert norm.num_parameters() == 8

    def test_nested_buffer_names(self):
        model = nn.Sequential(nn.Conv2d(3, 4, 3), nn.BatchNorm2d(4))
        names = [name for name, _ in model.named_buffers()]
        assert names == ["1.running_mean", "1.running_var"]
