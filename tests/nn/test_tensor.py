"""Tests for the autograd Tensor: arithmetic, reductions, shape ops, backward."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor, as_tensor, concat, is_grad_enabled, no_grad, stack


class TestBasics:
    def test_construction_and_properties(self):
        tensor = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert tensor.shape == (2, 2)
        assert tensor.ndim == 2
        assert tensor.size == 4
        assert not tensor.requires_grad

    def test_as_tensor_passthrough(self):
        tensor = Tensor([1.0])
        assert as_tensor(tensor) is tensor
        assert isinstance(as_tensor([1.0, 2.0]), Tensor)

    def test_item_and_len(self):
        assert Tensor([3.5]).item() == 3.5
        assert len(Tensor(np.zeros((5, 2)))) == 5

    def test_detach_cuts_graph(self):
        tensor = Tensor([1.0], requires_grad=True)
        detached = tensor.detach()
        assert not detached.requires_grad
        np.testing.assert_array_equal(detached.data, tensor.data)

    def test_no_grad_context(self):
        tensor = Tensor([1.0], requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            result = tensor * 2
        assert is_grad_enabled()
        assert not result.requires_grad

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_on_non_scalar_needs_grad(self):
        tensor = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (tensor * 2).backward()


class TestArithmetic:
    def test_add_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_array_equal(a.grad, [1.0, 1.0])
        np.testing.assert_array_equal(b.grad, [1.0, 1.0])

    def test_mul_backward(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([5.0, 7.0], requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_array_equal(a.grad, [5.0, 7.0])
        np.testing.assert_array_equal(b.grad, [2.0, 3.0])

    def test_broadcast_add_backward(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones(4), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == (3, 4)
        np.testing.assert_array_equal(b.grad, [3.0, 3.0, 3.0, 3.0])

    def test_broadcast_mul_with_keepdims_shape(self):
        a = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        scale = Tensor(np.array([[2.0], [3.0]]), requires_grad=True)
        (a * scale).sum().backward()
        assert scale.grad.shape == (2, 1)
        np.testing.assert_array_equal(scale.grad, [[3.0], [12.0]])

    def test_div_backward(self):
        a = Tensor([6.0], requires_grad=True)
        b = Tensor([3.0], requires_grad=True)
        (a / b).backward()
        assert a.grad[0] == pytest.approx(1 / 3)
        assert b.grad[0] == pytest.approx(-6 / 9)

    def test_sub_and_neg(self):
        a = Tensor([5.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a - b).backward()
        assert a.grad[0] == 1.0
        assert b.grad[0] == -1.0

    def test_pow_backward(self):
        a = Tensor([3.0], requires_grad=True)
        (a ** 2).backward()
        assert a.grad[0] == pytest.approx(6.0)

    def test_rsub_rmul_radd(self):
        a = Tensor([2.0], requires_grad=True)
        (1.0 - a).backward()
        assert a.grad[0] == -1.0
        a.zero_grad()
        (3.0 * a).backward()
        assert a.grad[0] == 3.0
        a.zero_grad()
        (1.0 / a).backward()
        assert a.grad[0] == pytest.approx(-0.25)

    def test_diamond_graph_accumulates(self):
        a = Tensor([2.0], requires_grad=True)
        b = a * 3
        c = a * 4
        (b + c).backward()
        assert a.grad[0] == 7.0

    def test_scalar_only_pow(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])


class TestMatmul:
    def test_2d_matmul_values(self, rng):
        a = rng.standard_normal((3, 4))
        b = rng.standard_normal((4, 5))
        np.testing.assert_allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_2d_matmul_gradients(self, rng):
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal((4, 5)), requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 5)) @ b.data.T)
        np.testing.assert_allclose(b.grad, a.data.T @ np.ones((3, 5)))

    def test_batched_matmul(self, rng):
        a = Tensor(rng.standard_normal((2, 6, 3, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal((2, 6, 4, 5)), requires_grad=True)
        out = a @ b
        assert out.shape == (2, 6, 3, 5)
        out.sum().backward()
        assert a.grad.shape == a.shape
        assert b.grad.shape == b.shape

    def test_broadcast_batched_matmul(self, rng):
        a = Tensor(rng.standard_normal((5, 3, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal((4, 2)), requires_grad=True)
        (a @ b).sum().backward()
        assert b.grad.shape == (4, 2)
        assert a.grad.shape == (5, 3, 4)

    def test_matrix_vector(self, rng):
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        v = Tensor(rng.standard_normal(4), requires_grad=True)
        out = a @ v
        assert out.shape == (3,)
        out.sum().backward()
        assert v.grad.shape == (4,)
        assert a.grad.shape == (3, 4)


class TestReductionsAndShapes:
    def test_sum_axis_keepdims(self, rng):
        a = Tensor(rng.standard_normal((3, 4, 5)), requires_grad=True)
        out = a.sum(axis=(0, 2), keepdims=True)
        assert out.shape == (1, 4, 1)
        out.sum().backward()
        np.testing.assert_array_equal(a.grad, np.ones_like(a.data))

    def test_mean_gradient(self):
        a = Tensor(np.arange(6.0), requires_grad=True)
        a.mean().backward()
        np.testing.assert_allclose(a.grad, np.full(6, 1 / 6))

    def test_var_matches_numpy(self, rng):
        values = rng.standard_normal((4, 7))
        np.testing.assert_allclose(Tensor(values).var(axis=1).data, values.var(axis=1))

    def test_max_gradient_flows_to_argmax(self):
        a = Tensor([[1.0, 5.0, 3.0]], requires_grad=True)
        a.max(axis=1).sum().backward()
        np.testing.assert_array_equal(a.grad, [[0.0, 1.0, 0.0]])

    def test_max_ties_share_gradient(self):
        a = Tensor([[2.0, 2.0]], requires_grad=True)
        a.max(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.5, 0.5]])

    def test_reshape_transpose_roundtrip(self, rng):
        a = Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
        out = a.reshape(6, 4).transpose(1, 0)
        assert out.shape == (4, 6)
        out.sum().backward()
        np.testing.assert_array_equal(a.grad, np.ones_like(a.data))

    def test_getitem_gradient_scatter(self):
        a = Tensor(np.arange(10.0), requires_grad=True)
        a[2:5].sum().backward()
        expected = np.zeros(10)
        expected[2:5] = 1.0
        np.testing.assert_array_equal(a.grad, expected)

    def test_pad_backward(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        padded = a.pad(((1, 1), (0, 2)))
        assert padded.shape == (4, 4)
        padded.sum().backward()
        np.testing.assert_array_equal(a.grad, np.ones((2, 2)))

    def test_flatten_and_swapaxes(self, rng):
        a = Tensor(rng.standard_normal((2, 3, 4)))
        assert a.flatten(1).shape == (2, 12)
        assert a.swapaxes(0, 2).shape == (4, 3, 2)

    def test_concat_backward(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        concat([a, b], axis=1).sum().backward()
        np.testing.assert_array_equal(a.grad, np.ones((2, 2)))
        np.testing.assert_array_equal(b.grad, np.ones((2, 3)))

    def test_stack_backward(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.ones(3), requires_grad=True)
        stack([a, b]).sum().backward()
        np.testing.assert_array_equal(a.grad, np.ones(3))


class TestNonlinearities:
    def test_relu_forward_and_mask(self):
        a = Tensor([-1.0, 0.0, 2.0], requires_grad=True)
        out = a.relu()
        np.testing.assert_array_equal(out.data, [0.0, 0.0, 2.0])
        out.sum().backward()
        np.testing.assert_array_equal(a.grad, [0.0, 0.0, 1.0])

    def test_leaky_relu(self):
        a = Tensor([-2.0, 3.0], requires_grad=True)
        out = a.leaky_relu(0.1)
        np.testing.assert_allclose(out.data, [-0.2, 3.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [0.1, 1.0])

    def test_sigmoid_range_and_gradient(self, rng):
        a = Tensor(rng.standard_normal(50), requires_grad=True)
        out = a.sigmoid()
        assert np.all((out.data > 0) & (out.data < 1))
        out.sum().backward()
        np.testing.assert_allclose(a.grad, out.data * (1 - out.data))

    def test_exp_log_inverse(self, rng):
        values = np.abs(rng.standard_normal(20)) + 0.1
        np.testing.assert_allclose(Tensor(values).log().exp().data, values)

    def test_softmax_sums_to_one(self, rng):
        logits = Tensor(rng.standard_normal((4, 10)))
        probabilities = logits.softmax(axis=-1)
        np.testing.assert_allclose(probabilities.data.sum(axis=-1), np.ones(4))

    def test_log_softmax_matches_log_of_softmax(self, rng):
        logits = Tensor(rng.standard_normal((3, 7)))
        np.testing.assert_allclose(logits.log_softmax().data, np.log(logits.softmax().data))

    def test_abs_and_clip(self):
        a = Tensor([-3.0, 0.5, 4.0], requires_grad=True)
        out = a.abs().clip(0.0, 2.0)
        np.testing.assert_array_equal(out.data, [2.0, 0.5, 2.0])
        out.sum().backward()
        np.testing.assert_array_equal(a.grad, [0.0, 1.0, 0.0])

    def test_tanh_gradient(self):
        a = Tensor([0.5], requires_grad=True)
        a.tanh().backward()
        assert a.grad[0] == pytest.approx(1 - np.tanh(0.5) ** 2)
