"""Tests for quantization schemes and quantized layers."""

import numpy as np
import pytest

from repro import nn
from repro.core.bfp import BFPConfig, bfp_quantize
from repro.core.precision_policy import FASTAdaptivePolicy, FixedPrecisionPolicy
from repro.formats import get_format
from repro.nn.quantized import (
    BFPScheme,
    FASTScheme,
    FormatScheme,
    IdentityScheme,
    QuantizedConv2d,
    QuantizedLinear,
    assign_layer_indices,
    quantized_modules,
)
from repro.nn.tensor import Tensor


class TestSchemes:
    def test_identity_scheme_is_noop(self, rng):
        scheme = IdentityScheme()
        values = rng.standard_normal((3, 3))
        np.testing.assert_array_equal(scheme.quantize_weight(values), values)
        assert scheme.is_identity

    def test_format_scheme_uses_tensor_kind(self, rng):
        scheme = FormatScheme(get_format("hfp8"))
        values = np.full((4, 4), 3e-5)
        forward = scheme.quantize_activation(values)
        backward = scheme.quantize_gradient(values)
        assert not np.allclose(forward, backward)

    def test_bfp_scheme_independent_bits(self, rng):
        scheme = BFPScheme(weight_bits=4, activation_bits=2, gradient_bits=4,
                           stochastic_gradients=False)
        values = rng.standard_normal((2, 32))
        weight_error = np.abs(scheme.quantize_weight(values) - values).mean()
        activation_error = np.abs(scheme.quantize_activation(values) - values).mean()
        assert activation_error > weight_error

    def test_bfp_scheme_set_bits(self, rng):
        scheme = BFPScheme()
        scheme.set_bits("weight", 2)
        assert scheme.precision_setting()["weight"] == 2
        with pytest.raises(KeyError):
            scheme.set_bits("bias", 2)

    def test_bfp_scheme_gradient_stochastic(self, rng):
        values = rng.standard_normal((2, 32))
        scheme_a = BFPScheme(gradient_bits=2, rng=np.random.default_rng(0))
        scheme_b = BFPScheme(gradient_bits=2, rng=np.random.default_rng(1))
        assert not np.allclose(scheme_a.quantize_gradient(values),
                               scheme_b.quantize_gradient(values))

    def test_fast_scheme_records_decisions(self, rng):
        policy = FASTAdaptivePolicy(total_layers=4, total_iterations=10,
                                    config=BFPConfig(exponent_bits=8))
        scheme = FASTScheme(policy, layer_index=2)
        scheme.iteration = 3
        scheme.quantize_weight(rng.standard_normal((2, 32)))
        assert scheme.precision_setting()["weight"] in (2, 4)
        assert policy.history[-1].layer_index == 2
        assert policy.history[-1].iteration == 3


class TestQuantizedLinear:
    def test_identity_scheme_matches_plain_linear(self, rng):
        layer = QuantizedLinear(8, 4, rng=np.random.default_rng(0))
        plain = nn.Linear(8, 4, rng=np.random.default_rng(0))
        x = rng.standard_normal((3, 8))
        np.testing.assert_allclose(layer(Tensor(x)).data, plain(Tensor(x)).data)

    def test_forward_uses_quantized_weights_and_activations(self, rng):
        scheme = BFPScheme(config=BFPConfig(exponent_bits=3), weight_bits=2, activation_bits=2,
                           gradient_bits=2, stochastic_gradients=False)
        layer = QuantizedLinear(16, 4, scheme=scheme, rng=rng)
        x = rng.standard_normal((2, 16))
        expected = scheme.quantize_activation(x) @ scheme.quantize_weight(layer.weight.data).T \
            + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_weight_gradient_flows_to_master_copy(self, rng):
        scheme = BFPScheme(stochastic_gradients=False)
        layer = QuantizedLinear(8, 4, scheme=scheme, rng=rng)
        out = layer(Tensor(rng.standard_normal((3, 8))))
        out.sum().backward()
        assert layer.weight.grad is not None
        assert layer.weight.grad.shape == layer.weight.shape

    def test_gradient_quantization_applied_in_backward(self, rng):
        marker = {"called": False}

        class MarkerScheme(BFPScheme):
            def quantize_gradient(self, values):
                marker["called"] = True
                return super().quantize_gradient(values)

        layer = QuantizedLinear(8, 4, scheme=MarkerScheme(), rng=rng)
        layer(Tensor(rng.standard_normal((2, 8)), requires_grad=True)).sum().backward()
        assert marker["called"]


class TestQuantizedConv2d:
    def test_identity_scheme_matches_plain_conv(self, rng):
        quantized = QuantizedConv2d(3, 4, 3, padding=1, rng=np.random.default_rng(0))
        plain = nn.Conv2d(3, 4, 3, padding=1, rng=np.random.default_rng(0))
        x = rng.standard_normal((2, 3, 6, 6))
        np.testing.assert_allclose(quantized(Tensor(x)).data, plain(Tensor(x)).data)

    def test_quantized_forward_changes_output(self, rng):
        scheme = BFPScheme(config=BFPConfig(exponent_bits=3), weight_bits=2, activation_bits=2,
                           gradient_bits=2, stochastic_gradients=False)
        layer = QuantizedConv2d(3, 4, 3, padding=1, scheme=scheme, rng=rng)
        x = rng.standard_normal((1, 3, 6, 6))
        quantized_out = layer(Tensor(x)).data
        layer.scheme = IdentityScheme()
        plain_out = layer(Tensor(x)).data
        assert not np.allclose(quantized_out, plain_out)

    def test_master_weight_not_overwritten(self, rng):
        scheme = BFPScheme(stochastic_gradients=False)
        layer = QuantizedConv2d(3, 4, 3, scheme=scheme, rng=rng)
        original = layer.weight.data.copy()
        layer(Tensor(rng.standard_normal((1, 3, 5, 5))))
        np.testing.assert_array_equal(layer.weight.data, original)
        assert layer.weight is layer._parameters["weight"]

    def test_grouped_quantized_conv(self, rng):
        scheme = BFPScheme(stochastic_gradients=False)
        layer = QuantizedConv2d(4, 4, 3, padding=1, groups=2, scheme=scheme, rng=rng)
        out = layer(Tensor(rng.standard_normal((1, 4, 5, 5))))
        assert out.shape == (1, 4, 5, 5)

    def test_backward_produces_gradients(self, rng):
        scheme = BFPScheme(stochastic_gradients=False)
        layer = QuantizedConv2d(3, 4, 3, padding=1, scheme=scheme, rng=rng)
        x = Tensor(rng.standard_normal((2, 3, 5, 5)), requires_grad=True)
        layer(x).sum().backward()
        assert x.grad is not None
        assert layer.weight.grad is not None


class TestLayerDiscovery:
    def build_model(self):
        return nn.Sequential(
            QuantizedConv2d(3, 4, 3, padding=1),
            nn.ReLU(),
            QuantizedConv2d(4, 4, 3, padding=1),
            nn.Flatten(),
            QuantizedLinear(4 * 4 * 4, 10),
        )

    def test_quantized_modules_found_in_order(self):
        model = self.build_model()
        layers = quantized_modules(model)
        assert len(layers) == 3
        assert isinstance(layers[0], QuantizedConv2d)
        assert isinstance(layers[-1], QuantizedLinear)

    def test_assign_layer_indices(self):
        model = self.build_model()
        count = assign_layer_indices(model)
        assert count == 3
        assert [layer.layer_index for layer in quantized_modules(model)] == [0, 1, 2]

    def test_fast_scheme_layer_index_updated(self):
        model = self.build_model()
        policy = FixedPrecisionPolicy(2)
        for layer in quantized_modules(model):
            layer.scheme = FASTScheme(policy)
        assign_layer_indices(model)
        assert [layer.scheme.layer_index for layer in quantized_modules(model)] == [0, 1, 2]

    def test_quantized_training_reduces_loss(self, rng):
        """A small quantized model still learns (straight-through estimator works)."""
        scheme_factory = lambda: BFPScheme(config=BFPConfig(exponent_bits=3),
                                           weight_bits=4, activation_bits=4, gradient_bits=4)
        model = nn.Sequential(QuantizedLinear(8, 16), nn.ReLU(), QuantizedLinear(16, 2))
        for layer in quantized_modules(model):
            layer.scheme = scheme_factory()
        optimizer = nn.SGD(model.parameters(), lr=0.1, momentum=0.9)
        inputs = rng.standard_normal((64, 8))
        labels = (inputs[:, 0] > 0).astype(int)
        first_loss = None
        for _ in range(30):
            optimizer.zero_grad()
            loss = nn.cross_entropy(model(Tensor(inputs)), labels)
            loss.backward()
            optimizer.step()
            if first_loss is None:
                first_loss = loss.item()
        assert loss.item() < first_loss * 0.7
