"""Tests for loss functions."""

import numpy as np
import pytest

from repro import nn
from repro.nn.tensor import Tensor


class TestCrossEntropy:
    def test_uniform_logits_give_log_num_classes(self):
        logits = Tensor(np.zeros((4, 10)))
        loss = nn.cross_entropy(logits, np.zeros(4, dtype=int))
        assert loss.item() == pytest.approx(np.log(10))

    def test_confident_correct_prediction_has_low_loss(self):
        logits = np.full((2, 5), -10.0)
        logits[0, 1] = 10.0
        logits[1, 3] = 10.0
        loss = nn.cross_entropy(Tensor(logits), np.array([1, 3]))
        assert loss.item() < 1e-6

    def test_confident_wrong_prediction_has_high_loss(self):
        logits = np.full((1, 5), -10.0)
        logits[0, 0] = 10.0
        loss = nn.cross_entropy(Tensor(logits), np.array([4]))
        assert loss.item() > 10.0

    def test_label_smoothing_increases_minimum_loss(self):
        logits = np.full((1, 5), -10.0)
        logits[0, 2] = 10.0
        plain = nn.cross_entropy(Tensor(logits), np.array([2]))
        smoothed = nn.cross_entropy(Tensor(logits), np.array([2]), label_smoothing=0.1)
        assert smoothed.item() > plain.item()

    def test_matches_manual_computation(self, rng):
        logits = rng.standard_normal((3, 4))
        targets = np.array([0, 2, 3])
        log_probs = logits - np.log(np.exp(logits).sum(axis=1, keepdims=True))
        expected = -log_probs[np.arange(3), targets].mean()
        assert nn.cross_entropy(Tensor(logits), targets).item() == pytest.approx(expected)


class TestSequenceCrossEntropy:
    def test_padding_positions_ignored(self, rng):
        logits = rng.standard_normal((1, 4, 6))
        targets = np.array([[3, 4, 0, 0]])
        loss_with_pad = nn.sequence_cross_entropy(Tensor(logits), targets, pad_index=0)
        loss_first_two = nn.sequence_cross_entropy(Tensor(logits[:, :2]), targets[:, :2], pad_index=0)
        assert loss_with_pad.item() == pytest.approx(loss_first_two.item())

    def test_no_pad_index_counts_everything(self, rng):
        logits = rng.standard_normal((2, 3, 5))
        targets = rng.integers(0, 5, size=(2, 3))
        loss = nn.sequence_cross_entropy(Tensor(logits), targets)
        flat = nn.cross_entropy(Tensor(logits.reshape(-1, 5)), targets.reshape(-1))
        assert loss.item() == pytest.approx(flat.item())


class TestRegressionLosses:
    def test_mse_zero_for_identical(self, rng):
        values = rng.standard_normal((3, 3))
        assert nn.mse_loss(Tensor(values), values).item() == 0.0

    def test_mse_value(self):
        assert nn.mse_loss(Tensor([2.0]), np.array([0.0])).item() == pytest.approx(4.0)

    def test_l1_value(self):
        assert nn.l1_loss(Tensor([2.0, -1.0]), np.zeros(2)).item() == pytest.approx(1.5)

    def test_smooth_l1_quadratic_near_zero_linear_far(self):
        near = nn.smooth_l1_loss(Tensor([0.1]), np.array([0.0])).item()
        assert near == pytest.approx(0.5 * 0.01, abs=1e-8)
        far = nn.smooth_l1_loss(Tensor([10.0]), np.array([0.0])).item()
        assert far == pytest.approx(9.5)


class TestBinaryCrossEntropy:
    def test_matches_reference(self, rng):
        logits = rng.standard_normal((4, 3))
        targets = rng.integers(0, 2, size=(4, 3)).astype(float)
        probabilities = 1 / (1 + np.exp(-logits))
        expected = -(targets * np.log(probabilities) + (1 - targets) * np.log(1 - probabilities)).mean()
        result = nn.binary_cross_entropy_with_logits(Tensor(logits), targets)
        assert result.item() == pytest.approx(expected, rel=1e-6)

    def test_stable_for_extreme_logits(self):
        logits = Tensor(np.array([[100.0, -100.0]]))
        targets = np.array([[1.0, 0.0]])
        loss = nn.binary_cross_entropy_with_logits(logits, targets)
        assert np.isfinite(loss.item())
        assert loss.item() < 1e-6

    def test_elementwise_weighting(self, rng):
        logits = rng.standard_normal((2, 2))
        targets = np.ones((2, 2))
        unweighted = nn.binary_cross_entropy_with_logits(Tensor(logits), targets)
        weighted = nn.binary_cross_entropy_with_logits(Tensor(logits), targets,
                                                       weight=np.full((2, 2), 2.0))
        assert weighted.item() == pytest.approx(2 * unweighted.item())
