"""Numerical gradient checks for the autograd engine.

Every structured operation (convolution, pooling, normalization, attention,
losses) is validated against central finite differences on small inputs.
"""

import numpy as np
import pytest

import repro.nn.functional as F
from repro import nn
from repro.nn.tensor import Tensor


def numerical_gradient(fn, array, epsilon=1e-5):
    """Central finite-difference gradient of a scalar function of ``array``."""
    gradient = np.zeros_like(array)
    iterator = np.nditer(array, flags=["multi_index"])
    while not iterator.finished:
        index = iterator.multi_index
        original = array[index]
        array[index] = original + epsilon
        upper = fn(array)
        array[index] = original - epsilon
        lower = fn(array)
        array[index] = original
        gradient[index] = (upper - lower) / (2 * epsilon)
        iterator.iternext()
    return gradient


def check_gradient(build_output, array, atol=1e-4, rtol=1e-3):
    """Compare autograd and numerical gradients for input ``array``."""
    tensor = Tensor(array.copy(), requires_grad=True)
    output = build_output(tensor)
    output.backward()
    analytic = tensor.grad

    def scalar_fn(values):
        return float(build_output(Tensor(values.copy())).data)

    numeric = numerical_gradient(scalar_fn, array.copy())
    np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=rtol)


class TestElementwiseGradients:
    def test_composite_expression(self, rng):
        values = rng.standard_normal((3, 4))
        check_gradient(lambda t: ((t * 2 + 1).tanh() * t.sigmoid()).sum(), values)

    def test_division_chain(self, rng):
        values = rng.standard_normal((4,)) + 3.0
        check_gradient(lambda t: (t / (t * t + 1.0)).sum(), values)

    def test_log_softmax(self, rng):
        values = rng.standard_normal((2, 5))
        check_gradient(lambda t: (t.log_softmax(axis=-1) * Tensor(np.ones((2, 5)))).sum(), values)

    def test_var_reduction(self, rng):
        values = rng.standard_normal((3, 6))
        check_gradient(lambda t: t.var(axis=1).sum(), values)


class TestConvolutionGradients:
    def test_conv2d_input_gradient(self, rng):
        x = rng.standard_normal((2, 2, 5, 5))
        weight = Tensor(rng.standard_normal((3, 2, 3, 3)) * 0.5)
        check_gradient(lambda t: (F.conv2d(t, weight, stride=1, padding=1) ** 2).sum(), x)

    def test_conv2d_weight_gradient(self, rng):
        x = Tensor(rng.standard_normal((2, 2, 5, 5)))
        weight_values = rng.standard_normal((3, 2, 3, 3)) * 0.5
        check_gradient(lambda w: (F.conv2d(x, w, stride=1, padding=0) ** 2).sum(), weight_values)

    def test_conv2d_bias_gradient(self, rng):
        x = Tensor(rng.standard_normal((1, 2, 4, 4)))
        weight = Tensor(rng.standard_normal((3, 2, 3, 3)) * 0.5)
        check_gradient(lambda b: (F.conv2d(x, weight, b, padding=1) ** 2).sum(),
                       rng.standard_normal(3))

    def test_strided_conv_gradient(self, rng):
        x = rng.standard_normal((1, 2, 6, 6))
        weight = Tensor(rng.standard_normal((2, 2, 3, 3)) * 0.5)
        check_gradient(lambda t: (F.conv2d(t, weight, stride=2, padding=1) ** 2).sum(), x)


class TestPoolingGradients:
    def test_max_pool_gradient(self, rng):
        x = rng.standard_normal((2, 2, 4, 4))
        check_gradient(lambda t: (F.max_pool2d(t, 2) ** 2).sum(), x)

    def test_avg_pool_gradient(self, rng):
        x = rng.standard_normal((1, 3, 4, 4))
        check_gradient(lambda t: (F.avg_pool2d(t, 2) ** 2).sum(), x)


class TestModuleGradients:
    def test_batchnorm_gradient(self, rng):
        norm = nn.BatchNorm2d(3)
        x = rng.standard_normal((4, 3, 2, 2))

        def build(t):
            return (norm(t) ** 2).sum()

        check_gradient(build, x, atol=1e-3)

    def test_layernorm_gradient(self, rng):
        norm = nn.LayerNorm(6)
        x = rng.standard_normal((3, 6))
        check_gradient(lambda t: (norm(t) ** 2).sum(), x, atol=1e-3)

    def test_attention_gradient(self, rng):
        attention = nn.MultiHeadAttention(8, 2, rng=rng)
        x = rng.standard_normal((1, 3, 8)) * 0.5
        check_gradient(lambda t: (attention(t) ** 2).sum(), x, atol=1e-3)

    def test_linear_weight_gradient(self, rng):
        x = Tensor(rng.standard_normal((4, 5)))
        weight_values = rng.standard_normal((3, 5)) * 0.5

        def build(w):
            return (F.linear(x, w) ** 2).sum()

        check_gradient(build, weight_values)


class TestLossGradients:
    def test_cross_entropy_gradient(self, rng):
        logits = rng.standard_normal((4, 5))
        targets = rng.integers(0, 5, size=4)
        check_gradient(lambda t: nn.cross_entropy(t, targets), logits)

    def test_mse_gradient(self, rng):
        prediction = rng.standard_normal((3, 4))
        target = rng.standard_normal((3, 4))
        check_gradient(lambda t: nn.mse_loss(t, target), prediction)

    def test_bce_with_logits_gradient(self, rng):
        logits = rng.standard_normal((4, 3))
        targets = rng.integers(0, 2, size=(4, 3)).astype(float)
        check_gradient(lambda t: nn.binary_cross_entropy_with_logits(t, targets), logits)

    def test_smooth_l1_gradient(self, rng):
        prediction = rng.standard_normal((3, 4)) * 2
        target = rng.standard_normal((3, 4))
        # Keep points away from the |x| = beta kink where the numerical
        # gradient is ill-defined.
        mask = np.abs(np.abs(prediction - target) - 1.0) < 0.05
        prediction[mask] += 0.2
        check_gradient(lambda t: nn.smooth_l1_loss(t, target), prediction)

    def test_sequence_cross_entropy_gradient(self, rng):
        logits = rng.standard_normal((2, 3, 6))
        targets = rng.integers(1, 6, size=(2, 3))
        targets[0, 2] = 0  # padding position
        check_gradient(lambda t: nn.sequence_cross_entropy(t, targets, pad_index=0), logits)
