"""Dtype preservation: float32 compute mode end to end, float64 default intact.

The float32 training pipeline (ISSUE 5) only works if no operation silently
promotes to float64.  These tests pin the contract at every layer:

* ``Tensor`` gradients are created/accumulated at the tensor's own dtype and
  python-scalar arithmetic stays at the tensor's dtype,
* initializers, layers and ``Module.to``/``float()``/``double()`` produce and
  cast parameters at the requested dtype,
* losses build masks/targets/weights at the logits dtype,
* data loaders and datasets emit batches at the configured dtype,
* a full trainer step under ``compute_dtype=float32`` keeps the forward,
  backward, loss and optimizer update in float32, while the optimizer can
  keep a float64 master copy (FP32-or-better, per the paper's setup),
* the float64 default path is untouched: same dtypes, and scalar wrapping
  is bit-identical to NumPy's own float64 arithmetic.
"""

import numpy as np
import pytest

from repro import nn
from repro.core.bfp import BFPConfig
from repro.data.loader import DataLoader
from repro.data.vision import SyntheticImageDataset, synthetic_cifar
from repro.models.mlp import MLP
from repro.models.transformer import Seq2SeqTransformer
from repro.nn import init
from repro.nn.losses import (
    binary_cross_entropy_with_logits,
    cross_entropy,
    mse_loss,
    sequence_cross_entropy,
    smooth_l1_loss,
)
from repro.nn.tensor import Tensor
from repro.training.schedules import FixedBFPSchedule
from repro.training.trainer import ClassificationTrainer

F32 = np.dtype(np.float32)
F64 = np.dtype(np.float64)


def _bfp_schedule(seed: int = 0, stochastic: bool = False) -> FixedBFPSchedule:
    return FixedBFPSchedule(4, config=BFPConfig(exponent_bits=8, group_size=16),
                            stochastic_gradients=stochastic, seed=seed)


class TestTensorScalarArithmetic:
    """Python/NumPy scalars must not promote float32 tensors (satellite 2)."""

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_scalar_ops_preserve_dtype(self, dtype):
        t = Tensor(np.ones(5, dtype=dtype))
        for result in (t * 1.5, 1.5 * t, t + 2, 2 + t, t - 0.5, 0.5 - t,
                       t / 3.0, 3.0 / t, t ** 2.0, -t):
            assert result.dtype == dtype

    def test_numpy_scalar_operands_preserve_float32(self):
        t = Tensor(np.ones(5, dtype=np.float32))
        assert (t * np.float64(1.5)).dtype == F32
        assert (t * np.sqrt(2.0)).dtype == F32  # np.sqrt returns np.float64
        assert (t + np.int64(2)).dtype == F32

    def test_mean_and_composites_preserve_float32(self):
        t = Tensor(np.arange(12, dtype=np.float32).reshape(3, 4))
        assert t.mean().dtype == F32
        assert t.mean(axis=1).dtype == F32
        assert t.var(axis=0).dtype == F32
        assert t.softmax(axis=-1).dtype == F32
        assert t.log_softmax(axis=-1).dtype == F32
        assert t.sqrt().dtype == F32
        assert t.leaky_relu().dtype == F32

    def test_array_operands_still_follow_numpy_promotion(self):
        t = Tensor(np.ones(4, dtype=np.float32))
        assert (t + np.ones(4)).dtype == F64

    def test_float64_scalar_math_bit_identical_to_numpy(self):
        values = np.random.default_rng(0).standard_normal(64)
        t = Tensor(values)
        np.testing.assert_array_equal((t * 1.7).data, values * 1.7)
        np.testing.assert_array_equal((t / 3.0).data, values / 3.0)
        np.testing.assert_array_equal((2.0 - t).data, 2.0 - values)


class TestGradientDtype:
    """Gradients follow the tensor's dtype (satellite 1)."""

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_backward_grad_matches_tensor_dtype(self, dtype):
        t = Tensor(np.ones((3, 3), dtype=dtype), requires_grad=True)
        ((t * 2.0).sum()).backward()
        assert t.grad.dtype == dtype

    def test_accumulation_stays_float32(self):
        t = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
        (t * 1.5 + t * 2.5).sum().backward()
        assert t.grad.dtype == F32
        np.testing.assert_allclose(t.grad, np.full(4, 4.0, dtype=np.float32))

    def test_float64_grad_onto_float32_tensor_is_cast(self):
        t = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
        out = (t * 2.0).sum()
        out.backward(np.float64(1.0))
        assert t.grad.dtype == F32

    def test_getitem_backward_dtype(self):
        t = Tensor(np.ones(6, dtype=np.float32), requires_grad=True)
        t[2:5].sum().backward()
        assert t.grad.dtype == F32

    def test_max_backward_dtype(self):
        t = Tensor(np.arange(8, dtype=np.float32).reshape(2, 4), requires_grad=True)
        t.max(axis=1).sum().backward()
        assert t.grad.dtype == F32

    @pytest.mark.parametrize("op", ["relu", "leaky_relu", "sigmoid", "tanh", "exp", "abs"])
    def test_elementwise_backward_dtype(self, op):
        t = Tensor(np.linspace(-1, 1, 8, dtype=np.float32), requires_grad=True)
        getattr(t, op)().sum().backward()
        assert t.grad.dtype == F32


class TestInitAndModuleDtype:
    def test_initializers_accept_dtype(self):
        for fn in (init.kaiming_uniform, init.kaiming_normal, init.xavier_uniform):
            assert fn((4, 4), rng=np.random.default_rng(0), dtype=np.float32).dtype == F32
            assert fn((4, 4), rng=np.random.default_rng(0)).dtype == F64
        assert init.normal((3,), dtype=np.float32).dtype == F32
        assert init.zeros((3,), dtype=np.float32).dtype == F32
        assert init.ones((3,)).dtype == F64

    def test_initializers_share_random_stream_across_dtypes(self):
        a64 = init.kaiming_uniform((8, 8), rng=np.random.default_rng(7))
        a32 = init.kaiming_uniform((8, 8), rng=np.random.default_rng(7), dtype=np.float32)
        np.testing.assert_array_equal(a32, a64.astype(np.float32))

    def test_layers_accept_dtype(self):
        rng = np.random.default_rng(0)
        layers = [
            nn.Linear(4, 3, rng=rng, dtype=np.float32),
            nn.Conv2d(3, 4, 3, rng=rng, dtype=np.float32),
            nn.BatchNorm2d(4, dtype=np.float32),
            nn.LayerNorm(4, dtype=np.float32),
            nn.Embedding(10, 4, rng=rng, dtype=np.float32),
            nn.QuantizedLinear(4, 3, rng=rng, dtype=np.float32),
            nn.QuantizedConv2d(3, 4, 3, rng=rng, dtype=np.float32),
        ]
        for layer in layers:
            for _, param in layer.named_parameters():
                assert param.data.dtype == F32, type(layer).__name__
            for _, buffer in layer.named_buffers():
                assert buffer.dtype == F32, type(layer).__name__

    def test_module_to_casts_parameters_and_buffers(self):
        model = nn.Sequential(nn.Conv2d(3, 4, 3, rng=np.random.default_rng(0)),
                              nn.BatchNorm2d(4), nn.ReLU())
        versions = {name: p.version for name, p in model.named_parameters()}
        model.to(np.float32)
        for name, param in model.named_parameters():
            assert param.data.dtype == F32
            assert param.version == versions[name] + 1  # caches invalidated
        for _, buffer in model.named_buffers():
            assert buffer.dtype == F32
        model.double()
        assert all(p.data.dtype == F64 for p in model.parameters())
        assert model.float() is model

    def test_to_clears_quantized_weight_cache(self):
        layer = nn.QuantizedLinear(8, 4, scheme=nn.BFPScheme(
            config=BFPConfig(exponent_bits=8, group_size=16)), rng=np.random.default_rng(0))
        layer(np.ones((2, 8)))
        assert layer._weight_cache_key is not None
        layer.to(np.float32)
        assert layer._weight_cache_key is None
        assert layer(np.ones((2, 8), dtype=np.float32)).dtype == F32

    def test_load_state_dict_preserves_param_dtype(self):
        model = MLP(4, [3], 2, rng=np.random.default_rng(0)).to(np.float32)
        state = {name: value.astype(np.float64)
                 for name, value in model.state_dict().items()}
        model.load_state_dict(state)
        assert all(p.data.dtype == F32 for p in model.parameters())


class TestLossDtype:
    def test_cross_entropy_dtype(self):
        logits32 = Tensor(np.random.default_rng(0).standard_normal((5, 3)).astype(np.float32),
                          requires_grad=True)
        loss = cross_entropy(logits32, np.array([0, 1, 2, 0, 1]), label_smoothing=0.1)
        assert loss.dtype == F32
        loss.backward()
        assert logits32.grad.dtype == F32

    def test_sequence_cross_entropy_mask_dtype(self):
        logits = Tensor(np.random.default_rng(0).standard_normal((2, 4, 6)).astype(np.float32),
                        requires_grad=True)
        targets = np.array([[1, 2, 0, 0], [3, 4, 5, 0]])
        loss = sequence_cross_entropy(logits, targets, pad_index=0, label_smoothing=0.05)
        assert loss.dtype == F32
        loss.backward()
        assert logits.grad.dtype == F32

    def test_regression_losses_cast_plain_targets(self):
        prediction = Tensor(np.ones((3, 2), dtype=np.float32), requires_grad=True)
        target = np.zeros((3, 2))  # float64 array target
        assert mse_loss(prediction, target).dtype == F32
        assert smooth_l1_loss(prediction, target).dtype == F32

    def test_bce_weight_dtype(self):
        logits = Tensor(np.zeros((4,), dtype=np.float32), requires_grad=True)
        loss = binary_cross_entropy_with_logits(
            logits, np.array([0.0, 1.0, 0.0, 1.0]), weight=np.array([1.0, 2.0, 1.0, 2.0]))
        assert loss.dtype == F32

    def test_float64_losses_unchanged(self):
        logits = Tensor(np.random.default_rng(1).standard_normal((4, 3)), requires_grad=True)
        assert cross_entropy(logits, np.array([0, 1, 2, 0])).dtype == F64


class TestDataDtype:
    def test_vision_dataset_dtype(self):
        ds64 = SyntheticImageDataset(num_samples=8, seed=3)
        ds32 = SyntheticImageDataset(num_samples=8, seed=3, dtype=np.float32)
        assert ds64.images.dtype == F64
        assert ds32.images.dtype == F32
        # Same generation stream, rounded once.
        np.testing.assert_array_equal(ds32.images, ds64.images.astype(np.float32))
        train, val = ds32.split()
        assert train.images.dtype == F32 and val.images.dtype == F32
        assert synthetic_cifar(num_samples=4, dtype=np.float32).images.dtype == F32

    def test_loader_dtype_cast(self):
        ds = SyntheticImageDataset(num_samples=8, seed=0)  # float64 images
        loader = DataLoader(ds, batch_size=4, shuffle=False, dtype=np.float32)
        inputs, labels = next(iter(loader))
        assert inputs.dtype == F32
        assert np.issubdtype(labels.dtype, np.integer)  # labels untouched

    def test_loader_default_unchanged(self):
        ds = SyntheticImageDataset(num_samples=4, seed=0)
        inputs, _ = next(iter(DataLoader(ds, batch_size=2, shuffle=False)))
        assert inputs.dtype == F64


class TestOptimizerDtype:
    def _step(self, optimizer_cls, **kwargs):
        param = nn.Parameter(np.ones(4, dtype=np.float32))
        optimizer = optimizer_cls([param], lr=0.1, **kwargs)
        param.grad = np.full(4, 0.5, dtype=np.float32)
        optimizer.step()
        return param, optimizer

    @pytest.mark.parametrize("cls", [nn.SGD, nn.Adam])
    def test_step_keeps_float32(self, cls):
        param, _ = self._step(cls)
        assert param.data.dtype == F32

    @pytest.mark.parametrize("cls", [nn.SGD, nn.Adam])
    def test_master_dtype_float64(self, cls):
        param, optimizer = self._step(cls, master_dtype=np.float64)
        assert param.data.dtype == F32  # parameters stay at compute dtype
        assert all(m.dtype == F64 for m in optimizer._master)
        for state in optimizer._state_arrays():
            assert all(s.dtype == F64 for s in state)
        # The master tracks the unrounded update and the parameter is its
        # float32 rounding.
        np.testing.assert_array_equal(param.data,
                                      optimizer._master[0].astype(np.float32))

    def test_sgd_master_accumulates_in_float64(self):
        param = nn.Parameter(np.ones(4, dtype=np.float32))
        optimizer = nn.SGD([param], lr=1e-4, master_dtype=np.float64)
        update = np.full(4, 1e-4, dtype=np.float32)
        for _ in range(10):
            param.grad = update
            optimizer.step()
        expected = 1.0 - 1e-8 * 10
        np.testing.assert_allclose(optimizer._master[0], expected, rtol=1e-12)

    def test_refresh_dtype_aligns_state(self):
        model = MLP(4, [3], 2, rng=np.random.default_rng(0))
        optimizer = nn.SGD(model.parameters(), lr=0.1, momentum=0.9)
        model.to(np.float32)
        optimizer.refresh_dtype()
        assert all(v.dtype == F32 for v in optimizer._velocity)

    def test_float64_sgd_step_bit_identical(self):
        rng = np.random.default_rng(5)
        values, grad = rng.standard_normal(16), rng.standard_normal(16)
        param = nn.Parameter(values.copy())
        optimizer = nn.SGD([param], lr=0.1, momentum=0.9, weight_decay=0.01)
        param.grad = grad.copy()
        optimizer.step()
        decayed = grad + 0.01 * values
        np.testing.assert_array_equal(param.data, values - 0.1 * decayed)


class TestEndToEndFloat32Training:
    def test_quantized_mlp_step_stays_float32(self):
        model = MLP(16, [8], 4, rng=np.random.default_rng(0)).to(np.float32)
        schedule = _bfp_schedule(stochastic=True)
        schedule.prepare(model, 4)
        optimizer = nn.SGD(model.parameters(), lr=0.05, momentum=0.9)
        x = np.random.default_rng(1).standard_normal((8, 16)).astype(np.float32)
        y = np.random.default_rng(2).integers(0, 4, 8)
        for step in range(2):
            schedule.on_iteration(step)
            logits = model(x)
            assert logits.dtype == F32
            loss = cross_entropy(logits, y)
            assert loss.dtype == F32
            optimizer.zero_grad()
            loss.backward()
            for param in model.parameters():
                assert param.grad.dtype == F32
            optimizer.step()
            for param in model.parameters():
                assert param.data.dtype == F32

    def test_transformer_forward_backward_float32(self):
        model = Seq2SeqTransformer(vocab_size=12, embed_dim=16, num_heads=2,
                                   num_encoder_layers=1, num_decoder_layers=1,
                                   max_length=8, rng=np.random.default_rng(0)).to(np.float32)
        tokens = np.random.default_rng(1).integers(1, 12, size=(2, 6))
        logits = model(tokens, tokens)
        assert logits.dtype == F32
        loss = sequence_cross_entropy(logits, tokens, pad_index=0)
        assert loss.dtype == F32
        loss.backward()
        assert all(p.grad.dtype == F32 for p in model.parameters() if p.grad is not None)

    def test_trainer_compute_dtype_float32(self):
        dataset = SyntheticImageDataset(num_samples=32, image_size=8, num_classes=4,
                                        seed=0, dtype=np.float32)
        model = MLP(3 * 8 * 8, [16], 4, rng=np.random.default_rng(0))
        optimizer = nn.SGD(model.parameters(), lr=0.05, momentum=0.9,
                           master_dtype=np.float64)
        trainer = ClassificationTrainer(model, optimizer, schedule=_bfp_schedule(),
                                        compute_dtype=np.float32)
        loader = DataLoader(dataset, batch_size=8, shuffle=False)
        result = trainer.fit(loader, loader, epochs=1)
        assert np.isfinite(result.loss_history[0])
        assert all(p.data.dtype == F32 for p in model.parameters())
        assert all(m.dtype == F64 for m in optimizer._master)

    def test_trainer_casts_float64_batches(self):
        dataset = SyntheticImageDataset(num_samples=16, image_size=8, num_classes=4, seed=0)
        model = MLP(3 * 8 * 8, [8], 4, rng=np.random.default_rng(0))
        optimizer = nn.SGD(model.parameters(), lr=0.05)
        trainer = ClassificationTrainer(model, optimizer, compute_dtype=np.float32)
        result = trainer.fit(DataLoader(dataset, batch_size=8, shuffle=False), epochs=1)
        assert np.isfinite(result.loss_history[0])
        assert all(p.data.dtype == F32 for p in model.parameters())


class TestFloat64DefaultPath:
    """The default path must keep producing float64 everywhere (bit-exact)."""

    def test_default_training_step_all_float64(self):
        model = MLP(8, [4], 3, rng=np.random.default_rng(0))
        schedule = _bfp_schedule()
        schedule.prepare(model, 2)
        schedule.on_iteration(0)
        optimizer = nn.SGD(model.parameters(), lr=0.1)
        x = np.random.default_rng(1).standard_normal((4, 8))
        logits = model(x)
        assert logits.dtype == F64
        loss = cross_entropy(logits, np.array([0, 1, 2, 0]))
        assert loss.dtype == F64
        loss.backward()
        optimizer.step()
        for param in model.parameters():
            assert param.data.dtype == F64 and param.grad.dtype == F64

    def test_float32_and_float64_runs_agree(self):
        """The float32 run is a rounding of the float64 run, not a different
        computation: a few deterministic quantized steps stay within float32
        tolerance of the float64 losses."""
        def run(cast):
            model = MLP(16, [8], 4, rng=np.random.default_rng(0))
            if cast:
                model.to(np.float32)
            schedule = _bfp_schedule()
            schedule.prepare(model, 4)
            optimizer = nn.SGD(model.parameters(), lr=0.05)
            x = np.random.default_rng(1).standard_normal((8, 16))
            if cast:
                x = x.astype(np.float32)
            y = np.random.default_rng(2).integers(0, 4, 8)
            losses = []
            for step in range(4):
                schedule.on_iteration(step)
                loss = cross_entropy(model(x), y)
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
                losses.append(loss.item())
            return np.asarray(losses)

        np.testing.assert_allclose(run(True), run(False), rtol=2e-4, atol=1e-6)
