"""Tests for the trainer-facing precision schedules."""

import numpy as np
import pytest

from repro import nn
from repro.models import MLP
from repro.nn.quantized import BFPScheme, FASTScheme, FormatScheme, IdentityScheme, quantized_modules
from repro.training.schedules import (
    FASTSchedule,
    FixedBFPSchedule,
    FormatSchedule,
    FP32Schedule,
    LayerwiseSchedule,
    TemporalSchedule,
    build_schedule,
)


def make_model():
    return MLP(8, [8, 8], 4, rng=np.random.default_rng(0))


class TestFP32Schedule:
    def test_attaches_identity_schemes(self):
        model = make_model()
        schedule = FP32Schedule()
        schedule.prepare(model, total_iterations=10)
        assert all(isinstance(layer.scheme, IdentityScheme) for layer in quantized_modules(model))
        assert schedule.name == "fp32"


class TestFormatSchedule:
    def test_attaches_format_schemes(self):
        model = make_model()
        schedule = FormatSchedule("int8")
        schedule.prepare(model, 10)
        assert all(isinstance(layer.scheme, FormatScheme) for layer in quantized_modules(model))
        assert schedule.name == "int8"

    def test_fp32_format_maps_to_identity(self):
        model = make_model()
        schedule = FormatSchedule("fp32")
        schedule.prepare(model, 10)
        assert all(layer.scheme.is_identity for layer in quantized_modules(model))

    def test_accepts_format_instance(self):
        from repro.formats import BFloat16Format

        schedule = FormatSchedule(BFloat16Format())
        assert schedule.name == "bfloat16"


class TestFixedBFPSchedule:
    def test_attaches_bfp_schemes_with_bits(self):
        model = make_model()
        schedule = FixedBFPSchedule(3)
        schedule.prepare(model, 10)
        for layer in quantized_modules(model):
            assert isinstance(layer.scheme, BFPScheme)
            assert layer.scheme.precision_setting() == {"weight": 3, "activation": 3, "gradient": 3}

    def test_snapshot_reports_bits(self):
        model = make_model()
        schedule = FixedBFPSchedule(2)
        schedule.prepare(model, 10)
        snapshot = schedule.precision_snapshot()
        assert len(snapshot) == 3
        assert snapshot[0]["weight"] == 2


class TestTemporalSchedule:
    def test_low_to_high_switches_at_midpoint(self):
        model = make_model()
        schedule = TemporalSchedule(low_to_high=True)
        schedule.prepare(model, total_iterations=100)
        schedule.on_iteration(10)
        assert schedule.precision_snapshot()[0]["weight"] == 2
        schedule.on_iteration(80)
        assert schedule.precision_snapshot()[0]["weight"] == 4

    def test_high_to_low(self):
        model = make_model()
        schedule = TemporalSchedule(low_to_high=False)
        schedule.prepare(model, 100)
        schedule.on_iteration(10)
        assert schedule.precision_snapshot()[0]["weight"] == 4

    def test_name(self):
        assert TemporalSchedule(low_to_high=True).name == "temporal_low_to_high"
        assert TemporalSchedule(low_to_high=False).name == "temporal_high_to_low"


class TestLayerwiseSchedule:
    def test_low_to_high_over_depth(self):
        model = make_model()
        schedule = LayerwiseSchedule(low_to_high=True)
        schedule.prepare(model, 100)
        schedule.on_iteration(0)
        snapshot = schedule.precision_snapshot()
        assert snapshot[0]["weight"] == 2    # shallow layer
        assert snapshot[-1]["weight"] == 4   # deep layer

    def test_high_to_low_over_depth(self):
        model = make_model()
        schedule = LayerwiseSchedule(low_to_high=False)
        schedule.prepare(model, 100)
        snapshot = schedule.precision_snapshot()
        assert snapshot[0]["weight"] == 4
        assert snapshot[-1]["weight"] == 2


class TestFASTSchedule:
    def test_attaches_fast_schemes(self):
        model = make_model()
        schedule = FASTSchedule(evaluation_interval=5)
        schedule.prepare(model, 50)
        layers = quantized_modules(model)
        assert all(isinstance(layer.scheme, FASTScheme) for layer in layers)
        assert schedule.policy.total_layers == len(layers)
        assert schedule.policy.total_iterations == 50

    def test_on_iteration_updates_schemes(self):
        model = make_model()
        schedule = FASTSchedule()
        schedule.prepare(model, 50)
        schedule.on_iteration(17)
        assert all(layer.scheme.iteration == 17 for layer in quantized_modules(model))

    def test_setting_history_after_training_step(self, rng):
        model = make_model()
        schedule = FASTSchedule()
        schedule.prepare(model, 10)
        schedule.on_iteration(0)
        loss = nn.cross_entropy(model(rng.standard_normal((4, 8))), np.zeros(4, dtype=int))
        loss.backward()
        history = schedule.setting_history()
        assert history  # every layer recorded a (W, A, G) decision
        for setting in history.values():
            assert all(bits in (2, 4) for bits in setting)


class TestBuildSchedule:
    @pytest.mark.parametrize("name,expected_type", [
        ("fp32", FP32Schedule),
        ("fast_adaptive", FASTSchedule),
        ("low_bfp", FixedBFPSchedule),
        ("mid_bfp", FixedBFPSchedule),
        ("high_bfp", FixedBFPSchedule),
        ("temporal_low_to_high", TemporalSchedule),
        ("layerwise_high_to_low", LayerwiseSchedule),
        ("bfloat16", FormatSchedule),
        ("msfp12", FormatSchedule),
    ])
    def test_names_resolve(self, name, expected_type):
        assert isinstance(build_schedule(name), expected_type)

    def test_bfp_bit_mapping(self):
        assert build_schedule("low_bfp").mantissa_bits == 2
        assert build_schedule("mid_bfp").mantissa_bits == 3
        assert build_schedule("high_bfp").mantissa_bits == 4

    def test_direction_parsed(self):
        assert build_schedule("temporal_high_to_low").low_to_high is False
        assert build_schedule("layerwise_low_to_high").low_to_high is True

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            build_schedule("fp64")
