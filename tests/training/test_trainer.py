"""Tests for the training loops (classification, seq2seq, detection)."""

import numpy as np
import pytest

from repro import nn
from repro.data import DataLoader, SyntheticDetectionDataset, SyntheticImageDataset, SyntheticTranslationDataset
from repro.models import MLP, tiny_yolo, transformer_small
from repro.training import (
    ClassificationTrainer,
    DetectionTrainer,
    FASTSchedule,
    FixedBFPSchedule,
    FP32Schedule,
    NonFiniteLossError,
    Seq2SeqTrainer,
    TrainingResult,
)


def make_classification_setup(schedule=None, num_samples=96, seed=0):
    dataset = SyntheticImageDataset(num_samples=num_samples, num_classes=4, image_size=8,
                                    noise=0.4, seed=seed)
    train, validation = dataset.split(0.75)
    model = MLP(3 * 8 * 8, [32], 4, rng=np.random.default_rng(seed))
    optimizer = nn.SGD(model.parameters(), lr=0.1, momentum=0.9)
    trainer = ClassificationTrainer(model, optimizer, schedule)
    return trainer, DataLoader(train, 24, seed=1), DataLoader(validation, 48, shuffle=False)


class TestClassificationTrainer:
    def test_fp32_training_learns(self):
        trainer, train_loader, val_loader = make_classification_setup(FP32Schedule())
        result = trainer.fit(train_loader, val_loader, epochs=3)
        assert result.loss_history[-1] < result.loss_history[0]
        assert result.val_metric_history[-1] > 50.0
        assert result.epochs == 3
        assert result.iterations == 3 * len(train_loader)

    def test_bfp_training_learns(self):
        trainer, train_loader, val_loader = make_classification_setup(FixedBFPSchedule(4))
        result = trainer.fit(train_loader, val_loader, epochs=3)
        assert result.val_metric_history[-1] > 50.0

    def test_fast_adaptive_training_learns_and_records_precisions(self):
        trainer, train_loader, val_loader = make_classification_setup(
            FASTSchedule(evaluation_interval=4))
        result = trainer.fit(train_loader, val_loader, epochs=2)
        assert result.val_metric_history[-1] > 40.0
        assert trainer.schedule.setting_history()
        assert len(result.precision_history) == 2

    def test_result_bookkeeping(self):
        trainer, train_loader, _ = make_classification_setup(FP32Schedule())
        result = trainer.fit(train_loader, epochs=1)
        assert isinstance(result, TrainingResult)
        assert result.schedule_name == "fp32"
        assert result.val_metric_history == []
        assert len(result.train_metric_history) == 1

    def test_evaluate_does_not_update_weights(self):
        trainer, train_loader, val_loader = make_classification_setup(FP32Schedule())
        trainer.fit(train_loader, epochs=1)
        weights_before = trainer.model.state_dict()
        trainer.evaluate(val_loader)
        for name, value in trainer.model.state_dict().items():
            np.testing.assert_array_equal(value, weights_before[name])

    def test_log_callback_invoked(self):
        messages = []
        trainer, train_loader, val_loader = make_classification_setup(FP32Schedule())
        trainer.fit(train_loader, val_loader, epochs=1, log_fn=messages.append)
        assert len(messages) == 1
        assert "epoch 1/1" in messages[0]


class TestTrainingResult:
    def test_epochs_to_reach(self):
        result = TrainingResult("fp32", val_metric_history=[10.0, 40.0, 70.0, 80.0])
        assert result.epochs_to_reach(50.0) == 3
        assert result.epochs_to_reach(90.0) is None
        assert result.best_val_metric == 80.0
        assert result.final_val_metric == 80.0

    def test_empty_history(self):
        result = TrainingResult("fp32")
        assert np.isnan(result.final_val_metric)


class TestSeq2SeqTrainer:
    def test_transformer_learns_copy_task(self):
        dataset = SyntheticTranslationDataset(num_samples=96, vocab_size=12, min_length=3,
                                              max_length=5, seed=0)
        train, validation = dataset.split(0.8)
        model = transformer_small(vocab_size=12, max_length=dataset.sequence_length,
                                  rng=np.random.default_rng(0))
        optimizer = nn.Adam(model.parameters(), lr=3e-3)
        trainer = Seq2SeqTrainer(model, optimizer, FP32Schedule(), pad_index=dataset.pad_index)
        result = trainer.fit(train, validation, epochs=2, batch_size=16)
        assert result.loss_history[-1] < result.loss_history[0]
        assert len(result.val_metric_history) == 2
        assert result.val_metric_history[-1] >= 0.0

    def test_bleu_evaluation_returns_score(self):
        dataset = SyntheticTranslationDataset(num_samples=16, vocab_size=10, seed=1)
        model = transformer_small(vocab_size=10, max_length=dataset.sequence_length,
                                  rng=np.random.default_rng(1))
        optimizer = nn.Adam(model.parameters(), lr=1e-3)
        trainer = Seq2SeqTrainer(model, optimizer)
        score = trainer.evaluate_bleu(dataset, max_samples=8)
        assert 0.0 <= score <= 100.0


class TestDetectionTrainer:
    def test_yolo_training_reduces_loss(self):
        dataset = SyntheticDetectionDataset(num_samples=32, num_classes=2, image_size=16,
                                            grid_size=2, max_objects=1, seed=0)
        train, validation = dataset.split(0.75)
        model = tiny_yolo(num_classes=2, image_size=16, width=4, rng=np.random.default_rng(0))
        optimizer = nn.Adam(model.parameters(), lr=0.01)
        trainer = DetectionTrainer(model, optimizer, FP32Schedule())
        result = trainer.fit(train, validation, epochs=3, batch_size=8)
        assert result.loss_history[-1] < result.loss_history[0]
        assert 0.0 <= result.val_metric_history[-1] <= 100.0


class TestNonFiniteGuard:
    """Opt-in divergence guard: ``abort_on_nonfinite=True`` stops on NaN/inf."""

    @staticmethod
    def _poisoning_loss(poison_at_step):
        """A loss_fn that returns NaN from ``poison_at_step`` (0-based) on."""
        from repro.nn.losses import cross_entropy
        calls = {"n": 0}

        def loss_fn(logits, labels):
            loss = cross_entropy(logits, labels)
            if calls["n"] >= poison_at_step:
                loss.data = np.asarray(loss.data) * np.nan
            calls["n"] += 1
            return loss

        return loss_fn

    def _make_trainer(self, loss_fn, abort_on_nonfinite):
        dataset = SyntheticImageDataset(num_samples=48, num_classes=4, image_size=8,
                                        noise=0.4, seed=0)
        model = MLP(3 * 8 * 8, [16], 4, rng=np.random.default_rng(0))
        optimizer = nn.SGD(model.parameters(), lr=0.1)
        trainer = ClassificationTrainer(model, optimizer, FP32Schedule(), loss_fn=loss_fn,
                                        abort_on_nonfinite=abort_on_nonfinite)
        return trainer, DataLoader(dataset, 24, seed=1)

    def test_raises_with_epoch_and_step_in_message(self):
        trainer, loader = self._make_trainer(self._poisoning_loss(1), True)
        with pytest.raises(NonFiniteLossError, match=r"epoch 1, step 2"):
            trainer.fit(loader, epochs=2)

    def test_message_names_schedule_and_value(self):
        trainer, loader = self._make_trainer(self._poisoning_loss(0), True)
        with pytest.raises(NonFiniteLossError, match=r"nan.*'fp32'"):
            trainer.fit(loader, epochs=1)

    def test_disabled_by_default_keeps_training(self):
        trainer, loader = self._make_trainer(self._poisoning_loss(0), False)
        result = trainer.fit(loader, epochs=1)
        assert np.isnan(result.loss_history[-1])

    def test_finite_training_never_trips_the_guard(self):
        trainer, train_loader, val_loader = make_classification_setup(FP32Schedule())
        trainer.abort_on_nonfinite = True
        result = trainer.fit(train_loader, val_loader, epochs=1)
        assert np.isfinite(result.loss_history[-1])

    def test_is_a_floating_point_error(self):
        assert issubclass(NonFiniteLossError, FloatingPointError)
