"""Tests for the time-to-accuracy analysis."""

import pytest

from repro.training.tta import (
    TTAEntry,
    energy_to_accuracy,
    iterations_to_target,
    normalize_entries,
    time_to_accuracy,
)


class TestIterationsToTarget:
    def test_interpolates_between_points(self):
        curve = [10.0, 30.0, 50.0, 70.0]
        # Target 40 is halfway between epoch 2 (30) and epoch 3 (50).
        assert iterations_to_target(curve, 40.0) == pytest.approx(2.5)

    def test_exact_hit(self):
        assert iterations_to_target([10.0, 50.0], 50.0) == pytest.approx(2.0)

    def test_target_reached_at_first_point(self):
        assert iterations_to_target([80.0, 90.0], 50.0) == pytest.approx(1.0)

    def test_unreached_returns_none(self):
        assert iterations_to_target([10.0, 20.0], 50.0) is None

    def test_iterations_per_point_scaling(self):
        assert iterations_to_target([10.0, 60.0], 60.0, iterations_per_point=100) == pytest.approx(200.0)

    def test_empty_curve(self):
        assert iterations_to_target([], 10.0) is None

    def test_non_monotone_curve_uses_first_crossing(self):
        curve = [10.0, 55.0, 40.0, 60.0]
        assert iterations_to_target(curve, 50.0) < 2.0 + 1e-9


class TestTTAEntries:
    def test_total_time_and_energy(self):
        entry = time_to_accuracy("fast", [50.0, 70.0], target=60.0,
                                 seconds_per_iteration=0.1, power_watts=20.0,
                                 iterations_per_point=100)
        assert entry.reached
        assert entry.total_seconds == pytest.approx(entry.iterations * 0.1)
        assert entry.total_energy_joules == pytest.approx(entry.total_seconds * 20.0)

    def test_unreached_entry(self):
        entry = time_to_accuracy("int8", [10.0, 20.0], target=60.0, seconds_per_iteration=0.1)
        assert not entry.reached
        assert entry.total_seconds is None
        assert entry.total_energy_joules is None


class TestNormalization:
    def make_entries(self):
        return [
            TTAEntry("fast_adaptive", True, 100.0, 0.01, 20.0),
            TTAEntry("fp32", True, 110.0, 0.08, 20.0),
            TTAEntry("int8", False, None, 0.02, 20.0),
        ]

    def test_baseline_is_one(self):
        table = normalize_entries(self.make_entries(), "fast_adaptive")
        assert table["fast_adaptive"]["time"] == pytest.approx(1.0)
        assert table["fast_adaptive"]["energy"] == pytest.approx(1.0)

    def test_slower_system_has_larger_ratio(self):
        table = normalize_entries(self.make_entries(), "fast_adaptive")
        assert table["fp32"]["time"] == pytest.approx(110 * 0.08 / (100 * 0.01))

    def test_unreached_rendered_as_none(self):
        table = normalize_entries(self.make_entries(), "fast_adaptive")
        assert table["int8"]["time"] is None
        assert table["int8"]["reached"] is False

    def test_missing_baseline_rejected(self):
        with pytest.raises(ValueError):
            normalize_entries(self.make_entries(), "tpu")

    def test_energy_accessor(self):
        energies = energy_to_accuracy(self.make_entries())
        assert energies["int8"] is None
        assert energies["fast_adaptive"] == pytest.approx(100 * 0.01 * 20.0)
