"""Tests for accuracy, BLEU and mAP metrics."""

import numpy as np
import pytest

from repro.training.metrics import (
    accuracy,
    bleu,
    corpus_bleu,
    iou,
    mean_average_precision,
    top_k_accuracy,
)


class TestAccuracy:
    def test_perfect_and_zero(self):
        logits = np.array([[0.1, 0.9], [0.8, 0.2]])
        assert accuracy(logits, np.array([1, 0])) == 100.0
        assert accuracy(logits, np.array([0, 1])) == 0.0

    def test_partial(self):
        logits = np.eye(4)
        assert accuracy(logits, np.array([0, 1, 2, 0])) == 75.0

    def test_top_k(self):
        logits = np.array([[0.5, 0.4, 0.3, 0.1]])
        assert top_k_accuracy(logits, np.array([2]), k=3) == 100.0
        assert top_k_accuracy(logits, np.array([3]), k=3) == 0.0


class TestBLEU:
    def test_identical_sentences_score_100(self):
        sentence = [3, 4, 5, 6, 7]
        assert bleu(sentence, sentence) == pytest.approx(100.0)

    def test_empty_candidate_scores_zero(self):
        assert bleu([], [1, 2, 3]) == 0.0

    def test_partial_overlap_between_zero_and_100(self):
        score = bleu([3, 4, 5, 9], [3, 4, 5, 6])
        assert 0.0 < score < 100.0

    def test_brevity_penalty(self):
        reference = [3, 4, 5, 6, 7, 8]
        short = bleu([3, 4, 5], reference)
        full = bleu(list(reference), reference)
        assert short < full

    def test_corpus_better_than_worst_sentence(self):
        references = [[3, 4, 5, 6], [7, 8, 9, 10]]
        candidates = [[3, 4, 5, 6], [7, 8, 0, 0]]
        score = corpus_bleu(candidates, references)
        assert 0.0 < score < 100.0

    def test_word_order_matters(self):
        reference = [3, 4, 5, 6, 7]
        assert bleu([7, 6, 5, 4, 3], reference) < bleu([3, 4, 5, 7, 6], reference)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            corpus_bleu([[1]], [[1], [2]])


class TestIoU:
    def test_identical_boxes(self):
        box = (0.5, 0.5, 0.2, 0.2)
        assert iou(box, box) == pytest.approx(1.0)

    def test_disjoint_boxes(self):
        assert iou((0.2, 0.2, 0.1, 0.1), (0.8, 0.8, 0.1, 0.1)) == 0.0

    def test_half_overlap(self):
        a = (0.25, 0.5, 0.5, 1.0)
        b = (0.5, 0.5, 0.5, 1.0)
        assert iou(a, b) == pytest.approx(1.0 / 3.0)


class TestMeanAveragePrecision:
    def test_perfect_detection(self):
        ground_truth = [[(0.5, 0.5, 0.2, 0.2, 0)]]
        predictions = [[(0.5, 0.5, 0.2, 0.2, 0, 0.9)]]
        assert mean_average_precision(predictions, ground_truth, num_classes=1) == pytest.approx(100.0, abs=1.0)

    def test_missed_detection_scores_zero(self):
        ground_truth = [[(0.5, 0.5, 0.2, 0.2, 0)]]
        predictions = [[]]
        assert mean_average_precision(predictions, ground_truth, num_classes=1) == 0.0

    def test_wrong_class_scores_zero(self):
        ground_truth = [[(0.5, 0.5, 0.2, 0.2, 0)]]
        predictions = [[(0.5, 0.5, 0.2, 0.2, 1, 0.9)]]
        assert mean_average_precision(predictions, ground_truth, num_classes=2) == 0.0

    def test_false_positives_lower_precision(self):
        ground_truth = [[(0.5, 0.5, 0.2, 0.2, 0)]]
        clean = [[(0.5, 0.5, 0.2, 0.2, 0, 0.9)]]
        noisy = [[(0.5, 0.5, 0.2, 0.2, 0, 0.9), (0.1, 0.1, 0.2, 0.2, 0, 0.95)]]
        assert mean_average_precision(noisy, ground_truth, 1) < \
            mean_average_precision(clean, ground_truth, 1)

    def test_partial_recall_halves_ap(self):
        ground_truth = [[(0.25, 0.25, 0.2, 0.2, 0), (0.75, 0.75, 0.2, 0.2, 0)]]
        predictions = [[(0.25, 0.25, 0.2, 0.2, 0, 0.9)]]  # only one of two objects found
        score = mean_average_precision(predictions, ground_truth, 1)
        assert score == pytest.approx(50.0, abs=2.0)

    def test_localization_threshold(self):
        ground_truth = [[(0.5, 0.5, 0.2, 0.2, 0)]]
        offset = [[(0.62, 0.5, 0.2, 0.2, 0, 0.9)]]  # IoU well below 0.5
        assert mean_average_precision(offset, ground_truth, 1, iou_threshold=0.5) == 0.0

    def test_mismatched_image_counts_rejected(self):
        with pytest.raises(ValueError):
            mean_average_precision([[]], [[], []], 1)
