"""Ablation -- stochastic rounding of gradients (Section III-C).

The paper argues SR on gradients is what makes very low mantissa widths
usable.  This ablation trains the same model with 2-bit BFP under three
gradient-rounding policies (stochastic, nearest, truncate) and at 4-bit to
show the effect shrinks as the mantissa widens.
"""

import numpy as np

from bench_utils import print_banner, print_rows, train_mlp_classifier
from repro.training import FixedBFPSchedule

SEEDS = (0, 1)


def mean_best(schedule_factory, task, epochs=4):
    scores = [train_mlp_classifier(schedule_factory(seed), task, epochs=epochs, seed=seed).best_val_metric
              for seed in SEEDS]
    return float(np.mean(scores))


def test_ablation_gradient_rounding(benchmark, vision_task):
    settings = {
        ("m=2", "stochastic"): lambda seed: FixedBFPSchedule(2, stochastic_gradients=True, seed=seed),
        ("m=2", "nearest"): lambda seed: FixedBFPSchedule(2, stochastic_gradients=False, seed=seed),
        ("m=4", "stochastic"): lambda seed: FixedBFPSchedule(4, stochastic_gradients=True, seed=seed),
        ("m=4", "nearest"): lambda seed: FixedBFPSchedule(4, stochastic_gradients=False, seed=seed),
    }
    results = {key: mean_best(factory, vision_task) for key, factory in settings.items()}

    benchmark.pedantic(
        lambda: train_mlp_classifier(FixedBFPSchedule(2), vision_task, epochs=1, seed=2),
        rounds=1, iterations=1,
    )

    print_banner("Ablation: gradient rounding mode vs mantissa width "
                 f"(mean best accuracy over {len(SEEDS)} seeds)")
    print_rows(["mantissa", "gradient rounding", "best val acc %"],
               [[key[0], key[1], value] for key, value in results.items()])

    # SR should never hurt, and at m=2 it should help (or at worst be within
    # noise); at m=4 the two rounding modes should be close.
    assert results[("m=2", "stochastic")] >= results[("m=2", "nearest")] - 5.0
    assert abs(results[("m=4", "stochastic")] - results[("m=4", "nearest")]) < 15.0
