"""Performance-regression benchmark: reference vs. fast-path BFP quantization.

Times the seed reference implementation (`bfp_quantize_reference`) against the
fused fast-path kernel that `bfp_quantize` now dispatches to, across tensor
sizes, group sizes and rounding modes, and verifies on every run that the fast
path is bit-exact (nearest/truncate) or seed-reproducible (stochastic) against
the reference.  Emits a JSON report so CI can detect speed regressions.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_quantization.py
    PYTHONPATH=src python benchmarks/bench_perf_quantization.py --quick
    PYTHONPATH=src python benchmarks/bench_perf_quantization.py --output results.json

``--quick`` runs a reduced matrix suitable for CI and exits non-zero if the
fast path is slower than the reference on the standard (m=4, g=16) nearest
configuration -- the perf-regression gate.

Also gates the runtime invariant sanitizer (:mod:`repro.devtools.sanitize`):
with the sanitizer *uninstalled*, packed-tensor construction
(``bfp_quantize_tensor``) must cost within 1% of a baseline replay of the
same pipeline whose result dataclass has no ``__post_init__`` hook at all
-- i.e. the disabled gate (one global load + branch per construction) is
free at benchmark resolution.
"""

import argparse
import json
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.core import bfp, kernels
from repro.core.kernels import bfp_quantize_fast, bfp_quantize_reference
from repro.core.rounding import LFSR, NoisePool, VectorizedLFSR

from bench_utils import print_banner, print_rows

STANDARD_CASE = {"size": None, "group_size": 16, "mantissa_bits": 4, "rounding": "nearest"}


def best_time(fn, repeats: int) -> float:
    """Best-of-N wall time in seconds (first call warms caches)."""
    fn()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def make_input(size: int, dtype=np.float32) -> np.ndarray:
    rng = np.random.default_rng(1234)
    return (rng.standard_normal(size) * 10.0 ** rng.integers(-2, 3, size=size)).astype(dtype)


def verify_equivalence() -> None:
    """Assert fast-path correctness before trusting any timing."""
    rng = np.random.default_rng(0)
    for dtype in (np.float32, np.float64):
        for group_size in (8, 16, 17):
            values = (rng.standard_normal((7, 130))).astype(dtype)
            for mode in ("nearest", "truncate"):
                fast = bfp_quantize_fast(values, 4, group_size, 8, mode)
                ref = bfp_quantize_reference(values, 4, group_size, 8, mode)
                assert np.array_equal(fast, ref), (dtype, group_size, mode)
    values = rng.standard_normal(4096)
    fast = bfp_quantize_fast(values, 4, 16, 8, "stochastic", rng=np.random.default_rng(7))
    ref = bfp_quantize_reference(values, 4, 16, 8, "stochastic", rng=np.random.default_rng(7))
    assert np.array_equal(fast, ref), "stochastic path is not seed-reproducible"
    fast = bfp_quantize_fast(values, 4, 16, 8, "stochastic", rng=VectorizedLFSR(seed=9))
    ref = bfp_quantize_reference(values, 4, 16, 8, "stochastic", rng=LFSR(seed=9))
    assert np.array_equal(fast, ref), "vectorized LFSR diverged from the scalar stream"
    fast = bfp_quantize_fast(values, 4, 16, 8, "stochastic", rng=NoisePool(11))
    ref = bfp_quantize_reference(values, 4, 16, 8, "stochastic", rng=NoisePool(11))
    assert np.array_equal(fast, ref), "pooled noise is not seed-reproducible"


def run_case(size, group_size, mantissa_bits, rounding, repeats, lfsr=False, pool=False):
    values = make_input(size)
    if rounding == "stochastic":
        if pool:
            # Reference stays the per-call Generator draw (the PR-1 bound);
            # the fast path draws from a refilled NoisePool.
            def run_ref():
                return bfp_quantize_reference(values, mantissa_bits, group_size, 8,
                                              "stochastic", rng=np.random.default_rng(0))

            noise_pool = NoisePool(0, capacity=1 << 21)

            def run_fast():
                return bfp_quantize_fast(values, mantissa_bits, group_size, 8,
                                         "stochastic", rng=noise_pool)
            ref_time = best_time(run_ref, repeats)
        elif lfsr:
            def run_ref():
                return bfp_quantize_reference(values, mantissa_bits, group_size, 8,
                                              "stochastic", rng=LFSR())

            def run_fast():
                return bfp_quantize_fast(values, mantissa_bits, group_size, 8,
                                         "stochastic", rng=VectorizedLFSR())
            # The scalar LFSR draws bits one Python call at a time; a single
            # timed run is plenty (and the honest measurement).
            ref_time = best_time(run_ref, 1)
        else:
            def run_ref():
                return bfp_quantize_reference(values, mantissa_bits, group_size, 8,
                                              "stochastic", rng=np.random.default_rng(0))

            def run_fast():
                return bfp_quantize_fast(values, mantissa_bits, group_size, 8,
                                         "stochastic", rng=np.random.default_rng(0))
            ref_time = best_time(run_ref, repeats)
    else:
        def run_ref():
            return bfp_quantize_reference(values, mantissa_bits, group_size, 8, rounding)

        def run_fast():
            return bfp_quantize_fast(values, mantissa_bits, group_size, 8, rounding)
        ref_time = best_time(run_ref, repeats)
    fast_time = best_time(run_fast, repeats)
    label = rounding + ("(lfsr)" if lfsr else "") + ("(pool)" if pool else "")
    return {
        "size": size,
        "group_size": group_size,
        "mantissa_bits": mantissa_bits,
        "rounding": label,
        "reference_ms": ref_time * 1e3,
        "fast_ms": fast_time * 1e3,
        "speedup": ref_time / fast_time,
    }


@dataclass
class _PreSanitizerTensor:
    """Field-for-field clone of BFPTensor with no ``__post_init__``.

    Replays the packed-tensor construction exactly as it was before the
    sanitizer hook existed, so the A/B below isolates the cost of the
    disabled gate (one module-global load + ``is not None`` branch).
    """

    signs: np.ndarray
    mantissas: np.ndarray
    exponents: np.ndarray
    config: object
    shape: tuple
    axis: int = -1
    pad: int = 0
    _moved_shape: tuple = field(default=None, repr=False)


def _baseline_quantize_tensor(x, config, axis=-1):
    """The body of ``bfp_quantize_tensor`` minus the sanitizer hook."""
    groups, pad, moved_shape = kernels.resolve_groups(x, config.group_size, axis=axis)
    exponents = bfp.compute_group_exponents(groups, config.exponent_bits)
    _, signs, mantissas = kernels.quantize_groups(
        groups, exponents, config.mantissa_bits, config.rounding,
        rng=None, noise_bits=config.noise_bits, return_packed=True)
    return _PreSanitizerTensor(signs, mantissas, exponents, config,
                               tuple(x.shape), axis, pad, moved_shape)


def sanitizer_gate_overhead(repeats: int) -> dict:
    """Interleaved best-of-N A/B: shipped (gate off) vs pre-sanitizer path.

    The two variants are timed in alternating rounds (not back-to-back
    blocks) so slow drift -- thermal state, cache pressure from earlier
    benchmark cases -- cancels out of the ratio instead of landing on
    whichever variant ran second.
    """
    assert bfp._SANITIZER is None, "sanitizer must be uninstalled for this gate"
    config = bfp.BFPConfig(mantissa_bits=4, group_size=16, rounding="nearest")
    values = make_input(16_384)
    calls = 50
    rounds = max(repeats * 4, 12)

    def run_shipped():
        for _ in range(calls):
            bfp.bfp_quantize_tensor(values, config)

    def run_baseline():
        for _ in range(calls):
            _baseline_quantize_tensor(values, config)

    run_shipped()
    run_baseline()  # warm both paths before any timed round
    shipped = baseline = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        run_shipped()
        shipped = min(shipped, time.perf_counter() - start)
        start = time.perf_counter()
        run_baseline()
        baseline = min(baseline, time.perf_counter() - start)
    return {
        "shipped_ms_per_call": shipped / calls * 1e3,
        "baseline_ms_per_call": baseline / calls * 1e3,
        "overhead_ratio": shipped / baseline,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced matrix + regression gate for CI")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).parent / "results" / "perf_quantization.json")
    parser.add_argument("--repeats", type=int, default=None)
    args = parser.parse_args(argv)

    print_banner("BFP quantization: reference vs. fast-path kernels")
    verify_equivalence()
    print("equivalence harness: PASS (bit-exact deterministic, seed-reproducible stochastic)")

    if args.quick:
        sizes = [65_536]
        repeats = args.repeats or 3
        lfsr_sizes = [65_536]
    else:
        sizes = [65_536, 1_000_000]
        repeats = args.repeats or 7
        lfsr_sizes = [65_536, 1_000_000]

    results = []
    for size in sizes:
        for group_size in (16, 64):
            for mantissa_bits in (2, 4):
                for rounding in ("nearest", "truncate", "stochastic"):
                    results.append(run_case(size, group_size, mantissa_bits, rounding, repeats))
    for size in lfsr_sizes:
        results.append(run_case(size, 16, 4, "stochastic", repeats, lfsr=True))
    for size in sizes:
        results.append(run_case(size, 16, 4, "stochastic", repeats, pool=True))

    rows = [
        (f"{r['size']:,}", r["group_size"], r["mantissa_bits"], r["rounding"],
         f"{r['reference_ms']:.2f}", f"{r['fast_ms']:.2f}", f"{r['speedup']:.1f}x")
        for r in results
    ]
    print_rows(["size", "g", "m", "rounding", "ref (ms)", "fast (ms)", "speedup"], rows,
               title="BFP quantization timings (best of {} runs)".format(repeats))

    gate = sanitizer_gate_overhead(repeats)
    print(f"\nsanitizer gate (off): {gate['shipped_ms_per_call']:.3f} ms/call "
          f"vs pre-hook baseline {gate['baseline_ms_per_call']:.3f} ms/call "
          f"({(gate['overhead_ratio'] - 1) * 100:+.2f}%)")

    report = {
        "benchmark": "bench_perf_quantization",
        "mode": "quick" if args.quick else "full",
        "repeats": repeats,
        "numpy": np.__version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "equivalence": "pass",
        "sanitizer_gate": gate,
        "results": results,
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.output}")

    # Perf-regression gate on the standard configuration.
    standard = [r for r in results
                if r["group_size"] == 16 and r["mantissa_bits"] == 4 and r["rounding"] == "nearest"]
    worst = min(standard, key=lambda r: r["speedup"])
    print(f"standard (m=4, g=16, nearest) worst speedup: {worst['speedup']:.2f}x "
          f"at size {worst['size']:,}")
    if worst["speedup"] < 1.0:
        print("FAIL: fast path slower than the reference on the standard configuration",
              file=sys.stderr)
        return 1
    if gate["overhead_ratio"] > 1.01:
        print(f"FAIL: sanitizer-off construction is "
              f"{(gate['overhead_ratio'] - 1) * 100:.2f}% slower than the "
              "pre-hook baseline (gate must stay under 1%)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
