"""Performance benchmark: frozen-model serving, single-request vs. batched.

PR 3 added the serving subsystem (``repro.serving``): frozen BFP model
export, ``.npz`` checkpoints, and a dynamic micro-batching request server.
This benchmark measures what serving buys per model family:

* **single-request latency** -- every request runs alone through the engine
  (a ``max_batch_size=1`` server), which is what one-at-a-time submission
  costs,
* **batched throughput** -- the same requests submitted concurrently and
  coalesced by the micro-batching queue.

* **sharded-tier scaling** -- the multi-process ``ShardedServer`` (1/2/4
  engine worker processes over a frozen checkpoint, shared-memory batch
  transport) measured with the *open-loop* Poisson traffic rig
  (``repro.serving.loadgen``): goodput and p50/p95/p99 latency vs. offered
  QPS, plus a mixed-family routing run.  Two workers must sustain >= 1.7x
  the single-process open-loop goodput on the CNN family; the gate is
  enforced only on hosts with >= 2 usable CPUs (recorded as skipped
  otherwise -- worker processes cannot run in parallel on one core).

An equivalence harness runs first -- timings of a wrong serving path are
worthless: per family it asserts that frozen logits are **bit-identical**
to the live quantized model in eval mode and that a save/load round trip
through the checkpoint format is also bit-identical.  The sharded tier has
its own equivalence harness: outputs served through worker processes and
shared-memory rings must match the local engine bit for bit before any
throughput is measured.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_serving.py
    PYTHONPATH=src python benchmarks/bench_perf_serving.py --quick
    PYTHONPATH=src python benchmarks/bench_perf_serving.py --output results.json

Exit status is non-zero if the equivalence harness fails or if batched
serving of the standard CNN workload does not reach 2x the one-at-a-time
request throughput.
"""

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import nn, observability
from repro.core.bfp import BFPConfig
from repro.observability import validate_chrome_trace, validate_prometheus_text
from repro.observability.tracing import PIPELINE_STAGES
from repro.models import MLP, mobilenet_v2, resnet20, tiny_yolo, transformer_small, vgg11
from repro.nn.quantized import QuantizedConv2d, QuantizedLinear
from repro.serving import (
    BatchingConfig,
    ClusterConfig,
    DeadlineExceeded,
    EngineCrash,
    FamilyLoad,
    FaultInjectingEngine,
    FaultPlan,
    InferenceEngine,
    InferenceServer,
    OpenLoopGenerator,
    ServingError,
    ShardedServer,
    WorkerSpec,
    freeze,
    load_frozen,
    save_frozen,
)
from repro.training.schedules import FixedBFPSchedule

from bench_utils import best_of, print_banner, print_rows

STANDARD_CONFIG = "cnn"
SPEEDUP_GATE = 2.0
#: Sharded-tier gate: 2 worker processes must sustain at least this multiple
#: of the single-process server's open-loop goodput on the CNN family.  Only
#: enforceable where the workers can actually run in parallel, so the gate is
#: skipped (and recorded as skipped) on hosts with a single usable CPU.
CLUSTER_GATE = 1.7
CLUSTER_WORKER_COUNTS = (1, 2, 4)
#: Offered-load levels as multiples of the measured single-process capacity:
#: below saturation, at saturation, and well past it (where goodput flattens
#: at the backend's real capacity and the scaling story is visible).
CLUSTER_LOAD_LEVELS = (0.6, 1.25, 2.5)
#: Ceiling on offered QPS: past this the single-threaded generator's own
#: submit loop becomes the bottleneck and "offered load" stops being honest.
CLUSTER_MAX_QPS = 6000.0
#: Observability gate: with metrics + tracing enabled, serving throughput
#: must stay at or above this fraction of the disabled-gate throughput
#: (instrumentation may cost at most 5%).
OBSERVABILITY_GATE = 0.95
#: Trace sample rate used for the overhead measurement -- the documented
#: production setting (every request still updates metrics; one in ten gets
#: a full span timeline).
OBSERVABILITY_SAMPLE_RATE = 0.1


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1
#: Paper-standard 8-bit exponent window: batch composition never changes the
#: shared-exponent clamping, so batched and single-request quantization agree.
BFP_CONFIG = BFPConfig(exponent_bits=8, group_size=16)


# --------------------------------------------------------------------------- #
# Model families
# --------------------------------------------------------------------------- #
def build_cnn(seed=0):
    """The standard serving CNN: the train-step benchmark's two-conv
    architecture at the repo's usual CPU-scale width (16/32 channels)."""
    rng = np.random.default_rng(seed)
    model = nn.Sequential(
        QuantizedConv2d(3, 16, 3, padding=1, rng=rng),
        nn.ReLU(), nn.MaxPool2d(2),
        QuantizedConv2d(16, 32, 3, padding=1, rng=rng),
        nn.ReLU(), nn.MaxPool2d(2),
        nn.Flatten(),
        QuantizedLinear(32 * 8 * 8, 10, rng=rng),
    )
    return model, (3, 32, 32)


def build_mlp(seed=0):
    return MLP(784, [256, 128], 10, rng=np.random.default_rng(seed)), (784,)


def build_vgg(seed=0):
    return vgg11(width=8, rng=np.random.default_rng(seed)), (3, 32, 32)


def build_resnet(seed=0):
    return resnet20(width=8, rng=np.random.default_rng(seed)), (3, 32, 32)


def build_mobilenet(seed=0):
    return mobilenet_v2(width=8, rng=np.random.default_rng(seed)), (3, 32, 32)


def build_yolo(seed=0):
    return tiny_yolo(num_classes=3, image_size=32, rng=np.random.default_rng(seed)), (3, 32, 32)


FAMILY_BUILDERS = {
    "cnn": build_cnn,
    "mlp": build_mlp,
    "vgg": build_vgg,
    "resnet": build_resnet,
    "mobilenet": build_mobilenet,
    "yolo": build_yolo,
}

#: Per-family batch caps (a per-deployment serving knob).  MobileNet's
#: depthwise/1x1 structure is memory-bandwidth-bound: large batches overflow
#: cache and run *slower* per sample, so it serves best with a small cap.
FAMILY_BATCH_CAPS = {"mobilenet": 8}
DEFAULT_BATCH_CAP = 32


def frozen_engine(family: str, seed=0, compute_dtype=None):
    model, input_shape = FAMILY_BUILDERS[family](seed)
    FixedBFPSchedule(4, config=BFP_CONFIG, stochastic_gradients=False,
                     seed=0).prepare(model, 1)
    model.eval()
    frozen = freeze(model)
    if compute_dtype is not None:
        frozen.cast(compute_dtype)
    return model, InferenceEngine(frozen), input_shape


# --------------------------------------------------------------------------- #
# Equivalence harness
# --------------------------------------------------------------------------- #
def verify_family(family: str, rng) -> None:
    model, engine, input_shape = frozen_engine(family)
    inputs = rng.standard_normal((4,) + input_shape)
    with nn.no_grad():
        live = model(inputs).data
    frozen_out = engine.model.predict(inputs)
    assert np.array_equal(frozen_out, live), f"{family}: frozen logits diverge from live"
    with tempfile.TemporaryDirectory() as tmp:
        path = save_frozen(engine.model, Path(tmp) / f"{family}.npz")
        reloaded = load_frozen(path)
        assert np.array_equal(reloaded.predict(inputs), live), \
            f"{family}: checkpoint round trip diverges"
    # The float32 serving cast leaves every BFP grid value exact; only the
    # accumulations run at single precision, so logits agree tightly.
    _, engine32, _ = frozen_engine(family, compute_dtype=np.float32)
    served = engine32.model.predict(inputs)
    assert served.dtype == np.float32, f"{family}: float32 cast not applied"
    assert np.allclose(served, live, rtol=1e-4, atol=1e-5), \
        f"{family}: float32 serving drifted from the float64 reference"


def verify_transformer(rng) -> None:
    model = transformer_small(vocab_size=40, max_length=16, rng=np.random.default_rng(0))
    FixedBFPSchedule(4, config=BFP_CONFIG, stochastic_gradients=False,
                     seed=0).prepare(model, 1)
    model.eval()
    src = rng.integers(3, 40, size=(4, 12))
    tgt = rng.integers(3, 40, size=(4, 12))
    with nn.no_grad():
        live = model(src, tgt).data
    frozen = freeze(model, meta={"bos_index": 1, "eos_index": 2})
    assert np.array_equal(frozen.forward_logits(src, tgt), live), \
        "transformer: frozen logits diverge from live"
    live_decode = model.greedy_decode(src, 1, 2)
    assert np.array_equal(frozen.predict(src), live_decode), \
        "transformer: frozen greedy decode diverges"
    with tempfile.TemporaryDirectory() as tmp:
        reloaded = load_frozen(save_frozen(frozen, Path(tmp) / "transformer.npz"))
        assert np.array_equal(reloaded.forward_logits(src, tgt), live), \
            "transformer: checkpoint round trip diverges"


# --------------------------------------------------------------------------- #
# Serving measurements
# --------------------------------------------------------------------------- #
def bench_family(family: str, num_requests: int, max_batch_size: int, rng) -> dict:
    # Serve in float32 (the production mode): BFP grid values are exact in
    # float32, and half the memory traffic is what batched GEMMs feed on.
    _, engine, input_shape = frozen_engine(family, compute_dtype=np.float32)
    requests = rng.standard_normal((num_requests,) + input_shape).astype(np.float32)
    # Warm both serving shapes: index/layout caches plus the allocator's
    # large-block pools for the full-batch activations.
    engine.warmup(requests[:1])
    engine.warmup(requests[:max_batch_size])

    # Single-request latency: a server restricted to batches of one, fed
    # synchronously (each request waits for its result).
    engine.reset_stats()
    single_config = BatchingConfig(max_batch_size=1, max_delay_ms=0.0)
    latencies = []
    with InferenceServer(engine, single_config) as server:
        start = time.perf_counter()
        for request in requests:
            result = server.predict(request, timeout=120)
            latencies.append(result.timing.total_ms)
        single_wall = time.perf_counter() - start
    single_rps = num_requests / single_wall

    # Batched throughput: the same requests submitted all at once and
    # coalesced by the micro-batching queue.
    engine.reset_stats()
    batched_config = BatchingConfig(max_batch_size=max_batch_size, max_delay_ms=2.0)
    with InferenceServer(engine, batched_config) as server:
        start = time.perf_counter()
        futures = [server.submit(request) for request in requests]
        results = [future.result(timeout=300) for future in futures]
        batched_wall = time.perf_counter() - start
        stats = server.stats()
    batched_rps = num_requests / batched_wall
    mean_batch = stats["mean_batch_size"]
    batched_latency_p50 = float(np.percentile([r.timing.total_ms for r in results], 50))

    return {
        "family": family,
        "requests": num_requests,
        "max_batch_size": max_batch_size,
        "single_latency_ms_p50": float(np.percentile(latencies, 50)),
        "single_latency_ms_p95": float(np.percentile(latencies, 95)),
        "single_rps": single_rps,
        "batched_rps": batched_rps,
        "batched_latency_ms_p50": batched_latency_p50,
        "mean_batch_size": mean_batch,
        "speedup": batched_rps / single_rps,
    }


# --------------------------------------------------------------------------- #
# Degraded-mode serving: the fault-injection harness drives the robustness
# layer (retries, deadline shedding, supervised engine restart) under a
# hostile engine, and the numbers below are what graceful degradation costs.
# --------------------------------------------------------------------------- #
def bench_degraded(num_requests: int, rng) -> dict:
    _, engine, input_shape = frozen_engine(STANDARD_CONFIG, compute_dtype=np.float32)
    # Explicit call schedule: a short run only makes ~6-10 predict calls, so
    # rate-based injection could draw zero faults; scheduling by call index
    # guarantees each fault class actually exercises its recovery path.
    plan = FaultPlan(
        seed=7,
        latency_calls=(1, 4), latency_ms=25.0,   # slow-node stalls
        transient_calls=(2,),                    # a retryable batch blip
        crash_calls=(5,), rewarms_to_recover=1,  # one supervised restart mid-run
    )
    faulty = FaultInjectingEngine(engine, plan)
    requests = rng.standard_normal((num_requests,) + input_shape).astype(np.float32)
    faulty.warmup(requests[:1])
    faulty.warmup(requests[:16])

    config = BatchingConfig(
        max_batch_size=16, max_delay_ms=2.0,
        max_retries=4, retry_backoff_ms=1.0, retry_backoff_max_ms=8.0,
        engine_restart_limit=3, restart_backoff_ms=5.0,
    )
    # A quarter of the traffic carries a deadline tighter than one injected
    # latency spike: requests queued behind a stall shed instead of waiting.
    deadlines = [8.0 if index % 4 == 0 else 5000.0 for index in range(num_requests)]

    start = time.perf_counter()
    with InferenceServer(faulty, config) as server:
        futures = [server.submit(request, deadline_ms=deadline)
                   for request, deadline in zip(requests, deadlines)]
        latencies, shed, failed = [], 0, 0
        for future in futures:
            try:
                latencies.append(future.result(timeout=300).timing.total_ms)
            except DeadlineExceeded:
                shed += 1
            except (ServingError, EngineCrash):
                # Retry budget exhausted, or the batch was in flight when the
                # engine hard-crashed (those futures fail descriptively).
                failed += 1
        wall = time.perf_counter() - start
        stats = server.stats()
        final_state = stats["state"]

    assert len(latencies) + shed + failed == num_requests, \
        "degraded mode: request accounting does not close"
    assert latencies, "degraded mode: no request survived the fault injection"
    assert faulty.log.crashes >= 1, "degraded mode: the scheduled crash never fired"
    assert final_state == "healthy", \
        f"degraded mode: server did not recover from the injected crash ({final_state})"

    return {
        "requests": num_requests,
        "successes": len(latencies),
        "deadline_shed": shed,
        "failed": failed,
        "shed_rate": shed / num_requests,
        "failure_rate": failed / num_requests,
        "rps": num_requests / wall,
        "latency_ms_p50": float(np.percentile(latencies, 50)),
        "latency_ms_p95": float(np.percentile(latencies, 95)),
        "latency_ms_p99": float(np.percentile(latencies, 99)),
        "requeues": stats["requeues"],
        "engine_crashes": stats["engine_crashes"],
        "engine_restarts": stats["engine_restarts"],
        "final_state": final_state,
        "faults_injected": faulty.log.as_dict(),
    }


# --------------------------------------------------------------------------- #
# Observability: what enabling metrics + tracing costs, and whether the
# exported formats actually validate (Prometheus text, Chrome trace JSON).
# --------------------------------------------------------------------------- #
def bench_observability(num_requests: int, rng) -> dict:
    """Instrumented-vs-bare serving throughput plus schema validation.

    Runs the standard CNN workload through the batching server twice per
    attempt -- observability gate off, then on (metrics + tracing at the
    documented production sample rate) -- and gates on the throughput
    ratio.  The ratio is taken best-of-3 (``bench_utils.best_of``): a noisy
    host can make either run slower, and the gate should trip on real
    instrumentation cost, not an unlucky time slice.  While the gate is on,
    the Prometheus exposition and the exported Chrome trace are validated
    against their schemas, including every in-process pipeline stage.
    """
    cap = FAMILY_BATCH_CAPS.get(STANDARD_CONFIG, DEFAULT_BATCH_CAP)
    _, engine, input_shape = frozen_engine(STANDARD_CONFIG,
                                           compute_dtype=np.float32)
    requests = rng.standard_normal((num_requests,) + input_shape).astype(np.float32)
    engine.warmup(requests[:1])
    engine.warmup(requests[:cap])
    batching = BatchingConfig(max_batch_size=cap, max_delay_ms=2.0)

    def serve_once() -> float:
        engine.reset_stats()
        with InferenceServer(engine, batching, name="obs-bench") as server:
            start = time.perf_counter()
            futures = [server.submit(request) for request in requests]
            for future in futures:
                future.result(timeout=300)
            return num_requests / (time.perf_counter() - start)

    local_stages = tuple(s for s in PIPELINE_STAGES if s != "transport")
    prometheus_samples = trace_events = 0

    def measure() -> dict:
        nonlocal prometheus_samples, trace_events
        was_enabled = observability.set_enabled(False)
        assert not was_enabled, "observability gate unexpectedly on"
        observability.reset()
        bare_rps = serve_once()
        observability.set_enabled(True, sample_rate=OBSERVABILITY_SAMPLE_RATE)
        try:
            instrumented_rps = serve_once()
            prometheus_samples = validate_prometheus_text(
                observability.registry().render_prometheus())
            trace_events = validate_chrome_trace(
                observability.tracer().to_chrome(),
                require_stages=local_stages)
        finally:
            observability.set_enabled(False)
            observability.reset()
        return {"bare_rps": bare_rps, "instrumented_rps": instrumented_rps,
                "ratio": instrumented_rps / bare_rps}

    best, attempts = best_of(
        measure, attempts=3,
        key=lambda result: result["ratio"],
        good_enough=lambda ratio: ratio >= OBSERVABILITY_GATE,
        label="observability overhead gate")
    return {
        "requests": num_requests,
        "sample_rate": OBSERVABILITY_SAMPLE_RATE,
        "bare_rps": best["bare_rps"],
        "instrumented_rps": best["instrumented_rps"],
        "ratio": best["ratio"],
        "gate": OBSERVABILITY_GATE,
        "attempts": len(attempts),
        "prometheus_samples": prometheus_samples,
        "trace_events": trace_events,
        "schemas": "pass",
    }


# --------------------------------------------------------------------------- #
# Sharded tier: N worker processes behind one front end, measured open-loop.
# --------------------------------------------------------------------------- #
_PIN_BLAS = (("OMP_NUM_THREADS", "1"), ("OPENBLAS_NUM_THREADS", "1"),
             ("MKL_NUM_THREADS", "1"))


def _worker_specs(checkpoint: Path, family: str, input_shape, cap: int,
                  count: int):
    """``count`` CNN-family worker specs warmed for both serving shapes."""
    return [
        WorkerSpec(
            checkpoint=str(checkpoint), model=family,
            warmup_shapes=((1,) + input_shape, (cap,) + input_shape),
            warmup_dtype="float32", cast_dtype="float32",
            # One BLAS thread per worker: parallelism comes from the worker
            # processes themselves, and oversubscribing threads x processes
            # on a small host destroys the scaling being measured.
            env=_PIN_BLAS,
        )
        for _ in range(count)
    ]


def verify_cluster(checkpoint: Path, input_shape, rng) -> None:
    """Bit-identical equivalence of the sharded tier vs. a local engine.

    Shards are restricted to batches of one so every request runs the same
    arithmetic as a local single-row forward; outputs must then match the
    in-process engine **bit for bit** -- the batch bytes crossed two shared
    -memory rings and a process boundary, and none of that may touch values.
    """
    local = InferenceEngine(load_frozen(checkpoint).cast(np.float32))
    requests = rng.standard_normal((24,) + input_shape).astype(np.float32)
    specs = _worker_specs(checkpoint, "cnn", input_shape, cap=1, count=2)
    config = ClusterConfig(batching=BatchingConfig(max_batch_size=1,
                                                   max_delay_ms=0.0))
    with ShardedServer(specs, config) as cluster:
        futures = [cluster.submit(request) for request in requests]
        outputs = [future.result(timeout=120).output for future in futures]
    for request, output in zip(requests, outputs):
        expected = local.model.predict(request[None])[0]
        assert np.array_equal(output, expected), \
            "cluster: outputs diverge from the single-process engine"


def _load_point(report) -> dict:
    return {
        "offered_qps": report.offered_qps,
        "goodput_rps": report.goodput_rps,
        "sent": report.sent,
        "completed": report.completed,
        "failed": report.failed,
        "latency_ms_p50": report.latency_ms_p50,
        "latency_ms_p95": report.latency_ms_p95,
        "latency_ms_p99": report.latency_ms_p99,
        "max_slip_ms": report.max_slip_ms,
    }


def bench_cluster(num_requests: int, duration_s: float, rng) -> dict:
    """Open-loop goodput/latency of 1/2/4-worker clusters vs. one process.

    Offered loads are set relative to the *measured* closed-loop capacity of
    the single-process server, so the sweep always covers under-, at-, and
    past-saturation regardless of host speed.  Latency is coordinated-
    omission-free (measured from scheduled arrival; see
    :mod:`repro.serving.loadgen`).
    """
    cpus = usable_cpus()
    family = STANDARD_CONFIG
    cap = FAMILY_BATCH_CAPS.get(family, DEFAULT_BATCH_CAP)
    _, engine, input_shape = frozen_engine(family, compute_dtype=np.float32)
    payloads = tuple(rng.standard_normal((32,) + input_shape).astype(np.float32))
    engine.warmup(payloads[0][None])
    engine.warmup(np.stack(payloads)[:cap])
    batching = BatchingConfig(max_batch_size=cap, max_delay_ms=2.0)

    # Closed-loop capacity anchor for the offered-load levels.
    with InferenceServer(engine, batching) as server:
        start = time.perf_counter()
        futures = [server.submit(payloads[i % len(payloads)])
                   for i in range(num_requests)]
        for future in futures:
            future.result(timeout=300)
        capacity_rps = num_requests / (time.perf_counter() - start)
    offered_levels = [min(capacity_rps * level, CLUSTER_MAX_QPS)
                      for level in CLUSTER_LOAD_LEVELS]

    def open_loop(submit, qps, seed):
        mix = (FamilyLoad(payloads=payloads, model=None),)
        return OpenLoopGenerator(submit, mix, qps=qps, duration_s=duration_s,
                                 seed=seed, drain_timeout_s=120.0).run()

    # Single-process baseline under the same open-loop rig.
    baseline = []
    with InferenceServer(engine, batching) as server:
        for index, qps in enumerate(offered_levels):
            baseline.append(_load_point(open_loop(server.submit, qps, seed=100 + index)))
    baseline_top = baseline[-1]["goodput_rps"]

    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = save_frozen(engine.model, Path(tmp) / f"{family}.npz")
        verify_cluster(checkpoint, input_shape, rng)
        print("cluster equivalence harness: PASS (sharded outputs bit-identical "
              "to the single-process engine)")

        scaling = {}
        gate = {"required": CLUSTER_GATE, "enforced": cpus >= 2,
                "baseline_goodput_rps": baseline_top}
        for workers in CLUSTER_WORKER_COUNTS:
            specs = _worker_specs(checkpoint, family, input_shape, cap, workers)
            config = ClusterConfig(batching=batching)
            spinup = time.perf_counter()
            with ShardedServer(specs, config) as cluster:
                spinup = time.perf_counter() - spinup
                # The sharded submit has a model= keyword; adapt to the
                # generator's positional convention for a fair comparison.
                points = [_load_point(open_loop(cluster.submit, qps,
                                                seed=200 + 10 * workers + index))
                          for index, qps in enumerate(offered_levels)]
                if workers == 2:
                    # Gate statistic, best-of-3: rerun only the top-load
                    # point, and only while the ratio is below the gate
                    # (interference only ever lowers throughput).
                    first = [points[-1]]
                    retry_seed = [300]

                    def measure():
                        if first:
                            return first.pop()
                        retry_seed[0] += 1
                        return _load_point(open_loop(cluster.submit,
                                                     offered_levels[-1],
                                                     seed=retry_seed[0]))

                    best, attempts = best_of(
                        measure, attempts=3 if gate["enforced"] else 1,
                        key=lambda point: point["goodput_rps"],
                        good_enough=lambda rps: rps >= CLUSTER_GATE * baseline_top,
                        label="cluster 2-worker gate")
                    points[-1] = best
                    gate["attempts"] = len(attempts)
                    gate["measured_ratio"] = best["goodput_rps"] / baseline_top
            scaling[str(workers)] = {"spinup_s": spinup, "points": points}

    if not gate["enforced"]:
        gate["skipped_reason"] = (
            f"only {cpus} usable CPU(s): worker processes cannot run in "
            "parallel, so the scaling gate is not measurable on this host")

    return {
        "family": family,
        "cpus": cpus,
        "duration_s": duration_s,
        "capacity_single_rps": capacity_rps,
        "offered_levels_qps": offered_levels,
        "baseline": baseline,
        "scaling": scaling,
        "gate": gate,
        "equivalence": "pass",
    }


def bench_cluster_mixed(duration_s: float, rng) -> dict:
    """Mixed-family open-loop traffic over one cluster (routing exercise):
    CNN and MLP checkpoints served side by side, 70/30 offered split."""
    cnn_cap = FAMILY_BATCH_CAPS.get("cnn", DEFAULT_BATCH_CAP)
    _, cnn_engine, cnn_shape = frozen_engine("cnn", compute_dtype=np.float32)
    _, mlp_engine, mlp_shape = frozen_engine("mlp", compute_dtype=np.float32)
    cnn_payloads = tuple(rng.standard_normal((16,) + cnn_shape).astype(np.float32))
    mlp_payloads = tuple(rng.standard_normal((16,) + mlp_shape).astype(np.float32))
    with tempfile.TemporaryDirectory() as tmp:
        cnn_ckpt = save_frozen(cnn_engine.model, Path(tmp) / "cnn.npz")
        mlp_ckpt = save_frozen(mlp_engine.model, Path(tmp) / "mlp.npz")
        specs = (_worker_specs(cnn_ckpt, "cnn", cnn_shape, cnn_cap, 1)
                 + _worker_specs(mlp_ckpt, "mlp", mlp_shape, DEFAULT_BATCH_CAP, 1))
        config = ClusterConfig(
            batching=BatchingConfig(max_batch_size=DEFAULT_BATCH_CAP,
                                    max_delay_ms=2.0),
            routing="least_loaded")
        with ShardedServer(specs, config) as cluster:
            mix = (FamilyLoad(payloads=cnn_payloads, model="cnn", weight=0.7),
                   FamilyLoad(payloads=mlp_payloads, model="mlp", weight=0.3))
            report = OpenLoopGenerator(cluster.submit, mix, qps=200.0,
                                       duration_s=duration_s, seed=42,
                                       drain_timeout_s=120.0).run()
            stats = cluster.stats()
    point = _load_point(report)
    point["models"] = {"cnn": 0.7, "mlp": 0.3}
    point["per_shard_requests"] = [s.requests for s in stats.shards]
    return point


# --------------------------------------------------------------------------- #
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced family matrix + request counts for CI")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).parent / "results" / "perf_serving.json")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per family measurement")
    args = parser.parse_args(argv)

    print_banner("Frozen-model serving: single-request vs. dynamic batching")

    rng = np.random.default_rng(1234)
    if args.quick:
        families = ["cnn", "mlp"]
        num_requests = args.requests or 96
    else:
        families = ["cnn", "mlp", "vgg", "resnet", "mobilenet", "yolo"]
        num_requests = args.requests or 96

    for family in families:
        verify_family(family, rng)
    verify_transformer(rng)
    print("equivalence harness: PASS (frozen logits and checkpoint round trips "
          "bit-identical to the live quantized models, greedy decode included)")

    results = [
        bench_family(family, num_requests,
                     max_batch_size=FAMILY_BATCH_CAPS.get(family, DEFAULT_BATCH_CAP),
                     rng=rng)
        for family in families
    ]

    # The speedup gate is checked against the best of up to three
    # measurements (bench_utils.best_of): on small shared hosts a single
    # threaded run can lose half its throughput to scheduler noise, and a
    # regression gate should trip on regressions, not on an unlucky time
    # slice.  The table measurement above counts as the first attempt.
    standard_index = next(i for i, r in enumerate(results)
                          if r["family"] == STANDARD_CONFIG)
    first_attempt = [results[standard_index]]

    def measure_standard():
        if first_attempt:
            return first_attempt.pop()
        return bench_family(
            STANDARD_CONFIG, num_requests,
            max_batch_size=FAMILY_BATCH_CAPS.get(STANDARD_CONFIG, DEFAULT_BATCH_CAP),
            rng=rng)

    best, gate_values = best_of(
        measure_standard, attempts=3,
        key=lambda result: result["speedup"],
        good_enough=lambda speedup: speedup >= SPEEDUP_GATE,
        label=f"{STANDARD_CONFIG} speedup gate")
    results[standard_index] = best
    gate_attempts = len(gate_values)

    rows = [(r["family"], str(r["max_batch_size"]), f"{r['single_latency_ms_p50']:.2f}",
             f"{r['single_rps']:.0f}", f"{r['batched_rps']:.0f}",
             f"{r['mean_batch_size']:.1f}", f"{r['speedup']:.2f}x")
            for r in results]
    print_rows(["family", "cap", "single p50 (ms)", "single (req/s)",
                "batched (req/s)", "mean batch", "speedup"],
               rows, title=f"Serving throughput ({num_requests} requests)")

    # Degraded mode: the same serving stack under injected faults.
    degraded = bench_degraded(num_requests, rng)
    print_rows(
        ["p50 (ms)", "p95 (ms)", "p99 (ms)", "req/s", "shed", "failed",
         "requeues", "restarts", "state"],
        [(f"{degraded['latency_ms_p50']:.2f}", f"{degraded['latency_ms_p95']:.2f}",
          f"{degraded['latency_ms_p99']:.2f}", f"{degraded['rps']:.0f}",
          f"{degraded['deadline_shed']} ({degraded['shed_rate']:.0%})",
          str(degraded['failed']), str(degraded['requeues']),
          str(degraded['engine_restarts']), degraded['final_state'])],
        title=(f"Degraded mode ({STANDARD_CONFIG}, {num_requests} requests: "
               "2 latency spikes, 1 transient error, 1 crash)"))
    print("degraded-mode gate: PASS (request accounting closed, crash recovered, "
          f"{degraded['successes']}/{degraded['requests']} served)")

    # Observability: instrumentation overhead + exported-format validation.
    obs = bench_observability(num_requests, rng)
    print_rows(
        ["bare (req/s)", "instrumented (req/s)", "ratio", "sample rate",
         "prom samples", "trace events"],
        [(f"{obs['bare_rps']:.0f}", f"{obs['instrumented_rps']:.0f}",
          f"{obs['ratio']:.3f}", f"{obs['sample_rate']:.2f}",
          str(obs['prometheus_samples']), str(obs['trace_events']))],
        title=(f"Observability overhead ({STANDARD_CONFIG}, {num_requests} "
               "requests; metrics + tracing vs. disabled gate)"))
    print("observability schemas: PASS (Prometheus exposition and Chrome "
          "trace JSON validated, all in-process pipeline stages present)")

    # Sharded tier: 1/2/4 worker processes, open-loop Poisson traffic.
    print_banner("Sharded serving tier: open-loop goodput vs. offered load")
    cluster = bench_cluster(num_requests, duration_s=1.2 if args.quick else 2.5,
                            rng=rng)
    cluster_rows = []
    for index, qps in enumerate(cluster["offered_levels_qps"]):
        point = cluster["baseline"][index]
        cluster_rows.append(("1 (in-proc)", f"{qps:.0f}",
                             f"{point['goodput_rps']:.0f}",
                             f"{point['latency_ms_p50']:.1f}",
                             f"{point['latency_ms_p95']:.1f}",
                             f"{point['latency_ms_p99']:.1f}"))
    for workers, entry in sorted(cluster["scaling"].items(), key=lambda kv: int(kv[0])):
        for index, point in enumerate(entry["points"]):
            cluster_rows.append((workers, f"{point['offered_qps']:.0f}",
                                 f"{point['goodput_rps']:.0f}",
                                 f"{point['latency_ms_p50']:.1f}",
                                 f"{point['latency_ms_p95']:.1f}",
                                 f"{point['latency_ms_p99']:.1f}"))
    print_rows(["workers", "offered (qps)", "goodput (req/s)", "p50 (ms)",
                "p95 (ms)", "p99 (ms)"],
               cluster_rows,
               title=(f"Open-loop {cluster['family']} serving "
                      f"({cluster['cpus']} CPU(s), {cluster['duration_s']:.1f}s "
                      "offered window, latency from scheduled arrival)"))
    cluster["mixed"] = bench_cluster_mixed(1.2 if args.quick else 2.5, rng)
    print(f"mixed-family run (cnn 70% / mlp 30%, least_loaded): "
          f"goodput {cluster['mixed']['goodput_rps']:.0f} req/s, "
          f"p95 {cluster['mixed']['latency_ms_p95']:.1f} ms, "
          f"per-shard requests {cluster['mixed']['per_shard_requests']}")

    # Storage accounting for the standard CNN export.
    _, engine, _ = frozen_engine(STANDARD_CONFIG)
    storage = engine.model.storage_report()
    print(f"\nfrozen {STANDARD_CONFIG} storage: {storage['total_bytes'] / 1024:.1f} KiB "
          f"({storage['compression_vs_fp32']:.2f}x vs FP32 under the chunked BFP layout)")

    report = {
        "benchmark": "bench_perf_serving",
        "mode": "quick" if args.quick else "full",
        "requests": num_requests,
        "numpy": np.__version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "equivalence": "pass",
        "storage_standard": storage,
        "results": results,
        "degraded": degraded,
        "observability": obs,
        "cluster": cluster,
        "gate_attempts": gate_attempts,
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.output}")

    standard = results[standard_index]
    print(f"standard ({STANDARD_CONFIG}) batched-vs-single speedup: "
          f"{standard['speedup']:.2f}x (gate {SPEEDUP_GATE:.1f}x, best of "
          f"{gate_attempts} measurement{'s' if gate_attempts > 1 else ''})")
    if standard["speedup"] < SPEEDUP_GATE:
        print("FAIL: batched serving speedup below the gate", file=sys.stderr)
        return 1

    print(f"observability overhead: instrumented serving at {obs['ratio']:.3f}x "
          f"the bare throughput (gate {OBSERVABILITY_GATE:.2f}x, best of "
          f"{obs['attempts']} measurement{'s' if obs['attempts'] > 1 else ''})")
    if obs["ratio"] < OBSERVABILITY_GATE:
        print("FAIL: observability instrumentation costs more than "
              f"{(1 - OBSERVABILITY_GATE):.0%} of serving throughput",
              file=sys.stderr)
        return 1

    gate = cluster["gate"]
    if gate["enforced"]:
        print(f"cluster 2-worker scaling: {gate['measured_ratio']:.2f}x the "
              f"single-process goodput (gate {CLUSTER_GATE:.1f}x, best of "
              f"{gate['attempts']} measurement{'s' if gate['attempts'] > 1 else ''})")
        if gate["measured_ratio"] < CLUSTER_GATE:
            print("FAIL: 2-worker cluster goodput below the scaling gate",
                  file=sys.stderr)
            return 1
    else:
        print(f"cluster 2-worker scaling gate: SKIPPED -- {gate['skipped_reason']} "
              f"(measured {gate.get('measured_ratio', float('nan')):.2f}x, "
              "recorded in the report)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
