"""Extension -- multi-chip scaling of FAST (the paper's stated future work).

Section VIII notes that DNN training is increasingly distributed and leaves a
multi-chip FAST deployment as future work.  This extension benchmark runs the
first-order data-parallel scaling model: per-iteration time on 1-16 FAST
chips for ResNet-18, with the weight gradients exchanged either as FP32 or in
the chunked BFP storage format of Section V-D, showing that BFP also pays off
as a communication format.
"""

from bench_utils import print_banner, print_rows
from repro.hardware import gradient_traffic_bits, resnet18_workload, scaling_sweep

CHIP_COUNTS = (1, 2, 4, 8, 16)


def test_extension_multichip_scaling(benchmark):
    workload = resnet18_workload()

    def evaluate():
        return {
            "bfp": scaling_sweep(workload, CHIP_COUNTS, exchange_format="bfp"),
            "fp32": scaling_sweep(workload, CHIP_COUNTS, exchange_format="fp32"),
        }

    sweeps = benchmark(evaluate)

    print_banner("Extension: data-parallel multi-chip scaling of FAST (ResNet-18)")
    rows = []
    for count in CHIP_COUNTS:
        bfp = sweeps["bfp"][count]
        fp32 = sweeps["fp32"][count]
        rows.append([count,
                     bfp.total_seconds * 1e3, bfp.speedup, bfp.efficiency,
                     bfp.communication_fraction * 100.0,
                     fp32.speedup])
    print_rows(["chips", "ms/iteration (BFP exchange)", "speedup (BFP)", "efficiency (BFP)",
                "comm % (BFP)", "speedup (FP32 exchange)"], rows)

    fp32_mb = gradient_traffic_bits(workload, "fp32") / 8e6
    bfp_mb = gradient_traffic_bits(workload, "bfp") / 8e6
    print(f"\nGradient all-reduce volume per iteration: {fp32_mb:.1f} MB in FP32 "
          f"vs {bfp_mb:.1f} MB in chunked BFP (m=4).")

    # The extension's claims: near-linear scaling at small chip counts, BFP
    # exchange strictly better than FP32 exchange at every multi-chip point.
    assert sweeps["bfp"][2].efficiency > 0.85
    for count in CHIP_COUNTS[1:]:
        assert sweeps["bfp"][count].speedup > sweeps["fp32"][count].speedup
