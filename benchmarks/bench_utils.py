"""Shared helpers for the benchmark harness (imported by the bench modules)."""

import numpy as np

from repro import nn
from repro.analysis import format_table
from repro.data import DataLoader
from repro.models import MLP
from repro.training import ClassificationTrainer, build_schedule

__all__ = ["print_banner", "print_rows", "train_mlp_classifier", "best_of"]


def print_banner(title: str) -> None:
    print(f"\n{'=' * 78}\n{title}\n{'=' * 78}")


def print_rows(headers, rows, title=None) -> None:
    print(format_table(headers, rows, title=title))


def best_of(measure, attempts=3, key=None, good_enough=None, label=None):
    """Re-run a noisy measurement and keep the best attempt.

    Gated throughput numbers on a shared/loaded host are noisy in one
    direction only -- interference makes a run *slower*, never faster -- so
    the honest gate statistic is the best of a few attempts, not the mean.

    ``measure()`` produces one measurement; ``key(result)`` (default: the
    result itself) is the figure of merit, higher better.  Stops early when
    ``good_enough(key_value)`` returns True (no point burning CI minutes
    once the gate is already met).  Returns ``(best_result, all_key_values)``
    and prints one line per retry when ``label`` is set.
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    key = key if key is not None else (lambda result: result)
    best = None
    best_value = -float("inf")
    values = []
    for attempt in range(attempts):
        result = measure()
        value = key(result)
        values.append(value)
        if value > best_value:
            best, best_value = result, value
        if good_enough is not None and good_enough(best_value):
            break
        if label is not None and attempt + 1 < attempts:
            print(f"  [{label}] attempt {attempt + 1}/{attempts}: {value:.2f} "
                  "(retrying for best-of)")
    return best, values


def train_mlp_classifier(schedule, task, epochs=4, seed=0, lr=0.1, hidden=(48,)):
    """Train a small MLP classifier under ``schedule`` and return the result.

    ``task`` is a ``(train, validation)`` dataset pair; ``schedule`` is either
    a :class:`~repro.training.schedules.PrecisionSchedule` or a schedule name
    accepted by :func:`repro.training.build_schedule`.
    """
    train, validation = task
    sample_shape = train.images.shape[1:]
    in_features = int(np.prod(sample_shape))
    num_classes = int(train.labels.max()) + 1
    if isinstance(schedule, str):
        schedule = build_schedule(schedule)
    model = MLP(in_features, list(hidden), num_classes, rng=np.random.default_rng(seed))
    optimizer = nn.SGD(model.parameters(), lr=lr, momentum=0.9)
    trainer = ClassificationTrainer(model, optimizer, schedule)
    train_loader = DataLoader(train, batch_size=32, seed=seed)
    val_loader = DataLoader(validation, batch_size=64, shuffle=False)
    return trainer.fit(train_loader, val_loader, epochs=epochs)
