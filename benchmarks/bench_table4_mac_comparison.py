"""Table IV -- ASIC area/power and FPGA resource comparison of MAC designs.

Reproduces the fMAC vs INT8/HFP8/INT12/bfloat16/FP16 comparison from the
analytical gate-level model, printed next to the paper's synthesis results.
The benchmarked kernel evaluates all six designs.
"""

from bench_utils import print_banner, print_rows
from repro.hardware import PAPER_TABLE4, table4_designs


def test_table4_mac_designs(benchmark):
    designs = benchmark(table4_designs)
    baseline = designs[0]

    print_banner("Table IV: MAC design comparison (model vs paper)")
    rows = []
    for design in designs:
        paper = PAPER_TABLE4[design.name]
        rows.append([
            design.name,
            design.relative_area(baseline),
            paper["area"],
            design.power_mw,
            paper["power_mw"],
            design.lut,
            paper["lut"],
            design.ff,
            paper["ff"],
        ])
    print_rows(
        ["MAC design", "area x (model)", "area x (paper)", "power mW (model)", "power mW (paper)",
         "LUT (model)", "LUT (paper)", "FF (model)", "FF (paper)"],
        rows,
    )

    # The reproduced claims: the fMAC is the smallest design and the ordering
    # of all six designs matches the paper.
    by_model_area = [design.name for design in sorted(designs, key=lambda d: d.area_units)]
    by_paper_area = sorted(PAPER_TABLE4, key=lambda name: PAPER_TABLE4[name]["area"])
    assert by_model_area == by_paper_area
    assert by_model_area[0] == "fmac"
    for design in designs[1:]:
        assert design.relative_area(baseline) > 2.0
