"""Table II -- validation accuracy / BLEU / mAP by number format.

The paper trains six models under eleven number formats.  At laptop scale we
train the scaled classification, translation and detection tasks under a
representative subset of those formats (including every BFP variant and the
key scalar baselines) and report the same table layout.  The *ordering* is
the reproduced quantity: FP32 ~ bfloat16 ~ HighBFP ~ FAST at the top, MidBFP
slightly behind, LowBFP and INT8 clearly behind.

Paper reference (ResNet-18 column of Table II):
fp32 68.60, bfloat16 68.55, nvidia_mp 68.57, int8 65.53, int12 68.51,
msfp12 68.13, low_bfp 63.10, mid_bfp 68.10, high_bfp 68.57, hfp8 68.53,
fast 68.52.
"""

import numpy as np

from bench_utils import print_banner, print_rows, train_mlp_classifier
from repro import nn
from repro.data import SyntheticDetectionDataset, SyntheticTranslationDataset
from repro.models import tiny_yolo, transformer_small
from repro.training import DetectionTrainer, Seq2SeqTrainer, build_schedule

PAPER_RESNET18 = {
    "fp32": 68.60, "bfloat16": 68.55, "nvidia_mp": 68.57, "int8": 65.53, "int12": 68.51,
    "msfp12": 68.13, "low_bfp": 63.10, "mid_bfp": 68.10, "high_bfp": 68.57, "hfp8": 68.53,
    "fast_adaptive": 68.52,
}

CLASSIFICATION_FORMATS = ["fp32", "bfloat16", "nvidia_mp", "int8", "int12", "msfp12",
                          "low_bfp", "mid_bfp", "high_bfp", "hfp8", "fast_adaptive"]


def test_table2_classification_accuracy(benchmark, vision_task):
    """The CNN columns of Table II (classification accuracy per format)."""
    results = {}
    for name in CLASSIFICATION_FORMATS:
        outcome = train_mlp_classifier(name, vision_task, epochs=4, seed=0)
        results[name] = outcome.best_val_metric

    # Benchmark one representative quantized training epoch (the unit of work
    # whose cost the hardware model converts into wall-clock time).
    benchmark.pedantic(
        lambda: train_mlp_classifier("high_bfp", vision_task, epochs=1, seed=1),
        rounds=1, iterations=1,
    )

    print_banner("Table II (classification): validation accuracy by number format")
    rows = [[name, results[name], PAPER_RESNET18[name]] for name in CLASSIFICATION_FORMATS]
    print_rows(["format", "measured acc % (synthetic task)", "paper acc % (ResNet-18/ImageNet)"], rows)

    high_precision = [results[name] for name in ("fp32", "bfloat16", "high_bfp", "fast_adaptive", "int12")]
    # The shape of Table II: high-precision formats cluster near FP32, the
    # 2-bit BFP baseline trails them.
    assert min(high_precision) > results["low_bfp"] - 15.0
    assert results["fp32"] >= 70.0


def test_table2_translation_bleu(benchmark):
    """The Transformer column of Table II (test BLEU by format)."""
    dataset = SyntheticTranslationDataset(num_samples=192, vocab_size=14, min_length=3,
                                          max_length=6, seed=0)
    train, validation = dataset.split(0.85)
    formats = ["fp32", "high_bfp", "low_bfp", "fast_adaptive"]
    paper = {"fp32": 35.41, "high_bfp": 35.43, "low_bfp": 34.22, "fast_adaptive": 35.40}

    scores = {}
    for name in formats:
        model = transformer_small(vocab_size=dataset.vocab_size, max_length=dataset.sequence_length,
                                  rng=np.random.default_rng(0))
        optimizer = nn.Adam(model.parameters(), lr=3e-3)
        trainer = Seq2SeqTrainer(model, optimizer, build_schedule(name), pad_index=dataset.pad_index)
        result = trainer.fit(train, validation, epochs=3, batch_size=16)
        scores[name] = result.best_val_metric

    benchmark.pedantic(lambda: trainer.evaluate_bleu(validation, max_samples=16),
                       rounds=1, iterations=1)

    print_banner("Table II (Transformer): BLEU by number format")
    print_rows(["format", "measured BLEU (synthetic task)", "paper BLEU (IWSLT14)"],
               [[name, scores[name], paper[name]] for name in formats])
    assert scores["fp32"] >= 0.0
    assert all(np.isfinite(score) for score in scores.values())


def test_table2_detection_map(benchmark):
    """The YOLOv2 column of Table II (mAP by format)."""
    dataset = SyntheticDetectionDataset(num_samples=96, num_classes=3, image_size=24,
                                        grid_size=3, max_objects=1, noise=0.15, seed=0)
    train, validation = dataset.split(0.8)
    formats = ["fp32", "high_bfp", "fast_adaptive"]
    paper = {"fp32": 73.36, "high_bfp": 73.30, "fast_adaptive": 73.28}

    scores = {}
    for name in formats:
        model = tiny_yolo(num_classes=3, image_size=24, width=6, rng=np.random.default_rng(0))
        optimizer = nn.Adam(model.parameters(), lr=5e-3)
        trainer = DetectionTrainer(model, optimizer, build_schedule(name))
        result = trainer.fit(train, validation, epochs=5, batch_size=16)
        scores[name] = result.best_val_metric

    benchmark.pedantic(lambda: trainer.evaluate_map(validation), rounds=1, iterations=1)

    print_banner("Table II (YOLO): mAP@0.5 by number format")
    print_rows(["format", "measured mAP (synthetic task)", "paper mAP (VOC2012)"],
               [[name, scores[name], paper[name]] for name in formats])
    assert all(0.0 <= score <= 100.0 for score in scores.values())
