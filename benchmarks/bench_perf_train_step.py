"""Performance benchmark: end-to-end quantized training step, fast vs. uncached.

PR 1 made the `bfp_quantize` kernel fast; this benchmark measures the whole
training step (forward + backward + optimizer update) with every step-level
cache enabled against the uncached path:

* persistent grouped-layout caches (`repro.core.kernels.LayoutCache`),
* memoized im2col/scatter indices and the BLAS/bincount convolution path
  (`repro.nn.functional`),
* pooled stochastic-rounding noise (`repro.core.rounding.NoisePool`),
* version+bits-keyed weight caching, including the FAST-Adaptive scheme.

Small CNN / MLP / transformer configurations run under three schemes (fixed
BFP with nearest gradients, fixed BFP with stochastic gradients, and
FAST-Adaptive).  An equivalence harness runs first -- timings of a wrong fast
path are worthless -- asserting bit-exactness where the fast path is
bit-exact (layout cache, pooled-noise quantization, fmac einsum) and
tight agreement for the BLAS convolution reordering (deterministic
training runs fast-vs-uncached).

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_train_step.py
    PYTHONPATH=src python benchmarks/bench_perf_train_step.py --quick
    PYTHONPATH=src python benchmarks/bench_perf_train_step.py --output results.json

A compute-dtype section (ISSUE 5) compares the same quantized step at
float64 (the bit-exact default) and float32 (`model.to(np.float32)` plus
float32 inputs): a tolerance harness first checks that deterministic f32
losses track the f64 losses (the f32 run is a rounding of the same
computation, not a different one), then the f32 step must beat the f64
baseline for the MLP and transformer configurations -- the float64-BLAS
bound called out by ROADMAP's PR 2 follow-up.

Exit status is non-zero if the equivalence harness fails, if the standard
CNN configuration shows less than 2x end-to-end speedup, if pooled noise
does not improve 1M-element stochastic quantization by at least 2x over the
per-call `Generator.integers` path, or if the float32 compute mode fails to
beat the float64 step on the MLP/transformer gates.
"""

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro import nn
from repro.core import kernels
from repro.core.bfp import BFPConfig, bfp_quantize_tensor
from repro.core.kernels import bfp_quantize_fast, bfp_quantize_reference
from repro.core.rounding import NoisePool
from repro.hardware.fmac import fmac_dot_product, fmac_dot_product_reference
from repro.models.mlp import MLP
from repro.models.transformer import Seq2SeqTransformer
from repro.nn import functional as F
from repro.nn.losses import cross_entropy, sequence_cross_entropy
from repro.nn.quantized import QuantizedConv2d, QuantizedLinear
from repro.training.schedules import FASTSchedule, FixedBFPSchedule

from bench_utils import print_banner, print_rows

STANDARD_CONFIG = "cnn"
STANDARD_SCHEME = "bfp4_stochastic"
SPEEDUP_GATE = 2.0
NOISE_POOL_GATE = 2.0
#: float32-vs-float64 quantized step: the configs ROADMAP called "dominated
#: by float64 BLAS matmuls" must run faster in float32 than the f64 baseline.
#: The transformer gate runs a BLAS-bound size (embed 64, batch 16, seq 24);
#: the tiny fast-vs-uncached transformer is per-op-overhead-bound and its
#: dtype ratio is noise.
F32_GATE_CONFIGS = ("mlp", "transformer_big")
F32_SPEEDUP_GATE = 1.1
#: Deterministic f32 losses must track the f64 losses this tightly.  BFP
#: quantization makes the comparison discontinuous -- one float32 rounding
#: that flips a quantization bucket compounds over steps -- so the margin is
#: loose: measured worst deviation is ~4e-3 on the 5-step transformer_big
#: trajectory (MLP stays ~1e-7).
F32_LOSS_RTOL = 2e-2
#: PR-1 recorded time for stochastic-Generator quantization of 1M float32
#: (benchmarks/results/perf_quantization.json); the pool must beat half of it.
PR1_STOCHASTIC_MS = 17.0
#: Generator-path time on the machine that produced the committed JSONs,
#: used to normalize the absolute budget for slower/faster machines (the
#: generator path is unchanged code, so its time is a pure speed probe).
REFERENCE_GENERATOR_MS = 13.0


# --------------------------------------------------------------------------- #
# Fast-path switches
# --------------------------------------------------------------------------- #
def set_fast_path(enabled: bool) -> None:
    """Toggle every step-level cache this PR introduced.

    The *uncached* arm is the step as it ran before the fast path existed:
    layout re-derivation per conversion, im2col indices rebuilt per call,
    einsum convolution products, `np.add.at` scatter, per-call noise draws.
    """
    kernels.set_layout_cache_enabled(enabled)
    F.set_im2col_cache_enabled(enabled)
    F.set_conv_fast_path_enabled(enabled)
    kernels.default_layout_cache().clear()
    F.clear_im2col_cache()


# --------------------------------------------------------------------------- #
# Training configurations
# --------------------------------------------------------------------------- #
def build_cnn(seed: int = 0, dtype=None):
    rng = np.random.default_rng(seed)
    model = nn.Sequential(
        QuantizedConv2d(3, 32, 3, padding=1, rng=rng),
        nn.ReLU(), nn.MaxPool2d(2),
        QuantizedConv2d(32, 64, 3, padding=1, rng=rng),
        nn.ReLU(), nn.MaxPool2d(2),
        nn.Flatten(),
        QuantizedLinear(64 * 8 * 8, 10, rng=rng),
    )
    data = np.random.default_rng(seed + 1)
    inputs = data.standard_normal((32, 3, 32, 32))
    labels = data.integers(0, 10, size=32)
    if dtype is not None:
        model.to(dtype)
        inputs = inputs.astype(dtype)
    return model, lambda m: cross_entropy(m(inputs), labels)


def build_mlp(seed: int = 0, dtype=None):
    rng = np.random.default_rng(seed)
    model = MLP(784, [256, 128], 10, rng=rng)
    data = np.random.default_rng(seed + 1)
    inputs = data.standard_normal((64, 784))
    labels = data.integers(0, 10, size=64)
    if dtype is not None:
        model.to(dtype)
        inputs = inputs.astype(dtype)
    return model, lambda m: cross_entropy(m(inputs), labels)


def build_transformer(seed: int = 0, dtype=None):
    rng = np.random.default_rng(seed)
    model = Seq2SeqTransformer(vocab_size=50, embed_dim=32, num_heads=2,
                               num_encoder_layers=1, num_decoder_layers=1,
                               max_length=16, rng=rng)
    if dtype is not None:
        model.to(dtype)
    data = np.random.default_rng(seed + 1)
    sources = data.integers(1, 50, size=(8, 12))
    targets_in = data.integers(1, 50, size=(8, 12))
    targets_out = data.integers(1, 50, size=(8, 12))
    return model, lambda m: sequence_cross_entropy(m(sources, targets_in), targets_out,
                                                   pad_index=0)


def build_transformer_big(seed: int = 0, dtype=None):
    """A BLAS-dominated transformer (the float32 compute-mode gate config)."""
    rng = np.random.default_rng(seed)
    model = Seq2SeqTransformer(vocab_size=50, embed_dim=64, num_heads=4,
                               num_encoder_layers=2, num_decoder_layers=2,
                               max_length=26, rng=rng)
    if dtype is not None:
        model.to(dtype)
    data = np.random.default_rng(seed + 1)
    sources = data.integers(1, 50, size=(16, 24))
    targets_in = data.integers(1, 50, size=(16, 24))
    targets_out = data.integers(1, 50, size=(16, 24))
    return model, lambda m: sequence_cross_entropy(m(sources, targets_in), targets_out,
                                                   pad_index=0)


CONFIG_BUILDERS = {
    "cnn": build_cnn,
    "mlp": build_mlp,
    "transformer": build_transformer,
    "transformer_big": build_transformer_big,
}


def build_schedule(scheme: str, noise_pool: bool, total_iterations: int):
    config = BFPConfig(exponent_bits=8, group_size=16)
    if scheme == "bfp4_nearest":
        return FixedBFPSchedule(4, config=config, stochastic_gradients=False,
                                seed=0, noise_pool=noise_pool)
    if scheme == "bfp4_stochastic":
        return FixedBFPSchedule(4, config=config, stochastic_gradients=True,
                                seed=0, noise_pool=noise_pool)
    if scheme == "fast_adaptive":
        return FASTSchedule(config=config, stochastic_gradients=True,
                            evaluation_interval=4, seed=0, noise_pool=noise_pool)
    raise ValueError(f"unknown scheme {scheme!r}")


def run_training(config: str, scheme: str, steps: int, fast: bool,
                 collect_losses: bool = False, stochastic_override=None,
                 dtype=None):
    """Run `steps` optimization steps; returns (median_step_seconds, losses).

    ``dtype=np.float32`` runs the whole step -- forward, backward, quantize
    kernels, optimizer -- in float32 (models are built at float64 and cast,
    so both dtypes start from the identical weight stream).
    """
    set_fast_path(fast)
    model, loss_fn = CONFIG_BUILDERS[config](seed=0, dtype=dtype)
    schedule = build_schedule(scheme, noise_pool=fast, total_iterations=steps)
    if stochastic_override is not None:
        schedule.stochastic_gradients = stochastic_override
    schedule.prepare(model, steps)
    optimizer = nn.SGD(model.parameters(), lr=0.01)
    losses = []
    times = []
    # One untimed warmup step primes every cache (and the uncached arm's
    # allocator) so the timed region measures steady-state iterations.
    for step in range(steps + 1):
        schedule.on_iteration(max(step - 1, 0))
        start = time.perf_counter()
        loss = loss_fn(model)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        elapsed = time.perf_counter() - start
        if step > 0:
            times.append(elapsed)
            if collect_losses:
                losses.append(loss.item())
        elif collect_losses:
            losses.append(loss.item())
    return float(np.median(times)), losses


# --------------------------------------------------------------------------- #
# Equivalence harness
# --------------------------------------------------------------------------- #
def verify_layout_cache() -> None:
    rng = np.random.default_rng(11)
    cases = [
        ((7, 130), 16, -1), ((4, 64), 16, -1), ((3, 5, 17), 8, -1),
        ((33,), 16, -1), ((6, 50), 16, 0), ((2, 3, 40), 17, 1),
    ]
    for shape, group_size, axis in cases:
        for dtype in (np.float32, np.float64):
            values = rng.standard_normal(shape).astype(dtype)
            kernels.set_layout_cache_enabled(True)
            kernels.default_layout_cache().clear()
            first = bfp_quantize_fast(values, 4, group_size, 8, "nearest", axis=axis)
            second = bfp_quantize_fast(values, 4, group_size, 8, "nearest", axis=axis)
            kernels.set_layout_cache_enabled(False)
            uncached = bfp_quantize_fast(values, 4, group_size, 8, "nearest", axis=axis)
            assert np.array_equal(first, uncached), (shape, dtype, axis, "cached != uncached")
            assert np.array_equal(first, second), (shape, dtype, axis, "cache hit changed result")
    kernels.set_layout_cache_enabled(True)


def verify_noise_pool() -> None:
    # Partition invariance: the pooled stream does not depend on draw shapes,
    # including draws that straddle a refill boundary.
    pool_a = NoisePool(42, capacity=512)
    pool_b = NoisePool(42, capacity=512)
    stream_a = np.concatenate([pool_a.uniform((300,)).ravel(),
                               pool_a.uniform((300,)).ravel(),
                               pool_a.uniform((1100,)).ravel()])
    stream_b = np.concatenate([pool_b.uniform((137,)).ravel(),
                               pool_b.uniform((1563,)).ravel()])
    assert np.array_equal(stream_a, stream_b), "NoisePool stream depends on partitioning"
    # Fast vs. reference quantization with equal pooled sources is bit-exact.
    values = np.random.default_rng(5).standard_normal(4096)
    fast = bfp_quantize_fast(values, 4, 16, 8, "stochastic", rng=NoisePool(7))
    ref = bfp_quantize_reference(values, 4, 16, 8, "stochastic", rng=NoisePool(7))
    assert np.array_equal(fast, ref), "pooled stochastic path not seed-reproducible"


def verify_fmac() -> None:
    rng = np.random.default_rng(3)
    for size, bits_a, bits_b in [(64, 4, 4), (33, 2, 4), (100, 4, 2)]:
        a = bfp_quantize_tensor(rng.standard_normal(size), mantissa_bits=bits_a,
                                group_size=16, exponent_bits=8)
        b = bfp_quantize_tensor(rng.standard_normal(size), mantissa_bits=bits_b,
                                group_size=16, exponent_bits=8)
        fast = fmac_dot_product(a, b)
        ref = fmac_dot_product_reference(a, b)
        assert fast.value == ref.value and fast.passes == ref.passes, (size, bits_a, bits_b)


def verify_training_equivalence(steps: int) -> float:
    """Deterministic fast-vs-uncached training runs must agree tightly.

    The BLAS convolution products accumulate in a different (blocked) order
    than einsum, so this comparison is allclose rather than bit-equal;
    everything else on the fast path is bit-exact.  Returns the worst
    relative loss deviation observed.
    """
    worst = 0.0
    for config in ("cnn", "mlp"):
        for scheme in ("bfp4_nearest", "fast_adaptive"):
            _, fast_losses = run_training(config, scheme, steps, fast=True,
                                          collect_losses=True, stochastic_override=False)
            _, slow_losses = run_training(config, scheme, steps, fast=False,
                                          collect_losses=True, stochastic_override=False)
            fast_arr, slow_arr = np.asarray(fast_losses), np.asarray(slow_losses)
            assert np.allclose(fast_arr, slow_arr, rtol=1e-6, atol=1e-9), (
                config, scheme, fast_losses, slow_losses)
            deviation = float(np.max(np.abs(fast_arr - slow_arr)
                                     / np.maximum(np.abs(slow_arr), 1e-12)))
            worst = max(worst, deviation)
    return worst


def verify_compute_dtype(steps: int) -> float:
    """Deterministic float32 runs must track the float64 losses.

    Both runs execute the same quantized computation from the same initial
    weights; the only difference is rounding at float32.  Single-step losses
    agree to float32 precision, but a rounding that flips a BFP quantization
    bucket compounds across steps, so multi-step trajectories are checked
    against the loose ``F32_LOSS_RTOL`` rather than float32 epsilon.
    Returns the worst relative loss deviation observed.
    """
    worst = 0.0
    for config in F32_GATE_CONFIGS:
        _, f64_losses = run_training(config, "bfp4_nearest", steps, fast=True,
                                     collect_losses=True, stochastic_override=False)
        _, f32_losses = run_training(config, "bfp4_nearest", steps, fast=True,
                                     collect_losses=True, stochastic_override=False,
                                     dtype=np.float32)
        f64_arr, f32_arr = np.asarray(f64_losses), np.asarray(f32_losses)
        assert np.allclose(f32_arr, f64_arr, rtol=F32_LOSS_RTOL, atol=1e-6), (
            config, f32_losses, f64_losses)
        deviation = float(np.max(np.abs(f32_arr - f64_arr)
                                 / np.maximum(np.abs(f64_arr), 1e-12)))
        worst = max(worst, deviation)
    return worst


def bench_compute_dtype(cases, steps: int):
    """Time the float64 vs. float32 quantized step (fast path on for both)."""
    results = []
    for config, scheme in cases:
        f64_s, _ = run_training(config, scheme, steps, fast=True)
        f32_s, _ = run_training(config, scheme, steps, fast=True, dtype=np.float32)
        results.append({
            "config": config,
            "scheme": scheme,
            "steps": steps,
            "float64_ms_per_step": f64_s * 1e3,
            "float32_ms_per_step": f32_s * 1e3,
            "speedup": f64_s / f32_s,
        })
    return results


# --------------------------------------------------------------------------- #
# Noise-pool micro-benchmark (the PR-1 stochastic-Generator bound)
# --------------------------------------------------------------------------- #
def bench_noise_pool(repeats: int):
    rng = np.random.default_rng(1234)
    values = (rng.standard_normal(1_000_000)
              * 10.0 ** rng.integers(-2, 3, size=1_000_000)).astype(np.float32)

    def best(fn):
        fn()
        return min(timed(fn) for _ in range(repeats))

    def timed(fn):
        start = time.perf_counter()
        fn()
        return time.perf_counter() - start

    generator_s = best(lambda: bfp_quantize_fast(values, 4, 16, 8, "stochastic",
                                                 rng=np.random.default_rng(0)))
    pool = NoisePool(0, capacity=1 << 21)
    pooled_s = best(lambda: bfp_quantize_fast(values, 4, 16, 8, "stochastic", rng=pool))
    return {
        "size": 1_000_000,
        "generator_ms": generator_s * 1e3,
        "pooled_ms": pooled_s * 1e3,
        "speedup": generator_s / pooled_s,
    }


# --------------------------------------------------------------------------- #
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced matrix + regression gates for CI")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).parent / "results" / "perf_train_step.json")
    parser.add_argument("--steps", type=int, default=None,
                        help="timed optimization steps per case")
    args = parser.parse_args(argv)

    print_banner("Quantized training step: fast path vs. uncached")

    equivalence_steps = 3 if args.quick else 5
    verify_layout_cache()
    verify_noise_pool()
    verify_fmac()
    worst_deviation = verify_training_equivalence(equivalence_steps)
    set_fast_path(True)
    worst_f32_deviation = verify_compute_dtype(equivalence_steps)
    set_fast_path(True)
    print(f"equivalence harness: PASS (layout cache/noise pool/fmac bit-exact; "
          f"deterministic training worst relative loss deviation {worst_deviation:.2e}; "
          f"f32-vs-f64 worst relative loss deviation {worst_f32_deviation:.2e})")

    if args.quick:
        steps = args.steps or 6
        cases = [("cnn", "bfp4_stochastic"), ("mlp", "bfp4_stochastic")]
        dtype_cases = [(config, "bfp4_stochastic") for config in F32_GATE_CONFIGS]
        noise_repeats = 3
    else:
        steps = args.steps or 10
        cases = [(config, scheme)
                 for config in ("cnn", "mlp", "transformer")
                 for scheme in ("bfp4_nearest", "bfp4_stochastic", "fast_adaptive")]
        dtype_cases = [(config, "bfp4_stochastic")
                       for config in ("cnn", "mlp", "transformer_big")]
        noise_repeats = 7

    results = []
    for config, scheme in cases:
        fast_s, _ = run_training(config, scheme, steps, fast=True)
        slow_s, _ = run_training(config, scheme, steps, fast=False)
        results.append({
            "config": config,
            "scheme": scheme,
            "steps": steps,
            "fast_ms_per_step": fast_s * 1e3,
            "uncached_ms_per_step": slow_s * 1e3,
            "speedup": slow_s / fast_s,
        })
    set_fast_path(True)

    dtype_results = bench_compute_dtype(dtype_cases, steps)
    set_fast_path(True)

    noise = bench_noise_pool(noise_repeats)

    rows = [(r["config"], r["scheme"], f"{r['uncached_ms_per_step']:.1f}",
             f"{r['fast_ms_per_step']:.1f}", f"{r['speedup']:.2f}x") for r in results]
    print_rows(["config", "scheme", "uncached (ms/step)", "fast (ms/step)", "speedup"],
               rows, title=f"End-to-end training step (median of {steps} steps)")
    dtype_rows = [(r["config"], r["scheme"], f"{r['float64_ms_per_step']:.1f}",
                   f"{r['float32_ms_per_step']:.1f}", f"{r['speedup']:.2f}x")
                  for r in dtype_results]
    print()
    print_rows(["config", "scheme", "float64 (ms/step)", "float32 (ms/step)", "speedup"],
               dtype_rows,
               title=f"Compute dtype: quantized step at f64 vs. f32 (fast path on)")
    print(f"\nstochastic noise @1M float32: generator {noise['generator_ms']:.1f} ms, "
          f"pooled {noise['pooled_ms']:.1f} ms ({noise['speedup']:.2f}x)")

    report = {
        "benchmark": "bench_perf_train_step",
        "mode": "quick" if args.quick else "full",
        "steps": steps,
        "numpy": np.__version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "equivalence": "pass",
        "worst_relative_loss_deviation": worst_deviation,
        "noise_pool": noise,
        "results": results,
        "compute_dtype": {
            "loss_rtol": F32_LOSS_RTOL,
            "worst_relative_loss_deviation": worst_f32_deviation,
            "speedup_gate": F32_SPEEDUP_GATE,
            "gate_configs": list(F32_GATE_CONFIGS),
            "results": dtype_results,
        },
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.output}")

    failed = False
    standard = next(r for r in results
                    if r["config"] == STANDARD_CONFIG and r["scheme"] == STANDARD_SCHEME)
    print(f"standard ({STANDARD_CONFIG}, {STANDARD_SCHEME}) speedup: "
          f"{standard['speedup']:.2f}x (gate {SPEEDUP_GATE:.1f}x)")
    if standard["speedup"] < SPEEDUP_GATE:
        print("FAIL: end-to-end step speedup below the gate", file=sys.stderr)
        failed = True
    # The pool passes if it doubles the measured per-call-Generator time on
    # this machine, or beats half the PR-1 recorded number (~17 ms) within
    # an absolute budget scaled by machine speed.  The concurrently measured
    # generator time is the speed probe (same code as PR 1's fast path), so
    # a slower CI runner gets a proportionally larger budget instead of a
    # spurious red.
    machine_scale = max(1.0, noise["generator_ms"] / REFERENCE_GENERATOR_MS)
    budget_ms = (PR1_STOCHASTIC_MS / NOISE_POOL_GATE) * machine_scale
    absolute_ok = noise["pooled_ms"] <= budget_ms
    ratio_ok = noise["speedup"] >= NOISE_POOL_GATE
    print(f"noise pool: {noise['speedup']:.2f}x vs. generator "
          f"(gate {NOISE_POOL_GATE:.1f}x), {noise['pooled_ms']:.1f} ms "
          f"(budget {budget_ms:.1f} ms vs. PR-1's {PR1_STOCHASTIC_MS:.0f} ms)")
    if not (absolute_ok or ratio_ok):
        print("FAIL: pooled noise below the gate on 1M stochastic quantization",
              file=sys.stderr)
        failed = True
    for row in dtype_results:
        if row["config"] not in F32_GATE_CONFIGS:
            continue
        print(f"float32 compute ({row['config']}, {row['scheme']}): "
              f"{row['speedup']:.2f}x vs. float64 (gate {F32_SPEEDUP_GATE:.1f}x)")
        if row["speedup"] < F32_SPEEDUP_GATE:
            print(f"FAIL: float32 step slower than the gate on {row['config']}",
                  file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
