"""Figure 18 -- BFP sensitivity to group size and mantissa bitwidth.

The paper sweeps g in {8, 16, 32} and m in {2, 3, 4, 5} and reports the best
ResNet-18 validation accuracy for each configuration: accuracy improves with
more mantissa bits and degrades with larger groups, with (g=16, m=4) chosen
as the operating point.  We reproduce the sweep two ways:

* a trained sweep on the synthetic vision task (the accuracy surface), and
* a training-free quantization-SNR sweep on mid-training gradient-like
  tensors (the mechanism behind the accuracy surface).
"""

import numpy as np

from bench_utils import print_banner, print_rows, train_mlp_classifier
from repro.analysis import quantization_snr_sweep, sweep_table
from repro.core.bfp import BFPConfig
from repro.training import FixedBFPSchedule

GROUP_SIZES = (8, 16, 32)
MANTISSA_BITS = (2, 3, 4, 5)

#: Approximate values read off Figure 18 (best ResNet-18 accuracy, %).
PAPER_FIG18 = {
    (8, 2): 65.1, (8, 3): 68.0, (8, 4): 68.6, (8, 5): 68.6,
    (16, 2): 63.1, (16, 3): 68.1, (16, 4): 68.5, (16, 5): 68.6,
    (32, 2): 63.0, (32, 3): 67.3, (32, 4): 68.4, (32, 5): 68.5,
}


def test_fig18_accuracy_sweep(benchmark, vision_task):
    measured = {}
    for group_size in GROUP_SIZES:
        for bits in MANTISSA_BITS:
            config = BFPConfig(mantissa_bits=bits, group_size=group_size, exponent_bits=3)
            schedule = FixedBFPSchedule(bits, config=config)
            result = train_mlp_classifier(schedule, vision_task, epochs=3, seed=0)
            measured[(group_size, bits)] = result.best_val_metric

    benchmark.pedantic(
        lambda: train_mlp_classifier(FixedBFPSchedule(4), vision_task, epochs=1, seed=1),
        rounds=1, iterations=1,
    )

    print_banner("Figure 18: best validation accuracy per (group size, mantissa bits)")
    rows = []
    for group_size in GROUP_SIZES:
        for bits in MANTISSA_BITS:
            rows.append([group_size, bits, measured[(group_size, bits)], PAPER_FIG18[(group_size, bits)]])
    print_rows(["g", "m", "measured acc % (synthetic)", "paper acc % (ResNet-18)"], rows)

    # Shape of the figure: more mantissa bits never hurt much, and m=2 is the
    # clearly degraded column for every group size.
    for group_size in GROUP_SIZES:
        best_wide = max(measured[(group_size, bits)] for bits in (4, 5))
        assert best_wide >= measured[(group_size, 2)] - 5.0


def test_fig18_snr_mechanism(benchmark):
    """The quantization-SNR surface behind Figure 18 (training-free proxy)."""
    rng = np.random.default_rng(0)
    gradients = np.exp(rng.normal(-6, 2.5, size=(64, 256))) * rng.choice([-1, 1], size=(64, 256))
    points = benchmark(lambda: quantization_snr_sweep(gradients, GROUP_SIZES, MANTISSA_BITS))
    table = sweep_table(points)

    print_banner("Figure 18 (mechanism): BFP quantization SNR per (g, m) on gradient-like data")
    print_rows(["g", "m", "SNR (dB)"],
               [[g, m, table[(g, m)]] for g in GROUP_SIZES for m in MANTISSA_BITS])

    for group_size in GROUP_SIZES:
        snrs = [table[(group_size, bits)] for bits in MANTISSA_BITS]
        assert snrs == sorted(snrs)  # more mantissa bits -> higher SNR
    for bits in MANTISSA_BITS:
        assert table[(8, bits)] >= table[(32, bits)]  # larger groups -> lower SNR
