"""Performance benchmark: KV-cached generation + continuous batching.

PR 9 added the sequence-generation tier (``repro.serving.generation``):
incremental decode over a packed-BFP KV cache and a continuous-batching
``GenerationServer``.  This benchmark measures what each layer buys:

* **KV-cached decode vs. full recompute** -- per-token cost of the
  incremental ``decode_step`` path against re-running the decoder over the
  whole prefix every step (the O(T^2) legacy path), at several sequence
  lengths.  Gate: >= 3x faster at T=64.
* **Continuous vs. static bucketed batching** -- the same mixed-length
  open-loop request stream (``loadgen.GenerationLoadGenerator``) served by
  the continuous-batching ``GenerationServer`` and by a static baseline
  that decodes fixed batches to completion (both KV-cached, so the gate
  isolates *scheduling*, not cache reuse).  Gate: >= 1.5x tokens/sec.
* **Quantized KV cache** -- per-step logit divergence of a BFP-grid cache
  against the exact cache across mantissa widths, plus the cache-memory
  table (bytes/token per storage format).

An equivalence harness runs first -- timings of a wrong decode path are
worthless: KV-cached greedy decode must be **token-identical** to the
legacy full-recompute decode (quantization off, float64 and float32), and
the continuous-batching server's tokens must match solo decodes of the
same prompts.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_generation.py
    PYTHONPATH=src python benchmarks/bench_perf_generation.py --quick
    PYTHONPATH=src python benchmarks/bench_perf_generation.py --output out.json

Exit status is non-zero if the equivalence harness fails or either
performance gate is missed.
"""

import argparse
import json
import platform
import queue
import sys
import threading
import time
from concurrent.futures import Future
from pathlib import Path

import numpy as np

from repro.core.bfp import BFPConfig
from repro.models import transformer_small
from repro.serving import (
    GenerationConfig,
    GenerationResult,
    GenerationServer,
    GenerationTiming,
    KVCacheManager,
    SequenceLoad,
    freeze,
)
from repro.serving.frozen import ActivationQuantizer
from repro.serving.loadgen import GenerationLoadGenerator
from repro.training.schedules import FixedBFPSchedule

from bench_utils import best_of, print_banner, print_rows

BFP_CONFIG = BFPConfig(exponent_bits=8, group_size=16)
BOS, EOS = 1, 2
#: Incremental decode must beat full recompute by this factor at T=64.
DECODE_SPEEDUP_GATE = 3.0
DECODE_LENGTHS = (16, 32, 64)
#: Continuous batching must beat static bucketed batching by this factor
#: in delivered tokens/sec on the mixed-length open-loop stream.
BATCHING_GATE = 1.5
#: The mixed-length request stream: many short sequences stuck behind few
#: long ones is exactly the shape static batching handles worst.
SHORT_NEW_TOKENS, LONG_NEW_TOKENS = 4, 40
MAX_ACTIVE = 8


def frozen_seq2seq(vocab=50, max_length=96, seed=11):
    model = transformer_small(vocab_size=vocab, max_length=max_length,
                              rng=np.random.default_rng(seed))
    FixedBFPSchedule(4, config=BFP_CONFIG, stochastic_gradients=False,
                     seed=0).prepare(model, 1)
    model.eval()
    return freeze(model, meta={"bos_index": BOS, "eos_index": EOS})


# --------------------------------------------------------------------------- #
# Equivalence harness
# --------------------------------------------------------------------------- #
def verify_generation(rng) -> None:
    frozen = frozen_seq2seq(max_length=24)
    root = frozen.root
    src = rng.integers(3, 50, size=(5, 10))
    reference = root.greedy_decode(src, BOS, EOS)
    assert np.array_equal(root.greedy_decode_cached(src, BOS, EOS), reference), \
        "KV-cached greedy decode diverges from full recompute (float64)"
    assert np.array_equal(
        root.greedy_decode(src, BOS, EOS, early_retirement=False), reference), \
        "early retirement changes legacy greedy decode tokens"
    root32 = frozen_seq2seq(max_length=24).cast(np.float32).root
    assert np.array_equal(root32.greedy_decode_cached(src, BOS, EOS),
                          root32.greedy_decode(src, BOS, EOS)), \
        "KV-cached greedy decode diverges from full recompute (float32)"
    # Continuous batching must not perturb any sequence's tokens.
    prompts = [rng.integers(3, 50, size=int(rng.integers(5, 11)))
               for _ in range(6)]
    caps = [4, 16, 7, 16, 5, 11]
    with GenerationServer(frozen, GenerationConfig(max_active=3)) as server:
        futures = [server.submit(p, max_new_tokens=c)
                   for p, c in zip(prompts, caps)]
        batched = [f.result(timeout=120).tokens for f in futures]
    for prompt, cap, tokens in zip(prompts, caps, batched):
        row = root.greedy_decode_cached(prompt[None], BOS, EOS,
                                        max_length=cap + 1)[0]
        eos_hits = np.flatnonzero(row == EOS)
        stop = eos_hits[0] + 1 if eos_hits.size else row.shape[0]
        assert np.array_equal(tokens, row[:stop]), \
            "continuous batching perturbed a sequence's tokens"


# --------------------------------------------------------------------------- #
# KV-cached decode vs. full recompute
# --------------------------------------------------------------------------- #
def _rollout_cached(root, src, steps: int) -> float:
    """Wall time of a forced ``steps``-token incremental rollout."""
    start = time.perf_counter()
    _, memory_kv = root.prefill(src)
    cache = root.start_cache()
    batch = src.shape[0]
    tokens = np.full(batch, BOS, dtype=np.int64)
    for step in range(steps):
        logits = root.decode_step(tokens, np.full(batch, step, dtype=np.int64),
                                  cache, memory_kv)
        tokens = logits.argmax(axis=-1)
    return time.perf_counter() - start


def _rollout_recompute(root, src, steps: int) -> float:
    """Wall time of the same rollout re-decoding the full prefix per step."""
    start = time.perf_counter()
    memory = root.encode(src)
    memory_kv = root.memory_kv(memory)
    generated = np.full((src.shape[0], 1), BOS, dtype=np.int64)
    for _ in range(steps):
        decoded = root.decode(generated, memory, memory_kv=memory_kv)
        logits = root.output_projection.run(decoded)[:, -1, :]
        generated = np.concatenate(
            [generated, logits.argmax(axis=-1)[:, None]], axis=1)
    return time.perf_counter() - start


def bench_decode_speedup(batch: int, rng) -> dict:
    """Forced fixed-length rollouts so T is controlled (greedy EOS would
    stop both paths at the same data-dependent step).  Both paths emit
    bit-identical tokens, so the comparison is pure scheduling/asymptotics."""
    root = frozen_seq2seq().root
    src = rng.integers(3, 50, size=(batch, 12))
    # Warm layout/index caches on both paths before timing.
    _rollout_cached(root, src, 4)
    _rollout_recompute(root, src, 4)

    points = []
    for steps in DECODE_LENGTHS:
        def measure(steps=steps):
            recompute_s = _rollout_recompute(root, src, steps)
            cached_s = _rollout_cached(root, src, steps)
            return {"steps": steps,
                    "cached_ms": cached_s * 1e3,
                    "recompute_ms": recompute_s * 1e3,
                    "cached_ms_per_token": cached_s * 1e3 / steps,
                    "recompute_ms_per_token": recompute_s * 1e3 / steps,
                    "speedup": recompute_s / cached_s}

        gated = steps >= 64
        best, attempts = best_of(
            measure, attempts=3 if gated else 1,
            key=lambda point: point["speedup"],
            good_enough=(lambda s: s >= DECODE_SPEEDUP_GATE) if gated else None,
            label=f"decode speedup T={steps}" if gated else None)
        best["attempts"] = len(attempts)
        points.append(best)
    return {"batch": batch, "points": points,
            "gate": DECODE_SPEEDUP_GATE,
            "gated_speedup": points[-1]["speedup"]}


# --------------------------------------------------------------------------- #
# Static bucketed batching baseline
# --------------------------------------------------------------------------- #
class StaticBucketServer:
    """Static batching over the same KV-cached decode primitive.

    Requests are bucketed by source length (no padding path in the
    encoder), and each batch decodes **to completion** before the next
    starts -- every member waits for the slowest, and nothing joins
    mid-flight.  This is the strongest static baseline the repo can field:
    it shares the O(T) cached decode, so the continuous-batching gate
    measures scheduling alone.
    """

    def __init__(self, model, batch_size: int = MAX_ACTIVE):
        self.root = model.root
        self.batch_size = batch_size
        self._queue: "queue.Queue" = queue.Queue()
        self._buckets = {}
        self._closed = False
        self._worker = threading.Thread(target=self._run, daemon=True)
        self._worker.start()

    def submit(self, prompt, max_new_tokens: int) -> "Future[GenerationResult]":
        future = Future()
        self._queue.put((np.asarray(prompt, dtype=np.int64), int(max_new_tokens),
                         future, time.monotonic()))
        return future

    def _drain_queue(self) -> None:
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is None:
                self._closed = True
                return
            self._buckets.setdefault(item[0].shape[0], []).append(item)

    def _run(self) -> None:
        while True:
            self._drain_queue()
            if not any(self._buckets.values()):
                if self._closed:
                    return
                try:
                    item = self._queue.get(timeout=0.05)
                except queue.Empty:
                    continue
                if item is None:
                    self._closed = True
                    continue
                self._buckets.setdefault(item[0].shape[0], []).append(item)
                continue
            # Oldest-first across buckets, whole bucket batches first.
            length = min(self._buckets,
                         key=lambda k: self._buckets[k][0][3] if self._buckets[k]
                         else float("inf"))
            batch = self._buckets[length][:self.batch_size]
            self._buckets[length] = self._buckets[length][self.batch_size:]
            self._decode_batch(batch)

    def _decode_batch(self, batch) -> None:
        src = np.stack([item[0] for item in batch])
        caps = [item[1] for item in batch]
        started = time.monotonic()
        rows = self.root.greedy_decode_cached(src, BOS, EOS,
                                              max_length=1 + max(caps))
        done = time.monotonic()
        for (prompt, cap, future, submitted), row in zip(batch, rows):
            eos_hits = np.flatnonzero(row == EOS)
            stop = min(eos_hits[0] + 1 if eos_hits.size else row.shape[0],
                       cap + 1)
            tokens = row[:stop]
            reason = "eos" if tokens[-1] == EOS else "length"
            # Nothing streams: the first token is only *delivered* when the
            # whole batch finishes, which is static batching's TTFT story.
            future.set_result(GenerationResult(
                tokens=tokens,
                timing=GenerationTiming(
                    queue_ms=(started - submitted) * 1e3,
                    prefill_ms=0.0,
                    ttft_ms=(done - submitted) * 1e3,
                    total_ms=(done - submitted) * 1e3,
                    steps=tokens.shape[0] - 1,
                    finish_reason=reason)))

    def close(self) -> None:
        self._queue.put(None)
        self._worker.join(timeout=300)


# --------------------------------------------------------------------------- #
# Continuous vs. static batching under mixed-length open-loop load
# --------------------------------------------------------------------------- #
def _mixed_load(rng):
    """Short-heavy mix of generation lengths over one source length.

    Source lengths are known at submit time, so static batching buckets
    them away; *output* lengths are not -- a static batch must run until
    its slowest member finishes, paying full batch width for rows that
    finished (or hit their cap) long ago.  That is the inefficiency
    continuous batching removes, so the mix keeps source length uniform
    and varies the generation budget."""
    prompts = tuple(rng.integers(3, 50, size=8) for _ in range(16))
    return (
        SequenceLoad(prompts=prompts[:8], max_new_tokens=SHORT_NEW_TOKENS,
                     weight=2.0),
        SequenceLoad(prompts=prompts[8:], max_new_tokens=LONG_NEW_TOKENS,
                     weight=1.0),
    )


def _report_point(report, extra=None) -> dict:
    point = {
        "offered_qps": report.offered_qps,
        "sent": report.sent,
        "completed": report.completed,
        "failed": report.failed,
        "tokens_generated": report.tokens_generated,
        "tokens_per_second": report.tokens_per_second,
        "ttft_ms_p50": report.ttft_ms_p50,
        "ttft_ms_p95": report.ttft_ms_p95,
        "latency_ms_p95": report.latency_ms_p95,
        "peak_concurrent_streams": report.peak_concurrent_streams,
    }
    if extra:
        point.update(extra)
    return point


def _run_continuous(frozen, mix, qps, duration_s, seed) -> dict:
    config = GenerationConfig(max_active=MAX_ACTIVE,
                              max_new_tokens=LONG_NEW_TOKENS)
    occupancy = []
    with GenerationServer(frozen, config) as server:
        stop = threading.Event()

        def poll():
            while not stop.is_set():
                stats = server.stats()
                occupancy.append((stats["cache"]["utilization"],
                                  stats["active_sequences"]))
                stop.wait(0.01)

        poller = threading.Thread(target=poll, daemon=True)
        poller.start()
        try:
            report = GenerationLoadGenerator(
                server.submit, mix, qps=qps, duration_s=duration_s,
                seed=seed, drain_timeout_s=300.0).run()
        finally:
            stop.set()
            poller.join(timeout=10)
        stats = server.stats()
    utilizations = [u for u, _ in occupancy] or [0.0]
    actives = [a for _, a in occupancy] or [0]
    return _report_point(report, extra={
        "mean_batch_per_step": stats["mean_batch_per_step"],
        "cache_utilization_peak": max(utilizations),
        "cache_utilization_mean": float(np.mean(utilizations)),
        "active_sequences_peak": int(max(actives)),
    })


def _run_static(frozen, mix, qps, duration_s, seed) -> dict:
    server = StaticBucketServer(frozen, batch_size=MAX_ACTIVE)
    try:
        report = GenerationLoadGenerator(
            server.submit, mix, qps=qps, duration_s=duration_s,
            seed=seed, drain_timeout_s=300.0).run()
    finally:
        server.close()
    return _report_point(report)


def bench_continuous_batching(duration_s: float, qps: float, rng) -> dict:
    frozen = frozen_seq2seq(max_length=48)
    mix = _mixed_load(rng)
    seeds = iter(range(40, 60))

    def measure():
        seed = next(seeds)
        continuous = _run_continuous(frozen, mix, qps, duration_s, seed)
        static = _run_static(frozen, mix, qps, duration_s, seed)
        return {"continuous": continuous, "static": static,
                "tokens_per_second_ratio":
                    continuous["tokens_per_second"] / static["tokens_per_second"]}

    best, attempts = best_of(
        measure, attempts=3,
        key=lambda result: result["tokens_per_second_ratio"],
        good_enough=lambda ratio: ratio >= BATCHING_GATE,
        label="continuous batching gate")
    best["gate"] = BATCHING_GATE
    best["attempts"] = len(attempts)
    best["offered_qps"] = qps
    best["duration_s"] = duration_s
    best["max_active"] = MAX_ACTIVE
    best["mix"] = {"short_new_tokens": SHORT_NEW_TOKENS,
                   "long_new_tokens": LONG_NEW_TOKENS,
                   "short_weight": 2.0, "long_weight": 1.0}
    return best


# --------------------------------------------------------------------------- #
# Quantized KV cache: divergence + memory per storage format
# --------------------------------------------------------------------------- #
def bench_quantized_cache(steps: int, rng) -> dict:
    root = frozen_seq2seq(max_length=max(DECODE_LENGTHS) + 8).root
    src = rng.integers(3, 50, size=(4, 12))
    _, memory_kv = root.prefill(src)

    # Reference rollout with the exact cache; forced tokens shared by all.
    exact = root.start_cache()
    generated = np.full((4, 1), BOS, dtype=np.int64)
    exact_logits = []
    for step in range(steps):
        logits = root.decode_step(generated[:, -1],
                                  np.full(4, step, dtype=np.int64),
                                  exact, memory_kv)
        exact_logits.append(logits)
        generated = np.concatenate(
            [generated, logits.argmax(axis=-1)[:, None]], axis=1)

    divergence = []
    for mantissa_bits in (8, 4, 2):
        grid = root.start_cache(
            quantizer=ActivationQuantizer(mantissa_bits, 16, 8))
        worst_mean = 0.0
        agree = 0
        for step in range(steps):
            logits = root.decode_step(generated[:, step],
                                      np.full(4, step, dtype=np.int64),
                                      grid, memory_kv)
            reference = exact_logits[step]
            worst_mean = max(worst_mean,
                             float(np.abs(logits - reference).mean()
                                   / np.abs(reference).mean()))
            agree += int((logits.argmax(-1) == reference.argmax(-1)).sum())
        divergence.append({"mantissa_bits": mantissa_bits,
                           "steps": steps,
                           "worst_mean_relative_error": worst_mean,
                           "argmax_agreement": agree / (steps * 4)})

    # Cache memory per storage format (per-token bytes + compression).
    first = root.decoder_layers[0].self_attention
    num_heads = first.num_heads
    head_dim = root.embed_dim // num_heads
    formats = []
    for label, dtype, quantizer in (
            ("float64", np.float64, None),
            ("float32", np.float32, None),
            ("bfp m=8", np.float64, ActivationQuantizer(8, 16, 8)),
            ("bfp m=4", np.float64, ActivationQuantizer(4, 16, 8)),
            ("bfp m=2", np.float64, ActivationQuantizer(2, 16, 8))):
        manager = KVCacheManager(len(root.decoder_layers), num_heads, head_dim,
                                 total_blocks=4, quantizer=quantizer,
                                 dtype=dtype)
        manager.reserve(0, 16)
        for step in range(16):
            manager.append_step([0], 0, rng.standard_normal((1, num_heads, 1, head_dim)),
                                rng.standard_normal((1, num_heads, 1, head_dim)))
            for layer in range(1, len(root.decoder_layers)):
                manager.append_step([0], layer,
                                    rng.standard_normal((1, num_heads, 1, head_dim)),
                                    rng.standard_normal((1, num_heads, 1, head_dim)))
        stats = manager.stats()
        formats.append({"format": label,
                        "bytes_per_token": stats.cache_bytes / stats.tokens_cached,
                        "compression_vs_fp32": stats.compression_vs_fp32})
    return {"divergence": divergence, "formats": formats}


# --------------------------------------------------------------------------- #
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="shorter load windows for CI")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).parent / "results" / "perf_generation.json")
    args = parser.parse_args(argv)

    print_banner("Sequence generation: KV-cached decode + continuous batching")
    rng = np.random.default_rng(1234)

    verify_generation(rng)
    print("equivalence harness: PASS (KV-cached greedy token-identical to full "
          "recompute in float64 and float32; continuous batching preserves "
          "every sequence's tokens)")

    # Batch 8: enough rows that BLAS work, not per-step Python dispatch,
    # dominates both paths -- the regime the asymptotic claim is about.
    batch = 8
    decode = bench_decode_speedup(batch, rng)
    print_rows(
        ["T (tokens)", "recompute (ms)", "cached (ms)", "recompute ms/tok",
         "cached ms/tok", "speedup"],
        [(str(p["steps"]), f"{p['recompute_ms']:.1f}", f"{p['cached_ms']:.1f}",
          f"{p['recompute_ms_per_token']:.2f}", f"{p['cached_ms_per_token']:.2f}",
          f"{p['speedup']:.2f}x")
         for p in decode["points"]],
        title=f"KV-cached decode vs. full recompute (batch {batch}, forced rollout)")

    # Offered load past both schedulers' capacity: tokens/sec at saturation
    # measures what each scheduler can *deliver*, not what was offered
    # (under-saturation makes every scheduler look identical).
    duration_s = 1.0 if args.quick else 2.5
    qps = 250.0 if args.quick else 300.0
    batching = bench_continuous_batching(duration_s, qps, rng)
    cont, stat = batching["continuous"], batching["static"]
    print_rows(
        ["scheduler", "tokens/s", "completed", "ttft p50 (ms)", "ttft p95 (ms)",
         "peak streams"],
        [("continuous", f"{cont['tokens_per_second']:.0f}",
          str(cont["completed"]), f"{cont['ttft_ms_p50']:.1f}",
          f"{cont['ttft_ms_p95']:.1f}", str(cont["peak_concurrent_streams"])),
         ("static bucketed", f"{stat['tokens_per_second']:.0f}",
          str(stat["completed"]), f"{stat['ttft_ms_p50']:.1f}",
          f"{stat['ttft_ms_p95']:.1f}", str(stat["peak_concurrent_streams"]))],
        title=(f"Mixed-length open-loop generation ({qps:.0f} seq/s offered, "
               f"{duration_s:.1f}s window, max_active={MAX_ACTIVE})"))
    print(f"cache occupancy (continuous): peak {cont['cache_utilization_peak']:.0%}, "
          f"mean {cont['cache_utilization_mean']:.0%}; mean batch/step "
          f"{cont['mean_batch_per_step']:.1f}")

    quantized = bench_quantized_cache(steps=8 if args.quick else 16, rng=rng)
    print_rows(
        ["mantissa bits", "worst mean rel err", "argmax agreement"],
        [(str(d["mantissa_bits"]), f"{d['worst_mean_relative_error']:.4f}",
          f"{d['argmax_agreement']:.0%}")
         for d in quantized["divergence"]],
        title="Quantized KV cache: per-step logit divergence vs. exact cache")
    print_rows(
        ["format", "bytes/token", "compression vs fp32"],
        [(f["format"], f"{f['bytes_per_token']:.0f}",
          f"{f['compression_vs_fp32']:.2f}x")
         for f in quantized["formats"]],
        title="KV cache memory per storage format (per cached token, all layers)")

    report = {
        "benchmark": "bench_perf_generation",
        "mode": "quick" if args.quick else "full",
        "numpy": np.__version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "equivalence": "pass",
        "decode": decode,
        "batching": batching,
        "quantized_cache": quantized,
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.output}")

    print(f"KV-cached decode speedup at T=64: {decode['gated_speedup']:.2f}x "
          f"(gate {DECODE_SPEEDUP_GATE:.1f}x, best of "
          f"{decode['points'][-1]['attempts']} measurement(s))")
    if decode["gated_speedup"] < DECODE_SPEEDUP_GATE:
        print("FAIL: KV-cached decode speedup below the gate", file=sys.stderr)
        return 1

    print(f"continuous-vs-static tokens/sec: {batching['tokens_per_second_ratio']:.2f}x "
          f"(gate {BATCHING_GATE:.1f}x, best of {batching['attempts']} "
          "measurement(s))")
    if batching["tokens_per_second_ratio"] < BATCHING_GATE:
        print("FAIL: continuous batching tokens/sec below the gate", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
