"""Figure 19 -- validation-accuracy-vs-time curves and time-to-accuracy (TTA).

The paper trains ResNet-18 on ImageNet under each number format, plots
validation accuracy against (normalized) wall-clock time on the corresponding
iso-area system, and reports the time to reach 68% accuracy normalized to
FAST-Adaptive: FP32 8.51x, Nvidia MP 5.69x, bfloat16 3.85x, INT-12 2.92x,
MSFP-12 2.27x, MidBFP 1.86x, FAST-Adaptive 1.00x.

Here the accuracy curves come from training the scaled task under each
format, and the seconds-per-iteration come from the hardware model of the
paper-scale ResNet-18 workload on each iso-area system; their product gives
the TTA entries that are normalized to FAST-Adaptive.
"""

from bench_utils import print_banner, print_rows, train_mlp_classifier
from repro.hardware import format_iteration_costs, iso_area_systems, resnet18_workload
from repro.training import normalize_entries, time_to_accuracy

#: Figure 19 normalized TTA values reported by the paper.
PAPER_FIG19 = {
    "fp32": 8.51,
    "nvidia_mp": 5.69,
    "bfloat16": 3.85,
    "int12": 2.92,
    "msfp12": 2.27,
    "mid_bfp": 1.86,
    "fast_adaptive": 1.00,
}

FORMATS = list(PAPER_FIG19)


def test_fig19_time_to_accuracy(benchmark, vision_task):
    # Accuracy-vs-epoch curves from the scaled training runs.
    curves = {name: train_mlp_classifier(name, vision_task, epochs=4, seed=0).val_metric_history
              for name in FORMATS}

    # Seconds per iteration on the paper-scale workload / iso-area systems.
    workload = resnet18_workload()
    systems = iso_area_systems()
    costs = format_iteration_costs(workload, systems)

    # Every format reaches the common target on this task; pick it just below
    # the weakest curve's best accuracy so all entries are comparable.
    target = min(max(curve) for curve in curves.values()) - 1.0

    def build_table():
        entries = [
            time_to_accuracy(name, curves[name], target,
                             seconds_per_iteration=costs[name].seconds,
                             power_watts=systems[name].power_w)
            for name in FORMATS
        ]
        return normalize_entries(entries, "fast_adaptive")

    table = benchmark(build_table)

    print_banner(f"Figure 19: normalized time to reach the target metric "
                 f"({target:.1f}% on the synthetic task; 68% ImageNet top-1 in the paper)")
    rows = [[name,
             table[name]["time"],
             PAPER_FIG19[name],
             curves[name][-1]]
            for name in FORMATS]
    print_rows(["format", "normalized TTA (measured)", "normalized TTA (paper)",
                "final val acc % (measured)"], rows)

    print("\nAccuracy-vs-epoch curves (measured):")
    for name in FORMATS:
        print(f"  {name:14s} " + ", ".join(f"{value:5.1f}" for value in curves[name]))

    # Reproduced claims: FAST-Adaptive is the fastest to the target; FP32 is
    # several times slower; the scalar formats order as in the paper.
    assert table["fast_adaptive"]["time"] == 1.0
    assert all(table[name]["time"] >= 0.99 for name in FORMATS)
    assert table["fp32"]["time"] > 4.0
    assert table["fp32"]["time"] > table["bfloat16"]["time"] > table["msfp12"]["time"]
