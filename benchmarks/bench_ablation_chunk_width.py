"""Ablation -- fMAC chunk width (the paper uses 2-bit chunks).

Section V-B subdivides mantissas into 2-bit chunks.  This ablation sweeps the
chunk width and reports, for each choice:

* the number of passes needed for the (2,2,2) / (4,4,4) precision settings,
* the modelled fMAC area (wider chunks need bigger multipliers), and
* the resulting area x passes product -- the quantity that should be minimized
  and that motivates the 2-bit choice for a system targeting m in {2, 4}.
"""

from bench_utils import print_banner, print_rows
from repro.core.chunks import passes_required
from repro.hardware.mac import fmac_design

CHUNK_WIDTHS = (1, 2, 4)


def test_ablation_chunk_width(benchmark):
    def evaluate():
        rows = []
        for chunk_bits in CHUNK_WIDTHS:
            design = fmac_design(chunk_bits=chunk_bits)
            passes_low = passes_required(2, 2, chunk_bits)
            passes_high = passes_required(4, 4, chunk_bits)
            rows.append({
                "chunk_bits": chunk_bits,
                "area": design.area_units,
                "passes_low": passes_low,
                "passes_high": passes_high,
                "area_x_passes_low": design.area_units * passes_low,
                "area_x_passes_high": design.area_units * passes_high,
            })
        return rows

    rows = benchmark(evaluate)

    print_banner("Ablation: fMAC chunk width")
    print_rows(
        ["chunk bits", "fMAC area", "passes (2,2,2)", "passes (4,4,4)",
         "area x passes @m=2", "area x passes @m=4"],
        [[row["chunk_bits"], row["area"], row["passes_low"], row["passes_high"],
          row["area_x_passes_low"], row["area_x_passes_high"]] for row in rows],
    )

    by_width = {row["chunk_bits"]: row for row in rows}
    # 1-bit chunks need 4x the passes at m=2 for little area saving; 4-bit
    # chunks waste multiplier area whenever the tensors sit at m=2.  The 2-bit
    # choice minimizes the low-precision cost product.
    assert by_width[2]["area_x_passes_low"] <= by_width[1]["area_x_passes_low"]
    assert by_width[2]["area_x_passes_low"] <= by_width[4]["area_x_passes_low"]
    # At m=4 the wider chunk is competitive -- the trade-off the paper accepts
    # because most of training runs at m=2.
    assert by_width[4]["passes_high"] < by_width[2]["passes_high"]
