"""Figure 9 -- temporal and layerwise precision schedules.

The paper compares, on ResNet-20 / CIFAR-10:

* Temporal Low-to-High (low-precision BFP first, FP32-like precision second)
  against Temporal High-to-Low, and
* Layerwise Low-to-High (low precision in the shallow layers) against
  Layerwise High-to-Low,

finding that the Low-to-High variants win in both cases -- the observation
that motivates the FAST-Adaptive policy.  We reproduce both comparisons at
miniature scale (multi-seed means on the synthetic vision task), asserting
the Low-to-High variant is at least as good up to noise.
"""

import numpy as np

from bench_utils import print_banner, print_rows, train_mlp_classifier
from repro.training import LayerwiseSchedule, TemporalSchedule

SEEDS = (0, 1, 2)
PAPER_REFERENCE = {
    "temporal_low_to_high": "~90% final accuracy (Fig. 9 left, green)",
    "temporal_high_to_low": "~87% final accuracy (Fig. 9 left, orange)",
    "layerwise_low_to_high": "~83% final accuracy (Fig. 9 right, green)",
    "layerwise_high_to_low": "~78% final accuracy (Fig. 9 right, orange)",
}


def run_scheme(factory, task, epochs=5):
    scores = []
    curves = []
    for seed in SEEDS:
        result = train_mlp_classifier(factory(seed), task, epochs=epochs, seed=seed,
                                      hidden=(48, 48, 48))
        scores.append(result.best_val_metric)
        curves.append(result.val_metric_history)
    return float(np.mean(scores)), float(np.std(scores)), curves


def test_fig09_temporal_and_layerwise_schemes(benchmark, vision_task):
    schemes = {
        "temporal_low_to_high": lambda seed: TemporalSchedule(low_to_high=True, seed=seed),
        "temporal_high_to_low": lambda seed: TemporalSchedule(low_to_high=False, seed=seed),
        "layerwise_low_to_high": lambda seed: LayerwiseSchedule(low_to_high=True, seed=seed),
        "layerwise_high_to_low": lambda seed: LayerwiseSchedule(low_to_high=False, seed=seed),
    }
    results = {name: run_scheme(factory, vision_task) for name, factory in schemes.items()}

    # Benchmark a single scheduled training run (the experiment's unit of work).
    benchmark.pedantic(
        lambda: train_mlp_classifier(TemporalSchedule(low_to_high=True), vision_task, epochs=1),
        rounds=1, iterations=1,
    )

    print_banner("Figure 9: Low-to-High vs High-to-Low precision schedules "
                 f"(mean over {len(SEEDS)} seeds)")
    rows = [[name, mean, std, PAPER_REFERENCE[name]]
            for name, (mean, std, _) in results.items()]
    print_rows(["scheme", "best val acc % (measured)", "std", "paper observation"], rows)

    print("\nPer-epoch validation accuracy (seed 0):")
    for name, (_, _, curves) in results.items():
        print(f"  {name:24s} " + ", ".join(f"{value:5.1f}" for value in curves[0]))

    # Reproduced qualitative claims (with a noise margin appropriate to the scale).
    assert results["temporal_low_to_high"][0] >= results["temporal_high_to_low"][0] - 8.0
    assert results["layerwise_low_to_high"][0] >= results["layerwise_high_to_low"][0] - 8.0
