"""Figure 2 -- the number-format catalog.

Reproduces the format zoo of Figure 2 as a table of bit layouts and measures
the quantization error each format introduces on weight-like and
gradient-like tensors (the property that drives every later experiment).
The benchmarked kernel is one full-tensor quantization per format.
"""

import numpy as np

from bench_utils import print_banner, print_rows
from repro.formats import TABLE2_FORMATS, get_format


def test_formats_catalog(benchmark):
    rng = np.random.default_rng(0)
    weights = rng.standard_normal((64, 256)) * 0.05
    gradients = np.exp(rng.normal(-8, 3, size=(64, 256))) * rng.choice([-1, 1], size=(64, 256))

    formats = [get_format(name) for name in TABLE2_FORMATS]

    def quantize_all():
        return [fmt.quantize(weights, kind="weight") for fmt in formats]

    benchmark(quantize_all)

    rows = []
    for fmt in formats:
        weight_error = np.abs(fmt.quantize(weights, kind="weight") - weights).mean()
        gradient_error = np.abs(fmt.quantize(gradients, kind="gradient", rng=np.random.default_rng(1))
                                - gradients).mean()
        rows.append([
            fmt.name,
            fmt.describe(),
            fmt.bits_per_value,
            weight_error / np.abs(weights).mean(),
            gradient_error / np.abs(gradients).mean(),
        ])

    print_banner("Figure 2: number formats for DNN training (bit layouts and quantization error)")
    print_rows(
        ["format", "layout", "bits/value", "rel. weight error", "rel. gradient error"],
        rows,
    )
    # Sanity: wider formats have lower error.
    errors = {row[0]: row[3] for row in rows}
    assert errors["fp32"] <= errors["bfloat16"] <= errors["low_bfp"]
