"""Figure 20 -- normalized training time and energy for every model and format.

The paper reports, for six workloads (ResNet-18/50, MobileNet-v2, VGG-16,
Transformer, YOLOv2) and eight systems, the training time and energy to reach
a target metric, normalized to FAST-Adaptive.  The dominant factor is the
per-iteration throughput of each iso-area system (iterations-to-target are
nearly equal across the formats that reach the target at all), so this
benchmark reproduces the figure from the hardware model: per-iteration
time/energy for every workload and system, normalized to FAST-Adaptive, next
to the paper's reported values.
"""

import pytest

from bench_utils import print_banner, print_rows
from repro.hardware import format_iteration_costs, iso_area_systems, paper_workloads

#: Paper values (normalized training time / energy) from Figure 20.
#: ``None`` marks the settings reported as N/A (target accuracy never reached).
PAPER_FIG20_TIME = {
    "resnet18": {"fp32": 8.71, "nvidia_mp": 5.84, "bfloat16": 3.94, "int12": 2.95,
                 "msfp12": 2.32, "hfp8": 2.03, "mid_bfp": 1.86, "fast_adaptive": 1.00},
    "resnet50": {"fp32": 8.77, "nvidia_mp": 5.98, "bfloat16": 4.64, "int12": 3.19,
                 "msfp12": None, "hfp8": 2.26, "mid_bfp": None, "fast_adaptive": 1.00},
    "mobilenet_v2": {"fp32": 8.92, "nvidia_mp": 5.82, "bfloat16": 4.57, "int12": 3.10,
                     "msfp12": 2.31, "hfp8": 2.08, "mid_bfp": 1.90, "fast_adaptive": 1.00},
    "vgg16": {"fp32": 8.86, "nvidia_mp": 6.24, "bfloat16": 4.08, "int12": 3.05,
              "msfp12": 2.40, "hfp8": 2.23, "mid_bfp": 2.04, "fast_adaptive": 1.00},
    "transformer": {"fp32": 8.54, "nvidia_mp": 5.91, "bfloat16": 4.15, "int12": 2.84,
                    "msfp12": 2.43, "hfp8": 1.78, "mid_bfp": 1.60, "fast_adaptive": 1.00},
    "yolov2": {"fp32": 9.09, "nvidia_mp": 6.23, "bfloat16": 4.23, "int12": 3.19,
               "msfp12": None, "hfp8": None, "mid_bfp": None, "fast_adaptive": 1.00},
}

PAPER_FIG20_ENERGY_RESNET18 = {
    "fp32": 8.67, "nvidia_mp": 5.70, "bfloat16": 4.01, "int12": 3.07,
    "msfp12": 2.48, "hfp8": 2.14, "mid_bfp": 1.97, "fast_adaptive": 1.00,
}

FORMAT_ORDER = ["fp32", "nvidia_mp", "bfloat16", "int12", "msfp12", "hfp8", "mid_bfp", "fast_adaptive"]


@pytest.fixture(scope="module")
def all_costs():
    systems = iso_area_systems()
    return {name: format_iteration_costs(workload, systems)
            for name, workload in paper_workloads().items()}


def test_fig20_normalized_training_time(benchmark, all_costs):
    workloads = paper_workloads()
    systems = iso_area_systems()

    # Benchmark the full model evaluation for one workload.
    benchmark(lambda: format_iteration_costs(workloads["resnet18"], systems))

    print_banner("Figure 20 (top): normalized training time, measured (model) vs paper")
    rows = []
    measured = {}
    for model_name, costs in all_costs.items():
        fast = costs["fast_adaptive"].seconds
        measured[model_name] = {fmt: costs[fmt].seconds / fast for fmt in FORMAT_ORDER}
        for fmt in FORMAT_ORDER:
            rows.append([model_name, fmt, measured[model_name][fmt],
                         PAPER_FIG20_TIME[model_name][fmt]])
    print_rows(["model", "format", "normalized time (measured)", "normalized time (paper)"], rows)

    # Reproduced claims, per workload: the ordering FP32 > Nvidia MP >
    # bfloat16 > INT12 > MSFP-12 > HFP8 > FAST holds, and FP32 lands in the
    # 7-11x band the paper reports.
    for model_name, ratios in measured.items():
        assert ratios["fp32"] > ratios["nvidia_mp"] > ratios["bfloat16"] > ratios["int12"]
        assert ratios["int12"] > ratios["msfp12"] > ratios["hfp8"] > 1.0
        assert 7.0 < ratios["fp32"] < 11.0, model_name

    # Quantitative check for the workload with complete paper data.
    for fmt in FORMAT_ORDER:
        reported = PAPER_FIG20_TIME["resnet18"][fmt]
        assert measured["resnet18"][fmt] == pytest.approx(reported, rel=0.35), fmt


def test_fig20_normalized_energy(benchmark, all_costs):
    costs = all_costs["resnet18"]

    def build():
        fast = costs["fast_adaptive"].energy_joules
        return {fmt: costs[fmt].energy_joules / fast for fmt in FORMAT_ORDER}

    energy = benchmark(build)

    print_banner("Figure 20 (bottom): normalized training energy for ResNet-18")
    print_rows(["format", "normalized energy (measured)", "normalized energy (paper)"],
               [[fmt, energy[fmt], PAPER_FIG20_ENERGY_RESNET18[fmt]] for fmt in FORMAT_ORDER])

    for fmt in FORMAT_ORDER:
        assert energy[fmt] == pytest.approx(PAPER_FIG20_ENERGY_RESNET18[fmt], rel=0.4), fmt
    assert energy["fp32"] > energy["hfp8"] > energy["fast_adaptive"]
