"""Figure 6 -- distribution of the difference to the BFP shared exponent.

The paper takes the weight, activation and gradient tensors of ResNet-18
layer 10 at the halfway point of ImageNet training and plots, for group sizes
8/16/32, the histogram of each value's distance to its group's shared
exponent.  The reproduced observations:

* gradients have a much wider exponent spread than weights and activations,
* the spread grows with the group size.

We train the scaled ResNet-20 halfway on the synthetic vision task, capture
W/A/G of a middle convolution layer with a recording quantization scheme, and
compute the same statistics.
"""

import numpy as np

from bench_utils import print_banner, print_rows
from repro import nn
from repro.analysis import exponent_spread_report
from repro.data import DataLoader, SyntheticImageDataset
from repro.models import resnet20
from repro.nn.quantized import QuantizationScheme, quantized_modules
from repro.training import ClassificationTrainer, FP32Schedule


class RecordingScheme(QuantizationScheme):
    """A pass-through scheme that records the tensors flowing through one layer."""

    def __init__(self):
        self.weights = None
        self.activations = None
        self.gradients = None

    def quantize_weight(self, values):
        self.weights = np.array(values, copy=True)
        return values

    def quantize_activation(self, values):
        self.activations = np.array(values, copy=True)
        return values

    def quantize_gradient(self, values):
        self.gradients = np.array(values, copy=True)
        return values


def capture_mid_training_tensors():
    dataset = SyntheticImageDataset(num_samples=192, num_classes=4, image_size=10,
                                    noise=0.5, seed=5)
    train, _ = dataset.split(0.9)
    model = resnet20(num_classes=4, width=8, rng=np.random.default_rng(0))
    optimizer = nn.SGD(model.parameters(), lr=0.05, momentum=0.9)
    trainer = ClassificationTrainer(model, optimizer, FP32Schedule())
    trainer.fit(DataLoader(train, 32, seed=0), epochs=1)

    # Attach the recorder to a middle layer and run one more forward/backward.
    layers = quantized_modules(model)
    recorder = RecordingScheme()
    layers[len(layers) // 2].scheme = recorder
    images, labels = train.arrays()
    loss = nn.cross_entropy(model(images[:64]), labels[:64])
    loss.backward()
    return recorder


def test_fig06_exponent_spread(benchmark):
    recorder = capture_mid_training_tensors()
    tensors = {
        "weights": recorder.weights,
        "activations": recorder.activations,
        "gradients": recorder.gradients,
    }
    assert all(value is not None for value in tensors.values())

    reports = benchmark(lambda: {name: exponent_spread_report(name, values)
                                 for name, values in tensors.items()})

    print_banner("Figure 6: exponent-difference statistics of W/A/G at mid-training")
    rows = []
    for name, report in reports.items():
        for group_size in report.group_sizes:
            rows.append([
                name,
                group_size,
                report.mean_difference[group_size],
                report.truncated_fraction[group_size] * 100.0,
            ])
    print_rows(["tensor", "group size", "mean exponent difference",
                "% values losing all mantissa bits (m=4)"], rows)

    histogram = reports["gradients"].histograms[16]
    print("\nGradient histogram (g=16), % of values per exponent-difference bin:")
    print_rows(["difference", "frequency %"],
               [[bin_index, frequency] for bin_index, frequency in histogram.items() if frequency > 0.0])

    # Reproduced qualitative claims.
    for group_size in (8, 16, 32):
        assert reports["gradients"].mean_difference[group_size] > \
            reports["weights"].mean_difference[group_size]
    gradient_report = reports["gradients"]
    assert gradient_report.mean_difference[8] <= gradient_report.mean_difference[32]
