"""Shared fixtures for the benchmark harness.

Each benchmark module reproduces one table or figure of the paper; the
fixtures here provide the shared synthetic tasks so expensive dataset
generation happens once per session.
"""

import pytest

from repro.data import SyntheticImageDataset


@pytest.fixture(scope="session")
def vision_task():
    """A shared synthetic image-classification task (CIFAR-10 stand-in)."""
    dataset = SyntheticImageDataset(num_samples=320, num_classes=4, image_size=10,
                                    noise=0.55, seed=42)
    return dataset.split(0.8)
