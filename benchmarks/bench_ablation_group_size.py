"""Ablation -- BFP group size: accuracy cost vs hardware benefit.

Figure 18 covers the accuracy side of the group-size choice; Section VI-C
notes that smaller groups cost more because the shared exponent (and the FP
accumulation it triggers) is amortized over fewer values.  This ablation puts
both sides of the trade-off in one table: quantization SNR on gradient-like
data and fMAC area per value, for g in {4, 8, 16, 32, 64}.
"""

import numpy as np

from bench_utils import print_banner, print_rows
from repro.analysis import quantization_snr
from repro.hardware.mac import fmac_design

GROUP_SIZES = (4, 8, 16, 32, 64)


def test_ablation_group_size(benchmark):
    rng = np.random.default_rng(1)
    gradients = np.exp(rng.normal(-6, 2.5, size=(64, 256))) * rng.choice([-1, 1], size=(64, 256))

    def evaluate():
        rows = []
        for group_size in GROUP_SIZES:
            snr = quantization_snr(gradients, mantissa_bits=4, group_size=group_size,
                                   exponent_bits=8)
            design = fmac_design(group_size=group_size)
            rows.append([group_size, snr, design.area_units / group_size])
        return rows

    rows = benchmark(evaluate)

    print_banner("Ablation: BFP group size -- accuracy cost vs hardware benefit (m=4)")
    print_rows(["group size", "quantization SNR (dB)", "fMAC area per value"], rows)

    snrs = [row[1] for row in rows]
    areas_per_value = [row[2] for row in rows]
    # Accuracy side: SNR degrades monotonically as the group grows.
    assert all(a >= b for a, b in zip(snrs, snrs[1:]))
    # Hardware side: area per value shrinks monotonically as the group grows.
    assert all(a >= b for a, b in zip(areas_per_value, areas_per_value[1:]))
    # g=16 sits where both curves have flattened: within 3 dB of g=8 while
    # saving >25% area per value -- the paper's operating point.
    assert snrs[GROUP_SIZES.index(8)] - snrs[GROUP_SIZES.index(16)] < 3.0
    assert areas_per_value[GROUP_SIZES.index(16)] < 0.75 * areas_per_value[GROUP_SIZES.index(8)]
