"""Append benchmark summaries to the committed performance trajectory.

`benchmarks/results/perf_quantization.json` and `perf_train_step.json` are
full reports overwritten on every run; this script distills each into one
compact JSON line and appends it to `benchmarks/results/perf_trajectory.jsonl`
so performance can be tracked *over time* (per ROADMAP) instead of only gated
fast-vs-reference.  CI runs it after the `--quick` benchmarks and uploads the
trajectory as a workflow artifact; developers run it after a full benchmark
pass and commit the appended lines with the PR that changed performance.

Usage::

    PYTHONPATH=src python benchmarks/track_perf.py
    PYTHONPATH=src python benchmarks/track_perf.py --label pr2 --results-dir results
"""

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path


def git_commit(repo_root: Path) -> str:
    try:
        output = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo_root, capture_output=True, text=True, check=True,
        ).stdout.strip()
        return output or "unknown"
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def summarize_quantization(report: dict) -> dict:
    """Headline numbers: worst standard-config speedup plus per-mode bests."""
    results = report.get("results", [])
    standard = [r for r in results if r["group_size"] == 16 and r["mantissa_bits"] == 4
                and r["rounding"] == "nearest"]
    by_rounding = {}
    for row in results:
        if row["group_size"] == 16 and row["mantissa_bits"] == 4:
            label = row["rounding"]
            best = by_rounding.get(label)
            if best is None or row["size"] > best["size"]:
                by_rounding[label] = row
    return {
        "standard_worst_speedup": min((r["speedup"] for r in standard), default=None),
        "largest_case_ms": {
            label: {"reference_ms": row["reference_ms"], "fast_ms": row["fast_ms"],
                    "speedup": row["speedup"]}
            for label, row in sorted(by_rounding.items())
        },
    }


def summarize_train_step(report: dict) -> dict:
    compute_dtype = report.get("compute_dtype") or {}
    return {
        "per_case": {
            f"{r['config']}/{r['scheme']}": {
                "uncached_ms_per_step": r["uncached_ms_per_step"],
                "fast_ms_per_step": r["fast_ms_per_step"],
                "speedup": r["speedup"],
            }
            for r in report.get("results", [])
        },
        "float32_per_case": {
            f"{r['config']}/{r['scheme']}": {
                "float64_ms_per_step": r["float64_ms_per_step"],
                "float32_ms_per_step": r["float32_ms_per_step"],
                "speedup": r["speedup"],
            }
            for r in compute_dtype.get("results", [])
        },
        "float32_worst_relative_loss_deviation":
            compute_dtype.get("worst_relative_loss_deviation"),
        "noise_pool": report.get("noise_pool"),
        "worst_relative_loss_deviation": report.get("worst_relative_loss_deviation"),
    }


def summarize_serving(report: dict) -> dict:
    return {
        "per_family": {
            r["family"]: {
                "single_latency_ms_p50": r["single_latency_ms_p50"],
                "single_rps": r["single_rps"],
                "batched_rps": r["batched_rps"],
                "max_batch_size": r["max_batch_size"],
                "speedup": r["speedup"],
            }
            for r in report.get("results", [])
        },
        "storage_standard": report.get("storage_standard"),
        "degraded": {
            key: degraded.get(key)
            for key in ("latency_ms_p50", "latency_ms_p95", "latency_ms_p99",
                        "rps", "shed_rate", "failure_rate", "requeues",
                        "engine_restarts", "final_state")
        } if (degraded := report.get("degraded")) else None,
        "observability": {
            key: obs.get(key)
            for key in ("bare_rps", "instrumented_rps", "ratio", "gate",
                        "sample_rate", "prometheus_samples", "trace_events")
        } if (obs := report.get("observability")) else None,
        "cluster": {
            "cpus": cluster.get("cpus"),
            "capacity_single_rps": cluster.get("capacity_single_rps"),
            "goodput_by_workers": {
                workers: entry["points"][-1]["goodput_rps"]
                for workers, entry in cluster.get("scaling", {}).items()
            },
            "baseline_top_goodput_rps": (
                cluster["baseline"][-1]["goodput_rps"]
                if cluster.get("baseline") else None),
            "gate": cluster.get("gate"),
            "mixed_goodput_rps": (cluster.get("mixed") or {}).get("goodput_rps"),
        } if (cluster := report.get("cluster")) else None,
    }


def summarize_generation(report: dict) -> dict:
    decode = report.get("decode") or {}
    batching = report.get("batching") or {}
    quantized = report.get("quantized_cache") or {}
    return {
        "decode_speedup_by_length": {
            str(p["steps"]): p["speedup"] for p in decode.get("points", [])
        },
        "decode_gated_speedup": decode.get("gated_speedup"),
        "decode_gate": decode.get("gate"),
        "batching": {
            "tokens_per_second_ratio": batching.get("tokens_per_second_ratio"),
            "gate": batching.get("gate"),
            "offered_qps": batching.get("offered_qps"),
            "max_active": batching.get("max_active"),
            "continuous_tokens_per_second":
                (batching.get("continuous") or {}).get("tokens_per_second"),
            "static_tokens_per_second":
                (batching.get("static") or {}).get("tokens_per_second"),
            "continuous_ttft_ms_p50":
                (batching.get("continuous") or {}).get("ttft_ms_p50"),
            "static_ttft_ms_p50":
                (batching.get("static") or {}).get("ttft_ms_p50"),
            "mean_batch_per_step":
                (batching.get("continuous") or {}).get("mean_batch_per_step"),
        },
        "kv_cache_divergence": {
            f"m={d['mantissa_bits']}": {
                "worst_mean_relative_error": d["worst_mean_relative_error"],
                "argmax_agreement": d["argmax_agreement"],
            }
            for d in quantized.get("divergence", [])
        },
        "kv_cache_compression": {
            f["format"]: f["compression_vs_fp32"]
            for f in quantized.get("formats", [])
        },
    }


SUMMARIZERS = {
    "perf_quantization.json": ("bench_perf_quantization", summarize_quantization),
    "perf_train_step.json": ("bench_perf_train_step", summarize_train_step),
    "perf_serving.json": ("bench_perf_serving", summarize_serving),
    "perf_generation.json": ("bench_perf_generation", summarize_generation),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--results-dir", type=Path,
                        default=Path(__file__).parent / "results")
    parser.add_argument("--output", type=Path, default=None,
                        help="trajectory file (default: <results-dir>/perf_trajectory.jsonl)")
    parser.add_argument("--label", default=None,
                        help="optional tag for this entry (e.g. a PR number)")
    args = parser.parse_args(argv)

    output = args.output or args.results_dir / "perf_trajectory.jsonl"
    recorded_at = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    commit = git_commit(Path(__file__).resolve().parent.parent)

    appended = 0
    with output.open("a") as handle:
        for filename, (benchmark, summarize) in SUMMARIZERS.items():
            path = args.results_dir / filename
            if not path.exists():
                print(f"skip {filename}: not found", file=sys.stderr)
                continue
            report = json.loads(path.read_text())
            entry = {
                "recorded_at": recorded_at,
                "commit": commit,
                "benchmark": benchmark,
                "mode": report.get("mode"),
                "numpy": report.get("numpy"),
                "machine": report.get("machine"),
                "summary": summarize(report),
            }
            if args.label:
                entry["label"] = args.label
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
            appended += 1
    print(f"appended {appended} entries to {output}")
    return 0 if appended else 1


if __name__ == "__main__":
    sys.exit(main())
