"""Figure 17 -- FAST precision adaptation across layers and iterations.

The paper visualizes, for five ResNet-18 layers over the course of ImageNet
training, which of the eight (W, A, G) precision settings the FAST-Adaptive
policy selects, showing precision growing with both layer depth and training
progress.  We train the scaled ResNet-18 with the FAST schedule, collect the
policy's decisions and print the same layer x iteration map (as cost ranks,
0 = cheapest (2,2,2) ... 7 = (4,4,4)), then assert both growth trends.
"""

import numpy as np

from bench_utils import print_banner, print_rows
from repro import nn
from repro.core.precision_policy import SETTING_ORDER
from repro.data import DataLoader, SyntheticImageDataset
from repro.models import resnet18
from repro.training import ClassificationTrainer, FASTSchedule


def run_fast_training(epochs=3):
    dataset = SyntheticImageDataset(num_samples=192, num_classes=4, image_size=10,
                                    noise=0.5, seed=3)
    train, validation = dataset.split(0.85)
    model = resnet18(num_classes=4, width=8, rng=np.random.default_rng(0))
    optimizer = nn.SGD(model.parameters(), lr=0.05, momentum=0.9)
    schedule = FASTSchedule(evaluation_interval=2)
    trainer = ClassificationTrainer(model, optimizer, schedule)
    result = trainer.fit(DataLoader(train, 32, seed=0), DataLoader(validation, 64, shuffle=False),
                         epochs=epochs)
    return schedule, result


def test_fig17_precision_adaptation(benchmark):
    schedule, result = run_fast_training()
    history = schedule.setting_history()
    assert history

    def summarize():
        ranks = {}
        for (layer, iteration), setting in history.items():
            ranks[(layer, iteration)] = SETTING_ORDER.index(setting)
        return ranks

    ranks = benchmark(summarize)

    layers = sorted({key[0] for key in ranks})
    iterations = sorted({key[1] for key in ranks})
    sampled_layers = layers[:: max(len(layers) // 5, 1)][:5]

    print_banner("Figure 17: FAST (W, A, G) precision setting per layer and iteration\n"
                 "(cost rank 0 = (2,2,2) ... 7 = (4,4,4); '.' = not re-evaluated)")
    header = ["layer"] + [f"it {it}" for it in iterations]
    rows = []
    for layer in sampled_layers:
        row = [layer]
        for iteration in iterations:
            rank = ranks.get((layer, iteration))
            row.append(rank if rank is not None else ".")
        rows.append(row)
    print_rows(header, rows)
    print(f"\nValidation accuracy per epoch under FAST-Adaptive: "
          + ", ".join(f"{value:.1f}%" for value in result.val_metric_history))

    # Precision grows with training progress...
    midpoint = iterations[len(iterations) // 2]
    early = [rank for (layer, it), rank in ranks.items() if it < midpoint]
    late = [rank for (layer, it), rank in ranks.items() if it >= midpoint]
    assert np.mean(late) >= np.mean(early)
    # ...and with layer depth (deep third vs shallow third, averaged over time).
    depth_cut = layers[len(layers) // 3], layers[2 * len(layers) // 3]
    shallow = [rank for (layer, it), rank in ranks.items() if layer <= depth_cut[0]]
    deep = [rank for (layer, it), rank in ranks.items() if layer >= depth_cut[1]]
    assert np.mean(deep) >= np.mean(shallow) - 0.5
