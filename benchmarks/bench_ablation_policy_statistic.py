"""Ablation -- the relative-improvement statistic r(X) of Algorithm 1.

FAST decides between 2- and 4-bit mantissas by comparing r(X) (Equation 2)
against the decaying threshold.  This ablation compares r(X) against two
cheaper proxies -- a constant decision and the tensor's coefficient of
variation -- by measuring how well each statistic predicts the *actual*
quantization benefit of the 4-bit mantissa (the reduction in quantization
error), over a population of weight-, activation- and gradient-like tensors.
"""

import numpy as np

from bench_utils import print_banner, print_rows
from repro.core import bfp_quantize, relative_improvement


def tensor_population(rng, count=60):
    """Tensors with a spread of dynamic ranges, like the ones seen in training."""
    tensors = []
    for index in range(count):
        spread = rng.uniform(0.0, 3.0)
        values = rng.standard_normal(256) * np.exp(rng.normal(0, spread, size=256)) * 0.1
        tensors.append(values)
    return tensors


def true_benefit(values):
    """Actual benefit of m=4 over m=2: the reduction in relative quantization error."""
    low = bfp_quantize(values, mantissa_bits=2, group_size=16, exponent_bits=3)
    high = bfp_quantize(values, mantissa_bits=4, group_size=16, exponent_bits=3)
    scale = np.abs(values).mean() + 1e-12
    return (np.abs(low - values).mean() - np.abs(high - values).mean()) / scale


def test_ablation_policy_statistic(benchmark):
    rng = np.random.default_rng(0)
    tensors = tensor_population(rng)
    benefits = np.array([true_benefit(values) for values in tensors])

    def evaluate_statistics():
        r_values = np.array([relative_improvement(values) for values in tensors])
        coefficient_of_variation = np.array([np.abs(values).std() / (np.abs(values).mean() + 1e-12)
                                             for values in tensors])
        return r_values, coefficient_of_variation

    r_values, cov_values = benchmark(evaluate_statistics)

    correlation_r = float(np.corrcoef(r_values, benefits)[0, 1])
    correlation_cov = float(np.corrcoef(cov_values, benefits)[0, 1])

    # Decision quality: pick the top half of tensors to promote to 4 bits and
    # measure how much of the total achievable benefit each statistic captures.
    budget = len(tensors) // 2
    oracle = np.sort(benefits)[::-1][:budget].sum()
    captured_r = benefits[np.argsort(r_values)[::-1][:budget]].sum()
    captured_cov = benefits[np.argsort(cov_values)[::-1][:budget]].sum()

    print_banner("Ablation: precision-selection statistic")
    print_rows(
        ["statistic", "correlation with true benefit", "benefit captured at 50% promotion budget"],
        [["r(X) (Equation 2)", correlation_r, captured_r / oracle],
         ["coefficient of variation", correlation_cov, captured_cov / oracle],
         ["oracle", 1.0, 1.0]],
    )

    # r(X) must be a good predictor of the actual benefit and at least as good
    # as the cheaper proxy under the same promotion budget.
    assert correlation_r > 0.6
    assert captured_r >= captured_cov - 1e-9
    assert captured_r / oracle > 0.8
