"""Theorem 1 -- stochastic rounding preserves the expected weight increment.

Section III-D argues that when the gradient is quantized with stochastic
rounding, the expected total weight increment over many SGD iterations equals
the full-precision increment, whereas deterministic (truncating or
always-down) rounding biases the trajectory and raises the final loss
(Figures 7 and 8).  This benchmark simulates exactly that setting:

* the Figure 8 example (constant gradient 2/3 on a unit grid),
* a gradient-descent run on a quadratic loss with the gradient quantized to a
  2-bit BFP mantissa under stochastic vs truncating rounding.
"""

import numpy as np
import pytest

from bench_utils import print_banner, print_rows
from repro.core import bfp_quantize
from repro.core.rounding import round_stochastic, round_truncate


def test_theorem1_constant_gradient_example(benchmark):
    """Figure 8: gradient 2/3 rounded on a unit grid over many iterations."""
    gradient = 2.0 / 3.0
    iterations = 3000
    rng = np.random.default_rng(0)

    def accumulate():
        stochastic = float(round_stochastic(np.full(iterations, gradient), rng=rng,
                                            noise_bits=None).sum())
        truncated = float(round_truncate(np.full(iterations, gradient)).sum())
        exact = gradient * iterations
        return exact, stochastic, truncated

    exact, stochastic, truncated = benchmark(accumulate)

    print_banner("Theorem 1 (Figure 8): total weight increment after repeated rounding")
    print_rows(["scheme", "total increment", "relative to FP32"],
               [["fp32 (no rounding)", exact, 1.0],
                ["stochastic rounding", stochastic, stochastic / exact],
                ["truncation", truncated, truncated / exact]])

    assert stochastic / exact == pytest.approx(1.0, abs=0.03)
    assert truncated == 0.0


def test_theorem1_gradient_descent_with_bfp_gradients(benchmark):
    """SGD on a quadratic with 2-bit BFP gradients: SR converges, truncation stalls."""
    target = np.linspace(0.5, 2.0, 16)

    def optimize(rounding: str, seed: int = 0) -> float:
        rng = np.random.default_rng(seed)
        weights = np.zeros(16)
        for _ in range(300):
            gradient = weights - target          # d/dw 0.5 * ||w - target||^2
            quantized = bfp_quantize(gradient, mantissa_bits=2, group_size=16,
                                     exponent_bits=8, rounding=rounding, rng=rng)
            weights = weights - 0.05 * quantized
        return float(np.mean((weights - target) ** 2))

    loss_stochastic = benchmark.pedantic(lambda: optimize("stochastic"), rounds=1, iterations=1)
    loss_truncate = optimize("truncate")
    loss_nearest = optimize("nearest")
    loss_exact = 0.0

    print_banner("Theorem 1: final loss of gradient descent with 2-bit BFP gradients")
    print_rows(["gradient rounding", "final MSE to optimum"],
               [["fp32 (exact)", loss_exact],
                ["stochastic", loss_stochastic],
                ["nearest", loss_nearest],
                ["truncate", loss_truncate]])

    # Stochastic rounding reaches (near) the optimum; biased truncation stalls
    # far away; nearest rounding sits in between because small gradients round
    # to zero once close to the optimum.
    assert loss_stochastic < 0.01
    assert loss_truncate > loss_stochastic * 5
    assert loss_nearest >= loss_stochastic
