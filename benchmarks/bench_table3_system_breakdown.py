"""Table III -- area and power breakdown of the FAST system.

The paper synthesizes the 256x64 fMAC system (Synopsys DC + CACTI) and
reports per-component area fractions and power.  The analytical hardware
model reproduces the same breakdown; the benchmarked kernel is the full
system evaluation (component areas + powers).
"""

import pytest

from bench_utils import print_banner, print_rows
from repro.hardware import FASTSystem, PAPER_TABLE3


def test_table3_area_power_breakdown(benchmark):
    system = FASTSystem()

    def evaluate():
        return system.area_breakdown(), system.power_breakdown(), system.total_power_w()

    area, power, total_power = benchmark(evaluate)

    print_banner("Table III: FAST system area/power breakdown (model vs paper)")
    rows = []
    for name in area:
        rows.append([
            name,
            area[name] * 100.0,
            PAPER_TABLE3[name]["area_fraction"] * 100.0,
            power[name],
            PAPER_TABLE3[name]["power_w"],
        ])
    rows.append(["total", 100.0, 100.0, total_power,
                 sum(entry["power_w"] for entry in PAPER_TABLE3.values())])
    print_rows(["component", "area % (model)", "area % (paper)", "power W (model)", "power W (paper)"],
               rows)

    paper_total = sum(entry["power_w"] for entry in PAPER_TABLE3.values())
    assert total_power == pytest.approx(paper_total, rel=0.1)
    assert area["systolic_array"] == pytest.approx(PAPER_TABLE3["systolic_array"]["area_fraction"], abs=0.05)
    assert area["memory_subsystem"] == pytest.approx(PAPER_TABLE3["memory_subsystem"]["area_fraction"], abs=0.05)


def test_table3_scaling_with_array_size(benchmark):
    """Sanity sweep: the breakdown responds to the array/memory configuration."""
    def sweep():
        return {
            rows: FASTSystem(array_rows=rows).area_breakdown()["systolic_array"]
            for rows in (128, 256, 512)
        }

    shares = benchmark(sweep)
    print_banner("Table III (extension): systolic-array area share vs array height")
    print_rows(["array rows", "array area share"], [[rows, share] for rows, share in shares.items()])
    assert shares[128] < shares[256] < shares[512]
