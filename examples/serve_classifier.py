"""Serving quickstart: train a quantized classifier, freeze it, serve traffic.

Walks the full inference lifecycle the `repro.serving` subsystem provides:

1. train a small CNN classifier under 4-bit BFP quantization,
2. **freeze** it -- weights quantized once into packed BFP artifacts,
   training-only branches stripped, bit-identical eval-mode logits,
3. save/load the frozen model through the compact `.npz` checkpoint format,
4. serve it through an `InferenceServer` with dynamic micro-batching and
   compare one-at-a-time submission against concurrent submission,
5. (with `--workers N`) scale out: serve the same checkpoint through a
   `ShardedServer` of N worker processes with shared-memory batch transport
   and open-loop Poisson traffic,
6. (with `--trace out.json`) record the whole serving run through the
   observability layer: sampled per-request span timelines exported as
   Chrome trace-event JSON (open in Perfetto / chrome://tracing) plus a
   Prometheus-style metrics summary.

Run with:  PYTHONPATH=src python examples/serve_classifier.py \
               [--workers N] [--trace out.json]
"""

import argparse
import time

import numpy as np

from repro import nn, observability, serving
from repro.core import BFPConfig
from repro.data import DataLoader, SyntheticImageDataset
from repro.nn.quantized import QuantizedConv2d, QuantizedLinear
from repro.training import ClassificationTrainer
from repro.training.schedules import FixedBFPSchedule


def section(title: str) -> None:
    print(f"\n=== {title} ===")


def build_model(rng) -> nn.Module:
    return nn.Sequential(
        QuantizedConv2d(3, 16, 3, padding=1, rng=rng),
        nn.ReLU(), nn.MaxPool2d(2),
        QuantizedConv2d(16, 32, 3, padding=1, rng=rng),
        nn.ReLU(), nn.MaxPool2d(2),
        nn.Flatten(),
        QuantizedLinear(32 * 8 * 8, 4, rng=rng),
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=0,
                        help="also serve through a ShardedServer of N worker "
                             "processes (0 = in-process serving only)")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="enable the observability layer and export the "
                             "serving run as Chrome trace-event JSON to PATH "
                             "(viewable in Perfetto / chrome://tracing)")
    args = parser.parse_args()
    rng = np.random.default_rng(0)
    if args.trace:
        # Trace every request: the demo serves ~a hundred requests, so a
        # full sample still yields a small, viewer-friendly file.
        observability.set_enabled(True, sample_rate=1.0)

    section("1. Train a quantized classifier")
    dataset = SyntheticImageDataset(num_samples=192, num_classes=4, image_size=32, seed=1)
    model = build_model(rng)
    # Paper-standard 8-bit exponent window: quantization is batch-invariant,
    # which is what a batching server wants.
    schedule = FixedBFPSchedule(4, config=BFPConfig(exponent_bits=8, group_size=16), seed=0)
    trainer = ClassificationTrainer(model, nn.SGD(model.parameters(), lr=0.05, momentum=0.9),
                                    schedule)
    result = trainer.fit(DataLoader(dataset, batch_size=32, seed=0), epochs=2)
    print(f"  trained 2 epochs, final train accuracy {result.train_metric_history[-1]:.1f}%")

    section("2. Freeze: one-time weight quantization")
    model.eval()
    frozen = serving.freeze(model)
    report = frozen.storage_report()
    print(f"  frozen {report['total_values']} parameters; "
          f"{report['total_bytes'] / 1024:.1f} KiB under the chunked BFP layout "
          f"({report['compression_vs_fp32']:.2f}x vs FP32)")
    probe = rng.standard_normal((8, 3, 32, 32))
    with nn.no_grad():
        live_logits = model(probe).data
    print(f"  frozen logits bit-identical to live eval model: "
          f"{np.array_equal(frozen.predict(probe), live_logits)}")

    section("3. Checkpoint round trip")
    path = serving.save_frozen(frozen, "/tmp/repro_serving_demo.npz")
    reloaded = serving.load_frozen(path)
    print(f"  saved {path}, reload bit-identical: "
          f"{np.array_equal(reloaded.predict(probe), live_logits)}")

    section("4. Serve with dynamic micro-batching")
    # float32 serving: BFP grid values are exact in float32, only the
    # accumulations run at single precision.
    reloaded.cast(np.float32)
    engine = serving.InferenceEngine(reloaded)
    engine.warmup(probe[:1].astype(np.float32))
    requests = rng.standard_normal((64, 3, 32, 32)).astype(np.float32)

    with serving.InferenceServer(engine,
                                 serving.BatchingConfig(max_batch_size=1)) as server:
        start = time.perf_counter()
        for request in requests:
            server.predict(request)
        single_wall = time.perf_counter() - start
    print(f"  one-at-a-time: {len(requests) / single_wall:.0f} req/s")

    config = serving.BatchingConfig(max_batch_size=32, max_delay_ms=2.0)
    with serving.InferenceServer(engine, config) as server:
        start = time.perf_counter()
        futures = [server.submit(request) for request in requests]
        results = [future.result() for future in futures]
        batched_wall = time.perf_counter() - start
        stats = server.stats()
    print(f"  batched:       {len(requests) / batched_wall:.0f} req/s "
          f"({single_wall / batched_wall:.1f}x), mean batch "
          f"{stats['mean_batch_size']:.1f}, p50 latency {stats['latency_ms_p50']:.2f} ms")
    example = results[0]
    print(f"  per-request accounting: queue {example.timing.queue_ms:.2f} ms + "
          f"compute {example.timing.compute_ms:.2f} ms in a batch of "
          f"{example.timing.batch_size}")

    if args.workers > 0:
        section(f"5. Scale out: {args.workers} worker process(es)")
        specs = [serving.WorkerSpec(
                     checkpoint=str(path), model="classifier",
                     warmup_shapes=((1, 3, 32, 32), (32, 3, 32, 32)),
                     warmup_dtype="float32", cast_dtype="float32")
                 for _ in range(args.workers)]
        start = time.perf_counter()
        with serving.ShardedServer(specs, serving.ClusterConfig(batching=config)) as cluster:
            print(f"  {args.workers} worker(s) spawned, warmed, and serving in "
                  f"{time.perf_counter() - start:.2f}s")
            sample = cluster.predict(requests[0], timeout=60)
            print(f"  sharded output matches in-process serving: "
                  f"{np.array_equal(sample.output, results[0].output)}")
            mix = (serving.FamilyLoad(payloads=tuple(requests),
                                      model="classifier"),)
            report = serving.OpenLoopGenerator(
                cluster.submit, mix, qps=300.0, duration_s=2.0, seed=7).run()
            stats = cluster.stats()
        print(f"  open-loop Poisson traffic at {report.offered_qps:.0f} qps: "
              f"goodput {report.goodput_rps:.0f} req/s, p50 "
              f"{report.latency_ms_p50:.1f} ms, p99 {report.latency_ms_p99:.1f} ms")
        print(f"  per-shard requests: {[s.requests for s in stats.shards]}; "
              "batches crossed the process boundary through shared-memory rings")

    if args.trace:
        section("Trace export")
        tracer = observability.tracer()
        trace_path = tracer.export(args.trace)
        registry = observability.registry()
        requests_served = sum(
            metric["value"] for metric in registry.snapshot()["metrics"]
            if metric["name"] == "serving_requests_total")
        print(f"  {len(tracer)} span(s) -> {trace_path} "
              "(open in Perfetto or chrome://tracing)")
        print(f"  metrics registry counted {requests_served:.0f} served "
              f"request(s); Prometheus exposition spans "
              f"{len(registry.render_prometheus().splitlines())} lines")
        observability.set_enabled(False)


if __name__ == "__main__":
    main()
