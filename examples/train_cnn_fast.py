"""Train a ResNet-20-style CNN with the FAST-Adaptive precision schedule.

This is the workload the paper's Section IV studies (ResNet-20 / CIFAR-10),
scaled to a synthetic dataset so it runs on a laptop CPU in about a minute.
The script:

* trains the same model under FP32, HighBFP (fixed m=4) and FAST-Adaptive,
* reports validation accuracy per epoch for each schedule,
* prints the FAST precision map (which layers ran at which (W, A, G)
  mantissa widths over training -- the Figure 17 picture), and
* estimates the training-time advantage on the FAST hardware model.

Run with:  python examples/train_cnn_fast.py [--epochs 4] [--samples 384]
"""

import argparse

import numpy as np

from repro import nn
from repro.core.precision_policy import SETTING_ORDER
from repro.data import DataLoader, SyntheticImageDataset
from repro.hardware import iso_area_systems, resnet18_workload
from repro.hardware.performance import fast_adaptive_iteration_cost, iteration_cost
from repro.models import resnet20
from repro.training import ClassificationTrainer, FASTSchedule, FixedBFPSchedule, FP32Schedule


def build_trainer(schedule, seed: int, learning_rate: float):
    model = resnet20(num_classes=4, width=8, rng=np.random.default_rng(seed))
    optimizer = nn.SGD(model.parameters(), lr=learning_rate, momentum=0.9, weight_decay=1e-4)
    return ClassificationTrainer(model, optimizer, schedule)


def print_precision_map(schedule: FASTSchedule) -> None:
    history = schedule.setting_history()
    if not history:
        return
    layers = sorted({key[0] for key in history})
    iterations = sorted({key[1] for key in history})
    print("\nFAST precision map (cost rank of the (W, A, G) setting, 0=cheapest .. 7=most precise)")
    header = "  layer | " + " ".join(f"{it:4d}" for it in iterations)
    print(header)
    print("  " + "-" * (len(header) - 2))
    for layer in layers:
        cells = []
        for iteration in iterations:
            setting = history.get((layer, iteration))
            cells.append(f"{SETTING_ORDER.index(setting):4d}" if setting in SETTING_ORDER else "   .")
        print(f"  {layer:5d} | " + " ".join(cells))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--samples", type=int, default=384)
    parser.add_argument("--lr", type=float, default=0.05)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    dataset = SyntheticImageDataset(num_samples=args.samples, num_classes=4, image_size=12,
                                    noise=0.5, seed=args.seed)
    train, validation = dataset.split(0.8)
    train_loader = DataLoader(train, batch_size=32, seed=args.seed)
    val_loader = DataLoader(validation, batch_size=64, shuffle=False)

    schedules = {
        "fp32": FP32Schedule(),
        "high_bfp (m=4)": FixedBFPSchedule(4),
        "fast_adaptive": FASTSchedule(evaluation_interval=4),
    }
    results = {}
    for name, schedule in schedules.items():
        print(f"\n--- training with {name} ---")
        trainer = build_trainer(schedule, args.seed, args.lr)
        results[name] = trainer.fit(train_loader, val_loader, epochs=args.epochs, log_fn=print)

    print("\n=== Validation accuracy summary ===")
    for name, result in results.items():
        print(f"  {name:16s} best = {result.best_val_metric:.1f}%  final = {result.final_val_metric:.1f}%")

    fast_schedule = schedules["fast_adaptive"]
    print_precision_map(fast_schedule)

    # Hardware-side payoff: per-iteration time on the paper-scale ResNet-18.
    systems = iso_area_systems()
    workload = resnet18_workload()
    fast_cost = fast_adaptive_iteration_cost(workload, systems["fast_adaptive"])
    fp32_cost = iteration_cost(workload, systems["fp32"])
    bfp4_cost = iteration_cost(workload, systems["high_bfp"], (4, 4, 4))
    print("\n=== Modelled iteration time on the FAST hardware (paper-scale ResNet-18) ===")
    print(f"  fp32 system        : {fp32_cost.seconds * 1e3:7.1f} ms/iteration")
    print(f"  high_bfp on FAST   : {bfp4_cost.seconds * 1e3:7.1f} ms/iteration")
    print(f"  FAST-Adaptive      : {fast_cost.seconds * 1e3:7.1f} ms/iteration "
          f"({fp32_cost.seconds / fast_cost.seconds:.1f}x faster than FP32)")


if __name__ == "__main__":
    main()
