"""Serve a trained seq2seq Transformer with continuous batching.

Trains a small Transformer on the synthetic reverse-and-shift task under
the FAST quantization schedule, freezes it (weights packed to BFP once),
then serves generation three ways:

1. **Streaming** -- tokens arrive one decode step at a time, not when the
   whole sequence finishes.
2. **Concurrent** -- many requests in flight; the scheduler admits and
   retires sequences per decode step (continuous batching), so short
   requests never wait for long ones sharing a batch.
3. **Quantized KV cache** -- the same server with the per-sequence K/V
   cache stored on the BFP grid (``kv_mantissa_bits=4``): ~5x less cache
   memory for a bounded logit divergence.

Run with:  python examples/generate_text.py [--epochs 4]
"""

import argparse
import time

import numpy as np

from repro import nn, serving
from repro.data import SyntheticTranslationDataset
from repro.models import transformer_small
from repro.training import FASTSchedule, Seq2SeqTrainer


def decode_tokens(tokens, dataset):
    return [int(t) for t in tokens
            if t not in (dataset.pad_index, dataset.bos_index, dataset.eos_index)]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--samples", type=int, default=256)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    dataset = SyntheticTranslationDataset(num_samples=args.samples, vocab_size=16,
                                          min_length=3, max_length=6, seed=args.seed)
    train, validation = dataset.split(0.85)

    print(f"Training transformer_small on reverse-and-shift "
          f"({len(train)} pairs, {args.epochs} epochs, FAST schedule)...")
    model = transformer_small(vocab_size=dataset.vocab_size,
                              max_length=dataset.sequence_length,
                              rng=np.random.default_rng(args.seed))
    optimizer = nn.Adam(model.parameters(), lr=3e-3)
    trainer = Seq2SeqTrainer(model, optimizer, FASTSchedule(evaluation_interval=8),
                             pad_index=dataset.pad_index)
    trainer.fit(train, validation, epochs=args.epochs, batch_size=16)

    frozen = serving.freeze(model, meta={"bos_index": dataset.bos_index,
                                         "eos_index": dataset.eos_index})

    # --- 1. Streaming: tokens as the scheduler emits them ------------------
    print("\n--- streaming generation ---")
    with serving.GenerationServer(frozen) as server:
        for source in validation.sources[:3]:
            src = np.asarray([t for t in source if t != dataset.pad_index])
            emitted = []
            stream = server.stream(src, max_new_tokens=dataset.sequence_length)
            for token in stream:
                emitted.append(int(token))
            result = stream.result()
            print(f"  src={list(map(int, src))}  ->  "
                  f"hyp={decode_tokens(emitted, dataset)}  "
                  f"(ttft {result.timing.ttft_ms:.1f} ms, "
                  f"{result.timing.steps} steps, {result.timing.finish_reason})")

        # --- 2. Concurrent requests share decode steps ---------------------
        print("\n--- continuous batching: 12 concurrent requests ---")
        started = time.monotonic()
        futures = []
        for source in (list(validation.sources) * 3)[:12]:
            src = np.asarray([t for t in source if t != dataset.pad_index])
            futures.append(server.submit(src, max_new_tokens=dataset.sequence_length))
        results = [f.result(timeout=120) for f in futures]
        wall_ms = (time.monotonic() - started) * 1e3
        stats = server.stats()
        tokens = sum(r.timing.steps for r in results)
        print(f"  {len(results)} sequences, {tokens} tokens in {wall_ms:.0f} ms "
              f"({tokens / wall_ms * 1e3:.0f} tok/s)")
        print(f"  mean batch per decode step: {stats['mean_batch_per_step']:.1f} "
              f"(max_active={server.config.max_active})")

    # --- 3. Quantized KV cache: paper-format cache memory ------------------
    print("\n--- BFP-quantized KV cache (kv_mantissa_bits=4) ---")
    config = serving.GenerationConfig(kv_mantissa_bits=4)
    with serving.GenerationServer(frozen, config) as server:
        src = np.asarray([t for t in validation.sources[0]
                          if t != dataset.pad_index])
        result = server.generate(src, max_new_tokens=dataset.sequence_length)
        cache = server.stats()["cache"]
        print(f"  hyp={decode_tokens(result.tokens, dataset)} "
              f"({result.timing.finish_reason})")
        print(f"  cache format: {cache['compression_vs_fp32']:.1f}x smaller "
              f"than an fp32 cache per token")


if __name__ == "__main__":
    main()
