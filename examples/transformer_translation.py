"""Train a Transformer on the synthetic transduction task under several formats.

The paper's Table II includes a 12-layer Transformer trained on IWSLT14
German-English; offline we use the synthetic reverse-and-shift task and a
smaller Transformer, but the workflow is identical: the attention and
feed-forward projections are quantization-aware layers, gradients are
BFP-quantized with stochastic rounding, and the result is scored with BLEU.

Run with:  python examples/transformer_translation.py [--epochs 6]
"""

import argparse

import numpy as np

from repro import nn
from repro.data import SyntheticTranslationDataset
from repro.models import transformer_small
from repro.training import FASTSchedule, FixedBFPSchedule, FP32Schedule, Seq2SeqTrainer


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=6)
    parser.add_argument("--samples", type=int, default=256)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    dataset = SyntheticTranslationDataset(num_samples=args.samples, vocab_size=16,
                                          min_length=3, max_length=6, seed=args.seed)
    train, validation = dataset.split(0.85)

    schedules = {
        "fp32": FP32Schedule(),
        "high_bfp (m=4)": FixedBFPSchedule(4),
        "fast_adaptive": FASTSchedule(evaluation_interval=8),
    }

    print(f"Task: reverse-and-shift transduction, vocab={dataset.vocab_size}, "
          f"{len(train)} training pairs\n")
    scores = {}
    for name, schedule in schedules.items():
        print(f"--- training with {name} ---")
        model = transformer_small(vocab_size=dataset.vocab_size,
                                  max_length=dataset.sequence_length,
                                  rng=np.random.default_rng(args.seed))
        optimizer = nn.Adam(model.parameters(), lr=3e-3)
        trainer = Seq2SeqTrainer(model, optimizer, schedule, pad_index=dataset.pad_index)
        result = trainer.fit(train, validation, epochs=args.epochs, batch_size=16, log_fn=print)
        scores[name] = result.best_val_metric

        # Show a couple of decoded examples.
        generated = model.greedy_decode(validation.sources[:3], dataset.bos_index,
                                        dataset.eos_index, max_length=dataset.sequence_length)
        for source, reference, hypothesis in zip(validation.sources[:3],
                                                 validation.reference_sentences(range(3)),
                                                 generated):
            decoded = [int(token) for token in hypothesis[1:]
                       if token not in (dataset.pad_index, dataset.eos_index)]
            print(f"    src={[int(t) for t in source if t != 0]}  ref={reference}  hyp={decoded}")
        print()

    print("=== Best validation BLEU ===")
    for name, score in scores.items():
        print(f"  {name:16s} {score:6.2f}")


if __name__ == "__main__":
    main()
