"""Quickstart: the FAST building blocks in five minutes.

Walks through the library bottom-up:

1. quantize a tensor to Block Floating Point (BFP) with different mantissa
   widths and rounding modes,
2. compute the relative-improvement statistic r(X) that Algorithm 1 uses to
   pick a precision,
3. run a variable-precision BFP dot product on the functional fMAC model and
   see the pass counts,
4. train a small quantized model with the FAST-Adaptive schedule and compare
   it against FP32.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import nn
from repro.core import bfp_quantize, bfp_quantize_tensor, passes_required, relative_improvement
from repro.data import DataLoader, SyntheticImageDataset
from repro.hardware import fmac_dot_product
from repro.models import MLP
from repro.training import ClassificationTrainer, FASTSchedule, FP32Schedule


def section(title: str) -> None:
    print(f"\n=== {title} ===")


def demo_bfp_quantization(rng: np.random.Generator) -> None:
    section("1. BFP quantization")
    values = rng.standard_normal(16) * np.exp(rng.normal(0, 2, 16))
    for mantissa_bits in (2, 4, 8):
        quantized = bfp_quantize(values, mantissa_bits=mantissa_bits, group_size=16,
                                 exponent_bits=3)
        error = np.abs(quantized - values).mean()
        print(f"  m={mantissa_bits}: mean abs error = {error:.4f}")
    stochastic = bfp_quantize(values, mantissa_bits=2, rounding="stochastic",
                              rng=np.random.default_rng(0))
    print(f"  stochastic rounding changes values: {not np.allclose(stochastic, values)}")


def demo_relative_improvement(rng: np.random.Generator) -> None:
    section("2. Relative improvement r(X) (Equation 2)")
    coarse = np.round(rng.standard_normal(64) * 2) / 2
    fine = rng.standard_normal(64) * np.exp(rng.normal(0, 2, 64))
    print(f"  coarse tensor:      r(X) = {relative_improvement(coarse):.3f} -> 2-bit mantissa is enough")
    print(f"  wide-range tensor:  r(X) = {relative_improvement(fine):.3f} -> promote to 4-bit mantissa")


def demo_fmac(rng: np.random.Generator) -> None:
    section("3. Variable-precision fMAC dot product")
    a = rng.standard_normal(64)
    b = rng.standard_normal(64)
    for bits_a, bits_b in ((2, 2), (4, 2), (4, 4)):
        qa = bfp_quantize_tensor(a, mantissa_bits=bits_a, group_size=16, exponent_bits=8)
        qb = bfp_quantize_tensor(b, mantissa_bits=bits_b, group_size=16, exponent_bits=8)
        result = fmac_dot_product(qa, qb)
        reference = float(qa.to_float() @ qb.to_float())
        print(f"  m=({bits_a},{bits_b}): {passes_required(bits_a, bits_b)} pass(es)/group, "
              f"total passes={result.passes}, |error|={abs(result.value - reference):.2e}")


def demo_fast_training() -> None:
    section("4. FAST-Adaptive training vs FP32")
    dataset = SyntheticImageDataset(num_samples=256, num_classes=4, image_size=10, noise=0.5, seed=0)
    train, validation = dataset.split(0.8)
    results = {}
    for name, schedule in (("fp32", FP32Schedule()), ("fast_adaptive", FASTSchedule(evaluation_interval=4))):
        model = MLP(3 * 10 * 10, [48], 4, rng=np.random.default_rng(0))
        optimizer = nn.SGD(model.parameters(), lr=0.1, momentum=0.9)
        trainer = ClassificationTrainer(model, optimizer, schedule)
        result = trainer.fit(DataLoader(train, 32, seed=1), DataLoader(validation, 64, shuffle=False),
                             epochs=4)
        results[name] = result
        print(f"  {name:14s} validation accuracy per epoch: "
              + ", ".join(f"{value:.1f}%" for value in result.val_metric_history))
    fast_schedule = results["fast_adaptive"]
    final_precisions = fast_schedule.precision_history[-1]
    low = sum(1 for entry in final_precisions if entry["weight"] == 2)
    print(f"  FAST kept {low}/{len(final_precisions)} layers' weights at 2-bit mantissas "
          "in the final epoch (precision grows as training progresses).")


def main() -> None:
    rng = np.random.default_rng(7)
    demo_bfp_quantization(rng)
    demo_relative_improvement(rng)
    demo_fmac(rng)
    demo_fast_training()
    print("\nDone. See examples/train_cnn_fast.py for the full CNN workflow.")


if __name__ == "__main__":
    main()
