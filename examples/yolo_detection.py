"""Train a YOLO-style detector on the synthetic detection dataset under BFP.

Mirrors the paper's YOLOv2 / PASCAL VOC experiment at laptop scale: a tiny
single-scale detector, the YOLO multi-part loss, and mAP@0.5 evaluation,
trained under FP32 and under FAST-Adaptive BFP.

Run with:  python examples/yolo_detection.py [--epochs 8]
"""

import argparse

import numpy as np

from repro import nn
from repro.data import SyntheticDetectionDataset
from repro.models import decode_predictions, tiny_yolo
from repro.training import DetectionTrainer, FASTSchedule, FP32Schedule


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--samples", type=int, default=96)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    dataset = SyntheticDetectionDataset(num_samples=args.samples, num_classes=3, image_size=32,
                                        grid_size=4, max_objects=2, noise=0.15, seed=args.seed)
    train, validation = dataset.split(0.8)
    print(f"Synthetic detection task: {len(train)} train / {len(validation)} validation images, "
          f"{dataset.num_classes} classes\n")

    schedules = {
        "fp32": FP32Schedule(),
        "fast_adaptive": FASTSchedule(evaluation_interval=8),
    }
    results = {}
    for name, schedule in schedules.items():
        print(f"--- training with {name} ---")
        model = tiny_yolo(num_classes=dataset.num_classes, image_size=dataset.image_size,
                          width=8, rng=np.random.default_rng(args.seed))
        optimizer = nn.Adam(model.parameters(), lr=5e-3)
        trainer = DetectionTrainer(model, optimizer, schedule)
        result = trainer.fit(train, validation, epochs=args.epochs, batch_size=16, log_fn=print)
        results[name] = (result, model)
        print()

    print("=== mAP@0.5 summary ===")
    for name, (result, _) in results.items():
        print(f"  {name:14s} best mAP = {result.best_val_metric:.1f}")

    # Show the detections of the FAST-trained model on one validation image.
    _, model = results["fast_adaptive"]
    with nn.no_grad():
        raw = model(validation.images[:1]).data
    boxes = decode_predictions(raw, threshold=0.4)[0]
    truth = validation.ground_truth_boxes()[0]
    print("\nExample image 0:")
    print(f"  ground truth: {[(round(x, 2), round(y, 2), round(w, 2), round(h, 2), c) for x, y, w, h, c in truth]}")
    print(f"  detections  : {[(round(x, 2), round(y, 2), round(w, 2), round(h, 2), c, round(s, 2)) for x, y, w, h, c, s in boxes]}")


if __name__ == "__main__":
    main()
