"""Explore the hardware side of FAST: MAC designs, system breakdown, training time.

Reproduces, at the command line, the hardware analyses of Section VII:

* the MAC design comparison of Table IV (fMAC vs INT8/INT12/HFP8/bfloat16/FP16),
* the FAST system area/power breakdown of Table III,
* the iso-area baseline systems of Section VII-B and the per-iteration
  training time they achieve on each paper workload (the raw material of
  Figures 19 and 20), and
* a small design-space sweep over the fMAC group size.

Run with:  python examples/hardware_design_space.py
"""

from repro.analysis import format_table
from repro.hardware import (
    FASTSystem,
    PAPER_TABLE3,
    PAPER_TABLE4,
    fmac_design,
    format_iteration_costs,
    iso_area_systems,
    paper_workloads,
    table4_designs,
)


def show_mac_comparison() -> None:
    print("\n=== MAC design comparison (Table IV) ===")
    designs = table4_designs()
    baseline = designs[0]
    rows = []
    for design in designs:
        paper = PAPER_TABLE4[design.name]
        rows.append([
            design.name,
            design.relative_area(baseline),
            paper["area"],
            design.power_mw,
            paper["power_mw"],
            design.lut,
            paper["lut"],
        ])
    print(format_table(
        ["MAC", "area (model)", "area (paper)", "power mW (model)", "power mW (paper)",
         "LUT (model)", "LUT (paper)"],
        rows,
    ))


def show_system_breakdown() -> None:
    print("\n=== FAST system breakdown (Table III) ===")
    system = FASTSystem()
    area = system.area_breakdown()
    power = system.power_breakdown()
    rows = [
        [name, area[name] * 100, PAPER_TABLE3[name]["area_fraction"] * 100,
         power[name], PAPER_TABLE3[name]["power_w"]]
        for name in area
    ]
    print(format_table(["component", "area % (model)", "area % (paper)",
                        "power W (model)", "power W (paper)"], rows))
    print(f"  total power: {system.total_power_w():.2f} W")


def show_iteration_times() -> None:
    print("\n=== Per-iteration training time by format (basis of Figures 19/20) ===")
    systems = iso_area_systems()
    order = ["fp32", "nvidia_mp", "bfloat16", "int12", "msfp12", "hfp8", "mid_bfp", "fast_adaptive"]
    for name, workload in paper_workloads().items():
        costs = format_iteration_costs(workload, systems)
        fast = costs["fast_adaptive"].seconds
        summary = "  ".join(f"{fmt}={costs[fmt].seconds / fast:4.2f}x" for fmt in order)
        print(f"  {name:13s} {summary}")


def sweep_group_size() -> None:
    print("\n=== fMAC area vs group size (design-space sweep) ===")
    rows = []
    for group_size in (4, 8, 16, 32, 64):
        design = fmac_design(group_size=group_size)
        rows.append([group_size, design.area_units, design.area_units / group_size, design.power_mw])
    print(format_table(["group size", "area (units)", "area / value", "power (mW)"], rows))
    print("  Larger groups amortize the FP accumulator but increase the per-group "
          "exponent disparity (Figure 6), which is why the paper settles on g=16.")


def main() -> None:
    show_mac_comparison()
    show_system_breakdown()
    show_iteration_times()
    sweep_group_size()


if __name__ == "__main__":
    main()
