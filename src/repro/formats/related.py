"""Related-work block formats discussed in Section II-A.

The paper positions FAST against two earlier BFP-for-training proposals:

* **Flexpoint** (Koster et al., NeurIPS 2017): a 16-bit mantissa with a
  single 5-bit exponent shared across an *entire tensor*.  The tensor-wide
  exponent makes conversion trivial but wastes mantissa bits whenever the
  tensor has a wide dynamic range.
* **Hybrid/tile BFP** (Drumond et al., NeurIPS 2018): 2-D tiles of 24x24
  values (group size 576) sharing an exponent, which requires a wide 12-bit
  mantissa to preserve accuracy -- the paper argues that at such group sizes
  BFP loses its advantage over plain INT12.

Both are provided here so the Table II-style comparisons (and the group-size
ablation) can include them.
"""

from __future__ import annotations

import numpy as np

from ..core.bfp import bfp_quantize
from .base import NumberFormat, TensorKind

__all__ = ["FlexpointFormat", "TileBFPFormat"]


class FlexpointFormat(NumberFormat):
    """Flexpoint-style format: one shared exponent per tensor.

    Parameters
    ----------
    mantissa_bits:
        Mantissa width (16 in the Flexpoint paper, "flex16+5").
    exponent_bits:
        Shared exponent width (5 in the Flexpoint paper).  Only used for the
        storage accounting; the exponent itself is computed from the tensor.
    """

    def __init__(self, mantissa_bits: int = 16, exponent_bits: int = 5,
                 stochastic_gradients: bool = True):
        self.mantissa_bits = mantissa_bits
        self.exponent_bits = exponent_bits
        self.stochastic_gradients = stochastic_gradients
        self.name = f"flexpoint_m{mantissa_bits}"
        self.group_size = None  # the "group" is the whole tensor

    def quantize(self, x, kind: str = TensorKind.ACTIVATION, rng=None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        rounding = "nearest"
        if kind == TensorKind.GRADIENT and self.stochastic_gradients:
            rounding = "stochastic"
        flat = x.reshape(1, -1) if x.size else x.reshape(1, 0)
        quantized = bfp_quantize(
            flat,
            mantissa_bits=self.mantissa_bits,
            group_size=max(flat.shape[-1], 1),
            exponent_bits=None,
            rounding=rounding,
            rng=rng,
        )
        return quantized.reshape(x.shape)

    @property
    def bits_per_value(self) -> float:
        # Sign + mantissa per value; the single exponent is negligible.
        return 1.0 + self.mantissa_bits


class TileBFPFormat(NumberFormat):
    """Tile-based BFP (HBFP-style): 2-D tiles share one exponent.

    ``tile`` values along each of the last two dimensions share an exponent
    (24 x 24 = 576 values in Drumond et al.).  Tensors with fewer than two
    dimensions fall back to 1-D grouping of ``tile * tile`` values.
    """

    def __init__(self, mantissa_bits: int = 12, tile: int = 24, exponent_bits: int = 8,
                 stochastic_gradients: bool = True):
        self.mantissa_bits = mantissa_bits
        self.tile = tile
        self.exponent_bits = exponent_bits
        self.stochastic_gradients = stochastic_gradients
        self.group_size = tile * tile
        self.name = f"tile_bfp_m{mantissa_bits}_t{tile}"

    def _rounding(self, kind: str) -> str:
        if kind == TensorKind.GRADIENT and self.stochastic_gradients:
            return "stochastic"
        return "nearest"

    def quantize(self, x, kind: str = TensorKind.ACTIVATION, rng=None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        rounding = self._rounding(kind)
        if x.ndim < 2:
            return bfp_quantize(x, mantissa_bits=self.mantissa_bits, group_size=self.group_size,
                                exponent_bits=self.exponent_bits, rounding=rounding, rng=rng)
        # Pad the last two dimensions up to tile multiples, view as tiles and
        # quantize each tile as one group.
        height, width = x.shape[-2], x.shape[-1]
        pad_h = (-height) % self.tile
        pad_w = (-width) % self.tile
        pad_spec = [(0, 0)] * (x.ndim - 2) + [(0, pad_h), (0, pad_w)]
        padded = np.pad(x, pad_spec)
        new_h, new_w = padded.shape[-2], padded.shape[-1]
        lead = padded.shape[:-2]
        tiles = padded.reshape(*lead, new_h // self.tile, self.tile, new_w // self.tile, self.tile)
        tiles = np.moveaxis(tiles, -3, -2)  # (..., th, tw, tile, tile)
        flat_tiles = tiles.reshape(-1, self.tile * self.tile)
        quantized = bfp_quantize(flat_tiles, mantissa_bits=self.mantissa_bits,
                                 group_size=self.group_size, exponent_bits=self.exponent_bits,
                                 rounding=rounding, rng=rng, axis=-1)
        quantized = quantized.reshape(tiles.shape)
        quantized = np.moveaxis(quantized, -2, -3)
        quantized = quantized.reshape(*lead, new_h, new_w)
        if pad_h or pad_w:
            quantized = quantized[..., :height, :width]
        return quantized

    @property
    def bits_per_value(self) -> float:
        return 1 + self.mantissa_bits + self.exponent_bits / self.group_size
