"""Name-based registry of number formats.

Benchmarks and trainers refer to formats by the short names used in the
paper's tables (``fp32``, ``bfloat16``, ``nvidia_mp``, ``int8``, ``int12``,
``msfp12``, ``low_bfp``, ``mid_bfp``, ``high_bfp``, ``hfp8``).  The registry
constructs a fresh format object per request so callers can mutate format
state (e.g. RNGs) without interference.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from .base import NumberFormat
from .blockfp import BFPFormat, HighBFPFormat, LowBFPFormat, MidBFPFormat, MSFP12Format
from .fixed import BinaryFormat, INT8Format, INT12Format
from .floating import (
    BFloat16Format,
    FP16Format,
    FP32Format,
    HFP8Format,
    NvidiaMixedPrecisionFormat,
    TensorFloat32Format,
)
from .related import FlexpointFormat, TileBFPFormat

__all__ = ["get_format", "register_format", "available_formats", "TABLE2_FORMATS"]


_REGISTRY: Dict[str, Callable[[], NumberFormat]] = {
    "fp32": FP32Format,
    "fp16": FP16Format,
    "bfloat16": BFloat16Format,
    "tf32": TensorFloat32Format,
    "hfp8": HFP8Format,
    "nvidia_mp": NvidiaMixedPrecisionFormat,
    "int8": INT8Format,
    "int12": INT12Format,
    "binary": BinaryFormat,
    "msfp12": MSFP12Format,
    "low_bfp": LowBFPFormat,
    "mid_bfp": MidBFPFormat,
    "high_bfp": HighBFPFormat,
    "flexpoint": FlexpointFormat,
    "tile_bfp": TileBFPFormat,
}

#: The column order of Table II in the paper.
TABLE2_FORMATS: List[str] = [
    "fp32",
    "bfloat16",
    "nvidia_mp",
    "int8",
    "int12",
    "msfp12",
    "low_bfp",
    "mid_bfp",
    "high_bfp",
    "hfp8",
]


def register_format(name: str, factory: Callable[[], NumberFormat], overwrite: bool = False) -> None:
    """Register a new format factory under ``name``."""
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"format {name!r} is already registered")
    _REGISTRY[name] = factory


def get_format(name: str, **kwargs) -> NumberFormat:
    """Instantiate the format registered under ``name``.

    Custom BFP configurations can be requested with names of the form
    ``bfp_e<E>_m<M>_g<G>`` (for example ``bfp_e3_m4_g8``).
    """
    if name in _REGISTRY:
        return _REGISTRY[name](**kwargs)
    if name.startswith("bfp_"):
        params = _parse_bfp_name(name)
        params.update(kwargs)
        return BFPFormat(**params)
    raise KeyError(f"unknown number format {name!r}; known formats: {sorted(_REGISTRY)}")


def available_formats() -> List[str]:
    """Names of all registered formats."""
    return sorted(_REGISTRY)


def _parse_bfp_name(name: str) -> Dict[str, int]:
    parts = name.split("_")[1:]
    params: Dict[str, int] = {}
    mapping = {"e": "exponent_bits", "m": "mantissa_bits", "g": "group_size"}
    for part in parts:
        key, value = part[0], part[1:]
        if key not in mapping or not value.isdigit():
            raise KeyError(f"cannot parse BFP format name {name!r}")
        params[mapping[key]] = int(value)
    return params
