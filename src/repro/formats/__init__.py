"""Number formats used for DNN training and inference (Figure 2 of the paper)."""

from .base import NumberFormat, TensorKind
from .blockfp import BFPFormat, HighBFPFormat, LowBFPFormat, MidBFPFormat, MSFP12Format
from .fixed import BinaryFormat, FixedPointFormat, INT8Format, INT12Format, uniform_quantize
from .floating import (
    BFloat16Format,
    FP16Format,
    FP32Format,
    HFP8Format,
    NvidiaMixedPrecisionFormat,
    TensorFloat32Format,
    float_quantize,
)
from .related import FlexpointFormat, TileBFPFormat
from .registry import TABLE2_FORMATS, available_formats, get_format, register_format

__all__ = [
    "NumberFormat",
    "TensorKind",
    "BFPFormat",
    "LowBFPFormat",
    "MidBFPFormat",
    "HighBFPFormat",
    "MSFP12Format",
    "FlexpointFormat",
    "TileBFPFormat",
    "FixedPointFormat",
    "INT8Format",
    "INT12Format",
    "BinaryFormat",
    "uniform_quantize",
    "FP32Format",
    "FP16Format",
    "BFloat16Format",
    "TensorFloat32Format",
    "HFP8Format",
    "NvidiaMixedPrecisionFormat",
    "float_quantize",
    "get_format",
    "register_format",
    "available_formats",
    "TABLE2_FORMATS",
]
