"""Scalar floating point formats: FP32, FP16, bfloat16, TensorFloat-32, HFP8.

These are the "Floating Point Formats" row of Figure 2.  Each format is a
(sign, exponent, mantissa) triple; fake quantization rounds the mantissa to
the target width and clamps the exponent to the representable range, flushing
values below the smallest subnormal to zero and saturating values above the
largest normal.
"""

from __future__ import annotations

import numpy as np

from .base import NumberFormat, TensorKind

__all__ = [
    "float_quantize",
    "FP32Format",
    "FP16Format",
    "BFloat16Format",
    "TensorFloat32Format",
    "HFP8Format",
    "NvidiaMixedPrecisionFormat",
]


def float_quantize(x, exponent_bits: int, mantissa_bits: int, rounding: str = "nearest") -> np.ndarray:
    """Quantize ``x`` to a custom floating point format.

    Parameters
    ----------
    x:
        Input array (any float dtype).
    exponent_bits:
        Width of the exponent field.  The bias is ``2**(exponent_bits-1) - 1``
        as in IEEE 754.
    mantissa_bits:
        Width of the stored (fractional) mantissa field.
    rounding:
        ``"nearest"`` (default) or ``"truncate"``.

    Subnormals are supported: values between the smallest normal and the
    smallest subnormal are quantized on the subnormal grid; values below half
    of the smallest subnormal round to zero.  Magnitudes above the largest
    representable value saturate.
    """
    x = np.asarray(x, dtype=np.float64)
    if exponent_bits < 1:
        raise ValueError("exponent_bits must be >= 1")
    if mantissa_bits < 0:
        raise ValueError("mantissa_bits must be >= 0")

    bias = (1 << (exponent_bits - 1)) - 1
    max_exponent = (1 << exponent_bits) - 2 - bias  # all-ones exponent reserved for inf/nan
    min_exponent = 1 - bias
    max_value = (2.0 - 2.0 ** (-mantissa_bits)) * 2.0 ** max_exponent

    result = np.zeros_like(x)
    nonzero = x != 0
    if not np.any(nonzero):
        return result.astype(x.dtype) if np.issubdtype(x.dtype, np.floating) else result

    values = x[nonzero]
    magnitudes = np.abs(values)
    # Exact floor(log2 |x|) from the float representation: frexp returns
    # x = m * 2**e with m in [0.5, 1), so floor(log2 x) == e - 1 even at and
    # just below exact powers of two where a rounded log2 can be off by one.
    exponents = np.frexp(magnitudes)[1].astype(np.float64) - 1.0
    exponents = np.clip(exponents, min_exponent, max_exponent)
    scales = 2.0 ** (exponents - mantissa_bits)
    scaled = values / scales
    if rounding == "truncate":
        quantized = np.sign(scaled) * np.floor(np.abs(scaled))
    else:
        quantized = np.sign(scaled) * np.floor(np.abs(scaled) + 0.5)
    quantized = quantized * scales
    quantized = np.clip(quantized, -max_value, max_value)
    result[nonzero] = quantized
    if np.issubdtype(x.dtype, np.floating):
        return result.astype(x.dtype)
    return result


class FP32Format(NumberFormat):
    """IEEE 754 single precision -- the full-precision baseline."""

    name = "fp32"
    exponent_bits = 8
    mantissa_bits = 23

    def quantize(self, x, kind: str = TensorKind.ACTIVATION, rng=None) -> np.ndarray:
        return np.asarray(x, dtype=np.float64).astype(np.float32).astype(np.float64)


class FP16Format(NumberFormat):
    """IEEE 754 half precision (1-5-10), used by Nvidia Mixed Precision."""

    name = "fp16"
    exponent_bits = 5
    mantissa_bits = 10

    def quantize(self, x, kind: str = TensorKind.ACTIVATION, rng=None) -> np.ndarray:
        return float_quantize(x, self.exponent_bits, self.mantissa_bits)


class BFloat16Format(NumberFormat):
    """Google bfloat16 (1-8-7): FP32 dynamic range with a short mantissa."""

    name = "bfloat16"
    exponent_bits = 8
    mantissa_bits = 7

    def quantize(self, x, kind: str = TensorKind.ACTIVATION, rng=None) -> np.ndarray:
        return float_quantize(x, self.exponent_bits, self.mantissa_bits)


class TensorFloat32Format(NumberFormat):
    """Nvidia TensorFloat-32 (1-8-10)."""

    name = "tf32"
    exponent_bits = 8
    mantissa_bits = 10

    def quantize(self, x, kind: str = TensorKind.ACTIVATION, rng=None) -> np.ndarray:
        return float_quantize(x, self.exponent_bits, self.mantissa_bits)


class HFP8Format(NumberFormat):
    """IBM Hybrid FP8: 1-4-3 for the forward pass, 1-5-2 for the backward pass.

    Weights and activations (forward-pass tensors) use the 4-bit-exponent
    variant; gradients (backward-pass tensors) use the 5-bit-exponent variant
    with its wider dynamic range.
    """

    name = "hfp8"
    exponent_bits = 4
    mantissa_bits = 3
    backward_exponent_bits = 5
    backward_mantissa_bits = 2

    def quantize(self, x, kind: str = TensorKind.ACTIVATION, rng=None) -> np.ndarray:
        if kind == TensorKind.GRADIENT:
            return float_quantize(x, self.backward_exponent_bits, self.backward_mantissa_bits)
        return float_quantize(x, self.exponent_bits, self.mantissa_bits)


class NvidiaMixedPrecisionFormat(NumberFormat):
    """Nvidia Mixed Precision: FP16 compute with an FP32 master copy of weights.

    The fake-quantization model keeps weights in FP32 (master copy) while
    activations and gradients pass through FP16, which is how the scheme
    behaves numerically at the matrix-multiply inputs.
    """

    name = "nvidia_mp"
    exponent_bits = 5
    mantissa_bits = 10

    def quantize(self, x, kind: str = TensorKind.ACTIVATION, rng=None) -> np.ndarray:
        quantized = float_quantize(x, self.exponent_bits, self.mantissa_bits)
        return quantized
