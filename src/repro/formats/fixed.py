"""Fixed point (integer) formats with per-tensor uniform quantization.

These are the "Fixed Point Formats" of Figure 2.  The conversion from FP32
uses conventional symmetric uniform quantization (UQ in the paper's Table I):
an FP32 per-tensor scale maps the tensor's maximum magnitude to the largest
representable integer.  Section III-B points out that this FP scale makes the
INT conversion more expensive than the BFP conversion; the accuracy side is
what Table II measures.
"""

from __future__ import annotations

import numpy as np

from .base import NumberFormat, TensorKind

__all__ = ["uniform_quantize", "FixedPointFormat", "INT8Format", "INT12Format", "BinaryFormat"]


def uniform_quantize(x, bits: int, rng=None, stochastic: bool = False) -> np.ndarray:
    """Symmetric per-tensor uniform quantization to ``bits`` total bits.

    One bit is the sign; the remaining ``bits - 1`` bits hold the magnitude,
    so values are mapped onto ``{-Q, ..., -1, 0, 1, ..., Q}`` with
    ``Q = 2**(bits-1) - 1`` and a scale of ``max|x| / Q``.
    """
    if bits < 2:
        raise ValueError("uniform quantization needs at least 2 bits (sign + magnitude)")
    x = np.asarray(x, dtype=np.float64)
    levels = (1 << (bits - 1)) - 1
    max_magnitude = float(np.abs(x).max()) if x.size else 0.0
    if max_magnitude == 0.0:
        return np.zeros_like(x)
    scale = max_magnitude / levels
    scaled = x / scale
    if stochastic:
        if rng is None:
            rng = np.random.default_rng()  # repro-lint: disable=RL005 -- API fallback; repro paths thread a seeded rng
        noise = rng.random(x.shape)
        quantized = np.sign(scaled) * np.floor(np.abs(scaled) + noise)
    else:
        quantized = np.sign(scaled) * np.floor(np.abs(scaled) + 0.5)
    quantized = np.clip(quantized, -levels, levels)
    return quantized * scale


class FixedPointFormat(NumberFormat):
    """Generic fixed point format with ``total_bits`` bits (sign included)."""

    exponent_bits = 0

    def __init__(self, total_bits: int, name: str = None, stochastic_gradients: bool = False):
        if total_bits < 2:
            raise ValueError("total_bits must be >= 2")
        self.total_bits = total_bits
        self.mantissa_bits = total_bits - 1
        self.name = name if name is not None else f"int{total_bits}"
        self.stochastic_gradients = stochastic_gradients

    def quantize(self, x, kind: str = TensorKind.ACTIVATION, rng=None) -> np.ndarray:
        stochastic = self.stochastic_gradients and kind == TensorKind.GRADIENT
        return uniform_quantize(x, self.total_bits, rng=rng, stochastic=stochastic)

    @property
    def bits_per_value(self) -> float:
        return float(self.total_bits)


class INT8Format(FixedPointFormat):
    """8-bit fixed point (1 sign + 7 magnitude bits)."""

    def __init__(self, stochastic_gradients: bool = False):
        super().__init__(8, name="int8", stochastic_gradients=stochastic_gradients)


class INT12Format(FixedPointFormat):
    """12-bit fixed point (1 sign + 11 magnitude bits).

    The paper finds INT12 is the narrowest fixed point format matching FP32
    accuracy, which is the comparison point for BFP's mantissa savings.
    """

    def __init__(self, stochastic_gradients: bool = False):
        super().__init__(12, name="int12", stochastic_gradients=stochastic_gradients)


class BinaryFormat(NumberFormat):
    """1-bit binary format (sign only), as used by binarized networks."""

    name = "binary"
    exponent_bits = 0
    mantissa_bits = 0

    def quantize(self, x, kind: str = TensorKind.ACTIVATION, rng=None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.size == 0:
            return np.zeros_like(x)
        scale = float(np.abs(x).mean()) or 1.0
        return np.where(x >= 0, scale, -scale)

    @property
    def bits_per_value(self) -> float:
        return 1.0
