"""Block floating point number formats (the bottom row of Figure 2).

These wrap :func:`repro.core.bfp.bfp_quantize` behind the
:class:`~repro.formats.base.NumberFormat` interface so trainers can treat BFP
exactly like any scalar format.  The fixed-precision baselines of Section VI
are provided as named classes:

* ``LowBFP``  -- e=3, m=2, g=16
* ``MidBFP``  -- e=3, m=3, g=16
* ``HighBFP`` -- e=3, m=4, g=16
* ``MSFP-12`` -- e=8, m=3, g=16 (Microsoft Floating Point, inference format
  used as a training baseline in the paper)

FAST's own formats apply stochastic rounding to gradients; MSFP-12, being a
post-training-quantization format, uses nearest rounding everywhere.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.bfp import BFPConfig, bfp_quantize
from .base import NumberFormat, TensorKind

__all__ = [
    "BFPFormat",
    "LowBFPFormat",
    "MidBFPFormat",
    "HighBFPFormat",
    "MSFP12Format",
]


class BFPFormat(NumberFormat):
    """Fixed-precision BFP format.

    Parameters
    ----------
    mantissa_bits, group_size, exponent_bits:
        The BFP parameters ``m``, ``g`` and ``e``.
    stochastic_gradients:
        Apply stochastic rounding when quantizing gradients (Section III-C
        argues this is essential at low mantissa widths).
    name:
        Registry name; derived from the parameters when omitted.
    """

    def __init__(
        self,
        mantissa_bits: int = 4,
        group_size: int = 16,
        exponent_bits: int = 3,
        stochastic_gradients: bool = True,
        name: Optional[str] = None,
        axis: int = -1,
    ):
        self.mantissa_bits = mantissa_bits
        self.group_size = group_size
        self.exponent_bits = exponent_bits
        self.stochastic_gradients = stochastic_gradients
        self.axis = axis
        self.name = name if name is not None else f"bfp_e{exponent_bits}_m{mantissa_bits}_g{group_size}"

    @property
    def config(self) -> BFPConfig:
        """The equivalent :class:`~repro.core.bfp.BFPConfig`."""
        return BFPConfig(
            mantissa_bits=self.mantissa_bits,
            group_size=self.group_size,
            exponent_bits=self.exponent_bits,
        )

    def quantize(self, x, kind: str = TensorKind.ACTIVATION, rng=None) -> np.ndarray:
        rounding = "nearest"
        if kind == TensorKind.GRADIENT and self.stochastic_gradients:
            rounding = "stochastic"
        return bfp_quantize(
            x,
            mantissa_bits=self.mantissa_bits,
            group_size=self.group_size,
            exponent_bits=self.exponent_bits,
            rounding=rounding,
            axis=self.axis,
            rng=rng,
        )

    @property
    def bits_per_value(self) -> float:
        return 1 + self.mantissa_bits + self.exponent_bits / self.group_size


class LowBFPFormat(BFPFormat):
    """LowBFP baseline: e=3, m=2, g=16 for all tensors."""

    def __init__(self, stochastic_gradients: bool = True):
        super().__init__(mantissa_bits=2, group_size=16, exponent_bits=3,
                         stochastic_gradients=stochastic_gradients, name="low_bfp")


class MidBFPFormat(BFPFormat):
    """MidBFP baseline: e=3, m=3, g=16 for all tensors."""

    def __init__(self, stochastic_gradients: bool = True):
        super().__init__(mantissa_bits=3, group_size=16, exponent_bits=3,
                         stochastic_gradients=stochastic_gradients, name="mid_bfp")


class HighBFPFormat(BFPFormat):
    """HighBFP baseline: e=3, m=4, g=16 for all tensors."""

    def __init__(self, stochastic_gradients: bool = True):
        super().__init__(mantissa_bits=4, group_size=16, exponent_bits=3,
                         stochastic_gradients=stochastic_gradients, name="high_bfp")


class MSFP12Format(BFPFormat):
    """Microsoft Floating Point MSFP-12: e=8, m=3, g=16, nearest rounding."""

    def __init__(self):
        super().__init__(mantissa_bits=3, group_size=16, exponent_bits=8,
                         stochastic_gradients=False, name="msfp12")
