"""Common interface for the number formats of Figure 2.

Every format exposes :meth:`NumberFormat.quantize`, which maps an FP32 array
onto the format's representable grid ("fake quantization").  The quantization
may depend on the *tensor kind* -- weights, activations or gradients --
because several formats in the paper treat them differently (HFP8 uses a
different exponent/mantissa split for the backward pass; FAST applies
stochastic rounding only to gradients).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["NumberFormat", "TensorKind"]


class TensorKind:
    """Symbolic names for the tensor kinds a format may distinguish."""

    WEIGHT = "weight"
    ACTIVATION = "activation"
    GRADIENT = "gradient"

    ALL = (WEIGHT, ACTIVATION, GRADIENT)


class NumberFormat:
    """Base class for all number formats.

    Subclasses must implement :meth:`quantize` and should set ``name``,
    ``exponent_bits`` and ``mantissa_bits`` so that the hardware cost models
    can reason about them.  ``group_size`` is ``None`` for scalar formats and
    the BFP group size for block formats.
    """

    #: Short identifier used by the registry and by benchmark tables.
    name: str = "abstract"
    #: Exponent field width (0 for fixed point formats).
    exponent_bits: int = 0
    #: Mantissa field width excluding the sign bit.
    mantissa_bits: int = 0
    #: Number of values sharing an exponent (None for scalar formats).
    group_size: Optional[int] = None

    def quantize(self, x, kind: str = TensorKind.ACTIVATION, rng=None) -> np.ndarray:
        """Return ``x`` snapped onto this format's representable values."""
        raise NotImplementedError

    @property
    def bits_per_value(self) -> float:
        """Average storage bits per value (sign + mantissa + amortized exponent)."""
        if self.group_size:
            return 1 + self.mantissa_bits + self.exponent_bits / self.group_size
        return 1 + self.mantissa_bits + self.exponent_bits

    def describe(self) -> str:
        """Human-readable one-line description used in reports."""
        parts = [f"e={self.exponent_bits}", f"m={self.mantissa_bits}"]
        if self.group_size:
            parts.insert(0, f"g={self.group_size}")
        return f"{self.name} ({', '.join(parts)})"

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"<{type(self).__name__} {self.describe()}>"
