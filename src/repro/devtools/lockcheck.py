"""Dynamic lock-order detector: catch ABBA deadlocks without hitting them.

A deadlock needs two threads to interleave *just so*; a lock-order
*inversion* only needs each order to occur once, on any thread, at any
time.  This module exploits that: :func:`install` replaces
``threading.Lock`` with a factory for :class:`TrackedLock`, which records
-- per acquisition -- the set of locks the acquiring thread already holds.
Every (held -> acquired) pair becomes an edge in a global lock-order
graph, labelled with the source site (``file:line``) that created it.  A
cycle in that graph means two code paths acquire the same locks in
opposite orders, i.e. a latent deadlock, and :func:`check` (or release of
the offending lock) raises :class:`LockOrderError` with both sites --
even though no thread ever blocked.

The wrapper is protocol-complete (``acquire(blocking, timeout)`` /
``release`` / ``locked`` / context manager), so ``queue.Queue``,
``threading.Condition`` and friends work unchanged on top of it.

Guarded-state checking complements the static RL004 rule at runtime:
:func:`register_guard` associates an object (by id) with the lock that
must be held to touch it, and :func:`record_access` -- sprinkled into
tests or debug builds -- raises :class:`GuardViolation` when the owning
lock is not held by the calling thread.

Everything is opt-in: importing this module patches nothing.  Tests use
the ``lock_order_check`` fixture (tests/serving/conftest.py), enabled by
``REPRO_LOCKCHECK=1``, which installs around each test and fails the test
on any inversion recorded during it.

Known blind spots: locks created *before* :func:`install` are invisible
(the fixture installs before the server under test is constructed, so
this rarely matters), and ``threading.RLock`` is left untouched because
re-entrancy makes hold-sets ambiguous.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Set, Tuple

__all__ = [
    "LockOrderError",
    "GuardViolation",
    "TrackedLock",
    "install",
    "uninstall",
    "installed",
    "check",
    "reset",
    "edges",
    "register_guard",
    "unregister_guard",
    "record_access",
    "assert_owned",
]

_RealLock = threading.Lock  # the C factory, captured at import time

# ---------------------------------------------------------------------- #
# Global detector state.  One registry per process; the registry has its
# own real (untracked) lock so the detector never traces itself.


class LockOrderError(AssertionError):
    """A cycle in the lock acquisition graph: a latent ABBA deadlock."""


class GuardViolation(AssertionError):
    """Registered shared state touched without holding its owning lock."""


class _Registry:
    def __init__(self) -> None:
        self._mutex = _RealLock()
        # (held_label, acquired_label) -> (held_site, acquired_site)
        self.order: Dict[Tuple[str, str], Tuple[str, str]] = {}
        self.violations: List[str] = []
        # id(obj) -> (TrackedLock, description)
        self.guards: Dict[int, Tuple["TrackedLock", str]] = {}

    def record(self, held: "TrackedLock", acquired: "TrackedLock",
               site: str) -> Optional[str]:
        """Add edge held->acquired; return a violation message on a cycle."""
        if held.label == acquired.label:
            # Same creation site (e.g. one lock per metric instance):
            # distinct objects, no ordering relation to learn.
            return None
        with self._mutex:
            key = (held.label, acquired.label)
            if key not in self.order:
                self.order[key] = (held.site, site)
            if self._path_exists(acquired.label, held.label):
                back = self.order.get((acquired.label, held.label))
                message = (
                    f"lock-order inversion: {held.label} -> {acquired.label} "
                    f"at {site}, but {acquired.label} -> {held.label} was "
                    f"recorded at {back[1] if back else '<indirect>'}")
                self.violations.append(message)
                return message
        return None

    def _path_exists(self, start: str, goal: str) -> bool:
        """DFS over recorded edges (called with ``_mutex`` held)."""
        stack, seen = [start], set()
        while stack:
            node = stack.pop()
            if node == goal:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(b for (a, b) in self.order if a == node)
        return False


_registry = _Registry()
_installed = False
_raise_inline = True

_held = threading.local()  # per-thread list of currently-held TrackedLocks


def _held_list() -> List["TrackedLock"]:
    locks = getattr(_held, "locks", None)
    if locks is None:
        locks = _held.locks = []
    return locks


def _call_site(depth: int = 2) -> str:
    """``file:line`` of the caller ``depth`` frames up, repo-relative-ish."""
    import sys

    frame = sys._getframe(depth)
    filename = frame.f_code.co_filename
    for marker in ("/src/", "/tests/", "/benchmarks/"):
        index = filename.rfind(marker)
        if index >= 0:
            filename = filename[index + 1:]
            break
    return f"{filename}:{frame.f_lineno}"


class TrackedLock:
    """Drop-in ``threading.Lock`` that records acquisition order.

    The label identifying a lock in the order graph is its *creation
    site*: all locks born on the same line (one per server instance, one
    per metric) are the same "role", which is what an ordering discipline
    is about.
    """

    __slots__ = ("_inner", "label", "site")

    def __init__(self, label: Optional[str] = None):
        self._inner = _RealLock()
        self.site = _call_site(2)
        self.label = label or self.site

    # -- threading.Lock protocol --------------------------------------- #
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        return self._acquire(blocking, timeout, depth=3)

    def _acquire(self, blocking: bool, timeout: float, depth: int) -> bool:
        got = self._inner.acquire(blocking, timeout)
        if got:
            site = _call_site(depth)
            holders = _held_list()
            message = None
            for held_lock in holders:
                message = _registry.record(held_lock, self, site) or message
            holders.append(self)
            if message and _raise_inline:
                self._inner.release()
                holders.pop()
                raise LockOrderError(message)
        return got

    def release(self) -> None:
        holders = _held_list()
        if self in holders:
            holders.remove(self)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self._acquire(True, -1, depth=3)

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "locked" if self._inner.locked() else "unlocked"
        return f"<TrackedLock {self.label} {state}>"

    # -- detector helpers ---------------------------------------------- #
    def held_by_me(self) -> bool:
        return self in _held_list()


def _tracked_lock_factory() -> TrackedLock:
    # One extra frame (this factory) between TrackedLock.__init__ and the
    # code that called threading.Lock(); point the label at the latter.
    lock = TrackedLock.__new__(TrackedLock)
    lock._inner = _RealLock()
    lock.site = _call_site(2)
    lock.label = lock.site
    return lock


# ---------------------------------------------------------------------- #
# Install / inspect / reset


def install(raise_inline: bool = True) -> None:
    """Patch ``threading.Lock`` so new locks are tracked.

    ``raise_inline=False`` records inversions without raising at the
    acquisition site; call :func:`check` later (the fixture does this at
    test teardown, so the test body runs to completion first).
    """
    global _installed, _raise_inline
    _raise_inline = raise_inline
    if _installed:
        return
    threading.Lock = _tracked_lock_factory  # type: ignore[assignment]
    _installed = True


def uninstall() -> None:
    """Restore the real ``threading.Lock``.  Existing TrackedLocks keep
    working (they wrap a real lock), they just stop learning new edges
    from freshly-created peers."""
    global _installed
    threading.Lock = _RealLock  # type: ignore[assignment]
    _installed = False


def installed() -> bool:
    return _installed


def check() -> None:
    """Raise :class:`LockOrderError` if any inversion was recorded."""
    with _registry._mutex:
        violations = list(_registry.violations)
    if violations:
        raise LockOrderError("; ".join(violations))


def reset() -> None:
    """Forget all recorded edges, violations, and guards."""
    with _registry._mutex:
        _registry.order.clear()
        _registry.violations.clear()
        _registry.guards.clear()


def edges() -> Dict[Tuple[str, str], Tuple[str, str]]:
    """Snapshot of the recorded (held -> acquired) order graph."""
    with _registry._mutex:
        return dict(_registry.order)


# ---------------------------------------------------------------------- #
# Guarded shared-state checking


def register_guard(obj: object, lock: TrackedLock,
                   description: str = "") -> None:
    """Declare that ``obj`` must only be touched while ``lock`` is held."""
    if not isinstance(lock, TrackedLock):
        raise TypeError(
            "register_guard needs a TrackedLock (install() first, then "
            f"create the lock); got {type(lock).__name__}")
    with _registry._mutex:
        _registry.guards[id(obj)] = (lock, description or repr(obj))


def unregister_guard(obj: object) -> None:
    with _registry._mutex:
        _registry.guards.pop(id(obj), None)


def record_access(obj: object) -> None:
    """Assert the calling thread holds the lock registered for ``obj``.

    No-op for unregistered objects, so call sites can be left in test
    helpers unconditionally.
    """
    with _registry._mutex:
        entry = _registry.guards.get(id(obj))
    if entry is None:
        return
    lock, description = entry
    if not lock.held_by_me():
        raise GuardViolation(
            f"guarded state {description} accessed at {_call_site(2)} "
            f"without holding {lock.label}")


def assert_owned(lock: TrackedLock) -> None:
    """Assert the calling thread holds ``lock`` (for ``*_locked`` helpers)."""
    if not lock.held_by_me():
        raise GuardViolation(
            f"{_call_site(2)} requires {lock.label} but the calling "
            f"thread does not hold it")
