"""Developer tooling: static analysis, lock checking, runtime sanitizers.

Three layers, all opt-in and wired into CI:

* :mod:`.lint` -- an AST-based lint engine with project-specific rules
  (RL001-RL006) that turn the repo's load-bearing conventions (dtype
  purity, ``Parameter.version`` bumps, the observability gate, lock
  discipline, seeded randomness, narrow excepts) into machine-checked
  errors.  CLI: ``python -m repro.devtools.lint src tests benchmarks``.
* :mod:`.lockcheck` -- a dynamic lock-order detector: an instrumented
  ``threading.Lock`` that records the per-thread acquisition graph and
  fails on cycles (potential ABBA deadlocks) or on registered shared
  state touched without its owning lock.  Enabled for the serving chaos
  suite via ``REPRO_LOCKCHECK=1``.
* :mod:`.sanitize` -- a runtime invariant sanitizer (``REPRO_SANITIZE=1``)
  validating :class:`~repro.core.bfp.BFPTensor` invariants on construction
  and tagging first-NaN/Inf provenance in tensor ops, behind the same
  zero-overhead module-global ``None`` gate the profiler uses.

This package itself never imports numpy or the hot-path modules at import
time; the sanitizer imports its hook targets lazily on ``install()`` so
merely importing :mod:`repro.devtools` costs nothing.
"""

from __future__ import annotations

__all__ = ["lint", "lockcheck", "sanitize"]
