"""``repro-lint``: AST-based static analysis for this repo's conventions.

The engine (:mod:`.engine`) walks Python files, parses them once, attaches
parent links, and runs every registered :class:`~repro.devtools.lint.engine.Rule`
over the tree.  Rules are small classes with a ``code`` (``RL001``...),
scoping via :meth:`~repro.devtools.lint.engine.Rule.applies`, and a
``check`` generator yielding :class:`~repro.devtools.lint.engine.Finding`\\ s.

Conventions enforced (see :mod:`.rules` for the precise semantics):

========  ==================================================================
RL001     numpy allocating constructors without ``dtype=`` in hot paths
RL002     ``Parameter.data`` mutation without a ``.version`` bump
RL003     observability/profiling calls not behind the module-global gate
RL004     ``# guarded-by: _lock`` attributes accessed without the lock
RL005     unseeded ``np.random.*`` / ``random.*`` in ``src/``
RL006     bare/overbroad ``except`` in worker and supervision loops
========  ==================================================================

Suppressions (always give a one-line reason after ``--``)::

    something_noisy()  # repro-lint: disable=RL005 -- caller owns seeding
    # repro-lint: disable-next-line=RL001 -- dtype set by the caller
    buf = np.zeros(n)

A file-level escape hatch exists for generated/fixture files::

    # repro-lint: disable-file=RL004 -- lock fixtures exercise bad patterns

Baseline: findings fingerprinted as ``(rule, path, stripped source line)``
and recorded in a committed JSON file (default ``.repro-lint-baseline.json``
at the repo root) do not fail the build, so new rules can be adopted
incrementally.  This repo's baseline is empty -- every finding was fixed or
suppressed with a reason in the PR that introduced the linter.

CLI::

    PYTHONPATH=src python -m repro.devtools.lint src tests benchmarks
"""

from __future__ import annotations

from .engine import Baseline, Finding, LintContext, Rule, lint_paths, lint_source
from .rules import ALL_RULES, default_rules

__all__ = [
    "ALL_RULES",
    "Baseline",
    "Finding",
    "LintContext",
    "Rule",
    "default_rules",
    "lint_paths",
    "lint_source",
]
