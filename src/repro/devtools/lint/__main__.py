"""CLI: ``python -m repro.devtools.lint src tests benchmarks``.

Exit status is 0 only when every finding is baselined; any new finding
(or a syntax error) exits 1.  ``--write-baseline`` records the current
findings as the new baseline -- prefer fixing or inline-suppressing with
a reason; the committed baseline in this repo is empty.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .engine import Baseline, lint_paths
from .rules import ALL_RULES, default_rules


def _find_repo_root(start: Path) -> Path:
    """Nearest ancestor containing a .git dir (or pyproject); else cwd."""
    for candidate in (start, *start.parents):
        if (candidate / ".git").exists() or (candidate / "ROADMAP.md").exists():
            return candidate
    return start


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.devtools.lint",
        description="Project-specific static analysis (rules RL001-RL006).",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files/directories to lint"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline JSON (default: <repo-root>/.repro-lint-baseline.json)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.code}  {rule.name}: {rule.description}")
        return 0

    root = _find_repo_root(Path.cwd())
    baseline_path = args.baseline or (root / ".repro-lint-baseline.json")

    findings = lint_paths([Path(p) for p in args.paths], root, default_rules())

    if args.write_baseline:
        Baseline().save(baseline_path, findings)
        print(
            f"wrote {len(findings)} finding(s) to {baseline_path}", file=sys.stderr
        )
        return 0

    baseline = Baseline.load(baseline_path)
    new, baselined, stale = baseline.filter(findings)

    if args.fmt == "json":
        print(
            json.dumps(
                {
                    "new": [f.__dict__ for f in new],
                    "baselined": [f.__dict__ for f in baselined],
                    "stale_baseline_entries": stale,
                },
                indent=2,
            )
        )
    else:
        for finding in new:
            print(finding.render())
        if baselined:
            print(f"({len(baselined)} baselined finding(s) suppressed)", file=sys.stderr)
        for fingerprint in stale:
            print(
                f"stale baseline entry (fixed? rerun --write-baseline): {fingerprint}",
                file=sys.stderr,
            )
        summary = f"{len(new)} new finding(s)"
        print(summary if new else f"repro-lint: clean ({summary})", file=sys.stderr)

    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
