"""The lint engine: file walking, parsing, suppressions, baseline.

Rules only see a :class:`LintContext` -- the parsed tree (with parent
links), the raw source lines, and a handful of shared helpers -- and yield
:class:`Finding` objects.  The engine owns everything rule-independent:
which files to visit, inline/file-level suppressions, and the committed
baseline that makes adoption incremental.
"""

from __future__ import annotations

import ast
import json
import re
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Baseline",
    "Finding",
    "LintContext",
    "Rule",
    "attach_parents",
    "lint_paths",
    "lint_source",
]

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-next-line|disable-file)\s*=\s*"
    r"([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


@dataclass(frozen=True)
class Finding:
    """One lint violation at a specific source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""

    @property
    def fingerprint(self) -> str:
        """Stable identity for baselining: rule + path + stripped code line.

        Deliberately excludes the line *number* so unrelated edits above a
        baselined finding do not churn the baseline file.
        """
        return f"{self.rule}::{self.path}::{self.snippet.strip()}"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def attach_parents(tree: ast.AST) -> None:
    """Set ``_repro_parent`` on every node (engine-private attribute)."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._repro_parent = node  # type: ignore[attr-defined]


def parent(node: ast.AST) -> Optional[ast.AST]:
    return getattr(node, "_repro_parent", None)


def ancestors(node: ast.AST) -> Iterator[ast.AST]:
    """Yield the parent chain from the immediate parent to the module."""
    current = parent(node)
    while current is not None:
        yield current
        current = parent(current)


@dataclass
class LintContext:
    """Everything a rule needs to check one file."""

    path: str  # normalized (posix, relative to the lint root)
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    # rule code -> set of suppressed line numbers; "__file__" key marks
    # file-level suppressions (stored with line 0).
    _suppressed: Dict[str, Set[int]] = field(default_factory=dict)
    _file_suppressed: Set[str] = field(default_factory=set)

    @classmethod
    def from_source(cls, path: str, source: str) -> "LintContext":
        tree = ast.parse(source)
        attach_parents(tree)
        ctx = cls(path=path, source=source, tree=tree, lines=source.splitlines())
        ctx._parse_suppressions()
        return ctx

    def _parse_suppressions(self) -> None:
        for lineno, text in enumerate(self.lines, start=1):
            for match in _SUPPRESS_RE.finditer(text):
                kind = match.group(1)
                rules = [r.strip() for r in match.group(2).split(",")]
                for rule in rules:
                    if kind == "disable-file":
                        self._file_suppressed.add(rule)
                    elif kind == "disable-next-line":
                        self._suppressed.setdefault(rule, set()).add(lineno + 1)
                    else:  # disable (same line)
                        self._suppressed.setdefault(rule, set()).add(lineno)

    def suppressed(self, rule: str, line: int) -> bool:
        if rule in self._file_suppressed or "all" in self._file_suppressed:
            return True
        for key in (rule, "all"):
            if line in self._suppressed.get(key, set()):
                return True
        return False

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def segment(self, node: ast.AST) -> str:
        """Source text of a node ('' when unavailable)."""
        try:
            return ast.get_source_segment(self.source, node) or ""
        except Exception:
            return ""

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        lineno = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule,
            path=self.path,
            line=lineno,
            col=col,
            message=message,
            snippet=self.line_text(lineno),
        )


class Rule:
    """Base class for lint rules.

    Subclasses set ``code``/``name``/``description``, optionally narrow
    their file scope with :meth:`applies`, and implement :meth:`check` as a
    generator of findings.  Suppression filtering is the engine's job --
    rules yield everything they see.
    """

    code: str = ""
    name: str = ""
    description: str = ""

    def applies(self, path: str) -> bool:
        return True

    def check(self, ctx: LintContext) -> Iterable[Finding]:  # pragma: no cover
        raise NotImplementedError


class Baseline:
    """Committed inventory of pre-existing findings, keyed by fingerprint.

    The file maps fingerprints to occurrence counts; a finding fails the
    build only once the live count for its fingerprint exceeds the
    baselined count.  ``stale`` reports fingerprints whose findings were
    since fixed (run ``--write-baseline`` to drop them).
    """

    def __init__(self, counts: Optional[Dict[str, int]] = None):
        self.counts: Counter = Counter(counts or {})

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        data = json.loads(path.read_text())
        entries = data.get("findings", data) if isinstance(data, dict) else {}
        return cls({str(k): int(v) for k, v in entries.items()})

    def save(self, path: Path, findings: Sequence[Finding]) -> None:
        counts = Counter(f.fingerprint for f in findings)
        payload = {
            "comment": (
                "repro-lint baseline: pre-existing findings that do not fail "
                "the build.  Regenerate with --write-baseline; prefer fixing "
                "or inline-suppressing (with a reason) over baselining."
            ),
            "findings": {k: counts[k] for k in sorted(counts)},
        }
        path.write_text(json.dumps(payload, indent=2) + "\n")

    def filter(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[str]]:
        """Split findings into (new, baselined) and report stale entries."""
        remaining = Counter(self.counts)
        new: List[Finding] = []
        baselined: List[Finding] = []
        for finding in findings:
            if remaining.get(finding.fingerprint, 0) > 0:
                remaining[finding.fingerprint] -= 1
                baselined.append(finding)
            else:
                new.append(finding)
        stale = sorted(k for k, v in remaining.items() if v > 0)
        return new, baselined, stale


def lint_source(path: str, source: str, rules: Sequence[Rule]) -> List[Finding]:
    """Lint one in-memory source file; returns suppression-filtered findings."""
    try:
        ctx = LintContext.from_source(path, source)
    except SyntaxError as exc:
        return [
            Finding(
                rule="RL000",
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                message=f"syntax error: {exc.msg}",
                snippet=exc.text or "",
            )
        ]
    findings: List[Finding] = []
    for rule in rules:
        if not rule.applies(path):
            continue
        for finding in rule.check(ctx):
            if not ctx.suppressed(finding.rule, finding.line):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def iter_python_files(paths: Sequence[Path], root: Path) -> Iterator[Tuple[Path, str]]:
    """Yield (absolute path, normalized relative path) for every .py file."""
    seen: Set[Path] = set()
    for base in paths:
        base = base if base.is_absolute() else root / base
        candidates = sorted(base.rglob("*.py")) if base.is_dir() else [base]
        for file in candidates:
            file = file.resolve()
            if file in seen or file.suffix != ".py":
                continue
            seen.add(file)
            try:
                rel = file.relative_to(root.resolve()).as_posix()
            except ValueError:
                rel = file.as_posix()
            yield file, rel


def lint_paths(
    paths: Sequence[Path], root: Path, rules: Sequence[Rule]
) -> List[Finding]:
    """Lint every Python file under ``paths`` (resolved against ``root``)."""
    findings: List[Finding] = []
    for file, rel in iter_python_files(paths, root):
        source = file.read_text(encoding="utf-8")
        findings.extend(lint_source(rel, source, rules))
    return findings
