"""Project-specific lint rules RL001-RL006.

Each rule encodes one convention this repo previously enforced only by
review (see PERFORMANCE.md "Correctness tooling" for the catalog and the
PRs that motivated each).  Rules are written to be quiet-by-default: they
scope themselves to the directories where the convention is load-bearing
and lean on explicit annotations (``# guarded-by:``) rather than guessing.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .engine import Finding, LintContext, Rule, ancestors, parent

__all__ = [
    "ALL_RULES",
    "DtypePromotionRule",
    "VersionBumpRule",
    "GateDisciplineRule",
    "LockDisciplineRule",
    "SeededRandomRule",
    "BroadExceptRule",
    "default_rules",
]


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted name of an expression ('' when not a name chain)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _enclosing_function(node: ast.AST) -> Optional[ast.AST]:
    for anc in ancestors(node):
        if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return anc
    return None


def _enclosing_class(node: ast.AST) -> Optional[ast.ClassDef]:
    for anc in ancestors(node):
        if isinstance(anc, ast.ClassDef):
            return anc
    return None


def _has_keyword(call: ast.Call, name: str) -> bool:
    return any(kw.arg == name for kw in call.keywords)


def _in_src(path: str) -> bool:
    return "src/repro/" in path or path.startswith("repro/")


# --------------------------------------------------------------------------- #
# RL001 -- dtype promotion
# --------------------------------------------------------------------------- #
class DtypePromotionRule(Rule):
    """numpy allocating constructors without ``dtype=`` in hot paths.

    ``np.zeros(n)`` and friends default to float64; in the ``nn``/``core``/
    ``serving`` hot paths that silently promotes a float32 pipeline (the
    exact bug class PR 5 fixed by hand, one site at a time).  ``*_like``
    constructors inherit their dtype and are exempt, as is passing an
    explicit positional/keyword ``dtype``.
    """

    code = "RL001"
    name = "dtype-promotion"
    description = "numpy constructor without dtype= in an nn/core/serving hot path"

    #: Constructors whose bare form allocates float64, mapped to the
    #: 0-based position of their ``dtype`` argument (an explicit positional
    #: dtype counts as compliant).
    CONSTRUCTORS = {
        "zeros": 1,
        "ones": 1,
        "empty": 1,
        "full": 2,
        "eye": 3,
        "identity": 1,
        "arange": 3,
        "linspace": 5,
    }

    SCOPES = ("src/repro/nn/", "src/repro/core/", "src/repro/serving/")

    def applies(self, path: str) -> bool:
        return any(scope in path for scope in self.SCOPES)

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if not dotted.startswith(("np.", "numpy.")):
                continue
            func = dotted.split(".", 1)[1]
            arg_slot = self.CONSTRUCTORS.get(func)
            if arg_slot is None:
                continue
            if _has_keyword(node, "dtype") or len(node.args) > arg_slot:
                continue
            if func == "arange" and not any(
                isinstance(arg, ast.Constant) and isinstance(arg.value, float)
                for arg in node.args
            ):
                # Integer `np.arange(n)` builds int64 index arrays -- no
                # float-promotion hazard.  Only float-literal ranges default
                # to float64.
                continue
            yield ctx.finding(
                self.code,
                node,
                f"`{dotted}(...)` without dtype= allocates float64; pass an "
                "explicit dtype (or use a *_like constructor) so float32 "
                "pipelines are not silently promoted",
            )


# --------------------------------------------------------------------------- #
# RL002 -- Parameter.data mutation without a version bump
# --------------------------------------------------------------------------- #
class VersionBumpRule(Rule):
    """``Parameter.data`` mutation without a ``.version`` bump.

    The weight-quantization cache (PR 1) keys on ``Parameter.version``;
    writing ``param.data`` without bumping serves stale quantized weights
    forever.  A function that stores to ``<obj>.data`` (plain, augmented,
    or through a subscript) must also call ``bump_version`` -- directly,
    through the ``getattr(obj, "bump_version", ...)`` idiom, or via a
    helper whose name contains ``bump``/``mark_updated``.
    """

    code = "RL002"
    name = "version-bump"
    description = "Parameter.data mutation without a .version bump"

    def applies(self, path: str) -> bool:
        return _in_src(path)

    @staticmethod
    def _data_store_base(target: ast.AST) -> Optional[str]:
        """Name of ``X`` when ``target`` is ``X.data`` or ``X.data[...]``."""
        if isinstance(target, ast.Subscript):
            target = target.value
        if isinstance(target, ast.Attribute) and target.attr == "data":
            base = _dotted(target.value)
            return base or "<expr>"
        return None

    @staticmethod
    def _bumps(func_node: ast.AST) -> bool:
        for node in ast.walk(func_node):
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                tail = dotted.rsplit(".", 1)[-1]
                if "bump" in tail or "mark_updated" in tail:
                    return True
                if dotted.endswith("getattr") and any(
                    isinstance(arg, ast.Constant) and arg.value == "bump_version"
                    for arg in node.args
                ):
                    return True
            elif isinstance(node, ast.Attribute) and node.attr == "bump_version":
                return True
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if isinstance(target, ast.Attribute) and target.attr == "version":
                        return True
        return False

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            targets: List[ast.AST]
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            else:
                continue
            for target in targets:
                base = self._data_store_base(target)
                if base is None or base == "self":
                    # `self.data = ...` is Tensor/Parameter internals, not a
                    # cache-visible mutation of someone else's parameter.
                    continue
                func = _enclosing_function(node)
                if func is None or self._bumps(func):
                    continue
                yield ctx.finding(
                    self.code,
                    node,
                    f"`{base}.data` is mutated but `{func.name}` never bumps "
                    "`.version`; stale weight-quantization caches will serve "
                    "old weights (call bump_version() after the store)",
                )


# --------------------------------------------------------------------------- #
# RL003 -- observability calls not behind the gate
# --------------------------------------------------------------------------- #
class GateDisciplineRule(Rule):
    """Observability/profiling calls in hot paths not behind the gate.

    The PR 8 contract: hot paths pay one module-global load + ``is not
    None`` (or ``observability.enabled()``) check when observability is
    off.  Calling ``profiler.record(...)``, ``tracer.add_event(...)`` or
    ``observability.registry()`` unconditionally re-introduces per-call
    overhead and allocations.  A call is considered gated when:

    * an enclosing ``if`` tests the gate (``is not None``, ``.enabled()``,
      ``active_tracer()``), or
    * the enclosing function starts with an early-return gate, or
    * the gate-sensitive receiver arrived as a function parameter (the
      caller did the check and passed a non-``None`` object down).
    """

    code = "RL003"
    name = "gate-discipline"
    description = "observability call in a hot path without a gate check"

    SCOPES = (
        "src/repro/core/",
        "src/repro/nn/",
        "src/repro/serving/",
        "src/repro/training/",
    )

    #: method name -> substring the receiver must contain to match
    METHODS = {
        "record": ("profiler", "_metrics"),
        "add_event": ("tracer",),
        "span": ("tracer",),
        "begin_request": ("tracer",),
    }
    GATE_MARKERS = ("is not None", "enabled()", "active_tracer", ".armed")

    def applies(self, path: str) -> bool:
        return any(scope in path for scope in self.SCOPES)

    def _matches(self, node: ast.Call) -> Optional[str]:
        if not isinstance(node.func, ast.Attribute):
            return None
        recv = _dotted(node.func.value)
        lowered = recv.lower()
        if node.func.attr in ("registry", "tracer") and lowered.endswith("observability"):
            return recv
        needles = self.METHODS.get(node.func.attr)
        if needles and any(n in lowered for n in needles):
            return recv
        return None

    def _gated(self, node: ast.Call, ctx: LintContext, recv: str) -> bool:
        recv_root = recv.split(".", 1)[0]
        func = None
        for anc in ancestors(node):
            if isinstance(anc, ast.If) and func is None:
                test = ctx.segment(anc.test)
                if any(marker in test for marker in self.GATE_MARKERS):
                    return True
            elif isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                func = anc
                break
        if func is None:
            return False
        # Receiver passed in as a parameter: the caller holds the gate.
        arg_names = {a.arg for a in func.args.args + func.args.kwonlyargs}
        if recv_root in arg_names and recv_root != "self":
            return True
        # Early-return gate at the top of the function.
        for stmt in func.body:
            if getattr(stmt, "lineno", 0) >= node.lineno:
                break
            if isinstance(stmt, ast.If):
                test = ctx.segment(stmt.test)
                guards = any(m in test for m in ("not ", "is None")) and (
                    recv_root in test
                    or "enabled" in test
                    or "tracer" in test
                    or "profiler" in test
                    or "telemetry" in test
                )
                exits = stmt.body and isinstance(
                    stmt.body[-1], (ast.Return, ast.Raise, ast.Continue)
                )
                if guards and exits:
                    return True
        return False

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            recv = self._matches(node)
            if recv is None:
                continue
            if self._gated(node, ctx, recv):
                continue
            yield ctx.finding(
                self.code,
                node,
                f"`{recv}.{node.func.attr}(...)` is not behind the "  # type: ignore[union-attr]
                "observability gate; guard with `if <hook> is not None` / "
                "`observability.enabled()` so the disabled path stays "
                "zero-overhead",
            )


# --------------------------------------------------------------------------- #
# RL004 -- lock discipline via `# guarded-by:` annotations
# --------------------------------------------------------------------------- #
class LockDisciplineRule(Rule):
    """Attributes declared ``# guarded-by: _lock`` accessed without it.

    The convention: in ``__init__``, annotate each shared mutable attribute
    on the line that first assigns it::

        self._completed = 0  # guarded-by: _stats_lock

    Every other method must then touch ``self._completed`` only inside a
    lexical ``with self._stats_lock:`` block.  Exemptions:

    * ``__init__``/``__new__`` (no concurrent access before publication),
    * methods whose name ends in ``_locked`` (documented convention:
      caller holds the lock),
    * code inside a nested function/lambda is *not* credited with an
      enclosing ``with`` (it may run after the block exits).
    """

    code = "RL004"
    name = "lock-discipline"
    description = "guarded-by attribute accessed without its lock"

    _GUARD_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")

    def _guard_map(self, cls: ast.ClassDef, ctx: LintContext) -> Dict[str, str]:
        """attr name -> lock attr name, from annotated self-assignments."""
        guards: Dict[str, str] = {}
        for node in ast.walk(cls):
            if not isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                continue
            match = self._GUARD_RE.search(ctx.line_text(node.lineno))
            if not match:
                continue
            lock = match.group(1)
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    guards[target.attr] = lock
        return guards

    @staticmethod
    def _with_locks(node: ast.With) -> Set[str]:
        locks: Set[str] = set()
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call):  # e.g. self._lock.acquire-style CMs
                expr = expr.func
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
            ):
                locks.add(expr.attr)
        return locks

    def _held(self, node: ast.AST, method: ast.AST, lock: str) -> bool:
        """Is ``node`` lexically under ``with self.<lock>`` within ``method``?"""
        for anc in ancestors(node):
            if isinstance(anc, ast.With) and lock in self._with_locks(anc):
                return True
            if isinstance(anc, ast.Lambda):
                return False
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # A nested function runs later; only its own name can vouch.
                return anc is not method and anc.name.endswith("_locked")
        return False

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        for cls in ast.walk(ctx.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            guards = self._guard_map(cls, ctx)
            if not guards:
                continue
            for method in cls.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if method.name in ("__init__", "__new__") or method.name.endswith(
                    "_locked"
                ):
                    continue
                for node in ast.walk(method):
                    if not (
                        isinstance(node, ast.Attribute)
                        and isinstance(node.value, ast.Name)
                        and node.value.id == "self"
                        and node.attr in guards
                    ):
                        continue
                    lock = guards[node.attr]
                    if self._held(node, method, lock):
                        continue
                    yield ctx.finding(
                        self.code,
                        node,
                        f"`self.{node.attr}` is guarded-by `{lock}` but "
                        f"`{cls.name}.{method.name}` accesses it outside "
                        f"`with self.{lock}:` (rename the method `*_locked` "
                        "if the caller holds it)",
                    )


# --------------------------------------------------------------------------- #
# RL005 -- unseeded randomness
# --------------------------------------------------------------------------- #
class SeededRandomRule(Rule):
    """Unseeded ``np.random.*`` / ``random.*`` in ``src/``.

    Reproducibility is the whole point of this repo: every stochastic
    path (stochastic rounding, init, data synthesis, load generation)
    threads an explicit ``rng``.  ``np.random.default_rng()`` with no
    seed, the legacy ``np.random.<fn>()`` global-state API, and the
    stdlib ``random.<fn>()`` module functions all break run-to-run
    determinism.
    """

    code = "RL005"
    name = "seeded-random"
    description = "unseeded np.random.* / random.* call in src/"

    #: stdlib ``random`` module functions that consume the global stream.
    _STDLIB = {
        "random", "randint", "randrange", "uniform", "choice", "choices",
        "shuffle", "sample", "gauss", "normalvariate", "betavariate",
        "expovariate", "triangular", "getrandbits", "randbytes",
    }

    def applies(self, path: str) -> bool:
        return _in_src(path)

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted in ("np.random.default_rng", "numpy.random.default_rng"):
                if not node.args and not node.keywords:
                    yield ctx.finding(
                        self.code,
                        node,
                        "`np.random.default_rng()` without a seed is "
                        "non-reproducible; thread an explicit seed or rng "
                        "through the caller",
                    )
            elif dotted.startswith(("np.random.", "numpy.random.")):
                func = dotted.rsplit(".", 1)[-1]
                if func not in ("default_rng", "seed", "Generator", "SeedSequence",
                                "PCG64", "Philox", "SFC64", "MT19937", "RandomState"):
                    yield ctx.finding(
                        self.code,
                        node,
                        f"legacy `{dotted}(...)` uses hidden global state; "
                        "use an explicit `np.random.Generator`",
                    )
            elif dotted.startswith("random.") and dotted.count(".") == 1:
                func = dotted.split(".", 1)[1]
                if func in self._STDLIB:
                    yield ctx.finding(
                        self.code,
                        node,
                        f"stdlib `{dotted}(...)` draws from hidden global "
                        "state; use `random.Random(seed)` or a numpy rng",
                    )


# --------------------------------------------------------------------------- #
# RL006 -- bare / overbroad except in worker and supervision loops
# --------------------------------------------------------------------------- #
class BroadExceptRule(Rule):
    """Bare/overbroad ``except`` in worker and supervision loops.

    A bare ``except:`` (which swallows ``KeyboardInterrupt``/``SystemExit``)
    is flagged anywhere in ``src/``.  ``except Exception``/``BaseException``
    is additionally flagged in the serving/training worker loops unless the
    handler visibly re-raises (bare ``raise`` or ``raise X from exc``) or
    the ``except`` line carries a justification comment (``# noqa: BLE001``
    with a reason, or an inline repro-lint suppression).  Supervision loops
    routinely *must* catch everything -- the justification comment is the
    contract that says so out loud.
    """

    code = "RL006"
    name = "broad-except"
    description = "bare/overbroad except in a worker or supervision loop"

    BROAD_SCOPES = ("src/repro/serving/", "src/repro/training/")
    _JUSTIFY_RE = re.compile(r"#\s*noqa:\s*BLE001\b")

    def applies(self, path: str) -> bool:
        return _in_src(path)

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        for node in ast.walk(handler):
            if isinstance(node, ast.Raise):
                return True
        return False

    def check(self, ctx: LintContext) -> Iterable[Finding]:
        broad_scope = any(scope in ctx.path for scope in self.BROAD_SCOPES)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield ctx.finding(
                    self.code,
                    node,
                    "bare `except:` swallows KeyboardInterrupt/SystemExit; "
                    "catch a concrete exception type",
                )
                continue
            if not broad_scope:
                continue
            names = (
                [_dotted(elt) for elt in node.type.elts]
                if isinstance(node.type, ast.Tuple)
                else [_dotted(node.type)]
            )
            if not any(n in ("Exception", "BaseException") for n in names):
                continue
            if self._reraises(node):
                continue
            if self._JUSTIFY_RE.search(ctx.line_text(node.lineno)):
                continue
            yield ctx.finding(
                self.code,
                node,
                "overbroad `except Exception` in a worker/supervision loop "
                "without a re-raise; add `# noqa: BLE001 - <why>` if catching "
                "everything is the supervision contract here",
            )


ALL_RULES: Tuple[type, ...] = (
    DtypePromotionRule,
    VersionBumpRule,
    GateDisciplineRule,
    LockDisciplineRule,
    SeededRandomRule,
    BroadExceptRule,
)


def default_rules() -> List[Rule]:
    """Fresh instances of every registered rule."""
    return [rule() for rule in ALL_RULES]
