"""Runtime invariant sanitizer for the quantization substrate.

Two families of checks, both **opt-in** and wired through the same
zero-overhead gate idiom as the kernel profiler (a module-global that is
``None`` by default, so the disabled path is one global load and one
branch):

* **BFPTensor construction invariants** -- every packed tensor built while
  the sanitizer is installed is validated on construction
  (``BFPTensor.__post_init__``): sign/mantissa/exponent dtypes and shapes,
  mantissa magnitudes within ``2**m - 1``, signs in ``{-1, 0, +1}`` and
  zero exactly where the mantissa is zero, shared exponents inside the
  ``2**e``-wide window the kernel clamps to, and an exact pack/unpack
  round-trip (``ldexp`` down and back reproduces the integer mantissas
  bit-for-bit, so a corrupted shared exponent that pushes values to
  overflow is caught at the source).  Violations raise
  :class:`SanitizerError` with the failing field and indices.

* **Non-finite provenance** -- every autograd op result
  (``Tensor._make``) is scanned for NaN/Inf.  This is *record-only*:
  serving fault-injection and the YOLO loss legitimately produce NaN
  sentinels, so raising would break correct code.  Instead the sanitizer
  keeps a bounded log of *origins* -- ops whose inputs were all finite but
  whose output was not -- so the first NaN in a diverging run is
  attributable to one op instead of the loss it eventually poisons.

Enable per-process with :func:`install` / :func:`uninstall`, or for the
test suite with ``REPRO_SANITIZE=1`` (see ``tests/conftest.py``).  The
hooked modules (``core/bfp.py``, ``nn/tensor.py``) are imported lazily in
:func:`install`, never at module import time.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = [
    "SanitizerError",
    "NonFiniteRecord",
    "Sanitizer",
    "install",
    "uninstall",
    "current",
]

# ldexp shifts below this are deep in float64-subnormal territory where an
# integer mantissa no longer round-trips exactly (the subnormal format has
# fewer significand bits than the mantissa needs).  Such groups only arise
# from quantizing values around 1e-300; skip them rather than false-alarm.
_MIN_EXACT_SHIFT = -1020


class SanitizerError(AssertionError):
    """A BFPTensor violated a construction invariant."""


@dataclass(frozen=True)
class NonFiniteRecord:
    """One op whose inputs were finite but whose output was not."""

    op: str
    parent_ops: Tuple[str, ...]
    shape: Tuple[int, ...]
    nonfinite: int          # count of NaN/Inf elements in the output
    first_index: tuple      # np.unravel_index of the first offender


@dataclass
class Sanitizer:
    """Holds check counters and the bounded non-finite origin log."""

    max_records: int = 256
    bfp_checked: int = 0
    bfp_failures: int = 0
    ops_checked: int = 0
    _records: deque = field(default_factory=lambda: deque(maxlen=256),
                            repr=False)

    def __post_init__(self):
        self._records = deque(maxlen=int(self.max_records))

    # ------------------------------------------------------------------ #
    # BFPTensor construction invariants (raising)
    # ------------------------------------------------------------------ #
    def check_bfp_tensor(self, bfp) -> None:
        import numpy as np

        self.bfp_checked += 1
        try:
            self._check_bfp(np, bfp)
        except SanitizerError:
            self.bfp_failures += 1
            raise

    def _check_bfp(self, np, bfp) -> None:
        signs, mantissas, exponents = bfp.signs, bfp.mantissas, bfp.exponents
        config = bfp.config

        def fail(message: str) -> None:
            raise SanitizerError(
                f"BFPTensor invariant violated (shape={bfp.shape}, "
                f"m={config.mantissa_bits}, g={config.group_size}, "
                f"e={config.exponent_bits}): {message}")

        # -- structure ------------------------------------------------- #
        if signs.shape != mantissas.shape:
            fail(f"signs shape {signs.shape} != mantissas shape "
                 f"{mantissas.shape}")
        if signs.ndim != 3:
            fail(f"packed arrays must be (rows, groups, g), got "
                 f"{signs.ndim}-D {signs.shape}")
        if signs.shape[-1] != config.group_size:
            fail(f"group axis is {signs.shape[-1]} wide, config says "
                 f"{config.group_size}")
        if exponents.shape != signs.shape[:2]:
            fail(f"exponents shape {exponents.shape} != group grid "
                 f"{signs.shape[:2]}")
        if not np.issubdtype(mantissas.dtype, np.integer):
            fail(f"mantissas must be integers, got {mantissas.dtype}")
        if not np.issubdtype(exponents.dtype, np.integer):
            fail(f"exponents must be integers, got {exponents.dtype}")

        # -- value ranges ---------------------------------------------- #
        limit = (1 << config.mantissa_bits) - 1
        bad = (mantissas < 0) | (mantissas > limit)
        if bad.any():
            index = tuple(int(i) for i in
                          np.unravel_index(int(np.argmax(bad)), bad.shape))
            fail(f"mantissa magnitude out of [0, {limit}] at {index}: "
                 f"{int(mantissas[index])}")
        bad = np.abs(signs.astype(np.int64)) > 1
        if bad.any():
            index = tuple(int(i) for i in
                          np.unravel_index(int(np.argmax(bad)), bad.shape))
            fail(f"sign not in {{-1, 0, +1}} at {index}: "
                 f"{int(signs[index])}")
        bad = (signs == 0) != (mantissas == 0)
        if bad.any():
            index = tuple(int(i) for i in
                          np.unravel_index(int(np.argmax(bad)), bad.shape))
            fail(f"sign/mantissa zero mismatch at {index}: sign="
                 f"{int(signs[index])} mantissa={int(mantissas[index])}")

        # -- shared-exponent range ------------------------------------- #
        # float64 exponents live in [-1074, 1023]; anything outside is a
        # corrupted field, not a representable scale.
        if exponents.size:
            low, high = int(exponents.min()), int(exponents.max())
            if low < -1074 or high > 1023:
                fail(f"shared exponent outside float64 range [-1074, 1023]: "
                     f"min={low} max={high}")
            if config.exponent_bits is not None:
                window = (1 << config.exponent_bits) - 1
                if high - low > window:
                    fail(f"shared exponents span {high - low} > window "
                         f"{window} of the {config.exponent_bits}-bit "
                         f"format (kernel clamps to "
                         f"[max - {window}, max]; a corrupt exponent "
                         f"escapes that window)")

        # -- pack/unpack round-trip ------------------------------------ #
        # Dequantize and re-extract the integer mantissas: both directions
        # are exact power-of-two scalings, so any mismatch means the
        # packed fields do not describe representable values (e.g. an
        # exponent corrupted high enough that ldexp overflows).
        shift = (exponents - (config.mantissa_bits - 1)).astype(np.int32)
        exact = shift >= _MIN_EXACT_SHIFT
        if exact.any():
            packed = signs.astype(np.float64) * mantissas.astype(np.float64)
            values = np.ldexp(packed, shift[..., None])
            back = np.ldexp(values, np.negative(shift)[..., None])
            bad = (back != packed) & exact[..., None]
            if bad.any():
                index = tuple(int(i) for i in
                              np.unravel_index(int(np.argmax(bad)),
                                               bad.shape))
                fail(f"pack/unpack round-trip failed at {index}: packed "
                     f"mantissa {packed[index]} != re-extracted "
                     f"{back[index]} (exponent "
                     f"{int(exponents[index[:2]])})")

    # ------------------------------------------------------------------ #
    # Non-finite provenance (record-only)
    # ------------------------------------------------------------------ #
    def check_tensor_op(self, out, parents) -> None:
        import numpy as np

        self.ops_checked += 1
        data = out.data
        if data.dtype.kind != "f":
            return
        finite = np.isfinite(data)
        if finite.all():
            return
        # Only log *origins*: ops that created non-finite values from
        # finite inputs.  Downstream ops merely propagate them.
        for parent in parents:
            pdata = parent.data
            if pdata.dtype.kind == "f" and not np.isfinite(pdata).all():
                return
        bad = ~finite
        first = tuple(int(i) for i in
                      np.unravel_index(int(np.argmax(bad)), bad.shape))
        self._records.append(NonFiniteRecord(
            op=out.op or "<unnamed>",
            parent_ops=tuple(p.op or "<leaf>" for p in parents),
            shape=tuple(data.shape),
            nonfinite=int(bad.sum()),
            first_index=first,
        ))

    def nonfinite_records(self) -> List[NonFiniteRecord]:
        return list(self._records)

    def clear_records(self) -> None:
        self._records.clear()


# ---------------------------------------------------------------------- #
_current: Optional[Sanitizer] = None


def install(max_records: int = 256) -> Sanitizer:
    """Point the hooked modules' ``_SANITIZER`` gates at one sanitizer."""
    global _current
    from ..core import bfp
    from ..nn import tensor

    sanitizer = Sanitizer(max_records=max_records)
    bfp.set_sanitizer(sanitizer)
    tensor.set_sanitizer(sanitizer)
    _current = sanitizer
    return sanitizer


def uninstall() -> None:
    """Restore the zero-overhead disabled path in every hooked module."""
    global _current
    from ..core import bfp
    from ..nn import tensor

    bfp.set_sanitizer(None)
    tensor.set_sanitizer(None)
    _current = None


def current() -> Optional[Sanitizer]:
    return _current
