"""Quantized inference serving: frozen BFP exports + a fault-tolerant server.

The training side of this repository simulates FAST's quantized training;
this package is the inference side.  A trained model is *frozen* -- weights
quantized once into packed BFP artifacts, training-only branches stripped,
every forward replaced by a grad-free NumPy replica that is bit-identical to
the live model in eval mode -- then served through an engine with latency
accounting and an in-process request server that coalesces concurrent
requests into batches.

Typical flow::

    from repro import serving

    frozen = serving.freeze(model)                      # quantize once
    serving.save_frozen(frozen, "model.npz")            # compact checkpoint
    frozen = serving.load_frozen("model.npz")           # bit-identical reload

    engine = serving.InferenceEngine(frozen)
    engine.warmup(example_batch)                        # prime index/layout caches
    with serving.InferenceServer(engine) as server:
        future = server.submit(image)                   # async
        result = server.predict(image)                  # sync
        print(result.timing.total_ms, server.stats())

Fault-tolerance semantics (the robustness layer):

* **Deadlines** -- ``submit(request, deadline_ms=50)`` bounds a request's
  time in the server.  Expired requests are shed *before* batch assembly
  (no engine time wasted) and their futures raise ``DeadlineExceeded``;
  shed counts appear in ``stats()["shed_deadline"]``.
* **Admission control** -- ``BatchingConfig(max_queue_depth=N)`` bounds
  unresolved work.  ``admission_policy="reject"`` raises
  ``ServerOverloaded`` at capacity; ``"block"`` waits up to
  ``block_timeout_ms`` first.  ``shed_watermark`` sheds expired work
  proactively (oldest first) when the backlog grows past it.
* **Poison isolation** -- payloads are validated at submit time
  (``InvalidRequest``); a failed multi-request batch is bisected and the
  halves re-enqueued separately, so healthy requests sharing a batch with a
  poison request still complete and only the offender fails (after a
  bounded number of backoff retries, reported in ``timing.retries``).
* **Engine supervision** -- an ``EngineCrash`` degrades the server, fails
  the in-flight batch descriptively, and triggers bounded
  ``engine.rewarm()`` restarts; when the budget is exhausted the server
  refuses new work (``ServerUnavailable``) and resolves everything pending.
  A worker thread killed by an uncaught error never strands callers:
  futures are failed and ``close()`` re-raises with the worker traceback.
* **Graceful drain** -- ``close(drain=True)`` stops admission, flushes
  pending work within the close timeout, then cancels stragglers with
  ``ServerClosed``.  No future ever leaks, on any path.

``serving.faults.FaultInjectingEngine`` injects deterministic latency
spikes, transient errors, hard crashes, NaN-poisoned outputs, hard worker
process death, and payload-triggered poison faults to prove all of the
above under test (``tests/serving/test_faults.py``) and under load
(``benchmarks/bench_perf_serving.py --quick``, degraded-mode section).

Scaling out (the sharded tier)::

    specs = [serving.WorkerSpec(checkpoint="model.npz", model="cnn",
                                warmup_shapes=((32, 3, 32, 32),))
             for _ in range(4)]
    with serving.ShardedServer(specs) as cluster:
        result = cluster.predict(image, model="cnn")

``ShardedServer`` shards requests across N **worker processes** (each a
warmed engine over the frozen checkpoint, batches crossing the process
boundary through shared-memory rings -- :mod:`repro.serving.transport`),
with every fault-tolerance semantic above applied per shard and dead
workers respawned, re-warmed, and routed around automatically.
:mod:`repro.serving.loadgen` provides the open-loop (Poisson-arrival)
traffic generator used to measure the scaling honestly.

Sequence generation (the continuous-batching tier)::

    frozen = serving.freeze(seq2seq_model, meta={"bos_index": 1, "eos_index": 2})
    with serving.GenerationServer(frozen) as server:
        result = server.generate(src_tokens, max_new_tokens=32)   # sync
        for token in server.stream(src_tokens):                   # streaming
            ...

``GenerationServer`` decodes autoregressively with a per-sequence KV cache
(bit-identical to full recompute when unquantized; BFP-packed via
``GenerationConfig(kv_mantissa_bits=...)``) and a per-decode-step
admit/retire scheduler: short sequences retire and new ones join mid-flight
instead of waiting for the longest member of a static batch.  The cache is
a preallocated block pool (``KVCacheManager``) with worst-case reservation
at admission, so a running sequence can never hit pool exhaustion.
``loadgen.GenerationLoadGenerator`` drives it open-loop for
tokens/sec-vs-streams and TTFT measurements.
"""

from .checkpoint import (
    CheckpointError,
    load_frozen,
    load_state,
    save_frozen,
    save_state,
)
from .cluster import (
    ClusterConfig,
    RemoteEngine,
    RemoteEngineError,
    ShardedServer,
    WorkerSpec,
    WorkerStartupError,
)
from .engine import EngineCrash, EngineStats, InferenceEngine
from .faults import FaultInjectingEngine, FaultPlan, TransientEngineError
from .generation import (
    CacheExhausted,
    CacheStats,
    GenerationConfig,
    GenerationResult,
    GenerationServer,
    GenerationStats,
    GenerationTiming,
    KVCacheManager,
    TokenStream,
)
from .loadgen import (
    FamilyLoad,
    GenerationLoadGenerator,
    GenerationLoadReport,
    LoadReport,
    OpenLoopGenerator,
    SequenceLoad,
    poisson_arrivals,
)
from .frozen import (
    FrozenModel,
    FrozenOp,
    freeze,
    freeze_module,
    frozen_op_types,
    register_freezer,
)
from .server import (
    BatchingConfig,
    DeadlineExceeded,
    InferenceResult,
    InferenceServer,
    InvalidRequest,
    NonFiniteOutput,
    RequestTiming,
    ServerClosed,
    ServerOverloaded,
    ServerStats,
    ServerUnavailable,
    ServingError,
    validate_payload,
)
from .transport import ShmRing, TransportError, attach_shared_memory

__all__ = [
    "freeze",
    "freeze_module",
    "register_freezer",
    "frozen_op_types",
    "FrozenModel",
    "FrozenOp",
    "save_state",
    "load_state",
    "save_frozen",
    "load_frozen",
    "CheckpointError",
    "InferenceEngine",
    "EngineCrash",
    "EngineStats",
    "InferenceServer",
    "BatchingConfig",
    "InferenceResult",
    "RequestTiming",
    "ServingError",
    "InvalidRequest",
    "DeadlineExceeded",
    "ServerOverloaded",
    "ServerClosed",
    "ServerUnavailable",
    "NonFiniteOutput",
    "ServerStats",
    "validate_payload",
    "FaultInjectingEngine",
    "FaultPlan",
    "TransientEngineError",
    "ShardedServer",
    "WorkerSpec",
    "ClusterConfig",
    "RemoteEngine",
    "RemoteEngineError",
    "WorkerStartupError",
    "ShmRing",
    "TransportError",
    "attach_shared_memory",
    "OpenLoopGenerator",
    "FamilyLoad",
    "LoadReport",
    "poisson_arrivals",
    "GenerationServer",
    "GenerationConfig",
    "GenerationResult",
    "GenerationTiming",
    "GenerationStats",
    "TokenStream",
    "KVCacheManager",
    "CacheStats",
    "CacheExhausted",
    "SequenceLoad",
    "GenerationLoadGenerator",
    "GenerationLoadReport",
]
