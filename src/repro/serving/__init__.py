"""Quantized inference serving: frozen BFP exports + a dynamic-batching server.

The training side of this repository simulates FAST's quantized training;
this package is the inference side.  A trained model is *frozen* -- weights
quantized once into packed BFP artifacts, training-only branches stripped,
every forward replaced by a grad-free NumPy replica that is bit-identical to
the live model in eval mode -- then served through an engine with latency
accounting and an in-process request server that coalesces concurrent
requests into batches.

Typical flow::

    from repro import serving

    frozen = serving.freeze(model)                      # quantize once
    serving.save_frozen(frozen, "model.npz")            # compact checkpoint
    frozen = serving.load_frozen("model.npz")           # bit-identical reload

    engine = serving.InferenceEngine(frozen)
    engine.warmup(example_batch)                        # prime index/layout caches
    with serving.InferenceServer(engine) as server:
        future = server.submit(image)                   # async
        result = server.predict(image)                  # sync
        print(result.timing.total_ms, server.stats())
"""

from .checkpoint import load_frozen, load_state, save_frozen, save_state
from .engine import InferenceEngine
from .frozen import (
    FrozenModel,
    FrozenOp,
    freeze,
    freeze_module,
    frozen_op_types,
    register_freezer,
)
from .server import BatchingConfig, InferenceResult, InferenceServer, RequestTiming

__all__ = [
    "freeze",
    "freeze_module",
    "register_freezer",
    "frozen_op_types",
    "FrozenModel",
    "FrozenOp",
    "save_state",
    "load_state",
    "save_frozen",
    "load_frozen",
    "InferenceEngine",
    "InferenceServer",
    "BatchingConfig",
    "InferenceResult",
    "RequestTiming",
]
