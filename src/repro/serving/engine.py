"""Grad-free inference engine over a frozen model.

The engine is the layer between a :class:`~repro.serving.frozen.FrozenModel`
and the request server: it owns warmup (priming the process-wide im2col
index memos and the per-layer grouped-layout caches so the first real
request does not pay cache-fill latency), batched prediction, and
latency/throughput accounting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields
from typing import Optional

import numpy as np

from .frozen import FrozenModel

__all__ = ["EngineCrash", "EngineStats", "InferenceEngine"]


@dataclass(frozen=True)
class EngineStats:
    """Typed engine-side counters (mapping-compatible like ``ServerStats``).

    The first block applies to every engine.  The ``Optional`` block is
    populated only by :class:`~repro.serving.cluster.RemoteEngine`, whose
    counters describe the worker *process* rather than in-process forwards;
    an in-process engine leaves them ``None``.
    """

    calls: int = 0
    samples: int = 0
    total_seconds: float = 0.0
    mean_call_ms: float = float("nan")
    last_call_ms: float = float("nan")
    throughput_sps: float = float("nan")
    warmed_up: bool = False
    alive: Optional[bool] = None
    pid: Optional[int] = None
    generation: Optional[int] = None
    respawns: Optional[int] = None
    oversized_transfers: Optional[int] = None
    warmup_seconds: Optional[float] = None

    def __getitem__(self, key: str):
        if not isinstance(key, str) or not hasattr(self, key):
            raise KeyError(key)
        return getattr(self, key)

    def keys(self):
        return [f.name for f in fields(self)]

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class EngineCrash(RuntimeError):
    """The engine hit an unrecoverable internal failure.

    Engines raise this (instead of an ordinary per-batch exception) when the
    failure is *not* attributable to the batch being processed -- the engine
    itself is broken and needs to be restarted before it can serve again.
    The :class:`~repro.serving.server.InferenceServer` supervisor treats it
    specially: the server goes degraded, fails the in-flight batch, and
    attempts a bounded number of :meth:`InferenceEngine.rewarm` restarts
    before refusing new work.
    """


class InferenceEngine:
    """Executes batched forwards on a frozen model and records timings."""

    def __init__(self, model: FrozenModel):
        self.model = model
        self.calls = 0
        self.samples = 0
        self.total_seconds = 0.0
        self.last_seconds = 0.0
        self.warmed_up = False
        self._warmup_example = None

    # -------------------------------------------------------------- #
    def warmup(self, example) -> float:
        """Run one untimed-for-stats forward to prime every cache.

        A single pass through the frozen graph derives and memoizes the
        im2col gather/scatter indices of every convolution/pooling geometry
        and fills the activation quantizers' grouped-layout caches, so
        steady-state latency starts with the first real request.  Returns
        the warmup wall time in seconds.
        """
        example = np.asarray(example)
        start = time.perf_counter()
        self.model.predict(example)
        elapsed = time.perf_counter() - start
        self.warmed_up = True
        self._warmup_example = example
        return elapsed

    def rewarm(self) -> float:
        """Re-run warmup with the stored example (supervised restart probe).

        The server's engine supervisor calls this after an
        :class:`EngineCrash` to prove the engine can serve again before the
        server leaves its degraded state.  Raises if the engine was never
        warmed up (there is nothing safe to probe with), or propagates
        whatever the probe forward raises if the engine is still broken.
        """
        if self._warmup_example is None:
            raise EngineCrash("cannot rewarm: engine was never warmed up")
        return self.warmup(self._warmup_example)

    def predict(self, batch) -> np.ndarray:
        """Run one batched forward; returns per-sample outputs stacked."""
        batch = np.asarray(batch)
        start = time.perf_counter()
        outputs = self.model.predict(batch)
        elapsed = time.perf_counter() - start
        self.calls += 1
        self.samples += int(batch.shape[0]) if batch.ndim else 1
        self.total_seconds += elapsed
        self.last_seconds = elapsed
        return outputs

    __call__ = predict

    # -------------------------------------------------------------- #
    def stats(self) -> EngineStats:
        """Aggregate engine-side timing counters."""
        mean_call = self.total_seconds / self.calls if self.calls else float("nan")
        throughput = self.samples / self.total_seconds if self.total_seconds > 0 else float("nan")
        return EngineStats(
            calls=self.calls,
            samples=self.samples,
            total_seconds=self.total_seconds,
            mean_call_ms=mean_call * 1e3,
            last_call_ms=self.last_seconds * 1e3,
            throughput_sps=throughput,
            warmed_up=self.warmed_up,
        )

    def reset_stats(self) -> None:
        self.calls = 0
        self.samples = 0
        self.total_seconds = 0.0
        self.last_seconds = 0.0
