"""Open-loop traffic generation for serving benchmarks.

The closed-loop harness in earlier benchmarks submits a request, waits for
the answer, and only then submits the next one -- so a slow server slows
the *generator* down, hiding queueing delay entirely (the "coordinated
omission" artifact).  Real traffic does not wait: users arrive when they
arrive.  :class:`OpenLoopGenerator` therefore fires requests on a fixed
Poisson schedule **regardless of completions**: if the server falls behind,
requests pile up and latency -- measured from each request's *scheduled*
arrival time, not from whenever the generator got around to sending it --
grows without bound.  That makes offered-load-vs-latency curves honest:
a server at saturation shows its real p99, not its lucky closed-loop one.

Usage::

    mix = (FamilyLoad(payloads=cnn_batches, model="cnn"),)
    report = OpenLoopGenerator(server.submit, mix, qps=500, duration_s=4.0,
                               seed=7).run()
    report.goodput_rps, report.latency_ms_p99

Works against both :class:`~repro.serving.server.InferenceServer` (one
family, ``model=None``) and :class:`~repro.serving.cluster.ShardedServer`
(pass each :class:`FamilyLoad` a ``model`` label to exercise mixed-family
routing).
"""

from __future__ import annotations

import math
import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from ..observability.metrics import LatencyHistogram

__all__ = ["poisson_arrivals", "FamilyLoad", "LoadReport", "OpenLoopGenerator",
           "SequenceLoad", "GenerationLoadReport", "GenerationLoadGenerator"]


def poisson_arrivals(qps: float, duration_s: float, seed: int = 0) -> np.ndarray:
    """Arrival offsets (seconds) of a Poisson process at rate ``qps``.

    Inter-arrival gaps are i.i.d. exponential with mean ``1/qps``; the
    returned offsets are their cumulative sums clipped to ``duration_s``.
    Deterministic for a fixed ``(qps, duration_s, seed)``.
    """
    if qps <= 0 or duration_s <= 0:
        raise ValueError(f"qps and duration_s must be positive, got {qps}/{duration_s}")
    rng = np.random.default_rng(seed)
    # Draw enough gaps that running short is a ~never event, then clip.
    expected = qps * duration_s
    draw = int(math.ceil(expected + 6.0 * math.sqrt(expected) + 16.0))
    offsets = np.cumsum(rng.exponential(1.0 / qps, size=draw))
    while offsets[-1] < duration_s:  # pathological seed: extend
        extra = np.cumsum(rng.exponential(1.0 / qps, size=draw)) + offsets[-1]
        offsets = np.concatenate([offsets, extra])
    return offsets[offsets < duration_s]


@dataclass(frozen=True)
class FamilyLoad:
    """Traffic for one model family: payloads cycled round-robin.

    ``model`` is forwarded to ``submit(payload, model=...)`` when set (the
    sharded server's family selector); ``None`` submits positionally (the
    single-family in-process server).  ``weight`` sets this family's share
    of the total arrival stream.
    """

    payloads: Tuple[np.ndarray, ...]
    model: Optional[str] = None
    weight: float = 1.0

    def __post_init__(self):
        if not self.payloads:
            raise ValueError("FamilyLoad needs at least one payload")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")
        object.__setattr__(self, "payloads", tuple(self.payloads))


@dataclass(frozen=True)
class LoadReport:
    """What one open-loop run offered and what came back.

    Latency is measured from each request's *scheduled* arrival, so both
    server queueing and generator slip (the generator falling behind its
    own schedule, ``max_slip_ms``) are charged to the request -- the
    coordinated-omission-free convention.  ``goodput_rps`` counts only
    successful completions over the window from first scheduled arrival to
    last completion (offered window plus drain).
    """

    offered_qps: float
    duration_s: float
    sent: int
    completed: int
    failed: int
    goodput_rps: float
    latency_ms_mean: float
    latency_ms_p50: float
    latency_ms_p95: float
    latency_ms_p99: float
    max_slip_ms: float
    drain_s: float
    errors: Tuple[Tuple[str, int], ...] = field(default=())

    def as_dict(self) -> dict:
        payload = dict(self.__dict__)
        payload["errors"] = {name: count for name, count in self.errors}
        return payload


class OpenLoopGenerator:
    """Fire a Poisson request stream at a server and report what happened.

    Parameters
    ----------
    submit:
        ``submit(payload)`` or ``submit(payload, model=...)`` returning a
        ``concurrent.futures.Future`` (both servers' ``submit`` qualifies).
        A synchronous raise (e.g. admission rejection) counts as a failed
        request; it does not stop the run.
    mix:
        One or more :class:`FamilyLoad`; each arrival is assigned a family
        by ``weight`` (deterministically, from ``seed``).
    qps / duration_s:
        Offered load and how long to offer it.
    deadline_ms:
        Optional per-request deadline forwarded to ``submit``.
    seed:
        Drives both the arrival process and the family assignment.
    drain_timeout_s:
        After the last send, how long to wait for stragglers before
        counting them as failed (``"Unresolved"``).
    """

    def __init__(self, submit: Callable, mix: Sequence[FamilyLoad], *,
                 qps: float, duration_s: float,
                 deadline_ms: Optional[float] = None, seed: int = 0,
                 drain_timeout_s: float = 60.0):
        if not mix:
            raise ValueError("need at least one FamilyLoad")
        self.submit = submit
        self.mix = tuple(mix)
        self.qps = float(qps)
        self.duration_s = float(duration_s)
        self.deadline_ms = deadline_ms
        self.seed = int(seed)
        self.drain_timeout_s = float(drain_timeout_s)

    def run(self) -> LoadReport:
        offsets = poisson_arrivals(self.qps, self.duration_s, seed=self.seed)
        rng = np.random.default_rng(self.seed + 1)
        weights = np.array([family.weight for family in self.mix], dtype=np.float64)
        family_ids = rng.choice(len(self.mix), size=len(offsets),
                                p=weights / weights.sum())
        per_family_cursor = [0] * len(self.mix)

        lock = threading.Lock()
        # Bounded memory at any offered load: quantiles come from the same
        # log-scale histogram the servers use, not a retained sample list.
        latency_hist = LatencyHistogram("loadgen_latency_ms")
        errors: Counter = Counter()
        completed = [0]
        last_completion = [0.0]
        outstanding = threading.Semaphore(0)

        def _finish(scheduled: float, future) -> None:
            now = time.monotonic()
            error = future.exception()
            with lock:
                if error is None:
                    completed[0] += 1
                    latency_hist.observe((now - scheduled) * 1e3)
                    last_completion[0] = max(last_completion[0], now)
                else:
                    errors[type(error).__name__] += 1
            outstanding.release()

        start = time.monotonic()
        max_slip = 0.0
        sent = 0
        fired = 0
        for offset, family_id in zip(offsets, family_ids):
            scheduled = start + float(offset)
            delay = scheduled - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            else:
                max_slip = max(max_slip, -delay)
            family = self.mix[family_id]
            cursor = per_family_cursor[family_id]
            per_family_cursor[family_id] = cursor + 1
            payload = family.payloads[cursor % len(family.payloads)]
            sent += 1
            try:
                if family.model is not None:
                    future = self.submit(payload, model=family.model,
                                         deadline_ms=self.deadline_ms)
                elif self.deadline_ms is not None:
                    future = self.submit(payload, deadline_ms=self.deadline_ms)
                else:
                    future = self.submit(payload)
            except Exception as error:  # noqa: BLE001 - rejection is data
                with lock:
                    errors[type(error).__name__] += 1
                continue
            fired += 1
            future.add_done_callback(
                lambda fut, scheduled=scheduled: _finish(scheduled, fut))

        # Drain: wait for every in-flight future (bounded).
        drain_deadline = time.monotonic() + self.drain_timeout_s
        drained = 0
        while drained < fired:
            remaining = drain_deadline - time.monotonic()
            if remaining <= 0 or not outstanding.acquire(timeout=max(remaining, 0.01)):
                with lock:
                    errors["Unresolved"] += fired - drained
                break
            drained += 1

        end = time.monotonic()
        with lock:
            mean = latency_hist.mean
            p50, p95, p99 = latency_hist.percentiles()
            done = completed[0]
            error_counts = tuple(sorted(errors.items()))
        window = max(last_completion[0] - start, self.duration_s) if done else self.duration_s
        return LoadReport(
            offered_qps=self.qps,
            duration_s=self.duration_s,
            sent=sent,
            completed=done,
            failed=sent - done,
            goodput_rps=done / window if window > 0 else float("nan"),
            latency_ms_mean=mean,
            latency_ms_p50=p50,
            latency_ms_p95=p95,
            latency_ms_p99=p99,
            max_slip_ms=max_slip * 1e3,
            drain_s=max(end - start - self.duration_s, 0.0),
            errors=error_counts,
        )


# --------------------------------------------------------------------------- #
# Sequence (generation) workload
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SequenceLoad:
    """Traffic for one class of generation request.

    ``prompts`` are 1-D integer source sequences cycled round-robin;
    ``max_new_tokens`` bounds each request's generation length.  Mixing
    several :class:`SequenceLoad` entries with different lengths is how the
    benchmark builds the mixed-length stream that separates continuous from
    static batching (short requests stuck behind long ones).
    """

    prompts: Tuple[np.ndarray, ...]
    max_new_tokens: int = 16
    weight: float = 1.0

    def __post_init__(self):
        if not self.prompts:
            raise ValueError("SequenceLoad needs at least one prompt")
        if self.max_new_tokens <= 0:
            raise ValueError(
                f"max_new_tokens must be positive, got {self.max_new_tokens}")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")
        object.__setattr__(self, "prompts", tuple(self.prompts))


@dataclass(frozen=True)
class GenerationLoadReport:
    """What one open-loop generation run offered and what came back.

    Same coordinated-omission-free convention as :class:`LoadReport`:
    sequence latency and time-to-first-token are measured from each
    request's *scheduled* arrival.  ``tokens_per_second`` is the headline
    generation throughput -- completed tokens over the window from first
    scheduled arrival to last completion.  ``peak_concurrent_streams`` is
    the largest number of sequences in flight at once.
    """

    offered_qps: float
    duration_s: float
    sent: int
    completed: int
    failed: int
    tokens_generated: int
    tokens_per_second: float
    goodput_sps: float
    ttft_ms_mean: float
    ttft_ms_p50: float
    ttft_ms_p95: float
    ttft_ms_p99: float
    latency_ms_p50: float
    latency_ms_p95: float
    latency_ms_p99: float
    peak_concurrent_streams: int
    max_slip_ms: float
    drain_s: float
    errors: Tuple[Tuple[str, int], ...] = field(default=())

    def as_dict(self) -> dict:
        payload = dict(self.__dict__)
        payload["errors"] = {name: count for name, count in self.errors}
        return payload


class GenerationLoadGenerator:
    """Open-loop Poisson stream of generation requests.

    ``submit(prompt, max_new_tokens=..., deadline_ms=...)`` must return a
    future resolving to a ``GenerationResult``
    (:meth:`repro.serving.generation.GenerationServer.submit` qualifies).
    Mirrors :class:`OpenLoopGenerator`: arrivals fire on schedule regardless
    of completions, a synchronous admission rejection counts as a failure,
    and quantiles come from bounded histograms.
    """

    def __init__(self, submit: Callable, mix: Sequence[SequenceLoad], *,
                 qps: float, duration_s: float,
                 deadline_ms: Optional[float] = None, seed: int = 0,
                 drain_timeout_s: float = 120.0):
        if not mix:
            raise ValueError("need at least one SequenceLoad")
        self.submit = submit
        self.mix = tuple(mix)
        self.qps = float(qps)
        self.duration_s = float(duration_s)
        self.deadline_ms = deadline_ms
        self.seed = int(seed)
        self.drain_timeout_s = float(drain_timeout_s)

    def run(self) -> GenerationLoadReport:
        offsets = poisson_arrivals(self.qps, self.duration_s, seed=self.seed)
        rng = np.random.default_rng(self.seed + 1)
        weights = np.array([load.weight for load in self.mix], dtype=np.float64)
        load_ids = rng.choice(len(self.mix), size=len(offsets),
                              p=weights / weights.sum())
        cursors = [0] * len(self.mix)

        lock = threading.Lock()
        latency_hist = LatencyHistogram("loadgen_generation_latency_ms")
        ttft_hist = LatencyHistogram("loadgen_generation_ttft_ms")
        errors: Counter = Counter()
        completed = [0]
        tokens = [0]
        last_completion = [0.0]
        in_flight = [0]
        peak = [0]
        outstanding = threading.Semaphore(0)

        def _finish(scheduled: float, sent_at: float, future) -> None:
            now = time.monotonic()
            error = future.exception()
            with lock:
                in_flight[0] -= 1
                if error is None:
                    result = future.result()
                    completed[0] += 1
                    tokens[0] += int(result.tokens.shape[0]) - 1
                    latency_hist.observe((now - scheduled) * 1e3)
                    # Charge generator slip to TTFT too: scheduled -> first
                    # token, not sent -> first token.
                    ttft_hist.observe((sent_at - scheduled) * 1e3
                                      + result.timing.ttft_ms)
                    last_completion[0] = max(last_completion[0], now)
                else:
                    errors[type(error).__name__] += 1
            outstanding.release()

        start = time.monotonic()
        max_slip = 0.0
        sent = 0
        fired = 0
        for offset, load_id in zip(offsets, load_ids):
            scheduled = start + float(offset)
            delay = scheduled - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            else:
                max_slip = max(max_slip, -delay)
            load = self.mix[load_id]
            cursor = cursors[load_id]
            cursors[load_id] = cursor + 1
            prompt = load.prompts[cursor % len(load.prompts)]
            sent += 1
            sent_at = time.monotonic()
            try:
                if self.deadline_ms is not None:
                    future = self.submit(prompt,
                                         max_new_tokens=load.max_new_tokens,
                                         deadline_ms=self.deadline_ms)
                else:
                    future = self.submit(prompt,
                                         max_new_tokens=load.max_new_tokens)
            except Exception as error:  # noqa: BLE001 - rejection is data
                with lock:
                    errors[type(error).__name__] += 1
                continue
            fired += 1
            with lock:
                in_flight[0] += 1
                peak[0] = max(peak[0], in_flight[0])
            future.add_done_callback(
                lambda fut, scheduled=scheduled, sent_at=sent_at:
                    _finish(scheduled, sent_at, fut))

        drain_deadline = time.monotonic() + self.drain_timeout_s
        drained = 0
        while drained < fired:
            remaining = drain_deadline - time.monotonic()
            if remaining <= 0 or not outstanding.acquire(timeout=max(remaining, 0.01)):
                with lock:
                    errors["Unresolved"] += fired - drained
                break
            drained += 1

        end = time.monotonic()
        with lock:
            ttft_mean = ttft_hist.mean
            ttft_p50, ttft_p95, ttft_p99 = ttft_hist.percentiles()
            p50, p95, p99 = latency_hist.percentiles()
            done = completed[0]
            total_tokens = tokens[0]
            error_counts = tuple(sorted(errors.items()))
            top = peak[0]
        window = max(last_completion[0] - start, self.duration_s) if done else self.duration_s
        return GenerationLoadReport(
            offered_qps=self.qps,
            duration_s=self.duration_s,
            sent=sent,
            completed=done,
            failed=sent - done,
            tokens_generated=total_tokens,
            tokens_per_second=total_tokens / window if window > 0 else float("nan"),
            goodput_sps=done / window if window > 0 else float("nan"),
            ttft_ms_mean=ttft_mean,
            ttft_ms_p50=ttft_p50,
            ttft_ms_p95=ttft_p95,
            ttft_ms_p99=ttft_p99,
            latency_ms_p50=p50,
            latency_ms_p95=p95,
            latency_ms_p99=p99,
            peak_concurrent_streams=top,
            max_slip_ms=max_slip * 1e3,
            drain_s=max(end - start - self.duration_s, 0.0),
            errors=error_counts,
        )
