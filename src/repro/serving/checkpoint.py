"""``.npz``-based checkpointing for live models and frozen exports.

Two formats live here:

* **State checkpoints** (:func:`save_state` / :func:`load_state`) -- a flat
  dump of a live module's ``state_dict`` (parameters *and* buffers, so
  batch-norm running statistics survive).  Loading requires a compatible
  model instance, exactly like ``torch.load_state_dict``.
* **Frozen checkpoints** (:func:`save_frozen` / :func:`load_frozen`) -- a
  self-describing serialization of a :class:`~repro.serving.frozen.FrozenModel`:
  a JSON spec tree describing the op graph plus one compact array per
  tensor.  Quantized weights are stored as packed BFP integer arrays
  (int8 signs, uint8/16 mantissas, int16 shared exponents -- the information
  content of the Figure 15 memory layout), so a 4-bit-mantissa checkpoint is
  a fraction of the FP32 size and reloads **bit-identically**:
  dequantization via ``BFPTensor.to_float`` reproduces the exact grid values
  the live model computes.
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path
from typing import Dict

import numpy as np

from ..nn.modules import Module
from .frozen import FrozenModel, FrozenOp, frozen_op_types

__all__ = ["CheckpointError", "save_state", "load_state", "save_frozen", "load_frozen"]

_SPEC_KEY = "__spec__"


class CheckpointError(ValueError):
    """A checkpoint file is corrupted, truncated, or incompatible.

    Subclasses :class:`ValueError` so pre-existing callers catching the old
    error type keep working; the message always names the offending file
    and, where known, the missing keys.
    """


def _read_npz(path: Path) -> Dict[str, np.ndarray]:
    """Load every array of an ``.npz``, turning low-level decode failures
    (truncated zip, corrupted member, not-a-zip) into a named
    :class:`CheckpointError`."""
    try:
        with np.load(path) as data:
            return {key: data[key] for key in data.files}
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, EOFError, OSError, ValueError, KeyError) as error:
        raise CheckpointError(
            f"{path}: corrupted or truncated checkpoint ({error})") from error


# --------------------------------------------------------------------------- #
# Live-module state checkpoints
# --------------------------------------------------------------------------- #
def save_state(module: Module, path) -> Path:
    """Write a module's parameters and buffers to a compressed ``.npz``."""
    path = Path(path)
    state = module.state_dict()
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **state)
    return path


def load_state(module: Module, path) -> Module:
    """Load a :func:`save_state` checkpoint into a compatible module.

    Validates the checkpoint against the module's ``state_dict`` before
    touching the module: missing or unexpected keys raise a
    :class:`CheckpointError` naming the file and the keys, instead of a
    cryptic failure mid-load.
    """
    path = Path(path)
    state = _read_npz(path)
    expected = set(module.state_dict())
    found = set(state)
    if expected != found:
        missing = sorted(expected - found)
        unexpected = sorted(found - expected)
        parts = [f"{path}: state checkpoint does not match the model"]
        if missing:
            parts.append(f"missing {len(missing)} keys: {missing[:8]}")
        if unexpected:
            parts.append(f"unexpected {len(unexpected)} keys: {unexpected[:8]}")
        raise CheckpointError("; ".join(parts))
    module.load_state_dict(state)
    return module


# --------------------------------------------------------------------------- #
# Frozen-model checkpoints
# --------------------------------------------------------------------------- #
def _collect(op: FrozenOp, path: str, arrays_out: Dict[str, np.ndarray]) -> dict:
    config, arrays, children = op.state()
    for name, array in arrays.items():
        arrays_out[f"{path}/{name}"] = array
    child_specs = {}
    for name, child in children.items():
        if isinstance(child, (list, tuple)):
            child_specs[name] = [
                _collect(item, f"{path}/{name}.{index}", arrays_out)
                for index, item in enumerate(child)
            ]
        else:
            child_specs[name] = _collect(child, f"{path}/{name}", arrays_out)
    return {"type": op.kind, "config": config, "children": child_specs}


def _build(spec: dict, path: str, arrays_by_dir: Dict[str, Dict[str, np.ndarray]]) -> FrozenOp:
    children = {}
    for name, child_spec in spec["children"].items():
        if isinstance(child_spec, list):
            children[name] = [
                _build(item, f"{path}/{name}.{index}", arrays_by_dir)
                for index, item in enumerate(child_spec)
            ]
        else:
            children[name] = _build(child_spec, f"{path}/{name}", arrays_by_dir)
    op_types = frozen_op_types()
    kind = spec["type"]
    if kind not in op_types:
        raise ValueError(f"unknown frozen op type {kind!r} in checkpoint")
    return op_types[kind].from_state(spec["config"], arrays_by_dir.get(path, {}), children)


def save_frozen(model: FrozenModel, path) -> Path:
    """Serialize a frozen model (spec JSON + compact arrays) to ``.npz``."""
    path = Path(path)
    arrays: Dict[str, np.ndarray] = {}
    root_spec = _collect(model.root, "root", arrays)
    spec = {
        "format": "repro-frozen",
        "version": FrozenModel.FORMAT_VERSION,
        "family": model.family,
        "meta": model.meta,
        # Array manifest: load_frozen validates the .npz against it so a
        # truncated/corrupted file fails with the missing keys by name.
        "arrays": sorted(arrays),
        "root": root_spec,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **{_SPEC_KEY: np.array(json.dumps(spec))}, **arrays)
    return path


def load_frozen(path) -> FrozenModel:
    """Reconstruct a :func:`save_frozen` checkpoint.

    The returned model's outputs are bit-identical to the model that was
    saved: packed weights decode to the exact BFP grid values, raw arrays
    round-trip untouched.
    """
    path = Path(path)
    data = _read_npz(path)
    if _SPEC_KEY not in data:
        raise CheckpointError(f"{path} is not a frozen-model checkpoint")
    try:
        spec = json.loads(str(data[_SPEC_KEY][()]))
    except (json.JSONDecodeError, TypeError) as error:
        raise CheckpointError(
            f"{path}: frozen checkpoint spec is corrupted ({error})") from error
    arrays_by_dir: Dict[str, Dict[str, np.ndarray]] = {}
    for key in data:
        if key == _SPEC_KEY:
            continue
        directory, _, name = key.rpartition("/")
        arrays_by_dir.setdefault(directory, {})[name] = data[key]
    if spec.get("format") != "repro-frozen":
        raise CheckpointError(f"unsupported checkpoint format {spec.get('format')!r}")
    if spec.get("version") != FrozenModel.FORMAT_VERSION:
        raise CheckpointError(f"unsupported checkpoint version {spec.get('version')!r}")
    manifest = spec.get("arrays")
    if manifest is not None:
        missing = sorted(set(manifest) - set(data))
        if missing:
            raise CheckpointError(
                f"{path}: frozen checkpoint is missing {len(missing)} of "
                f"{len(manifest)} arrays (truncated or corrupted): {missing[:8]}")
    try:
        root = _build(spec["root"], "root", arrays_by_dir)
    except KeyError as error:
        # Pre-manifest checkpoints can still be missing arrays; name the
        # file and the key instead of surfacing a bare KeyError from _build.
        raise CheckpointError(
            f"{path}: frozen checkpoint is missing array {error} "
            "(truncated or corrupted)") from error
    model = FrozenModel(root, spec["family"], meta=spec.get("meta"))
    compute_dtype = model.meta.get("compute_dtype")
    if compute_dtype is not None:
        # Packed weights always dequantize to float64; re-apply the saved
        # serving dtype so a cast model round-trips as cast.
        model.cast(compute_dtype)
    return model
