"""``.npz``-based checkpointing for live models and frozen exports.

Two formats live here:

* **State checkpoints** (:func:`save_state` / :func:`load_state`) -- a flat
  dump of a live module's ``state_dict`` (parameters *and* buffers, so
  batch-norm running statistics survive).  Loading requires a compatible
  model instance, exactly like ``torch.load_state_dict``.
* **Frozen checkpoints** (:func:`save_frozen` / :func:`load_frozen`) -- a
  self-describing serialization of a :class:`~repro.serving.frozen.FrozenModel`:
  a JSON spec tree describing the op graph plus one compact array per
  tensor.  Quantized weights are stored as packed BFP integer arrays
  (int8 signs, uint8/16 mantissas, int16 shared exponents -- the information
  content of the Figure 15 memory layout), so a 4-bit-mantissa checkpoint is
  a fraction of the FP32 size and reloads **bit-identically**:
  dequantization via ``BFPTensor.to_float`` reproduces the exact grid values
  the live model computes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

import numpy as np

from ..nn.modules import Module
from .frozen import FrozenModel, FrozenOp, frozen_op_types

__all__ = ["save_state", "load_state", "save_frozen", "load_frozen"]

_SPEC_KEY = "__spec__"


# --------------------------------------------------------------------------- #
# Live-module state checkpoints
# --------------------------------------------------------------------------- #
def save_state(module: Module, path) -> Path:
    """Write a module's parameters and buffers to a compressed ``.npz``."""
    path = Path(path)
    state = module.state_dict()
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **state)
    return path


def load_state(module: Module, path) -> Module:
    """Load a :func:`save_state` checkpoint into a compatible module."""
    with np.load(Path(path)) as data:
        state = {key: data[key] for key in data.files}
    module.load_state_dict(state)
    return module


# --------------------------------------------------------------------------- #
# Frozen-model checkpoints
# --------------------------------------------------------------------------- #
def _collect(op: FrozenOp, path: str, arrays_out: Dict[str, np.ndarray]) -> dict:
    config, arrays, children = op.state()
    for name, array in arrays.items():
        arrays_out[f"{path}/{name}"] = array
    child_specs = {}
    for name, child in children.items():
        if isinstance(child, (list, tuple)):
            child_specs[name] = [
                _collect(item, f"{path}/{name}.{index}", arrays_out)
                for index, item in enumerate(child)
            ]
        else:
            child_specs[name] = _collect(child, f"{path}/{name}", arrays_out)
    return {"type": op.kind, "config": config, "children": child_specs}


def _build(spec: dict, path: str, arrays_by_dir: Dict[str, Dict[str, np.ndarray]]) -> FrozenOp:
    children = {}
    for name, child_spec in spec["children"].items():
        if isinstance(child_spec, list):
            children[name] = [
                _build(item, f"{path}/{name}.{index}", arrays_by_dir)
                for index, item in enumerate(child_spec)
            ]
        else:
            children[name] = _build(child_spec, f"{path}/{name}", arrays_by_dir)
    op_types = frozen_op_types()
    kind = spec["type"]
    if kind not in op_types:
        raise ValueError(f"unknown frozen op type {kind!r} in checkpoint")
    return op_types[kind].from_state(spec["config"], arrays_by_dir.get(path, {}), children)


def save_frozen(model: FrozenModel, path) -> Path:
    """Serialize a frozen model (spec JSON + compact arrays) to ``.npz``."""
    path = Path(path)
    arrays: Dict[str, np.ndarray] = {}
    root_spec = _collect(model.root, "root", arrays)
    spec = {
        "format": "repro-frozen",
        "version": FrozenModel.FORMAT_VERSION,
        "family": model.family,
        "meta": model.meta,
        "root": root_spec,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **{_SPEC_KEY: np.array(json.dumps(spec))}, **arrays)
    return path


def load_frozen(path) -> FrozenModel:
    """Reconstruct a :func:`save_frozen` checkpoint.

    The returned model's outputs are bit-identical to the model that was
    saved: packed weights decode to the exact BFP grid values, raw arrays
    round-trip untouched.
    """
    with np.load(Path(path)) as data:
        if _SPEC_KEY not in data.files:
            raise ValueError(f"{path} is not a frozen-model checkpoint")
        spec = json.loads(str(data[_SPEC_KEY][()]))
        arrays_by_dir: Dict[str, Dict[str, np.ndarray]] = {}
        for key in data.files:
            if key == _SPEC_KEY:
                continue
            directory, _, name = key.rpartition("/")
            arrays_by_dir.setdefault(directory, {})[name] = data[key]
    if spec.get("format") != "repro-frozen":
        raise ValueError(f"unsupported checkpoint format {spec.get('format')!r}")
    if spec.get("version") != FrozenModel.FORMAT_VERSION:
        raise ValueError(f"unsupported checkpoint version {spec.get('version')!r}")
    root = _build(spec["root"], "root", arrays_by_dir)
    model = FrozenModel(root, spec["family"], meta=spec.get("meta"))
    compute_dtype = model.meta.get("compute_dtype")
    if compute_dtype is not None:
        # Packed weights always dequantize to float64; re-apply the saved
        # serving dtype so a cast model round-trips as cast.
        model.cast(compute_dtype)
    return model
