"""Continuous-batching sequence generation over a quantized KV cache.

The batching :class:`~repro.serving.server.InferenceServer` coalesces whole
requests: a sequence request occupies its batch until *every* row finishes,
so one long generation stalls its companions.  This module serves
autoregressive traffic the way modern LLM servers do:

* **Incremental decode** -- each active sequence keeps its self-attention
  K/V in a :class:`KVCacheManager` block pool (O(T) attention per emitted
  token, not O(T^2) recompute; see ``frozen.FrozenSeq2SeqTransformer.
  decode_step``).  The pool is preallocated; a sequence reserves its
  worst-case blocks at admission, so an admitted sequence can never die of
  cache exhaustion mid-flight.
* **Quantized cache** -- with ``kv_mantissa_bits`` set, every cached K/V row
  is snapped to the BFP grid by the same :class:`~repro.serving.frozen.
  ActivationQuantizer` the frozen forward uses, so cache memory scales with
  the paper's activation formats (a 4-bit-mantissa cache packs to ~8x less
  than float32; the grid values pack losslessly -- see
  :meth:`KVCacheManager.packed_block`).  Decode is bit-identical to full
  recompute with quantization off, boundedly divergent with it on.
* **Continuous batching** -- the scheduler admits new sequences and retires
  finished ones *between decode steps*: a batch is whatever sequences are
  alive right now, not a request-granularity bucket.  Tokens stream back
  through the existing future API (:meth:`GenerationServer.submit`) or
  incrementally through :meth:`GenerationServer.stream`.
* **PR 6 semantics** -- per-request ``deadline_ms`` (checked while queued
  *and* between decode steps: :class:`DeadlineExceeded` can interrupt a
  generation mid-flight), bounded-queue admission with reject/block policies
  (:class:`ServerOverloaded`), and graceful ``close(drain=True)`` that
  finishes active sequences before exiting (:class:`ServerClosed` for the
  rest).

Usage::

    frozen = serving.freeze(model, meta={"bos_index": 1, "eos_index": 2})
    with GenerationServer(frozen, GenerationConfig(max_active=8)) as server:
        future = server.submit(src_tokens, max_new_tokens=32)
        result = future.result()          # GenerationResult: tokens + timing
        for token in server.stream(src_tokens):   # incremental delivery
            print(token)
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
import traceback
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import observability
from ..core.bfp import bfp_quantize_tensor
from ..observability.metrics import LatencyHistogram
from .frozen import (
    ActivationQuantizer,
    FrozenModel,
    FrozenSeq2SeqTransformer,
)
from .server import (
    DeadlineExceeded,
    InvalidRequest,
    ServerClosed,
    ServerOverloaded,
    ServerUnavailable,
)

__all__ = [
    "CacheExhausted",
    "CacheStats",
    "GenerationConfig",
    "GenerationResult",
    "GenerationServer",
    "GenerationStats",
    "GenerationTiming",
    "KVCacheManager",
    "TokenStream",
]

_MASK_FILL = -1e9  # matches nn.attention.causal_mask: exp() underflows to 0.0


class CacheExhausted(ServerOverloaded):
    """The KV block pool cannot reserve the requested sequence."""


# --------------------------------------------------------------------------- #
# KV cache manager: a preallocated block pool shared by active sequences
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class CacheStats:
    """Occupancy accounting for the block pool."""

    total_blocks: int
    blocks_in_use: int
    block_tokens: int
    sequences: int
    tokens_cached: int
    utilization: float          # blocks_in_use / total_blocks
    cache_bytes: float          # at the configured storage format
    fp32_bytes: float           # same tokens at float32
    compression_vs_fp32: float

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class KVCacheManager:
    """Block-pool K/V storage for many concurrent sequences.

    One preallocated pool array holds every sequence's per-layer K and V,
    chunked into blocks of ``block_tokens`` positions; a sequence owns a list
    of block ids (its "block table") plus a filled length.  ``reserve`` takes
    the sequence's *worst-case* block count up front -- admission control in
    one place, no mid-flight exhaustion -- and ``release`` returns the blocks.

    With a ``quantizer`` every appended K/V row is fake-quantized onto the
    BFP grid before storage.  The floats in the pool then *are* grid points,
    so :meth:`packed_block` can pack them into a
    :class:`~repro.core.bfp.BFPTensor` losslessly, and :meth:`stats` accounts
    cache bytes at the packed size (the paper's Figure 15 layout) rather
    than the staging dtype's.
    """

    def __init__(self, num_layers: int, num_heads: int, head_dim: int,
                 total_blocks: int, block_tokens: int = 16,
                 quantizer: Optional[ActivationQuantizer] = None,
                 dtype=np.float64):
        if total_blocks <= 0 or block_tokens <= 0:
            raise ValueError("total_blocks and block_tokens must be positive")
        self.num_layers = int(num_layers)
        self.num_heads = int(num_heads)
        self.head_dim = int(head_dim)
        self.total_blocks = int(total_blocks)
        self.block_tokens = int(block_tokens)
        self.quantizer = quantizer
        self.dtype = np.dtype(dtype)
        # (block, layer, k/v, head, slot, head_dim): one block holds
        # `block_tokens` positions of every layer's K and V.
        self._pool = np.zeros(
            (self.total_blocks, self.num_layers, 2, self.num_heads,
             self.block_tokens, self.head_dim), dtype=self.dtype)
        self._free: List[int] = list(range(self.total_blocks - 1, -1, -1))
        self._tables: Dict[int, List[int]] = {}
        self._lengths: Dict[int, int] = {}

    # ------------------------------ lifecycle ------------------------- #
    def blocks_for(self, max_tokens: int) -> int:
        return -(-int(max_tokens) // self.block_tokens)

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    def can_reserve(self, max_tokens: int) -> bool:
        return self.blocks_for(max_tokens) <= len(self._free)

    def reserve(self, seq_id: int, max_tokens: int) -> None:
        """Claim the worst-case block count for ``seq_id`` up front."""
        if seq_id in self._tables:
            raise ValueError(f"sequence {seq_id} already holds a reservation")
        needed = self.blocks_for(max_tokens)
        if needed > len(self._free):
            raise CacheExhausted(
                f"KV cache pool exhausted: need {needed} blocks for "
                f"{max_tokens} tokens, {len(self._free)} of "
                f"{self.total_blocks} free")
        self._tables[seq_id] = [self._free.pop() for _ in range(needed)]
        self._lengths[seq_id] = 0

    def release(self, seq_id: int) -> None:
        blocks = self._tables.pop(seq_id, None)
        if blocks:
            self._free.extend(blocks)
        self._lengths.pop(seq_id, None)

    def length(self, seq_id: int) -> int:
        return self._lengths[seq_id]

    # ------------------------------ data path ------------------------- #
    def append_step(self, seq_ids: Sequence[int], layer: int,
                    k_new: np.ndarray, v_new: np.ndarray) -> None:
        """Write one decode step's (batch, heads, 1, head_dim) K/V rows into
        each sequence's next position.  Lengths advance only when the last
        layer has written (every layer sees the same step)."""
        if self.quantizer is not None:
            k_new = self.quantizer(k_new)
            v_new = self.quantizer(v_new)
        for row, seq_id in enumerate(seq_ids):
            position = self._lengths[seq_id]
            block = self._tables[seq_id][position // self.block_tokens]
            slot = position % self.block_tokens
            self._pool[block, layer, 0, :, slot, :] = k_new[row, :, 0, :]
            self._pool[block, layer, 1, :, slot, :] = v_new[row, :, 0, :]
            if layer == self.num_layers - 1:
                self._lengths[seq_id] = position + 1

    def gather(self, seq_ids: Sequence[int], layer: int,
               lengths: Sequence[int]) -> Tuple[np.ndarray, np.ndarray]:
        """Assemble padded (batch, heads, max_len, head_dim) K and V for the
        given sequences; padding rows are zero (masked by the caller)."""
        max_len = max(lengths)
        batch = len(seq_ids)
        k = np.zeros((batch, self.num_heads, max_len, self.head_dim), dtype=self.dtype)
        v = np.zeros_like(k)
        for row, (seq_id, length) in enumerate(zip(seq_ids, lengths)):
            table = self._tables[seq_id]
            for start in range(0, length, self.block_tokens):
                count = min(self.block_tokens, length - start)
                block = self._pool[table[start // self.block_tokens], layer]
                k[row, :, start:start + count, :] = block[0, :, :count, :]
                v[row, :, start:start + count, :] = block[1, :, :count, :]
        return k, v

    def packed_block(self, seq_id: int, layer: int):
        """Pack one sequence's cached K for ``layer`` into a BFP tensor.

        Only meaningful with a quantizer attached: the pool floats already
        sit on the BFP grid, so packing is lossless (``to_float`` round-trips
        bit-identically) -- the proof that the cache can be *stored* in the
        packed Figure 15 layout, not just accounted at its size.  Lossless
        requires ``head_dim % group_size == 0`` (true for every model here,
        head_dim 16): then the flattened row's groups coincide with the
        per-head groups the quantizer used at append time.
        """
        if self.quantizer is None:
            raise ValueError("packed_block requires a quantized cache")
        length = self._lengths[seq_id]
        k, _ = self.gather([seq_id], layer, [length])
        flat = k[0].transpose(1, 0, 2).reshape(length, -1)  # (tokens, h*d)
        return bfp_quantize_tensor(
            flat, mantissa_bits=self.quantizer.mantissa_bits,
            group_size=self.quantizer.group_size,
            exponent_bits=self.quantizer.exponent_bits, rounding="nearest")

    # ------------------------------ accounting ------------------------ #
    def stats(self) -> CacheStats:
        blocks_in_use = self.total_blocks - len(self._free)
        tokens = sum(self._lengths.values())
        values = tokens * self.num_layers * 2 * self.num_heads * self.head_dim
        values_per_token = self.num_layers * 2 * self.num_heads * self.head_dim
        if self.quantizer is not None:
            # Mirrors BFPTensor.storage_bits(): per group, a shared exponent
            # plus 3-bit sign-magnitude chunks per value (Figure 15 layout).
            group = self.quantizer.group_size
            groups_per_row = -(-self.num_heads * self.head_dim // group)
            chunks = -(-self.quantizer.mantissa_bits // 3)
            exponent_bits = self.quantizer.exponent_bits or 8
            bits_per_group = exponent_bits + group * 3 * chunks
            bytes_per_token = self.num_layers * 2 * groups_per_row * bits_per_group / 8.0
        else:
            bytes_per_token = values_per_token * float(self.dtype.itemsize)
        cache_bytes = tokens * bytes_per_token
        fp32_bytes = values * 4.0
        return CacheStats(
            total_blocks=self.total_blocks,
            blocks_in_use=blocks_in_use,
            block_tokens=self.block_tokens,
            sequences=len(self._tables),
            tokens_cached=tokens,
            utilization=blocks_in_use / self.total_blocks,
            cache_bytes=cache_bytes,
            fp32_bytes=fp32_bytes,
            # Format property, not occupancy: ratio per cached token.
            compression_vs_fp32=(values_per_token * 4.0) / bytes_per_token,
        )


class _BatchCache:
    """Adapter giving one decode step the ``DecodeCache.append`` protocol
    over the block pool, for whatever sequences are active right now."""

    def __init__(self, manager: KVCacheManager, seq_ids: Sequence[int],
                 lengths: Sequence[int]):
        self.manager = manager
        self.seq_ids = list(seq_ids)
        self.lengths = [length + 1 for length in lengths]  # incl. this step

    def append(self, layer: int, k_new: np.ndarray, v_new: np.ndarray):
        self.manager.append_step(self.seq_ids, layer, k_new, v_new)
        return self.manager.gather(self.seq_ids, layer, self.lengths)


def _padding_mask(lengths: Sequence[int], dtype) -> Optional[np.ndarray]:
    """(batch, 1, 1, max_len) additive mask hiding rows' padded tail, or
    ``None`` when every row has the same length (the bit-exact fast path)."""
    max_len = max(lengths)
    if min(lengths) == max_len:
        return None
    mask = np.zeros((len(lengths), 1, 1, max_len), dtype=dtype)
    for row, length in enumerate(lengths):
        mask[row, :, :, length:] = _MASK_FILL
    return mask


# --------------------------------------------------------------------------- #
# Requests, results, streaming
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class GenerationTiming:
    """Where a sequence's wall-clock time went."""

    queue_ms: float        # submit -> admitted (prefill start)
    prefill_ms: float      # encoder + cross-attention K/V projection
    ttft_ms: float         # submit -> first generated token
    total_ms: float        # submit -> finished
    steps: int             # decode steps this sequence participated in
    finish_reason: str     # "eos" | "length"


@dataclass(frozen=True)
class GenerationResult:
    """One finished generation: BOS + generated tokens (EOS included when
    emitted) plus timing."""

    tokens: np.ndarray
    timing: GenerationTiming

    @property
    def new_tokens(self) -> np.ndarray:
        return self.tokens[1:]


class TokenStream:
    """Incremental token delivery for one sequence.

    Iterating yields generated token ids as the scheduler emits them;
    iteration ends at EOS/length and re-raises the sequence's failure
    (deadline, server close) if it has one.  ``result()`` waits for the
    complete :class:`GenerationResult`.
    """

    _DONE = object()

    def __init__(self):
        self.future: "Future[GenerationResult]" = Future()
        self._queue: "queue.Queue" = queue.Queue()

    def __iter__(self):
        while True:
            item = self._queue.get()
            if item is self._DONE:
                error = self.future.exception()
                if error is not None:
                    raise error
                return
            yield item

    def result(self, timeout: Optional[float] = None) -> GenerationResult:
        return self.future.result(timeout)

    # Scheduler side:
    def _emit(self, token: int) -> None:
        self._queue.put(token)

    def _close(self) -> None:
        self._queue.put(self._DONE)


class _Sequence:
    """Scheduler-side state for one request."""

    __slots__ = ("seq_id", "src", "max_new_tokens", "deadline", "stream",
                 "submitted", "admitted_at", "prefill_ms", "first_token_at",
                 "memory_kv", "src_length", "position", "token", "generated",
                 "steps")

    def __init__(self, seq_id: int, src: np.ndarray, max_new_tokens: int,
                 deadline: Optional[float], stream: TokenStream,
                 submitted: float):
        self.seq_id = seq_id
        self.src = src
        self.max_new_tokens = max_new_tokens
        self.deadline = deadline
        self.stream = stream
        self.submitted = submitted
        self.admitted_at = 0.0
        self.prefill_ms = 0.0
        self.first_token_at: Optional[float] = None
        self.memory_kv = None       # per-layer ((1,h,S,d), (1,h,S,d))
        self.src_length = int(src.shape[0])
        self.position = 0           # next decode position (= cached tokens)
        self.token = 0              # token to feed at `position`
        self.generated: List[int] = []
        self.steps = 0


# --------------------------------------------------------------------------- #
# Server configuration + stats
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class GenerationConfig:
    """Knobs for the continuous-batching scheduler.

    ``max_active`` caps concurrent sequences per decode step (the batching
    width); ``cache_blocks`` sizes the KV pool (default: enough for
    ``max_active`` worst-case sequences, so the cap binds before the pool
    does).  ``kv_mantissa_bits=None`` keeps the cache at the staging dtype
    (bit-exact decode); setting it quantizes every cached K/V row to the BFP
    grid (bounded divergence, paper-format cache memory).
    """

    max_active: int = 8
    max_queue_depth: Optional[int] = None
    admission_policy: str = "reject"
    block_timeout_ms: float = 1000.0
    max_new_tokens: Optional[int] = None
    block_tokens: int = 16
    cache_blocks: Optional[int] = None
    kv_mantissa_bits: Optional[int] = None
    kv_group_size: int = 16
    kv_exponent_bits: Optional[int] = 8
    idle_poll_ms: float = 20.0
    close_timeout_s: float = 30.0

    def __post_init__(self):
        if self.max_active <= 0:
            raise ValueError(f"max_active must be positive, got {self.max_active}")
        if self.admission_policy not in ("reject", "block"):
            raise ValueError(f"admission_policy must be 'reject' or 'block', "
                             f"got {self.admission_policy!r}")
        if self.max_queue_depth is not None and self.max_queue_depth <= 0:
            raise ValueError("max_queue_depth must be positive when set")
        if self.block_tokens <= 0:
            raise ValueError("block_tokens must be positive")


@dataclass(frozen=True)
class GenerationStats:
    """Counters + latency summaries; mapping-compatible like ServerStats."""

    submitted: int
    completed: int
    failed: int
    rejected: int
    tokens_generated: int
    decode_steps: int
    mean_batch_per_step: float
    tokens_per_second: float
    ttft_ms_p50: float
    ttft_ms_p95: float
    ttft_ms_p99: float
    step_ms_p50: float
    step_ms_p95: float
    step_ms_p99: float
    active_sequences: int
    pending_sequences: int
    cache: dict

    def as_dict(self) -> dict:
        return dict(self.__dict__)

    def __getitem__(self, key):
        return self.__dict__[key]

    def keys(self):
        return self.__dict__.keys()


# --------------------------------------------------------------------------- #
# The server
# --------------------------------------------------------------------------- #
class GenerationServer:
    """Continuous-batching greedy-generation server over a frozen seq2seq.

    A single scheduler thread runs the decode loop: between any two decode
    steps it retires finished/expired sequences, admits pending ones (cap
    and cache permitting), then executes one incremental step for every
    active sequence as a single batch.  Admission never waits for a batch
    to drain -- a new sequence joins mid-flight at its own position 0 while
    its companions continue at theirs.
    """

    def __init__(self, model, config: Optional[GenerationConfig] = None,
                 name: str = "generation"):
        root = model.root if isinstance(model, FrozenModel) else model
        if not isinstance(root, FrozenSeq2SeqTransformer):
            raise TypeError(
                f"GenerationServer requires a frozen seq2seq transformer, got "
                f"{type(root).__name__}")
        meta = model.meta if isinstance(model, FrozenModel) else {}
        self.root = root
        self.name = name
        self.config = config or GenerationConfig()
        self.bos_index = int(meta.get("bos_index", 1))
        self.eos_index = int(meta.get("eos_index", 2))
        first_layer = root.decoder_layers[0].self_attention
        num_heads = first_layer.num_heads
        head_dim = root.embed_dim // num_heads
        self._step_cap = self.config.max_new_tokens or (root.max_length - 1)
        self._step_cap = min(self._step_cap, root.max_length - 1)
        quantizer = None
        if self.config.kv_mantissa_bits is not None:
            quantizer = ActivationQuantizer(self.config.kv_mantissa_bits,
                                            self.config.kv_group_size,
                                            self.config.kv_exponent_bits)
        blocks = self.config.cache_blocks
        if blocks is None:
            per_seq = -(-self._step_cap // self.config.block_tokens)
            blocks = self.config.max_active * per_seq
        self.cache = KVCacheManager(
            len(root.decoder_layers), num_heads, head_dim, blocks,
            block_tokens=self.config.block_tokens, quantizer=quantizer,
            dtype=np.dtype(meta.get("compute_dtype") or np.float64))
        self._dtype = self.cache.dtype

        self._seq_ids = itertools.count()
        self._pending: "queue.Queue" = queue.Queue()
        self._active: List[_Sequence] = []
        self._caches: Dict[int, object] = {}
        self._batch_mkv = None      # rebuilt when batch composition changes
        self._batch_mmask = None
        self._lock = threading.Lock()
        self._closed = False  # guarded-by: _lock
        self._draining = False  # guarded-by: _lock
        self._failure: Optional[str] = None  # guarded-by: _lock
        self._capacity = (threading.Semaphore(self.config.max_queue_depth)
                          if self.config.max_queue_depth else None)
        # Stats (guarded by _lock).
        self._submitted = 0  # guarded-by: _lock
        self._completed = 0  # guarded-by: _lock
        self._failed = 0  # guarded-by: _lock
        self._rejected = 0  # guarded-by: _lock
        self._tokens = 0  # guarded-by: _lock
        self._steps = 0  # guarded-by: _lock
        self._step_batch_total = 0  # guarded-by: _lock
        self._first_token_at: Optional[float] = None  # guarded-by: _lock
        self._last_token_at: Optional[float] = None  # guarded-by: _lock
        self._ttft_hist = LatencyHistogram("generation_ttft_ms")  # guarded-by: _lock
        self._step_hist = LatencyHistogram("generation_step_ms")  # guarded-by: _lock
        self._obs_metrics = None
        self._obs_registry = None
        self._wake = threading.Event()
        self._worker = threading.Thread(target=self._run,
                                        name=f"{name}-scheduler", daemon=True)
        self._worker.start()

    # ------------------------------ submission ------------------------ #
    def _validate(self, src_tokens) -> np.ndarray:
        src = np.asarray(src_tokens)
        if src.ndim != 1 or src.size == 0:
            raise InvalidRequest(
                f"src_tokens must be a non-empty 1-D token sequence, got "
                f"shape {src.shape}")
        if src.dtype.kind not in "iu":
            raise InvalidRequest(
                f"src_tokens must be integer tokens, got dtype {src.dtype}")
        if src.shape[0] > self.root.max_length:
            raise InvalidRequest(
                f"source length {src.shape[0]} exceeds model max_length "
                f"{self.root.max_length}")
        return src.astype(np.int64, copy=False)

    def _enqueue(self, src_tokens, max_new_tokens: Optional[int],
                 deadline_ms: Optional[float]) -> TokenStream:
        src = self._validate(src_tokens)
        if deadline_ms is not None and deadline_ms <= 0:
            raise InvalidRequest(f"deadline_ms must be positive, got {deadline_ms}")
        steps = self._step_cap if max_new_tokens is None else int(max_new_tokens)
        if steps <= 0:
            raise InvalidRequest(f"max_new_tokens must be positive, got {steps}")
        steps = min(steps, self.root.max_length - 1)
        if self.cache.blocks_for(steps) > self.cache.total_blocks:
            with self._lock:
                self._rejected += 1
            raise CacheExhausted(
                f"sequence needs {self.cache.blocks_for(steps)} cache blocks "
                f"but the pool only has {self.cache.total_blocks}")
        if self._capacity is not None:
            if self.config.admission_policy == "reject":
                admitted = self._capacity.acquire(blocking=False)
            else:
                admitted = self._capacity.acquire(
                    timeout=self.config.block_timeout_ms / 1e3)
            if not admitted:
                with self._lock:
                    self._rejected += 1
                raise ServerOverloaded(
                    f"generation server at capacity ({self.config.max_queue_depth} "
                    f"unresolved sequences, policy="
                    f"{self.config.admission_policy!r})")
        stream = TokenStream()
        if self._capacity is not None:
            stream.future.add_done_callback(lambda _f: self._capacity.release())
        now = time.monotonic()
        deadline = None if deadline_ms is None else now + deadline_ms / 1e3
        sequence = _Sequence(next(self._seq_ids), src, steps, deadline,
                             stream, now)
        with self._lock:
            if self._closed or self._draining:
                self._fail_locked(sequence, ServerClosed("server is closed"))
                raise ServerClosed("generation server is closed")
            if self._failure is not None:
                self._fail_locked(sequence, ServerUnavailable(self._failure))
                raise ServerUnavailable(
                    f"generation server is unavailable: {self._failure}")
            self._submitted += 1
        self._pending.put(sequence)
        self._wake.set()
        return stream

    def submit(self, src_tokens, max_new_tokens: Optional[int] = None,
               deadline_ms: Optional[float] = None) -> "Future[GenerationResult]":
        """Enqueue one source sequence; the future resolves to a
        :class:`GenerationResult` when generation finishes."""
        return self._enqueue(src_tokens, max_new_tokens, deadline_ms).future

    def stream(self, src_tokens, max_new_tokens: Optional[int] = None,
               deadline_ms: Optional[float] = None) -> TokenStream:
        """Like :meth:`submit`, but returns a :class:`TokenStream` that
        yields tokens incrementally as the scheduler emits them."""
        return self._enqueue(src_tokens, max_new_tokens, deadline_ms)

    def generate(self, src_tokens, max_new_tokens: Optional[int] = None,
                 deadline_ms: Optional[float] = None,
                 timeout: Optional[float] = None) -> GenerationResult:
        """Synchronous submission."""
        return self.submit(src_tokens, max_new_tokens,
                           deadline_ms).result(timeout=timeout)

    # ------------------------------ scheduler ------------------------- #
    def _run(self) -> None:
        try:
            while True:
                with self._lock:
                    closed = self._closed
                    draining = self._draining
                if closed and not draining:
                    self._abort_everything(ServerClosed("server is closed"))
                    return
                self._retire_expired()
                self._admit()
                if not self._active:
                    if draining and self._pending.empty():
                        return
                    self._wake.wait(timeout=self.config.idle_poll_ms / 1e3)
                    self._wake.clear()
                    continue
                self._decode_step()
        except BaseException:  # noqa: BLE001 - worker death must not strand callers
            failure = traceback.format_exc()
            with self._lock:
                self._failure = f"scheduler thread died:\n{failure}"
            self._abort_everything(ServerUnavailable(
                "generation scheduler died; see server.failure for traceback"))

    def _retire_expired(self) -> None:
        now = time.monotonic()
        for sequence in [s for s in self._active
                         if s.deadline is not None and now > s.deadline]:
            self._finish_failure(sequence, DeadlineExceeded(
                f"deadline expired mid-generation after "
                f"{len(sequence.generated)} tokens"))

    def _admit(self) -> None:
        admitted = []
        while len(self._active) + len(admitted) < self.config.max_active:
            try:
                sequence = self._pending.get_nowait()
            except queue.Empty:
                break
            now = time.monotonic()
            if sequence.deadline is not None and now > sequence.deadline:
                self._fail_pending(sequence, DeadlineExceeded(
                    "deadline expired while queued for admission"))
                continue
            with self._lock:
                closed = self._closed and not self._draining
            if closed:
                self._fail_pending(sequence, ServerClosed("server is closed"))
                continue
            if not self.cache.can_reserve(sequence.max_new_tokens):
                # Pool momentarily full: put it back and stop admitting; a
                # retirement will free blocks. (Reservation is worst-case,
                # so this is the only place a sequence can wait on cache.)
                self._requeue(sequence)
                break
            # Reserve now so the can_reserve check above stays truthful for
            # the rest of this admission round.
            self.cache.reserve(sequence.seq_id, sequence.max_new_tokens)
            admitted.append(sequence)
        if admitted:
            self._prefill_batch(admitted)

    def _requeue(self, sequence: _Sequence) -> None:
        # Preserve FIFO as far as queue.Queue allows: drain + put-front.
        backlog = [sequence]
        while True:
            try:
                backlog.append(self._pending.get_nowait())
            except queue.Empty:
                break
        for item in backlog:
            self._pending.put(item)

    def _prefill_batch(self, sequences: List[_Sequence]) -> None:
        """Encode newly admitted sequences, batching same-length sources.

        One encoder pass per source-length group instead of one per
        sequence: under short-request churn admission happens every few
        decode steps, and per-sequence batch-1 encodes were a measurable
        scheduler tax."""
        started = time.monotonic()
        groups: Dict[int, List[_Sequence]] = {}
        for sequence in sequences:
            groups.setdefault(sequence.src_length, []).append(sequence)
        for group in groups.values():
            group_started = time.monotonic()
            _, memory_kv = self.root.prefill(np.stack([s.src for s in group]))
            prefill_ms = (time.monotonic() - group_started) * 1e3
            for row, sequence in enumerate(group):
                sequence.admitted_at = group_started
                # Row slices of the batched projection: bit-identical to a
                # solo prefill (the per-slice GEMM shapes don't depend on
                # how many sequences were encoded together).
                sequence.memory_kv = tuple(
                    (k[row:row + 1], v[row:row + 1]) for k, v in memory_kv)
                sequence.token = self.bos_index
                sequence.position = 0
                sequence.prefill_ms = prefill_ms
                self._active.append(sequence)
        self._batch_mkv = None  # composition changed
        tracer = observability.active_tracer()
        if tracer is not None and tracer.armed:
            tracer.add_event("prefill", started, time.monotonic() - started,
                             args={"server": self.name,
                                   "sequences": len(sequences)})

    def _assemble_memory(self):
        """Batched cross-attention K/V + padding mask for the active set;
        cached until the batch composition changes."""
        if self._batch_mkv is not None:
            return self._batch_mkv, self._batch_mmask
        lengths = [s.src_length for s in self._active]
        max_len = max(lengths)
        layers = len(self.root.decoder_layers)
        batched = []
        for layer in range(layers):
            shape = (len(self._active), self.cache.num_heads, max_len,
                     self.cache.head_dim)
            k = np.zeros(shape, dtype=self._dtype)
            v = np.zeros(shape, dtype=self._dtype)
            for row, sequence in enumerate(self._active):
                k_seq, v_seq = sequence.memory_kv[layer]
                k[row, :, :sequence.src_length, :] = k_seq[0]
                v[row, :, :sequence.src_length, :] = v_seq[0]
            batched.append((k, v))
        self._batch_mkv = tuple(batched)
        self._batch_mmask = _padding_mask(lengths, self._dtype)
        return self._batch_mkv, self._batch_mmask

    def _decode_step(self) -> None:
        started = time.monotonic()
        batch = list(self._active)
        seq_ids = [s.seq_id for s in batch]
        positions = np.array([s.position for s in batch], dtype=np.int64)
        tokens = np.array([s.token for s in batch], dtype=np.int64)
        cache_lengths = [self.cache.length(s.seq_id) for s in batch]
        adapter = _BatchCache(self.cache, seq_ids, cache_lengths)
        self_mask = _padding_mask([length + 1 for length in cache_lengths],
                                  self._dtype)
        memory_kv, memory_mask = self._assemble_memory()
        logits = self.root.decode_step(tokens, positions, adapter, memory_kv,
                                       self_mask=self_mask,
                                       memory_mask=memory_mask)
        next_tokens = logits.argmax(axis=-1)
        now = time.monotonic()
        step_ms = (now - started) * 1e3
        emitted = 0
        first_token_ttfts = []
        for sequence, token in zip(batch, next_tokens):
            token = int(token)
            sequence.generated.append(token)
            sequence.steps += 1
            sequence.position += 1
            sequence.token = token
            emitted += 1
            if sequence.first_token_at is None:
                sequence.first_token_at = now
                ttft_ms = (now - sequence.submitted) * 1e3
                first_token_ttfts.append(ttft_ms)
                with self._lock:
                    self._ttft_hist.observe(ttft_ms)
            sequence.stream._emit(token)
            if token == self.eos_index:
                self._finish_success(sequence, "eos")
            elif len(sequence.generated) >= sequence.max_new_tokens:
                self._finish_success(sequence, "length")
        with self._lock:
            self._steps += 1
            self._step_batch_total += len(batch)
            self._tokens += emitted
            if self._first_token_at is None:
                self._first_token_at = now
            self._last_token_at = now
            self._step_hist.observe(step_ms)
        self._observe_step(len(batch), step_ms, started, first_token_ttfts)

    # ------------------------------ completion ------------------------ #
    def _result(self, sequence: _Sequence, reason: str) -> GenerationResult:
        now = time.monotonic()
        ttft = (sequence.first_token_at or now) - sequence.submitted
        return GenerationResult(
            tokens=np.array([self.bos_index] + sequence.generated, dtype=np.int64),
            timing=GenerationTiming(
                queue_ms=(sequence.admitted_at - sequence.submitted) * 1e3,
                prefill_ms=sequence.prefill_ms,
                ttft_ms=ttft * 1e3,
                total_ms=(now - sequence.submitted) * 1e3,
                steps=sequence.steps,
                finish_reason=reason,
            ))

    def _finish_success(self, sequence: _Sequence, reason: str) -> None:
        self._detach(sequence)
        result = self._result(sequence, reason)
        with self._lock:
            self._completed += 1
        sequence.stream.future.set_result(result)
        sequence.stream._close()

    def _finish_failure(self, sequence: _Sequence, error: Exception) -> None:
        self._detach(sequence)
        with self._lock:
            self._failed += 1
        sequence.stream.future.set_exception(error)
        sequence.stream._close()

    def _detach(self, sequence: _Sequence) -> None:
        if sequence in self._active:
            self._active.remove(sequence)
            self._batch_mkv = None
        self.cache.release(sequence.seq_id)

    def _fail_pending(self, sequence: _Sequence, error: Exception) -> None:
        with self._lock:
            self._failed += 1
        sequence.stream.future.set_exception(error)
        sequence.stream._close()

    def _fail_locked(self, sequence: _Sequence, error: Exception) -> None:
        # Caller failed before enqueue: resolve so the stream never hangs.
        sequence.stream.future.set_exception(error)
        sequence.stream._close()

    def _abort_everything(self, error: Exception) -> None:
        for sequence in list(self._active):
            self._finish_failure(sequence, error)
        while True:
            try:
                sequence = self._pending.get_nowait()
            except queue.Empty:
                break
            self._fail_pending(sequence, error)

    # ------------------------------ observability --------------------- #
    def _generation_metrics(self):
        registry = observability.registry()  # repro-lint: disable=RL003 -- lazy handle (re)build; callers gate
        if self._obs_metrics is None or self._obs_registry is not registry:
            self._obs_metrics = (
                registry.counter(
                    "generation_tokens_total",
                    help="Tokens emitted by the generation server.",
                    server=self.name),
                registry.counter(
                    "generation_steps_total",
                    help="Continuous-batching decode steps executed.",
                    server=self.name),
                registry.histogram(
                    "generation_step_ms",
                    help="Wall time of one batched decode step in milliseconds.",
                    server=self.name),
                registry.histogram(
                    "generation_ttft_ms",
                    help="Time to first token in milliseconds.",
                    server=self.name),
                registry.gauge(
                    "generation_active_sequences",
                    help="Sequences being decoded this step.",
                    server=self.name),
                registry.gauge(
                    "generation_cache_blocks_used",
                    help="KV cache blocks currently reserved.",
                    server=self.name),
            )
            self._obs_registry = registry
        return self._obs_metrics

    def _observe_step(self, batch: int, step_ms: float, started: float,
                      first_token_ttfts: Sequence[float]) -> None:
        if not observability.enabled():
            return
        tokens, steps, step_hist, ttft_hist, active, blocks = \
            self._generation_metrics()
        tokens.inc(batch)
        steps.inc()
        step_hist.observe(step_ms)
        active.set(len(self._active))
        blocks.set(self.cache.total_blocks - self.cache.free_blocks)
        for ttft_ms in first_token_ttfts:
            ttft_hist.observe(ttft_ms)
        tracer = observability.active_tracer()
        if tracer is not None and tracer.armed:
            tracer.add_event(
                "decode_step", started, step_ms / 1e3,
                args={"server": self.name, "batch": batch,
                      "cache_blocks_used":
                          self.cache.total_blocks - self.cache.free_blocks})

    # ------------------------------ stats / lifecycle ----------------- #
    def stats(self) -> GenerationStats:
        with self._lock:
            ttft = self._ttft_hist.percentiles()
            step = self._step_hist.percentiles()
            window = None
            if self._first_token_at is not None and self._last_token_at is not None:
                window = self._last_token_at - self._first_token_at
            return GenerationStats(
                submitted=self._submitted,
                completed=self._completed,
                failed=self._failed,
                rejected=self._rejected,
                tokens_generated=self._tokens,
                decode_steps=self._steps,
                mean_batch_per_step=(self._step_batch_total / self._steps
                                     if self._steps else 0.0),
                tokens_per_second=(self._tokens / window
                                   if window else float("nan")),
                ttft_ms_p50=ttft[0], ttft_ms_p95=ttft[1], ttft_ms_p99=ttft[2],
                step_ms_p50=step[0], step_ms_p95=step[1], step_ms_p99=step[2],
                active_sequences=len(self._active),
                pending_sequences=self._pending.qsize(),
                cache=self.cache.stats().as_dict(),
            )

    @property
    def failure(self) -> Optional[str]:
        with self._lock:
            return self._failure

    def close(self, drain: bool = True,
              timeout: Optional[float] = None) -> None:
        """Stop admission; with ``drain`` finish active + pending sequences
        first, otherwise fail them with :class:`ServerClosed`."""
        with self._lock:
            if self._closed:
                self._worker.join(timeout or self.config.close_timeout_s)
                return
            self._closed = True
            self._draining = drain
        self._wake.set()
        self._worker.join(timeout or self.config.close_timeout_s)
        if self._worker.is_alive():
            # Drain overran its budget: force-fail what's left.
            with self._lock:
                self._draining = False
            self._wake.set()
            self._worker.join(self.config.close_timeout_s)
        self._abort_everything(ServerClosed("server is closed"))

    def __enter__(self) -> "GenerationServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close(drain=exc_info[0] is None)
