"""Shared-memory slot rings: zero-copy array transfer between processes.

The sharded serving tier (:mod:`repro.serving.cluster`) moves request and
response batches between the front-end process and its engine workers.
Pickling a NumPy array over a ``multiprocessing`` pipe serializes every byte
twice (once into the pickle buffer, once through the OS pipe); for a
32-request CNN batch that is ~400 KiB per direction per batch, all of it
copied through kernel space.  A :class:`ShmRing` instead places the array
bytes directly into a ``multiprocessing.shared_memory`` segment both
processes have mapped: the producer does one ``memcpy`` into a free slot,
sends a tiny control header (slot index, shape, dtype -- a few dozen bytes)
over the pipe, and the consumer reads the payload as a NumPy *view* of the
mapped buffer -- no serialization, no second copy, no kernel transit for
the bulk data.

Design notes:

* **Slots, not a byte stream.**  The segment is divided into fixed-size
  slots.  Each in-flight array occupies one slot; slot lifetime is managed
  by the *producer* side (:meth:`ShmRing.acquire` / :meth:`ShmRing.release`)
  and release is driven by the peer's control messages ("I am done with
  slot k").  This keeps the shared segment free of any cross-process
  mutable state -- the control pipe is the only synchronization channel,
  so the usual lock-free-shared-memory hazards never arise.
* **Oversized payloads fall back to the pipe.**  An array larger than one
  slot cannot be staged in the ring; callers check :meth:`ShmRing.fits`
  and send such payloads pickled over the control pipe instead (counted by
  the caller, see ``ServerStats.oversized_transfers``).  Correctness never
  depends on the slot size; only the zero-copy fast path does.
* **The creator owns the segment.**  The process that builds the ring
  (``create=True``) is responsible for ``unlink()``; peers attach with
  :meth:`ShmRing.attach` via :func:`attach_shared_memory`, which avoids
  taking ``resource_tracker`` ownership of segments the front end still
  owns (``track=False`` on 3.13+; plain attach on 3.11/3.12, where spawn
  children share the owner's tracker and duplicate registrations dedupe).
"""

from __future__ import annotations

import secrets
from multiprocessing import shared_memory
from typing import List, Optional, Tuple

import numpy as np

__all__ = ["TransportError", "ShmRing", "attach_shared_memory"]


class TransportError(RuntimeError):
    """Misuse of the shared-memory transport (bad slot, closed ring, ...)."""


def attach_shared_memory(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without taking tracker ownership.

    On CPython 3.13+ this is the official ``track=False`` parameter: the
    attach leaves no ``resource_tracker`` trace at all.  On 3.11/3.12 every
    attach REGISTERs the name with the resource tracker; because cluster
    workers are ``spawn`` children they share the *parent's* tracker
    process, whose name cache is a set -- the duplicate REGISTER dedupes,
    and the owner's unlink-time UNREGISTER clears the single entry.  What
    must be avoided is an extra child-side ``unregister``: two UNREGISTERs
    for one entry make the shared tracker log ``KeyError`` tracebacks at
    shutdown.  So the fallback is a plain attach, and single-owner cleanup
    semantics hold on every supported version.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter (see docstring)
        return shared_memory.SharedMemory(name=name)


class ShmRing:
    """A fixed-slot shared-memory ring for one direction of array traffic.

    One side *creates* the ring (and later unlinks it); the peer *attaches*
    by name.  Whichever side produces arrays into the ring manages the free
    list: ``acquire()`` a slot, ``write()`` the array, ship the slot index
    in a control message, and ``release()`` the slot when the peer reports
    it is done.  The consumer side only ever calls :meth:`view`.

    The ring itself is intentionally dumb: it holds no cursors or flags in
    shared memory, so a peer dying at any point cannot corrupt it -- the
    owner just resets its local free list (:meth:`reset`) and carries on
    (or tears the ring down and builds a fresh one).
    """

    def __init__(self, slot_size: int, num_slots: int,
                 name: Optional[str] = None, create: bool = True):
        if slot_size < 1 or num_slots < 1:
            raise TransportError(
                f"ring needs positive slot_size/num_slots, got {slot_size}/{num_slots}")
        self.slot_size = int(slot_size)
        self.num_slots = int(num_slots)
        if create:
            name = name or f"repro_ring_{secrets.token_hex(8)}"
            self._shm = shared_memory.SharedMemory(
                name=name, create=True, size=self.slot_size * self.num_slots)
        else:
            self._shm = attach_shared_memory(name)
            if self._shm.size < self.slot_size * self.num_slots:
                self._shm.close()
                raise TransportError(
                    f"segment {name} is {self._shm.size} bytes, smaller than "
                    f"{num_slots} x {slot_size}")
        self._owner = create
        self._free: List[int] = list(range(self.num_slots))
        self._closed = False

    @classmethod
    def attach(cls, name: str, slot_size: int, num_slots: int) -> "ShmRing":
        """Attach to a ring created by the peer (no unlink responsibility)."""
        return cls(slot_size, num_slots, name=name, create=False)

    # ----------------------------------------------------------------- #
    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def free_slots(self) -> int:
        return len(self._free)

    def fits(self, nbytes: int) -> bool:
        """Whether a payload of ``nbytes`` fits in one slot."""
        return nbytes <= self.slot_size

    def acquire(self) -> Optional[int]:
        """Take a free slot (producer side); ``None`` when the ring is full."""
        if self._closed:
            raise TransportError("ring is closed")
        if not self._free:
            return None
        return self._free.pop()

    def release(self, slot: int) -> None:
        """Return a slot to the free list (producer side, peer-acknowledged)."""
        if not 0 <= slot < self.num_slots:
            raise TransportError(f"slot {slot} out of range [0, {self.num_slots})")
        if slot in self._free:
            raise TransportError(f"slot {slot} released twice")
        self._free.append(slot)

    def reset(self) -> None:
        """Forget all outstanding slots (after the peer died mid-transfer)."""
        self._free = list(range(self.num_slots))

    # ----------------------------------------------------------------- #
    def write(self, slot: int, array: np.ndarray) -> Tuple[Tuple[int, ...], str]:
        """Copy ``array`` into ``slot``; returns the ``(shape, dtype)`` header.

        This is the single ``memcpy`` of the transfer: the bytes land
        directly in the shared mapping the peer will view.
        """
        if self._closed:
            raise TransportError("ring is closed")
        array = np.ascontiguousarray(array)
        if array.nbytes > self.slot_size:
            raise TransportError(
                f"array of {array.nbytes} bytes exceeds the {self.slot_size}-byte slot")
        offset = slot * self.slot_size
        staged = np.ndarray(array.shape, dtype=array.dtype,
                            buffer=self._shm.buf[offset:offset + array.nbytes])
        np.copyto(staged, array)
        return tuple(array.shape), array.dtype.str

    def view(self, slot: int, shape: Tuple[int, ...], dtype: str) -> np.ndarray:
        """A zero-copy NumPy view of the array staged in ``slot``.

        The view is only valid until the producer reuses the slot; callers
        that keep the data past their acknowledgement must copy.
        """
        if self._closed:
            raise TransportError("ring is closed")
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
        if nbytes > self.slot_size:
            raise TransportError(
                f"header describes {nbytes} bytes, larger than a {self.slot_size}-byte slot")
        offset = slot * self.slot_size
        return np.ndarray(shape, dtype=dtype,
                          buffer=self._shm.buf[offset:offset + nbytes])

    # ----------------------------------------------------------------- #
    def close(self) -> None:
        """Unmap the segment; the owner also unlinks it from the system."""
        if self._closed:
            return
        self._closed = True
        self._shm.close()
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # already unlinked (double close race)
                pass

    def __enter__(self) -> "ShmRing":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self):  # belt and braces; explicit close() is the contract
        try:
            self.close()
        except Exception:  # noqa: BLE001 - interpreter teardown
            pass
