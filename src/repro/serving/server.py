"""In-process inference server with dynamic micro-batching.

Requests submitted concurrently are coalesced into batches before they hit
the engine, which is where serving throughput comes from: one batched
forward amortizes the per-layer Python dispatch across every request in the
batch, while the matrix products themselves were already batched.

Batching policy (the classic size/timeout-bounded queue):

* an arriving request joins the pending batch for its *bucket* (same-shape
  requests share a bucket; variable-length token requests are padded up to
  the next configured bucket length),
* a bucket is flushed to the engine as soon as it holds
  ``max_batch_size`` requests, or when the oldest request in it has waited
  ``max_delay_ms`` -- so an isolated request pays at most the configured
  delay, and a burst fills whole batches,
* requests are processed strictly FIFO within a bucket, and every future
  resolves with its own row of the batched output, so submission order maps
  to results regardless of coalescing.

Both submission styles are provided: :meth:`InferenceServer.submit` returns
a ``concurrent.futures.Future`` (async), :meth:`InferenceServer.predict`
blocks for the result (sync).  Every result carries per-request latency
accounting (queue wait, compute time, batch size).
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .engine import InferenceEngine

__all__ = ["BatchingConfig", "RequestTiming", "InferenceResult", "InferenceServer"]

_SHUTDOWN = object()
_TIMEOUT = object()
#: Most recent requests/batches covered by the latency and batch-size stats.
STATS_WINDOW = 10_000


@dataclass(frozen=True)
class BatchingConfig:
    """Knobs of the dynamic micro-batching queue.

    Parameters
    ----------
    max_batch_size:
        Flush a bucket as soon as it holds this many requests.
    max_delay_ms:
        Flush a bucket when its oldest request has waited this long.  This
        bounds the latency cost of batching for sparse traffic.
    pad_lengths:
        Bucket boundaries for variable-length 1-D integer (token) requests:
        each request is padded with ``pad_value`` up to the smallest
        configured length that fits, so near-equal lengths share batches.
        ``None`` buckets token requests by exact length.  Note that the
        encoder attends over PAD positions (the training substrate pads to
        a fixed sequence length and uses no source mask), so a sequence
        model's output depends on the padded length: results are
        reproducible per bucket configuration, and changing ``pad_lengths``
        can change outputs for requests shorter than their bucket.
    pad_value:
        Padding token (the model's PAD index).
    """

    max_batch_size: int = 16
    max_delay_ms: float = 2.0
    pad_lengths: Optional[Sequence[int]] = None
    pad_value: int = 0

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_delay_ms < 0:
            raise ValueError("max_delay_ms must be >= 0")
        if self.pad_lengths is not None:
            object.__setattr__(self, "pad_lengths",
                               tuple(sorted(int(l) for l in self.pad_lengths)))


@dataclass
class RequestTiming:
    """Per-request latency accounting."""

    queue_ms: float
    compute_ms: float
    total_ms: float
    batch_size: int
    bucket: Tuple


@dataclass
class InferenceResult:
    """One request's output row plus its timing."""

    output: np.ndarray
    timing: RequestTiming


class _Request:
    __slots__ = ("payload", "future", "enqueued")

    def __init__(self, payload: np.ndarray, future: Future, enqueued: float):
        self.payload = payload
        self.future = future
        self.enqueued = enqueued


class InferenceServer:
    """Dynamic-batching request server over an :class:`InferenceEngine`."""

    def __init__(self, engine: InferenceEngine, config: Optional[BatchingConfig] = None):
        self.engine = engine
        self.config = config if config is not None else BatchingConfig()
        self._queue: "queue.Queue" = queue.Queue()
        self._closed = False
        # Serializes the closed-check-then-put in submit() against close():
        # without it a request could land in the queue after the shutdown
        # sentinel and its future would never resolve.
        self._submit_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        # Bounded windows: percentile/mean stats cover the most recent
        # requests so a long-lived server neither grows without bound nor
        # slows stats() down; request/batch counts stay exact.
        self._latencies_ms = deque(maxlen=STATS_WINDOW)
        self._batch_sizes = deque(maxlen=STATS_WINDOW)
        self._completed = 0
        self._batches = 0
        self._first_enqueued: Optional[float] = None
        self._last_completed: Optional[float] = None
        self._worker = threading.Thread(target=self._run, name="inference-server",
                                        daemon=True)
        self._worker.start()

    # -------------------------------------------------------------- #
    # Submission APIs
    # -------------------------------------------------------------- #
    def submit(self, request) -> "Future[InferenceResult]":
        """Enqueue one request; returns a future resolving to an :class:`InferenceResult`."""
        payload = np.asarray(request)
        if self._is_token_request(payload) and self.config.pad_lengths is not None:
            if payload.shape[0] > self.config.pad_lengths[-1]:
                raise ValueError(
                    f"token request of length {payload.shape[0]} exceeds the largest "
                    f"bucket length {self.config.pad_lengths[-1]}")
        future: "Future[InferenceResult]" = Future()
        now = time.monotonic()
        with self._stats_lock:
            if self._first_enqueued is None:
                self._first_enqueued = now
        with self._submit_lock:
            if self._closed:
                raise RuntimeError("server is closed")
            self._queue.put(_Request(payload, future, now))
        return future

    def predict(self, request, timeout: Optional[float] = None) -> InferenceResult:
        """Synchronous submission: enqueue and wait for the result."""
        return self.submit(request).result(timeout=timeout)

    # -------------------------------------------------------------- #
    # Lifecycle
    # -------------------------------------------------------------- #
    def close(self, timeout: Optional[float] = 10.0) -> None:
        """Stop accepting requests, flush pending batches, join the worker."""
        with self._submit_lock:
            if self._closed:
                return
            self._closed = True
            self._queue.put(_SHUTDOWN)
        self._worker.join(timeout=timeout)

    def __enter__(self) -> "InferenceServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -------------------------------------------------------------- #
    # Batching worker
    # -------------------------------------------------------------- #
    @staticmethod
    def _is_token_request(payload: np.ndarray) -> bool:
        return payload.ndim == 1 and np.issubdtype(payload.dtype, np.integer)

    def _bucket_key(self, payload: np.ndarray) -> Tuple:
        if self._is_token_request(payload):
            length = payload.shape[0]
            if self.config.pad_lengths is not None:
                for bucket_length in self.config.pad_lengths:
                    if length <= bucket_length:
                        return ("tokens", bucket_length)
            return ("tokens", length)
        return ("shape",) + tuple(payload.shape)

    def _assemble(self, key: Tuple, requests: List[_Request]) -> np.ndarray:
        if key[0] == "tokens":
            bucket_length = key[1]
            rows = [
                np.pad(r.payload, (0, bucket_length - r.payload.shape[0]),
                       constant_values=self.config.pad_value)
                if r.payload.shape[0] < bucket_length else r.payload
                for r in requests
            ]
            return np.stack(rows)
        return np.stack([r.payload for r in requests])

    def _flush(self, key: Tuple, pending, deadlines) -> None:
        requests = pending.pop(key, [])
        deadlines.pop(key, None)
        if not requests:
            return
        batch_started = time.monotonic()
        try:
            batch = self._assemble(key, requests)
            outputs = self.engine.predict(batch)
        except BaseException as error:  # noqa: BLE001 - propagate to callers
            for request in requests:
                request.future.set_exception(error)
            return
        done = time.monotonic()
        compute_ms = (done - batch_started) * 1e3
        batch_size = len(requests)
        with self._stats_lock:
            self._batch_sizes.append(batch_size)
            self._completed += batch_size
            self._batches += 1
            self._last_completed = done
            for request in requests:
                self._latencies_ms.append((done - request.enqueued) * 1e3)
        for index, request in enumerate(requests):
            timing = RequestTiming(
                queue_ms=(batch_started - request.enqueued) * 1e3,
                compute_ms=compute_ms,
                total_ms=(done - request.enqueued) * 1e3,
                batch_size=batch_size,
                bucket=key,
            )
            request.future.set_result(InferenceResult(outputs[index], timing))

    def _run(self) -> None:
        delay_s = self.config.max_delay_ms / 1e3
        pending = {}
        deadlines = {}
        shutdown = False
        while True:
            timeout = None
            if deadlines:
                timeout = max(0.0, min(deadlines.values()) - time.monotonic())
            try:
                item = self._queue.get(timeout=timeout)
            except queue.Empty:
                item = _TIMEOUT
            # Drain the backlog greedily before looking at deadlines:
            # requests that arrived while the previous batch was executing
            # carry already-expired deadlines, and must coalesce into full
            # batches instead of flushing one by one.
            while item is not _TIMEOUT:
                if item is _SHUTDOWN:
                    shutdown = True
                    break
                key = self._bucket_key(item.payload)
                bucket = pending.setdefault(key, [])
                bucket.append(item)
                if len(bucket) == 1:
                    deadlines[key] = item.enqueued + delay_s
                if len(bucket) >= self.config.max_batch_size:
                    self._flush(key, pending, deadlines)
                    # A full-batch flush blocks on the engine; if it left
                    # another bucket's deadline expired, break out so the
                    # deadline scan runs before draining further -- a
                    # saturating bucket must not starve the others past
                    # their max_delay_ms bound.
                    if deadlines and min(deadlines.values()) <= time.monotonic():
                        break
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    item = _TIMEOUT
            if shutdown:
                for key in list(pending):
                    self._flush(key, pending, deadlines)
                return
            now = time.monotonic()
            for key in [k for k, deadline in deadlines.items() if deadline <= now]:
                self._flush(key, pending, deadlines)

    # -------------------------------------------------------------- #
    # Accounting
    # -------------------------------------------------------------- #
    def stats(self) -> dict:
        """Request/batch counts and throughput since start; latency and
        batch-size aggregates over the most recent :data:`STATS_WINDOW`."""
        with self._stats_lock:
            latencies = np.asarray(self._latencies_ms, dtype=np.float64)
            batch_sizes = np.asarray(self._batch_sizes, dtype=np.float64)
            completed = self._completed
            batches = self._batches
            first = self._first_enqueued
            last = self._last_completed
        wall = (last - first) if (first is not None and last is not None) else None
        return {
            "requests": completed,
            "batches": batches,
            "mean_batch_size": float(batch_sizes.mean()) if batch_sizes.size else float("nan"),
            "latency_ms_mean": float(latencies.mean()) if latencies.size else float("nan"),
            "latency_ms_p50": float(np.percentile(latencies, 50)) if latencies.size else float("nan"),
            "latency_ms_p95": float(np.percentile(latencies, 95)) if latencies.size else float("nan"),
            "throughput_rps": (completed / wall) if wall and wall > 0 else float("nan"),
        }
