"""In-process inference server with dynamic micro-batching and fault tolerance.

Requests submitted concurrently are coalesced into batches before they hit
the engine, which is where serving throughput comes from: one batched
forward amortizes the per-layer Python dispatch across every request in the
batch, while the matrix products themselves were already batched.

Batching policy (the classic size/timeout-bounded queue):

* an arriving request joins the pending batch for its *bucket* (same-shape
  requests share a bucket; variable-length token requests are padded up to
  the next configured bucket length),
* a bucket is flushed to the engine as soon as it holds
  ``max_batch_size`` requests, or when the oldest request in it has waited
  ``max_delay_ms`` -- so an isolated request pays at most the configured
  delay, and a burst fills whole batches,
* requests are processed strictly FIFO within a bucket, and every future
  resolves with its own row of the batched output, so submission order maps
  to results regardless of coalescing.

Robustness layer (what makes the server fit for sustained traffic):

* **Deadlines** -- ``submit(request, deadline_ms=...)`` bounds how long a
  request may wait.  Expired requests are shed *before* batch assembly (they
  never waste engine time) and resolve with :class:`DeadlineExceeded`.
* **Admission control / backpressure** -- ``max_queue_depth`` bounds
  unresolved work.  Policy ``"reject"`` raises :class:`ServerOverloaded`
  immediately; ``"block"`` waits up to ``block_timeout_ms`` for capacity.
  A ``shed_watermark`` sheds already-expired work proactively when the
  backlog grows past it, oldest first.
* **Poison isolation** -- payloads are validated at submit time
  (:class:`InvalidRequest` for non-numeric / non-finite / empty payloads);
  when a *batch* fails inside the engine, the batch is bisected: the halves
  are re-enqueued separately (with capped exponential backoff) so healthy
  requests still complete and only the poisoned request(s) fail, after a
  bounded number of solo retries.
* **Engine supervision** -- an :class:`~repro.serving.engine.EngineCrash`
  marks the server degraded, fails the in-flight batch descriptively, and
  triggers bounded ``engine.rewarm()`` restart attempts; if they are
  exhausted the server refuses new work (:class:`ServerUnavailable`) and
  resolves everything pending.  A worker thread that dies from an uncaught
  error never strands callers: every pending future is failed, and
  :meth:`InferenceServer.close` re-raises with the worker's traceback.
* **Graceful drain** -- ``close(drain=True)`` stops admission, flushes
  pending work within the close timeout, then cancels stragglers with
  :class:`ServerClosed`; ``drain=False`` cancels immediately.  Either way
  no future is ever left unresolved.

Both submission styles are provided: :meth:`InferenceServer.submit` returns
a ``concurrent.futures.Future`` (async), :meth:`InferenceServer.predict`
blocks for the result (sync).  Every result carries per-request latency
accounting (queue wait, compute time, batch size, retries).
"""

from __future__ import annotations

import queue
import threading
import time
import traceback
from concurrent.futures import Future
from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import observability
from ..observability.metrics import LatencyHistogram
from .engine import EngineCrash, InferenceEngine

__all__ = [
    "BatchingConfig",
    "RequestTiming",
    "InferenceResult",
    "InferenceServer",
    "ServerStats",
    "ServingError",
    "InvalidRequest",
    "DeadlineExceeded",
    "ServerOverloaded",
    "ServerClosed",
    "ServerUnavailable",
    "NonFiniteOutput",
    "validate_payload",
]

_TIMEOUT = object()


# --------------------------------------------------------------------------- #
# Errors
# --------------------------------------------------------------------------- #
class ServingError(RuntimeError):
    """Base class for request-level serving failures."""


class InvalidRequest(ServingError, ValueError):
    """The payload failed submit-time validation (shape/dtype/finiteness)."""


class DeadlineExceeded(ServingError):
    """The request's deadline expired before the engine could serve it."""


class ServerOverloaded(ServingError):
    """Admission control rejected the request: the queue is at capacity."""


class ServerClosed(ServingError):
    """The server is closed (or closed before the request completed)."""


class ServerUnavailable(ServingError):
    """The engine crashed and could not be restarted; the server refuses work."""


class NonFiniteOutput(ServingError):
    """Output validation found NaN/inf in this request's output row."""


@dataclass(frozen=True)
class BatchingConfig:
    """Knobs of the dynamic micro-batching queue and its robustness layer.

    Parameters
    ----------
    max_batch_size:
        Flush a bucket as soon as it holds this many requests.
    max_delay_ms:
        Flush a bucket when its oldest request has waited this long.  This
        bounds the latency cost of batching for sparse traffic.
    pad_lengths:
        Bucket boundaries for variable-length 1-D integer (token) requests:
        each request is padded with ``pad_value`` up to the smallest
        configured length that fits, so near-equal lengths share batches.
        ``None`` buckets token requests by exact length.  Note that the
        encoder attends over PAD positions (the training substrate pads to
        a fixed sequence length and uses no source mask), so a sequence
        model's output depends on the padded length: results are
        reproducible per bucket configuration, and changing ``pad_lengths``
        can change outputs for requests shorter than their bucket.
    pad_value:
        Padding token (the model's PAD index).
    max_queue_depth:
        Bound on unresolved requests held by the server (queued, batched, or
        retrying).  ``None`` leaves admission unbounded (the seed behavior).
    admission_policy:
        What :meth:`InferenceServer.submit` does at capacity: ``"reject"``
        raises :class:`ServerOverloaded` immediately; ``"block"`` waits up
        to ``block_timeout_ms`` for capacity, then raises.
    block_timeout_ms:
        How long a ``"block"``-policy submit waits for capacity.
    shed_watermark:
        Backlog depth above which the worker proactively sheds *expired*
        requests (oldest first) instead of waiting for their buckets to
        assemble.  ``None`` disables proactive shedding (expired requests
        are still shed at assembly time).
    max_retries:
        How many times a request that failed *alone* (a singleton batch) is
        retried before its future gets the engine's error.  Bisection
        splits of a failed multi-request batch do not count against this
        budget -- only genuine solo failures do.
    retry_backoff_ms / retry_backoff_max_ms:
        Capped exponential backoff between solo retries (the first retry
        waits ``retry_backoff_ms``, doubling up to the cap).  Bisection
        halves are re-enqueued without backoff so isolation stays fast.
    engine_restart_limit:
        Bounded number of ``engine.rewarm()`` attempts after an
        :class:`~repro.serving.engine.EngineCrash` before the server gives
        up and refuses new work.
    restart_backoff_ms:
        Capped exponential backoff between restart attempts (doubles per
        attempt, capped at 10x the base).
    validate_requests:
        Check payloads at submit time: numeric dtype, non-empty, and (for
        floating payloads) finite.  Rejects poison before it can reach a
        batch.
    validate_outputs:
        Check each request's output row for NaN/inf after the engine runs;
        poisoned rows fail with :class:`NonFiniteOutput` while the rest of
        the batch completes normally.  Off by default because some model
        families use NaN sentinels legitimately (e.g. the YOLO decoder's
        no-detection objectness).
    """

    max_batch_size: int = 16
    max_delay_ms: float = 2.0
    pad_lengths: Optional[Sequence[int]] = None
    pad_value: int = 0
    max_queue_depth: Optional[int] = None
    admission_policy: str = "reject"
    block_timeout_ms: float = 1000.0
    shed_watermark: Optional[int] = None
    max_retries: int = 1
    retry_backoff_ms: float = 1.0
    retry_backoff_max_ms: float = 20.0
    engine_restart_limit: int = 2
    restart_backoff_ms: float = 10.0
    validate_requests: bool = True
    validate_outputs: bool = False

    def __post_init__(self):
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_delay_ms < 0:
            raise ValueError("max_delay_ms must be >= 0")
        if self.pad_lengths is not None:
            object.__setattr__(self, "pad_lengths",
                               tuple(sorted(int(l) for l in self.pad_lengths)))
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1 (or None)")
        if self.admission_policy not in ("reject", "block"):
            raise ValueError("admission_policy must be 'reject' or 'block'")
        if self.block_timeout_ms < 0:
            raise ValueError("block_timeout_ms must be >= 0")
        if self.shed_watermark is not None and self.shed_watermark < 1:
            raise ValueError("shed_watermark must be >= 1 (or None)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.retry_backoff_ms < 0 or self.retry_backoff_max_ms < 0:
            raise ValueError("retry backoff must be >= 0")
        if self.engine_restart_limit < 0:
            raise ValueError("engine_restart_limit must be >= 0")


@dataclass(frozen=True)
class ServerStats:
    """Typed serving statistics, shared by the in-process
    :class:`InferenceServer` and the multi-process
    :class:`~repro.serving.cluster.ShardedServer`.

    Counts (requests, sheds, rejects, ...) are exact since server start;
    latency percentiles come from a fixed-bucket log-scale histogram
    (:class:`~repro.observability.metrics.LatencyHistogram`) covering every
    request since start in O(buckets) memory.  For a sharded server the
    top-level object aggregates the cluster and ``shards`` holds one per-shard
    :class:`ServerStats` (with ``shards`` empty in turn), so per-shard
    queue depth, sheds, rejects, retries, and restarts stay inspectable.

    Supports mapping-style access (``stats["requests"]``, ``dict(stats)``)
    so report/benchmark code can treat it like the dict it replaced.
    """

    state: str
    requests: int
    batches: int
    mean_batch_size: float
    latency_ms_mean: float
    latency_ms_p50: float
    latency_ms_p95: float
    latency_ms_p99: float
    throughput_rps: float
    queue_depth: int
    shed_deadline: int
    shed_watermark: int
    rejected: int
    requeues: int
    failed_requests: int
    nonfinite_outputs: int
    engine_crashes: int
    engine_restarts: int
    worker_respawns: int = 0
    oversized_transfers: int = 0
    workers: int = 1
    shards: Tuple["ServerStats", ...] = field(default=())

    def __getitem__(self, key: str):
        if not isinstance(key, str) or not hasattr(self, key):
            raise KeyError(key)
        return getattr(self, key)

    def keys(self):
        return [f.name for f in fields(self)]

    def as_dict(self) -> dict:
        """A plain-dict rendering (shards rendered recursively)."""
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["shards"] = [shard.as_dict() for shard in self.shards]
        return out


def validate_payload(payload: np.ndarray) -> None:
    """Submit-time poison screening shared by both serving front ends:
    numeric dtype, non-empty, and (for floating payloads) finite."""
    if payload.dtype == object or not np.issubdtype(payload.dtype, np.number):
        raise InvalidRequest(
            f"request dtype {payload.dtype} is not numeric")
    if payload.size == 0:
        raise InvalidRequest("request payload is empty")
    if np.issubdtype(payload.dtype, np.floating) and not np.all(np.isfinite(payload)):
        raise InvalidRequest(
            "request payload contains non-finite values (NaN/inf)")


@dataclass
class RequestTiming:
    """Per-request latency accounting.

    ``compute_ms`` is the engine call alone; ``assemble_ms`` is the batch
    stack/pad step that precedes it (both shared by every request in the
    batch).  ``transport_ms`` is the process-boundary overhead for batches
    served through a :class:`~repro.serving.cluster.RemoteEngine`
    (round-trip minus worker compute; ``None`` for in-process engines).
    ``trace_id`` is set when this request was sampled by the observability
    tracer -- its span timeline appears in the exported Chrome trace.
    """

    queue_ms: float
    compute_ms: float
    total_ms: float
    batch_size: int
    bucket: Tuple
    retries: int = 0
    deadline_ms: Optional[float] = None
    assemble_ms: float = 0.0
    transport_ms: Optional[float] = None
    trace_id: Optional[int] = None


@dataclass
class InferenceResult:
    """One request's output row plus its timing."""

    output: np.ndarray
    timing: RequestTiming


class _Request:
    __slots__ = ("payload", "future", "enqueued", "deadline", "deadline_ms",
                 "requeues", "failures", "tag", "ready_at", "trace_id")

    def __init__(self, payload: np.ndarray, future: Future, enqueued: float,
                 deadline_ms: Optional[float] = None,
                 trace_id: Optional[int] = None):
        self.payload = payload
        self.future = future
        self.enqueued = enqueued
        self.deadline_ms = deadline_ms
        self.deadline = None if deadline_ms is None else enqueued + deadline_ms / 1e3
        self.requeues = 0     # total re-enqueues (bisection splits + solo retries)
        self.failures = 0     # solo (singleton-batch) failures, vs. max_retries
        self.tag: Tuple[int, ...] = ()  # bisection lineage: halves never re-merge
        self.ready_at = enqueued
        self.trace_id = trace_id  # sampled-tracing id, None when unsampled


class _Shutdown:
    __slots__ = ("drain", "deadline")

    def __init__(self, drain: bool, deadline: float):
        self.drain = drain
        self.deadline = deadline


class InferenceServer:
    """Dynamic-batching, fault-tolerant request server over an
    :class:`InferenceEngine`."""

    def __init__(self, engine: InferenceEngine, config: Optional[BatchingConfig] = None,
                 name: str = "server"):
        self.engine = engine
        self.config = config if config is not None else BatchingConfig()
        self.name = name  # label on this server's global-registry metrics
        self._queue: "queue.Queue" = queue.Queue()
        self._closed = False  # guarded-by: _submit_lock
        self._state = "healthy"  # healthy | degraded | failed  # guarded-by: _submit_lock
        self._failure_reason: Optional[str] = None  # guarded-by: _submit_lock
        self._worker_error: Optional[str] = None  # guarded-by: _submit_lock
        # Serializes the closed/state-check-then-put in submit() against
        # close() and against the supervisor marking the server failed:
        # without it a request could land in the queue after the shutdown
        # sentinel (or after the final drain) and its future would never
        # resolve.
        self._submit_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._capacity = (threading.Semaphore(self.config.max_queue_depth)
                          if self.config.max_queue_depth is not None else None)
        # Worker-owned batching state.  Instance attributes (not _run
        # locals) so the failure paths -- worker death, engine failure,
        # drain cancellation -- can resolve every pending future.
        self._pending: Dict[Tuple, List[_Request]] = {}
        self._flush_deadlines: Dict[Tuple, float] = {}
        self._retry_buffer: List[_Request] = []
        # Fixed-bucket log-scale histogram: p50/p95/p99 over every request
        # since start in O(buckets) memory -- a long-lived server neither
        # grows without bound nor slows stats() down, and the percentiles
        # are computed the same way as the load rig's (loadgen.py).
        self._latency_hist = LatencyHistogram("serving_request_latency_ms")  # guarded-by: _stats_lock
        self._batched_requests = 0  # sum of executed batch sizes  # guarded-by: _stats_lock
        # Lazily-created global-registry metrics, only while the
        # observability gate is enabled (None otherwise).
        self._obs_metrics = None
        self._obs_registry = None
        self._completed = 0  # guarded-by: _stats_lock
        self._batches = 0  # guarded-by: _stats_lock
        self._inflight = 0  # guarded-by: _stats_lock
        self._shed_deadline = 0  # guarded-by: _stats_lock
        self._shed_watermark = 0  # guarded-by: _stats_lock
        self._rejected = 0  # guarded-by: _stats_lock
        self._requeues = 0  # guarded-by: _stats_lock
        self._failed_requests = 0  # guarded-by: _stats_lock
        self._nonfinite_outputs = 0  # guarded-by: _stats_lock
        self._engine_crashes = 0  # guarded-by: _stats_lock
        self._engine_restarts = 0  # guarded-by: _stats_lock
        self._first_enqueued: Optional[float] = None  # guarded-by: _stats_lock
        self._last_completed: Optional[float] = None  # guarded-by: _stats_lock
        self._worker = threading.Thread(target=self._run, name="inference-server",
                                        daemon=True)
        self._worker.start()

    # -------------------------------------------------------------- #
    # Submission APIs
    # -------------------------------------------------------------- #
    def _validate_payload(self, payload: np.ndarray) -> None:
        validate_payload(payload)

    def _admit(self) -> None:
        """Admission control: acquire one unit of queue capacity or raise."""
        if self._capacity is None:
            return
        if self.config.admission_policy == "reject":
            admitted = self._capacity.acquire(blocking=False)
        else:
            admitted = self._capacity.acquire(timeout=self.config.block_timeout_ms / 1e3)
        if not admitted:
            with self._stats_lock:
                self._rejected += 1
            raise ServerOverloaded(
                f"server at capacity ({self.config.max_queue_depth} unresolved "
                f"requests, policy={self.config.admission_policy!r})")

    def submit(self, request, deadline_ms: Optional[float] = None) -> "Future[InferenceResult]":
        """Enqueue one request; returns a future resolving to an
        :class:`InferenceResult`.

        ``deadline_ms`` bounds the request's total time in the server: a
        request still waiting when its deadline expires is shed before
        batch assembly and its future raises :class:`DeadlineExceeded`.
        """
        tracer = observability.active_tracer()
        trace_id = tracer.sample() if tracer is not None else None
        submit_started = time.monotonic() if trace_id is not None else 0.0
        payload = np.asarray(request)
        if self.config.validate_requests:
            self._validate_payload(payload)
        if deadline_ms is not None and deadline_ms <= 0:
            raise InvalidRequest(f"deadline_ms must be positive, got {deadline_ms}")
        if self._is_token_request(payload) and self.config.pad_lengths is not None:
            if payload.shape[0] > self.config.pad_lengths[-1]:
                raise InvalidRequest(
                    f"token request of length {payload.shape[0]} exceeds the largest "
                    f"bucket length {self.config.pad_lengths[-1]}")
        admit_started = time.monotonic() if trace_id is not None else 0.0
        self._admit()
        if trace_id is not None:
            tracer.add_event("admit", admit_started,
                             time.monotonic() - admit_started,
                             args={"trace_id": trace_id, "server": self.name})
        future: "Future[InferenceResult]" = Future()
        if self._capacity is not None:
            future.add_done_callback(lambda _f: self._capacity.release())
        future.add_done_callback(self._on_resolved)
        now = time.monotonic()
        with self._stats_lock:
            if self._first_enqueued is None:
                self._first_enqueued = now
            self._inflight += 1
        try:
            with self._submit_lock:
                if self._closed:
                    raise ServerClosed("server is closed")
                if self._state == "failed":
                    raise ServerUnavailable(
                        "server is unavailable: "
                        f"{self._failure_reason or 'engine failed'}")
                self._queue.put(_Request(payload, future, now, deadline_ms,
                                         trace_id=trace_id))
        except BaseException:
            # The future will never resolve; undo its admission accounting.
            future.set_exception(ServerClosed("request was never enqueued"))
            raise
        if trace_id is not None:
            tracer.add_event("submit", submit_started,
                             time.monotonic() - submit_started,
                             args={"trace_id": trace_id, "server": self.name})
        return future

    def _on_resolved(self, _future) -> None:
        with self._stats_lock:
            self._inflight -= 1

    def predict(self, request, timeout: Optional[float] = None,
                deadline_ms: Optional[float] = None) -> InferenceResult:
        """Synchronous submission: enqueue and wait for the result."""
        return self.submit(request, deadline_ms=deadline_ms).result(timeout=timeout)

    # -------------------------------------------------------------- #
    # Health / load, cheap enough for a router's per-request hot path
    # -------------------------------------------------------------- #
    @property
    def state(self) -> str:
        """``"healthy"`` | ``"degraded"`` (crash recovery in progress) |
        ``"failed"`` (restart budget exhausted, refusing work)."""
        with self._submit_lock:
            return self._state

    @property
    def queue_depth(self) -> int:
        """Unresolved requests currently held (queued, batched, or retrying)."""
        with self._stats_lock:
            return self._inflight

    # -------------------------------------------------------------- #
    # Lifecycle
    # -------------------------------------------------------------- #
    def close(self, timeout: Optional[float] = 10.0, drain: bool = True) -> None:
        """Stop accepting requests, then shut the worker down.

        With ``drain=True`` (default) the worker keeps flushing pending
        batches until they are done or ``timeout`` seconds elapse; whatever
        remains is cancelled with :class:`ServerClosed`.  With
        ``drain=False`` pending work is cancelled immediately.  Every
        outstanding future is resolved either way.

        If the worker thread died from an uncaught error, re-raises here
        with the worker's stored traceback so the failure is not silent.
        """
        with self._submit_lock:
            first_close = not self._closed
            self._closed = True
            if first_close:
                horizon = time.monotonic() + (timeout if timeout is not None else 60.0)
                self._queue.put(_Shutdown(drain=drain, deadline=horizon))
        self._worker.join(timeout=None if timeout is None else timeout + 1.0)
        # join(timeout) can return while the worker is still recording its
        # failure; read the error under the lock that publishes it.
        with self._submit_lock:
            worker_error = self._worker_error
        if worker_error is not None:
            raise RuntimeError(
                "inference worker died from an uncaught error:\n" + worker_error)
        if self._worker.is_alive():
            raise RuntimeError(
                f"inference worker did not exit within {timeout}s of close() "
                "(engine call wedged?)")

    def __enter__(self) -> "InferenceServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -------------------------------------------------------------- #
    # Bucketing / assembly
    # -------------------------------------------------------------- #
    @staticmethod
    def _is_token_request(payload: np.ndarray) -> bool:
        return payload.ndim == 1 and np.issubdtype(payload.dtype, np.integer)

    def _bucket_key(self, payload: np.ndarray) -> Tuple:
        if self._is_token_request(payload):
            length = payload.shape[0]
            if self.config.pad_lengths is not None:
                for bucket_length in self.config.pad_lengths:
                    if length <= bucket_length:
                        return ("tokens", bucket_length)
            return ("tokens", length)
        return ("shape",) + tuple(payload.shape)

    def _assemble(self, base_key: Tuple, requests: List[_Request]) -> np.ndarray:
        if base_key[0] == "tokens":
            bucket_length = base_key[1]
            rows = [
                np.pad(r.payload, (0, bucket_length - r.payload.shape[0]),
                       constant_values=self.config.pad_value)
                if r.payload.shape[0] < bucket_length else r.payload
                for r in requests
            ]
            return np.stack(rows)
        return np.stack([r.payload for r in requests])

    # -------------------------------------------------------------- #
    # Worker: request lifecycle
    # -------------------------------------------------------------- #
    def _fail_request(self, request: _Request, error: BaseException) -> None:
        if not request.future.done():
            request.future.set_exception(error)
            with self._stats_lock:
                if isinstance(error, DeadlineExceeded):
                    self._shed_deadline += 1
                else:
                    self._failed_requests += 1

    def _shed_expired(self, requests: List[_Request], now: float,
                      watermark: bool = False) -> List[_Request]:
        """Resolve expired requests with :class:`DeadlineExceeded`; return the rest."""
        alive = []
        for request in sorted(requests, key=lambda r: r.enqueued):
            if request.deadline is not None and request.deadline <= now:
                waited_ms = (now - request.enqueued) * 1e3
                self._fail_request(request, DeadlineExceeded(
                    f"request deadline of {request.deadline_ms:.1f} ms expired after "
                    f"waiting {waited_ms:.1f} ms (retries={request.requeues})"))
                if watermark:
                    with self._stats_lock:
                        self._shed_watermark += 1
            else:
                alive.append(request)
        return alive

    def _backlog_depth(self) -> int:
        return (sum(len(bucket) for bucket in self._pending.values())
                + len(self._retry_buffer) + self._queue.qsize())

    def _shed_over_watermark(self, now: float) -> None:
        """Proactive load shedding: above the watermark, drop expired work
        (oldest first) from every bucket and the retry buffer."""
        watermark = self.config.shed_watermark
        if watermark is None or self._backlog_depth() <= watermark:
            return
        for key in list(self._pending):
            kept = self._shed_expired(self._pending[key], now, watermark=True)
            if kept:
                self._pending[key] = kept
            else:
                del self._pending[key]
                self._flush_deadlines.pop(key, None)
        self._retry_buffer[:] = self._shed_expired(self._retry_buffer, now,
                                                   watermark=True)

    def _schedule_retry(self, request: _Request, error: BaseException,
                        now: float, backoff: bool) -> None:
        """Re-enqueue a request after a batch failure (bisection or solo retry)."""
        request.requeues += 1
        with self._stats_lock:
            self._requeues += 1
        delay = 0.0
        if backoff:
            delay = min(self.config.retry_backoff_ms * (2 ** max(request.failures - 1, 0)),
                        self.config.retry_backoff_max_ms) / 1e3
        request.ready_at = now + delay
        if request.deadline is not None and request.deadline <= request.ready_at:
            self._fail_request(request, DeadlineExceeded(
                f"request deadline of {request.deadline_ms:.1f} ms expired during "
                f"retry backoff (retries={request.requeues}): last error: {error!r}"))
            return
        self._retry_buffer.append(request)

    def _handle_batch_failure(self, requests: List[_Request],
                              error: BaseException) -> None:
        """Poison isolation: bisect failed batches, bounded-retry singletons.

        A failed multi-request batch says nothing about *which* request is
        poisoned, so the halves are re-enqueued under distinct bisection
        tags (tagged buckets never re-merge) and retried separately --
        healthy requests complete in O(log batch) extra rounds.  A failed
        singleton is definitive: it burns one solo-retry, and once the
        budget is spent its future gets the engine's error.
        """
        now = time.monotonic()
        if len(requests) == 1:
            request = requests[0]
            request.failures += 1
            if request.failures > self.config.max_retries:
                self._fail_request(request, error)
            else:
                self._schedule_retry(request, error, now, backoff=True)
            return
        mid = len(requests) // 2
        for half_index, half in enumerate((requests[:mid], requests[mid:])):
            for request in half:
                request.tag = request.tag + (half_index,)
                self._schedule_retry(request, error, now, backoff=False)

    def _handle_engine_crash(self, requests: List[_Request],
                             error: BaseException) -> None:
        """Engine supervision: degrade, fail the in-flight batch, bounded rewarm."""
        for request in requests:
            self._fail_request(request, EngineCrash(
                f"engine crashed while serving this batch: {error!r}"))
        with self._submit_lock:
            self._state = "degraded"
        with self._stats_lock:
            self._engine_crashes += 1
        for attempt in range(1, self.config.engine_restart_limit + 1):
            backoff = min(self.config.restart_backoff_ms * (2 ** (attempt - 1)),
                          self.config.restart_backoff_ms * 10) / 1e3
            time.sleep(backoff)
            try:
                rewarm = getattr(self.engine, "rewarm", None)
                if rewarm is None:
                    raise EngineCrash("engine has no rewarm() hook")
                rewarm()
            except BaseException:  # noqa: BLE001 - try the next attempt
                continue
            with self._submit_lock:
                self._state = "healthy"
            with self._stats_lock:
                self._engine_restarts += 1
            return
        # Restart budget exhausted: refuse new work, resolve everything.
        reason = (
            f"engine crashed ({error!r}) and {self.config.engine_restart_limit} "
            "rewarm attempts failed")
        with self._submit_lock:
            self._state = "failed"
            self._failure_reason = reason
        self._abort_pending(ServerUnavailable(reason))
        raise _ServerFailed()

    def _execute(self, base_key: Tuple, requests: List[_Request]) -> None:
        requests = self._shed_expired(requests, time.monotonic())
        if not requests:
            return
        batch_started = time.monotonic()
        t_assembled = batch_started
        try:
            batch = self._assemble(base_key, requests)
            t_assembled = time.monotonic()
            outputs = self.engine.predict(batch)
            outputs = np.asarray(outputs)
            if outputs.shape[0] != len(requests):
                raise ServingError(
                    f"engine returned {outputs.shape[0]} rows for a batch of "
                    f"{len(requests)} requests")
        except EngineCrash as error:
            self._handle_engine_crash(requests, error)
            return
        except BaseException as error:  # noqa: BLE001 - isolate, don't die
            self._handle_batch_failure(requests, error)
            return
        done = time.monotonic()
        assemble_ms = (t_assembled - batch_started) * 1e3
        roundtrip_ms = (done - t_assembled) * 1e3
        transport_ms = getattr(self.engine, "last_transport_ms", None)
        if transport_ms is not None:
            transport_ms = min(max(float(transport_ms), 0.0), roundtrip_ms)
        compute_ms = roundtrip_ms - (transport_ms or 0.0)
        batch_size = len(requests)
        poisoned: Dict[int, NonFiniteOutput] = {}
        if self.config.validate_outputs and np.issubdtype(outputs.dtype, np.floating):
            flat = outputs.reshape(batch_size, -1)
            finite_rows = np.isfinite(flat).all(axis=1)
            for index in np.flatnonzero(~finite_rows):
                poisoned[int(index)] = NonFiniteOutput(
                    f"engine output row {int(index)} of a {batch_size}-request "
                    "batch contains NaN/inf")
        with self._stats_lock:
            self._batched_requests += batch_size
            self._completed += batch_size - len(poisoned)
            self._batches += 1
            self._last_completed = done
            for request in requests:
                self._latency_hist.observe((done - request.enqueued) * 1e3)
        tracer = observability.active_tracer()
        if tracer is not None and tracer.armed:
            self._emit_batch_spans(tracer, base_key, batch_size,
                                   batch_started, t_assembled, done, transport_ms)
        if observability.enabled():
            self._observe_batch(requests, batch_size, compute_ms, done)
        for index, request in enumerate(requests):
            if index in poisoned:
                with self._stats_lock:
                    self._nonfinite_outputs += 1
                self._fail_request(request, poisoned[index])
                continue
            respond_started = time.monotonic() if request.trace_id is not None else 0.0
            timing = RequestTiming(
                queue_ms=(batch_started - request.enqueued) * 1e3,
                compute_ms=compute_ms,
                total_ms=(done - request.enqueued) * 1e3,
                batch_size=batch_size,
                bucket=base_key,
                retries=request.requeues,
                deadline_ms=request.deadline_ms,
                assemble_ms=assemble_ms,
                transport_ms=transport_ms,
                trace_id=request.trace_id,
            )
            if not request.future.done():
                request.future.set_result(InferenceResult(outputs[index], timing))
            if request.trace_id is not None and tracer is not None and tracer.armed:
                args = {"trace_id": request.trace_id, "server": self.name}
                tracer.add_event("queue", request.enqueued,
                                 batch_started - request.enqueued, args=args)
                tracer.add_event("respond", respond_started,
                                 time.monotonic() - respond_started, args=args)

    def _emit_batch_spans(self, tracer, base_key: Tuple, batch_size: int,
                          batch_started: float, t_assembled: float,
                          done: float, transport_ms: Optional[float]) -> None:
        """Emit batch-level pipeline spans (assemble / transport / compute).

        Transport time for a remote engine covers both the request and the
        response leg; it is drawn as two half-duration spans bracketing the
        compute span so the three tile the engine round-trip exactly.
        """
        args = {"server": self.name, "bucket": repr(base_key),
                "batch_size": batch_size}
        tracer.add_event("batch-assemble", batch_started,
                         t_assembled - batch_started, args=args)
        if transport_ms is None:
            tracer.add_event("compute", t_assembled, done - t_assembled, args=args)
            return
        leg_s = transport_ms / 2e3
        tracer.add_event("transport", t_assembled, leg_s, args=args)
        tracer.add_event("compute", t_assembled + leg_s,
                         max(0.0, done - t_assembled - 2 * leg_s), args=args)
        tracer.add_event("transport", done - leg_s, leg_s, args=args)

    def _server_metrics(self):
        registry = observability.registry()  # repro-lint: disable=RL003 -- lazy handle (re)build; callers gate
        if self._obs_metrics is None or self._obs_registry is not registry:
            self._obs_metrics = (
                registry.counter(
                    "serving_requests_total",
                    help="Requests completed by the batching server.",
                    server=self.name),
                registry.counter(
                    "serving_batches_total",
                    help="Batches executed by the batching server.",
                    server=self.name),
                registry.histogram(
                    "serving_request_latency_ms",
                    help="End-to-end request latency in milliseconds.",
                    server=self.name),
                registry.histogram(
                    "serving_batch_compute_ms",
                    help="Engine compute time per batch in milliseconds.",
                    server=self.name),
                registry.gauge(
                    "serving_queue_depth",
                    help="Requests admitted but not yet completed.",
                    server=self.name),
            )
            self._obs_registry = registry
        return self._obs_metrics

    def _observe_batch(self, requests: List[_Request], batch_size: int,
                       compute_ms: float, done: float) -> None:
        req_total, batch_total, latency, compute, depth = self._server_metrics()
        req_total.inc(batch_size)
        batch_total.inc()
        compute.observe(compute_ms)
        for request in requests:
            latency.observe((done - request.enqueued) * 1e3)
        depth.set(self.queue_depth)

    def _flush(self, key: Tuple) -> None:
        requests = self._pending.pop(key, [])
        self._flush_deadlines.pop(key, None)
        if requests:
            self._execute(key[0], requests)

    # -------------------------------------------------------------- #
    # Worker: main loop
    # -------------------------------------------------------------- #
    def _admit_to_bucket(self, request: _Request, delay_s: float) -> bool:
        """Place a request in its bucket; flush if full.  Returns True if a
        full-batch flush ran (so the caller can re-check deadlines)."""
        try:
            key = (self._bucket_key(request.payload), request.tag)
        except BaseException as error:  # noqa: BLE001 - resolve, then re-raise
            # The request is in no structure _abort_pending can reach; its
            # future must be resolved here or it leaks when the worker dies.
            self._fail_request(request, RuntimeError(
                f"failed to bucket request: {error!r}"))
            raise
        bucket = self._pending.setdefault(key, [])
        bucket.append(request)
        flush_at = request.enqueued + delay_s
        if key not in self._flush_deadlines or flush_at < self._flush_deadlines[key]:
            self._flush_deadlines[key] = flush_at
        if len(bucket) >= self.config.max_batch_size:
            self._flush(key)
            return True
        return False

    def _release_due_retries(self, now: float, delay_s: float) -> None:
        due = [r for r in self._retry_buffer if r.ready_at <= now]
        if not due:
            return
        self._retry_buffer[:] = [r for r in self._retry_buffer if r.ready_at > now]
        for index, request in enumerate(due):
            try:
                self._admit_to_bucket(request, delay_s)
            except BaseException:  # noqa: BLE001 - keep the rest reachable
                # Put untouched retries back so _abort_pending resolves them.
                self._retry_buffer.extend(due[index + 1:])
                raise

    def _serve(self) -> None:
        delay_s = self.config.max_delay_ms / 1e3
        while True:
            now = time.monotonic()
            self._release_due_retries(now, delay_s)
            wake_at = list(self._flush_deadlines.values())
            wake_at.extend(r.ready_at for r in self._retry_buffer)
            timeout = max(0.0, min(wake_at) - now) if wake_at else None
            try:
                item = self._queue.get(timeout=timeout)
            except queue.Empty:
                item = _TIMEOUT
            shutdown = None
            # Drain the backlog greedily before looking at deadlines:
            # requests that arrived while the previous batch was executing
            # carry already-expired flush deadlines, and must coalesce into
            # full batches instead of flushing one by one.
            while item is not _TIMEOUT:
                if isinstance(item, _Shutdown):
                    shutdown = item
                    break
                flushed = self._admit_to_bucket(item, delay_s)
                # A full-batch flush blocks on the engine; if it left
                # another bucket's deadline expired, break out so the
                # deadline scan runs before draining further -- a
                # saturating bucket must not starve the others past
                # their max_delay_ms bound.
                if flushed and self._flush_deadlines and \
                        min(self._flush_deadlines.values()) <= time.monotonic():
                    break
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    item = _TIMEOUT
            if shutdown is not None:
                self._drain_and_exit(shutdown, delay_s)
                return
            now = time.monotonic()
            self._shed_over_watermark(now)
            for key in [k for k, deadline in self._flush_deadlines.items()
                        if deadline <= now]:
                self._flush(key)

    def _drain_and_exit(self, shutdown: _Shutdown, delay_s: float) -> None:
        """Graceful drain: flush pending within the deadline, cancel the rest."""
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if not isinstance(item, _Shutdown):
                self._admit_to_bucket(item, delay_s)
        if shutdown.drain:
            while ((self._pending or self._retry_buffer)
                   and time.monotonic() < shutdown.deadline):
                for request in self._retry_buffer:
                    request.ready_at = 0.0  # drain ignores retry backoff
                self._release_due_retries(time.monotonic(), delay_s)
                for key in list(self._pending):
                    if time.monotonic() >= shutdown.deadline:
                        break
                    self._flush(key)
        self._abort_pending(ServerClosed("server closed before request completed"))

    def _abort_pending(self, error: BaseException) -> None:
        """Resolve every future the server still holds.  Futures must never
        leak: this runs on worker death, engine failure, and drain expiry."""
        for requests in self._pending.values():
            for request in requests:
                self._fail_request(request, error)
        self._pending.clear()
        self._flush_deadlines.clear()
        for request in self._retry_buffer:
            self._fail_request(request, error)
        self._retry_buffer.clear()
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if isinstance(item, _Request):
                self._fail_request(item, error)

    def _run(self) -> None:
        try:
            self._serve()
        except _ServerFailed:
            # Engine supervision exhausted its restart budget: a handled
            # terminal state, already aborted -- not a worker bug.
            pass
        except BaseException:  # noqa: BLE001 - record, resolve, re-raise via close()
            formatted = traceback.format_exc()
            with self._submit_lock:
                self._worker_error = formatted
                self._state = "failed"
                self._failure_reason = "inference worker died from an uncaught error"
            self._abort_pending(RuntimeError(
                "inference worker died from an uncaught error:\n" + formatted))

    # -------------------------------------------------------------- #
    # Accounting
    # -------------------------------------------------------------- #
    def stats(self) -> ServerStats:
        """Request/batch counts, robustness counters, throughput, and latency
        aggregates covering every request since the server started (bounded
        memory: latency lives in a fixed-bucket log-scale histogram)."""
        with self._stats_lock:
            mean = self._latency_hist.mean
            p50, p95, p99 = self._latency_hist.percentiles()
            batched = self._batched_requests
            completed = self._completed
            batches = self._batches
            first = self._first_enqueued
            last = self._last_completed
            counters = {
                "queue_depth": self._inflight,
                "shed_deadline": self._shed_deadline,
                "shed_watermark": self._shed_watermark,
                "rejected": self._rejected,
                "requeues": self._requeues,
                "failed_requests": self._failed_requests,
                "nonfinite_outputs": self._nonfinite_outputs,
                "engine_crashes": self._engine_crashes,
                "engine_restarts": self._engine_restarts,
            }
        wall = (last - first) if (first is not None and last is not None) else None
        with self._submit_lock:
            state = self._state
        return ServerStats(
            state=state,
            requests=completed,
            batches=batches,
            mean_batch_size=(batched / batches) if batches else float("nan"),
            latency_ms_mean=mean,
            latency_ms_p50=p50,
            latency_ms_p95=p95,
            latency_ms_p99=p99,
            throughput_rps=(completed / wall) if wall and wall > 0 else float("nan"),
            worker_respawns=getattr(self.engine, "respawns", 0),
            oversized_transfers=getattr(self.engine, "oversized_transfers", 0),
            **counters,
        )


class _ServerFailed(Exception):
    """Internal: the supervisor declared the engine unrecoverable."""
