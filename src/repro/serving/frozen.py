"""Frozen-model export: one-time weight quantization + grad-free forwards.

Training runs every forward through the autograd substrate: weights are
re-quantized per call (or looked up in the version-keyed cache), dropout
branches are evaluated, and every op allocates a :class:`~repro.nn.tensor.Tensor`
with a backward closure.  Serving needs none of that.  :func:`freeze` walks a
trained model once and converts it into a tree of *frozen ops*:

* quantized layers quantize their weights **once** into a packed
  :class:`~repro.core.bfp.BFPTensor` (the Figure 15 storage layout) and keep
  the dequantized grid values for the matrix products,
* dropout and every other training-only branch is stripped,
* each op's ``run`` is a plain-NumPy replica of the live eval-mode forward --
  same gather indices, same matmuls, same reduction expressions -- so frozen
  logits are **bit-identical** to the live quantized model in eval mode,
* convolution/pooling reuse the shared forward helpers and memoized im2col
  indices of :mod:`repro.nn.functional`, and activation quantizers keep their
  own persistent :class:`~repro.core.kernels.LayoutCache`.

Every frozen op serializes to a JSON spec plus flat arrays, which
:mod:`repro.serving.checkpoint` stores in an ``.npz`` file; packed weights
are stored as compact integer arrays (signs/mantissas/exponents) rather than
floats.

Supported model families out of the box: ``Sequential`` compositions, MLP,
VGG, ResNet (basic + bottleneck), MobileNet-v2, TinyYOLO, and the
encoder-decoder Transformer (including greedy decoding).  New architectures
register a freezer with :func:`register_freezer`.

The frozen Transformer additionally exposes an **incremental decode** path
(:meth:`FrozenSeq2SeqTransformer.decode_step` over a :class:`DecodeCache`):
each generated token's K/V projections are appended to a per-sequence cache
and attention runs over the cached prefix -- O(T) per token instead of the
O(T^2) full recompute.  With cache quantization off the cached path's greedy
tokens are bit-identical to :meth:`FrozenSeq2SeqTransformer.greedy_decode`
(and, on BLAS-regime-stable shapes, the per-step logits are bit-identical
too -- see :func:`_row_matmul`); with an :class:`ActivationQuantizer`
attached the cache itself lives on the BFP grid, trading bounded divergence
for the paper's activation-format memory footprint.

One serving-relevant caveat: BFP activation quantization shares its exponent
window across the whole tensor, so with a narrow window (``exponent_bits``
of 2-3) a request's quantization can depend on its batch companions.  The
paper-standard 8-bit window never clamps in practice; serving configurations
should prefer it when exact batch-invariance matters.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..core.bfp import BFPConfig, BFPTensor, bfp_quantize, bfp_quantize_tensor
from ..core.kernels import LayoutCache, layout_cache_enabled
from ..core.memory_layout import compact_bfp_arrays, restore_bfp_tensor
from ..formats.base import TensorKind
from ..formats.registry import get_format
from ..models.mlp import MLP
from ..models.mobilenet import InvertedResidual, MobileNetV2
from ..models.resnet import BasicBlock, BottleneckBlock, ResNet
from ..models.transformer import Seq2SeqTransformer
from ..models.vgg import VGG
from ..models.yolo import TinyYOLO
from ..nn import attention as attention_mod
from ..nn import functional as F
from ..nn import modules as M
from ..nn.attention import causal_mask
from ..nn.quantized import (
    BFPScheme,
    FASTScheme,
    FormatScheme,
    QuantizedConv2d,
    QuantizedLinear,
)

__all__ = [
    "FrozenOp",
    "FrozenModel",
    "DecodeCache",
    "ActivationQuantizer",
    "freeze",
    "freeze_module",
    "register_freezer",
    "frozen_op_types",
]


def _as_float(x) -> np.ndarray:
    """Promote like :class:`Tensor`: float32 stays, everything else -> float64."""
    array = np.asarray(x)
    return array if array.dtype == np.float32 else np.asarray(array, dtype=np.float64)


# --------------------------------------------------------------------------- #
# Activation quantizers
# --------------------------------------------------------------------------- #
class ActivationQuantizer:
    """Deterministic nearest-rounding BFP quantizer with a persistent layout cache.

    Applies exactly the same quantization a :class:`BFPScheme` applies to
    activations in eval mode, so frozen activations match the live model bit
    for bit.
    """

    def __init__(self, mantissa_bits: int, group_size: int, exponent_bits: Optional[int]):
        self.mantissa_bits = int(mantissa_bits)
        self.group_size = int(group_size)
        self.exponent_bits = None if exponent_bits is None else int(exponent_bits)
        self._layouts = LayoutCache(max_entries=16)

    def __call__(self, values: np.ndarray) -> np.ndarray:
        layout = (self._layouts.layout_for(values, self.group_size)
                  if layout_cache_enabled() else None)
        return bfp_quantize(
            values,
            mantissa_bits=self.mantissa_bits,
            group_size=self.group_size,
            exponent_bits=self.exponent_bits,
            rounding="nearest",
            layout=layout,
        )

    def config(self) -> dict:
        return {
            "type": "bfp",
            "mantissa_bits": self.mantissa_bits,
            "group_size": self.group_size,
            "exponent_bits": self.exponent_bits,
        }


class FormatActivationQuantizer:
    """Activation quantizer backed by a registered scalar/block NumberFormat."""

    def __init__(self, format_name: str):
        self.format_name = format_name
        self.number_format = get_format(format_name)
        self._rng = np.random.default_rng(0)

    def __call__(self, values: np.ndarray) -> np.ndarray:
        return self.number_format.quantize(values, kind=TensorKind.ACTIVATION, rng=self._rng)

    def config(self) -> dict:
        return {"type": "format", "name": self.format_name}


def _quantizer_from_config(config: Optional[dict]):
    if config is None:
        return None
    if config["type"] == "bfp":
        return ActivationQuantizer(config["mantissa_bits"], config["group_size"],
                                   config["exponent_bits"])
    if config["type"] == "format":
        return FormatActivationQuantizer(config["name"])
    raise ValueError(f"unknown activation quantizer config {config!r}")


# --------------------------------------------------------------------------- #
# Frozen weights
# --------------------------------------------------------------------------- #
def _pack_weight(weight_data: np.ndarray, mantissa_bits: int, group_size: int,
                 exponent_bits: Optional[int]) -> Tuple[BFPTensor, np.ndarray]:
    """Quantize a weight once into packed BFP; returns (packed, grid values).

    ``BFPTensor.to_float`` reconstructs exactly the values the live model's
    fake-quantization produces (the packed integers are a lossless encoding
    of the BFP grid points), which is what makes the frozen forward and the
    checkpoint round-trip bit-identical.
    """
    packed = bfp_quantize_tensor(
        np.asarray(weight_data),
        mantissa_bits=mantissa_bits,
        group_size=group_size,
        exponent_bits=exponent_bits,
        rounding="nearest",
    )
    return packed, packed.to_float()


def _packed_meta(packed: BFPTensor) -> dict:
    return {
        "shape": list(packed.shape),
        "axis": packed.axis,
        "pad": packed.pad,
        "moved_shape": list(packed._moved_shape),
        "mantissa_bits": packed.config.mantissa_bits,
        "group_size": packed.config.group_size,
        "exponent_bits": packed.config.exponent_bits,
    }


def _packed_from_meta(meta: dict, arrays: Dict[str, np.ndarray]) -> BFPTensor:
    config = BFPConfig(
        mantissa_bits=meta["mantissa_bits"],
        group_size=meta["group_size"],
        exponent_bits=meta["exponent_bits"],
        rounding="nearest",
    )
    return restore_bfp_tensor(arrays, config, meta["shape"], meta["axis"],
                              meta["pad"], meta["moved_shape"])


def _freeze_scheme(scheme, weight_data: np.ndarray):
    """Resolve a quantization scheme into frozen-layer pieces.

    Returns ``(weight_values, packed, activation_quantizer, descriptor)``.
    The FAST-Adaptive scheme is resolved to a fixed-precision snapshot: the
    weight keeps the bits the policy decided for it at freeze time, and
    activations conservatively use the policy's high precision (their
    per-call data-dependent decision cannot be replayed without the policy
    state).
    """
    weight_data = np.asarray(weight_data)
    if scheme is None or scheme.is_identity:
        return np.array(weight_data), None, None, {"kind": "identity"}
    if isinstance(scheme, FASTScheme):
        # `decide` is the pure selection path: freezing must not record into
        # (or advance the memo of) the live policy it snapshots.
        weight_bits = scheme.policy.decide(
            TensorKind.WEIGHT, scheme.layer_index, scheme.iteration,
            tensor=weight_data).mantissa_bits
        # Every policy defines supported_bits; high_bits is specific to the
        # two-level policies, so the conservative snapshot is the widest
        # mantissa the policy can choose.
        activation_bits = max(scheme.policy.supported_bits)
        config = scheme.config
        packed, values = _pack_weight(weight_data, weight_bits,
                                      config.group_size, config.exponent_bits)
        quantizer = ActivationQuantizer(activation_bits, config.group_size,
                                        config.exponent_bits)
        descriptor = {"kind": "bfp", "weight_bits": int(weight_bits),
                      "activation_bits": int(activation_bits),
                      "group_size": config.group_size,
                      "exponent_bits": config.exponent_bits,
                      "frozen_from": "fast_adaptive"}
        return values, packed, quantizer, descriptor
    if isinstance(scheme, BFPScheme):
        weight_bits = scheme.bits[TensorKind.WEIGHT]
        activation_bits = scheme.bits[TensorKind.ACTIVATION]
        config = scheme.config
        packed, values = _pack_weight(weight_data, weight_bits,
                                      config.group_size, config.exponent_bits)
        quantizer = ActivationQuantizer(activation_bits, config.group_size,
                                        config.exponent_bits)
        descriptor = {"kind": "bfp", "weight_bits": int(weight_bits),
                      "activation_bits": int(activation_bits),
                      "group_size": config.group_size,
                      "exponent_bits": config.exponent_bits}
        return values, packed, quantizer, descriptor
    if isinstance(scheme, FormatScheme):
        values = scheme.number_format.quantize(
            weight_data, kind=TensorKind.WEIGHT, rng=np.random.default_rng(0))
        quantizer = FormatActivationQuantizer(scheme.number_format.name)
        descriptor = {"kind": "format", "name": scheme.number_format.name}
        return values, None, quantizer, descriptor
    raise TypeError(f"cannot freeze quantization scheme {type(scheme).__name__}")


# --------------------------------------------------------------------------- #
# Frozen op base + registry of op types (for checkpoint reconstruction)
# --------------------------------------------------------------------------- #
_OP_TYPES: Dict[str, type] = {}


def _register_op(cls):
    _OP_TYPES[cls.kind] = cls
    return cls


def frozen_op_types() -> Dict[str, type]:
    """Registered frozen op types by kind (used by the checkpoint loader)."""
    return dict(_OP_TYPES)


class FrozenOp:
    """A grad-free inference op.  ``run`` maps arrays to arrays."""

    kind = "op"

    def run(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def state(self) -> Tuple[dict, Dict[str, np.ndarray], dict]:
        """Serialization triple: (config JSON dict, arrays, child ops)."""
        return {}, {}, {}

    @classmethod
    def from_state(cls, config: dict, arrays: Dict[str, np.ndarray], children: dict):
        return cls()

    def child_ops(self) -> List["FrozenOp"]:
        return []


def iter_ops(op: FrozenOp):
    """Depth-first iteration over an op and all its descendants."""
    yield op
    for child in op.child_ops():
        yield from iter_ops(child)


# --------------------------------------------------------------------------- #
# Leaf ops
# --------------------------------------------------------------------------- #
def _weight_state(op, config: dict, arrays: Dict[str, np.ndarray]) -> None:
    """Shared packed-vs-raw weight serialization for linear/conv ops."""
    if op.packed is not None:
        config["packed"] = _packed_meta(op.packed)
        arrays.update(compact_bfp_arrays(op.packed))
    else:
        arrays["weight"] = op.weight
    if op.bias is not None:
        arrays["bias"] = op.bias


def _weight_from_state(config: dict, arrays: Dict[str, np.ndarray]):
    """Invert :func:`_weight_state`; returns ``(weight, bias, packed)``."""
    packed = None
    if "packed" in config:
        packed = _packed_from_meta(config["packed"], arrays)
        weight = packed.to_float()
    else:
        weight = arrays["weight"]
    return weight, arrays.get("bias"), packed


@_register_op
class FrozenLinear(FrozenOp):
    """``y = quantize(x) @ W_q.T + b`` with the weight quantized at freeze time."""

    kind = "linear"

    def __init__(self, weight: np.ndarray, bias: Optional[np.ndarray],
                 quantizer=None, packed: Optional[BFPTensor] = None,
                 scheme_desc: Optional[dict] = None):
        self.weight = np.asarray(weight)
        self.bias = None if bias is None else np.asarray(bias)
        self.quantizer = quantizer
        self.packed = packed
        self.scheme_desc = scheme_desc or {"kind": "identity"}

    def run(self, x: np.ndarray) -> np.ndarray:
        if self.quantizer is not None:
            x = self.quantizer(x)
        # matmul against the transposed view, exactly like F.linear's
        # ``x @ weight.swapaxes(-1, -2)``.
        out = np.matmul(x, self.weight.T)
        if self.bias is not None:
            out = out + self.bias
        return out

    def state(self):
        config = {
            "quantizer": None if self.quantizer is None else self.quantizer.config(),
            "scheme": self.scheme_desc,
        }
        arrays: Dict[str, np.ndarray] = {}
        _weight_state(self, config, arrays)
        return config, arrays, {}

    @classmethod
    def from_state(cls, config, arrays, children):
        weight, bias, packed = _weight_from_state(config, arrays)
        return cls(weight, bias,
                   quantizer=_quantizer_from_config(config.get("quantizer")),
                   packed=packed, scheme_desc=config.get("scheme"))


@_register_op
class FrozenConv2d(FrozenOp):
    """Frozen convolution: shared im2col forward, freeze-time-quantized weight."""

    kind = "conv2d"

    def __init__(self, weight: np.ndarray, bias: Optional[np.ndarray],
                 stride: int, padding: int, groups: int = 1,
                 quantizer=None, packed: Optional[BFPTensor] = None,
                 scheme_desc: Optional[dict] = None):
        self.weight = np.asarray(weight)
        self.bias = None if bias is None else np.asarray(bias)
        self.stride = int(stride)
        self.padding = int(padding)
        self.groups = int(groups)
        self.quantizer = quantizer
        self.packed = packed
        self.scheme_desc = scheme_desc or {"kind": "identity"}

    def run(self, x: np.ndarray) -> np.ndarray:
        if self.quantizer is not None:
            x = self.quantizer(x)
        return F.conv2d_infer(x, self.weight, self.bias, stride=self.stride,
                              padding=self.padding, groups=self.groups)

    def state(self):
        config = {
            "stride": self.stride,
            "padding": self.padding,
            "groups": self.groups,
            "quantizer": None if self.quantizer is None else self.quantizer.config(),
            "scheme": self.scheme_desc,
        }
        arrays: Dict[str, np.ndarray] = {}
        _weight_state(self, config, arrays)
        return config, arrays, {}

    @classmethod
    def from_state(cls, config, arrays, children):
        weight, bias, packed = _weight_from_state(config, arrays)
        return cls(weight, bias, config["stride"], config["padding"],
                   config.get("groups", 1),
                   quantizer=_quantizer_from_config(config.get("quantizer")),
                   packed=packed, scheme_desc=config.get("scheme"))


@_register_op
class FrozenBatchNorm2d(FrozenOp):
    """Eval-mode batch norm over frozen running statistics."""

    kind = "batchnorm2d"

    def __init__(self, mean: np.ndarray, var: np.ndarray,
                 weight: np.ndarray, bias: np.ndarray, eps: float):
        self.mean = np.asarray(mean)
        self.var = np.asarray(var)
        self.weight = np.asarray(weight)
        self.bias = np.asarray(bias)
        self.eps = float(eps)

    def run(self, x: np.ndarray) -> np.ndarray:
        mean = self.mean.reshape(1, -1, 1, 1)
        var = self.var.reshape(1, -1, 1, 1)
        normalized = (x - mean) / ((var + self.eps) ** 0.5)
        return normalized * self.weight.reshape(1, -1, 1, 1) + self.bias.reshape(1, -1, 1, 1)

    def state(self):
        return ({"eps": self.eps},
                {"mean": self.mean, "var": self.var,
                 "weight": self.weight, "bias": self.bias}, {})

    @classmethod
    def from_state(cls, config, arrays, children):
        return cls(arrays["mean"], arrays["var"], arrays["weight"], arrays["bias"],
                   config["eps"])


@_register_op
class FrozenLayerNorm(FrozenOp):
    kind = "layernorm"

    def __init__(self, weight: np.ndarray, bias: np.ndarray, eps: float):
        self.weight = np.asarray(weight)
        self.bias = np.asarray(bias)
        self.eps = float(eps)

    def run(self, x: np.ndarray) -> np.ndarray:
        # Replicates Tensor.mean/var exactly: sum * (1/count), then the
        # centered second moment -- not np.mean, whose division can differ
        # in the last bit from the reciprocal multiply.
        count = x.shape[-1]
        mean = x.sum(axis=-1, keepdims=True) * (1.0 / count)
        centered = x - mean
        var = (centered * centered).sum(axis=-1, keepdims=True) * (1.0 / count)
        normalized = centered / ((var + self.eps) ** 0.5)
        return normalized * self.weight + self.bias

    def state(self):
        return {"eps": self.eps}, {"weight": self.weight, "bias": self.bias}, {}

    @classmethod
    def from_state(cls, config, arrays, children):
        return cls(arrays["weight"], arrays["bias"], config["eps"])


@_register_op
class FrozenEmbedding(FrozenOp):
    kind = "embedding"

    def __init__(self, weight: np.ndarray):
        self.weight = np.asarray(weight)

    def run(self, indices: np.ndarray) -> np.ndarray:
        return self.weight[np.asarray(indices, dtype=np.int64)]

    def state(self):
        return {}, {"weight": self.weight}, {}

    @classmethod
    def from_state(cls, config, arrays, children):
        return cls(arrays["weight"])


@_register_op
class FrozenReLU(FrozenOp):
    kind = "relu"

    def run(self, x):
        # np.maximum is one pass where the autograd path's ``x * (x > 0)``
        # is two; the results compare equal everywhere (the only difference
        # is the sign of zero, and -0.0 == 0.0).
        return np.maximum(x, 0.0)


@_register_op
class FrozenLeakyReLU(FrozenOp):
    kind = "leaky_relu"

    def __init__(self, negative_slope: float = 0.1):
        self.negative_slope = float(negative_slope)

    def run(self, x):
        # Dtype-preserving form of ``x * where(x > 0, 1.0, slope)``:
        # identical values (x * 1.0 == x exactly) without materializing a
        # float64 scale array that would promote a float32 pipeline.
        return np.where(x > 0, x, x * self.negative_slope)

    def state(self):
        return {"negative_slope": self.negative_slope}, {}, {}

    @classmethod
    def from_state(cls, config, arrays, children):
        return cls(config["negative_slope"])


@_register_op
class FrozenSigmoid(FrozenOp):
    kind = "sigmoid"

    def run(self, x):
        return 1.0 / (1.0 + np.exp(-x))


@_register_op
class FrozenTanh(FrozenOp):
    kind = "tanh"

    def run(self, x):
        return np.tanh(x)


@_register_op
class FrozenGELU(FrozenOp):
    kind = "gelu"

    def run(self, x):
        # float(...) keeps the factor a weak Python scalar: an np.float64
        # scalar would promote a float32 pipeline back to float64 (NEP 50).
        inner = (x + x * x * x * 0.044715) * float(np.sqrt(2.0 / np.pi))
        return x * 0.5 * (np.tanh(inner) + 1.0)


@_register_op
class FrozenMaxPool2d(FrozenOp):
    kind = "max_pool2d"

    def __init__(self, kernel_size: int, stride: Optional[int] = None):
        self.kernel_size = int(kernel_size)
        self.stride = None if stride is None else int(stride)

    def run(self, x):
        return F.max_pool2d_infer(x, self.kernel_size, self.stride)

    def state(self):
        return {"kernel_size": self.kernel_size, "stride": self.stride}, {}, {}

    @classmethod
    def from_state(cls, config, arrays, children):
        return cls(config["kernel_size"], config["stride"])


@_register_op
class FrozenAvgPool2d(FrozenOp):
    kind = "avg_pool2d"

    def __init__(self, kernel_size: int, stride: Optional[int] = None):
        self.kernel_size = int(kernel_size)
        self.stride = None if stride is None else int(stride)

    def run(self, x):
        return F.avg_pool2d_infer(x, self.kernel_size, self.stride)

    def state(self):
        return {"kernel_size": self.kernel_size, "stride": self.stride}, {}, {}

    @classmethod
    def from_state(cls, config, arrays, children):
        return cls(config["kernel_size"], config["stride"])


@_register_op
class FrozenGlobalAvgPool2d(FrozenOp):
    kind = "global_avg_pool2d"

    def run(self, x):
        return x.sum(axis=(2, 3)) * (1.0 / (x.shape[2] * x.shape[3]))


@_register_op
class FrozenFlatten(FrozenOp):
    kind = "flatten"

    def __init__(self, start_dim: int = 1):
        self.start_dim = int(start_dim)

    def run(self, x):
        return x.reshape(x.shape[:self.start_dim] + (-1,))

    def state(self):
        return {"start_dim": self.start_dim}, {}, {}

    @classmethod
    def from_state(cls, config, arrays, children):
        return cls(config["start_dim"])


@_register_op
class FrozenTranspose(FrozenOp):
    kind = "transpose"

    def __init__(self, axes):
        self.axes = tuple(int(a) for a in axes)

    def run(self, x):
        return x.transpose(self.axes)

    def state(self):
        return {"axes": list(self.axes)}, {}, {}

    @classmethod
    def from_state(cls, config, arrays, children):
        return cls(config["axes"])


@_register_op
class FrozenIdentity(FrozenOp):
    kind = "identity"

    def run(self, x):
        return x


@_register_op
class FrozenSequential(FrozenOp):
    kind = "sequential"

    def __init__(self, ops: List[FrozenOp]):
        self.ops = list(ops)

    def run(self, x):
        for op in self.ops:
            x = op.run(x)
        return x

    def state(self):
        return {}, {}, {"ops": self.ops}

    @classmethod
    def from_state(cls, config, arrays, children):
        return cls(children["ops"])

    def child_ops(self):
        return list(self.ops)


# --------------------------------------------------------------------------- #
# Residual blocks
# --------------------------------------------------------------------------- #
@_register_op
class FrozenBasicBlock(FrozenOp):
    kind = "basic_block"

    def __init__(self, conv1: FrozenOp, conv2: FrozenOp, shortcut: FrozenOp):
        self.conv1 = conv1
        self.conv2 = conv2
        self.shortcut = shortcut

    def run(self, x):
        out = self.conv1.run(x)
        out = np.maximum(out, 0.0)
        out = self.conv2.run(out)
        out = out + self.shortcut.run(x)
        return np.maximum(out, 0.0)

    def state(self):
        return {}, {}, {"conv1": self.conv1, "conv2": self.conv2, "shortcut": self.shortcut}

    @classmethod
    def from_state(cls, config, arrays, children):
        return cls(children["conv1"], children["conv2"], children["shortcut"])

    def child_ops(self):
        return [self.conv1, self.conv2, self.shortcut]


@_register_op
class FrozenBottleneckBlock(FrozenOp):
    kind = "bottleneck_block"

    def __init__(self, conv1, conv2, conv3, shortcut):
        self.conv1 = conv1
        self.conv2 = conv2
        self.conv3 = conv3
        self.shortcut = shortcut

    def run(self, x):
        out = self.conv1.run(x)
        out = np.maximum(out, 0.0)
        out = self.conv2.run(out)
        out = np.maximum(out, 0.0)
        out = self.conv3.run(out)
        out = out + self.shortcut.run(x)
        return np.maximum(out, 0.0)

    def state(self):
        return {}, {}, {"conv1": self.conv1, "conv2": self.conv2,
                        "conv3": self.conv3, "shortcut": self.shortcut}

    @classmethod
    def from_state(cls, config, arrays, children):
        return cls(children["conv1"], children["conv2"], children["conv3"],
                   children["shortcut"])

    def child_ops(self):
        return [self.conv1, self.conv2, self.conv3, self.shortcut]


@_register_op
class FrozenInvertedResidual(FrozenOp):
    kind = "inverted_residual"

    def __init__(self, expand, depthwise, project, use_residual: bool):
        self.expand = expand
        self.depthwise = depthwise
        self.project = project
        self.use_residual = bool(use_residual)

    def run(self, x):
        out = self.expand.run(x)
        out = self.depthwise.run(out)
        out = self.project.run(out)
        if self.use_residual:
            out = out + x
        return out

    def state(self):
        return ({"use_residual": self.use_residual}, {},
                {"expand": self.expand, "depthwise": self.depthwise,
                 "project": self.project})

    @classmethod
    def from_state(cls, config, arrays, children):
        return cls(children["expand"], children["depthwise"], children["project"],
                   config["use_residual"])

    def child_ops(self):
        return [self.expand, self.depthwise, self.project]


@_register_op
class FrozenMLP(FrozenOp):
    kind = "mlp"

    def __init__(self, layers: FrozenOp):
        self.layers = layers

    def run(self, x):
        if x.ndim > 2:
            x = x.reshape(x.shape[:1] + (-1,))
        return self.layers.run(x)

    def state(self):
        return {}, {}, {"layers": self.layers}

    @classmethod
    def from_state(cls, config, arrays, children):
        return cls(children["layers"])

    def child_ops(self):
        return [self.layers]


# --------------------------------------------------------------------------- #
# Transformer ops
# --------------------------------------------------------------------------- #
def _row_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a @ b`` for single-row ``a`` (..., 1, K), on the multi-row BLAS path.

    NumPy routes single-row products through a different BLAS kernel (gemv)
    than multi-row ones (gemm), and the two accumulate in different orders,
    so the "obvious" one-token product is *not* bit-identical to the same row
    of the full-sequence product.  Duplicating the row to M=2 and slicing the
    result back restores the gemm path: the stacked-4D products used in
    attention then reproduce the full path's rows bit for bit (verified for
    float64 and float32, including against padded key columns and zero-weight
    value contributions).  The duplicate row costs a negligible O(K*N).

    Plain 2D gemm rows are *not* M-invariant at every shape (small-M kernel
    switches), which is why only the 4D attention products use this trick;
    the projection layers' bits can differ from the full path's in the last
    ulp on some shapes, and token-level equivalence is gated instead.
    """
    doubled = np.matmul(np.concatenate([a, a], axis=-2), b)
    return doubled[..., :1, :]


class DecodeCache:
    """Preallocated per-layer self-attention K/V cache for incremental decode.

    One contiguous (batch, heads, capacity, head_dim) buffer per decoder
    layer, written in place; :meth:`append` returns views of the filled
    prefix (the prefix of a row-contiguous buffer stays row-contiguous, so
    the attention products see the same memory layout a freshly-assembled
    array would).  With a ``quantizer`` (an :class:`ActivationQuantizer`)
    every cached K/V row is snapped to the BFP grid on write -- the paper's
    activation quantization applied to the cache itself -- and bit-exactness
    vs recompute becomes bounded divergence, measured in the benchmark
    harness.  Grid values are exactly representable, so a quantized cache
    can be *packed* to BFP storage losslessly (see ``serving.generation``).
    """

    def __init__(self, num_layers: int, capacity: int, quantizer=None):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.num_layers = int(num_layers)
        self.capacity = int(capacity)
        self.quantizer = quantizer
        self._k: List[Optional[np.ndarray]] = [None] * self.num_layers
        self._v: List[Optional[np.ndarray]] = [None] * self.num_layers
        self.length = 0

    def append(self, layer: int, k_new: np.ndarray, v_new: np.ndarray):
        """Append one step's (batch, heads, 1, head_dim) K/V; return the
        cached (K, V) prefixes including it."""
        if self.quantizer is not None:
            k_new = self.quantizer(k_new)
            v_new = self.quantizer(v_new)
        if self._k[layer] is None:
            batch, heads, _, head_dim = k_new.shape
            shape = (batch, heads, self.capacity, head_dim)
            self._k[layer] = np.empty(shape, dtype=k_new.dtype)
            self._v[layer] = np.empty(shape, dtype=v_new.dtype)
        step = k_new.shape[2]
        if self.length + step > self.capacity:
            raise ValueError(
                f"DecodeCache capacity {self.capacity} exceeded at length {self.length}")
        self._k[layer][:, :, self.length:self.length + step] = k_new
        self._v[layer][:, :, self.length:self.length + step] = v_new
        filled = self.length + step
        if layer == self.num_layers - 1:  # all layers saw this step
            self.length = filled
        return self._k[layer][:, :, :filled], self._v[layer][:, :, :filled]


@_register_op
class FrozenMultiHeadAttention(FrozenOp):
    kind = "multi_head_attention"

    def __init__(self, q_proj, k_proj, v_proj, out_proj, num_heads: int):
        self.q_proj = q_proj
        self.k_proj = k_proj
        self.v_proj = v_proj
        self.out_proj = out_proj
        self.num_heads = int(num_heads)

    def _split_heads(self, x):
        batch, length, embed = x.shape
        head_dim = embed // self.num_heads
        return x.reshape(batch, length, self.num_heads, head_dim).transpose(0, 2, 1, 3)

    def kv(self, x) -> Tuple[np.ndarray, np.ndarray]:
        """Split-head (K, V) projections of ``x``, for caching."""
        return (self._split_heads(self.k_proj.run(x)),
                self._split_heads(self.v_proj.run(x)))

    def run(self, query, key=None, value=None, mask=None, cached_kv=None):
        key = query if key is None else key
        value = key if value is None else value
        q = self._split_heads(self.q_proj.run(query))
        if cached_kv is not None:
            k, v = cached_kv
        else:
            k = self._split_heads(self.k_proj.run(key))
            v = self._split_heads(self.v_proj.run(value))
        head_dim = q.shape[-1]
        # Python-float scale: an np.float64 scalar would promote float32.
        scores = np.matmul(q, k.transpose(0, 1, 3, 2)) * float(1.0 / np.sqrt(head_dim))
        if mask is not None:
            scores = scores + mask
        shifted = scores - scores.max(axis=-1, keepdims=True)
        exps = np.exp(shifted)
        weights = exps / exps.sum(axis=-1, keepdims=True)
        attended = np.matmul(weights, v)
        batch, _, length, _ = attended.shape
        merged = attended.transpose(0, 2, 1, 3).reshape(batch, length, -1)
        return self.out_proj.run(merged)

    def run_step(self, query, k, v, mask=None, *, first_step=False):
        """One-token attention over cached split-head K/V.

        ``query`` is the (batch, 1, embed) hidden state of the current token;
        ``k``/``v`` are (batch, heads, length, head_dim) caches that already
        include the current position.  The full decode path masks future
        positions with a finite ``-1e9`` fill whose softmax weights underflow
        to exact zeros, so attending over only the cached prefix reproduces
        the full path's attention row bit for bit -- provided the products
        run on the same BLAS path, which is what :func:`_row_matmul` ensures.
        ``first_step`` keeps the length-1 case on the full path's own
        single-row kernel instead.
        """
        q = self._split_heads(self.q_proj.run(query))
        head_dim = q.shape[-1]
        product = np.matmul if first_step else _row_matmul
        scores = product(q, k.transpose(0, 1, 3, 2)) * float(1.0 / np.sqrt(head_dim))
        if mask is not None:
            scores = scores + mask
        shifted = scores - scores.max(axis=-1, keepdims=True)
        exps = np.exp(shifted)
        weights = exps / exps.sum(axis=-1, keepdims=True)
        attended = product(weights, v)
        merged = attended.transpose(0, 2, 1, 3).reshape(attended.shape[0], 1, -1)
        return self.out_proj.run(merged)

    def state(self):
        return ({"num_heads": self.num_heads}, {},
                {"q_proj": self.q_proj, "k_proj": self.k_proj,
                 "v_proj": self.v_proj, "out_proj": self.out_proj})

    @classmethod
    def from_state(cls, config, arrays, children):
        return cls(children["q_proj"], children["k_proj"], children["v_proj"],
                   children["out_proj"], config["num_heads"])

    def child_ops(self):
        return [self.q_proj, self.k_proj, self.v_proj, self.out_proj]


@_register_op
class FrozenFeedForward(FrozenOp):
    kind = "feed_forward"

    def __init__(self, fc1, fc2):
        self.fc1 = fc1
        self.fc2 = fc2

    def run(self, x):
        hidden = self.fc1.run(x)
        hidden = np.maximum(hidden, 0.0)
        return self.fc2.run(hidden)

    def state(self):
        return {}, {}, {"fc1": self.fc1, "fc2": self.fc2}

    @classmethod
    def from_state(cls, config, arrays, children):
        return cls(children["fc1"], children["fc2"])

    def child_ops(self):
        return [self.fc1, self.fc2]


@_register_op
class FrozenEncoderLayer(FrozenOp):
    kind = "encoder_layer"

    def __init__(self, self_attention, feed_forward, norm1, norm2):
        self.self_attention = self_attention
        self.feed_forward = feed_forward
        self.norm1 = norm1
        self.norm2 = norm2

    def run(self, x, mask=None):
        x = x + self.self_attention.run(self.norm1.run(x), mask=mask)
        x = x + self.feed_forward.run(self.norm2.run(x))
        return x

    def state(self):
        return {}, {}, {"self_attention": self.self_attention,
                        "feed_forward": self.feed_forward,
                        "norm1": self.norm1, "norm2": self.norm2}

    @classmethod
    def from_state(cls, config, arrays, children):
        return cls(children["self_attention"], children["feed_forward"],
                   children["norm1"], children["norm2"])

    def child_ops(self):
        return [self.self_attention, self.feed_forward, self.norm1, self.norm2]


@_register_op
class FrozenDecoderLayer(FrozenOp):
    kind = "decoder_layer"

    def __init__(self, self_attention, cross_attention, feed_forward, norm1, norm2, norm3):
        self.self_attention = self_attention
        self.cross_attention = cross_attention
        self.feed_forward = feed_forward
        self.norm1 = norm1
        self.norm2 = norm2
        self.norm3 = norm3

    def run(self, x, memory, self_mask=None, memory_mask=None, memory_kv=None):
        # ``memory_kv`` short-circuits the cross-attention K/V projections of
        # the (static) encoder memory; project once per sequence via
        # ``self.cross_attention.kv(memory)`` instead of once per decode call.
        x = x + self.self_attention.run(self.norm1.run(x), mask=self_mask)
        x = x + self.cross_attention.run(self.norm2.run(x), key=memory, value=memory,
                                         mask=memory_mask, cached_kv=memory_kv)
        x = x + self.feed_forward.run(self.norm3.run(x))
        return x

    def run_step(self, x, cache, layer_index, memory_kv, self_mask=None,
                 memory_mask=None, *, first_step=False):
        """One decoder step: append this token's self-attention K/V to
        ``cache`` and attend over the cached prefix plus the precomputed
        cross-attention ``memory_kv``.  ``x`` is (batch, 1, embed)."""
        h = self.norm1.run(x)
        k, v = cache.append(layer_index, *self.self_attention.kv(h))
        x = x + self.self_attention.run_step(h, k, v, mask=self_mask,
                                             first_step=first_step)
        x = x + self.cross_attention.run_step(self.norm2.run(x), *memory_kv,
                                              mask=memory_mask, first_step=first_step)
        x = x + self.feed_forward.run(self.norm3.run(x))
        return x

    def state(self):
        return {}, {}, {"self_attention": self.self_attention,
                        "cross_attention": self.cross_attention,
                        "feed_forward": self.feed_forward,
                        "norm1": self.norm1, "norm2": self.norm2, "norm3": self.norm3}

    @classmethod
    def from_state(cls, config, arrays, children):
        return cls(children["self_attention"], children["cross_attention"],
                   children["feed_forward"], children["norm1"], children["norm2"],
                   children["norm3"])

    def child_ops(self):
        return [self.self_attention, self.cross_attention, self.feed_forward,
                self.norm1, self.norm2, self.norm3]


@_register_op
class FrozenSeq2SeqTransformer(FrozenOp):
    """Frozen encoder-decoder Transformer with teacher-forced and greedy paths."""

    kind = "seq2seq_transformer"

    def __init__(self, embedding: FrozenEmbedding, positional: np.ndarray,
                 encoder_layers: List[FrozenEncoderLayer],
                 decoder_layers: List[FrozenDecoderLayer],
                 encoder_norm: FrozenLayerNorm, decoder_norm: FrozenLayerNorm,
                 output_projection: FrozenLinear,
                 embed_dim: int, max_length: int, pad_index: int):
        self.embedding = embedding
        self.positional = np.asarray(positional)
        self.encoder_layers = list(encoder_layers)
        self.decoder_layers = list(decoder_layers)
        self.encoder_norm = encoder_norm
        self.decoder_norm = decoder_norm
        self.output_projection = output_projection
        self.embed_dim = int(embed_dim)
        self.max_length = int(max_length)
        self.pad_index = int(pad_index)

    def _embed(self, tokens: np.ndarray) -> np.ndarray:
        tokens = np.asarray(tokens, dtype=np.int64)
        length = tokens.shape[1]
        if length > self.max_length:
            raise ValueError(f"sequence length {length} exceeds max_length {self.max_length}")
        embedded = self.embedding.run(tokens) * float(np.sqrt(self.embed_dim))
        return embedded + self.positional[:length]

    def encode(self, src_tokens: np.ndarray) -> np.ndarray:
        x = self._embed(src_tokens)
        for layer in self.encoder_layers:
            x = layer.run(x)
        return self.encoder_norm.run(x)

    def decode(self, tgt_tokens: np.ndarray, memory: np.ndarray,
               memory_kv=None) -> np.ndarray:
        x = self._embed(tgt_tokens)
        # Match the embedding dtype so a float32 cast is not silently
        # promoted back to float64 by the additive mask.
        mask = causal_mask(np.asarray(tgt_tokens).shape[1]).astype(x.dtype, copy=False)
        for index, layer in enumerate(self.decoder_layers):
            x = layer.run(x, memory, self_mask=mask,
                          memory_kv=None if memory_kv is None else memory_kv[index])
        return self.decoder_norm.run(x)

    # ----------------------- incremental decode ----------------------- #
    def memory_kv(self, memory: np.ndarray) -> Tuple:
        """Cross-attention (K, V) of the encoder memory, projected once per
        decoder layer (the memory is static across decode steps)."""
        return tuple(layer.cross_attention.kv(memory) for layer in self.decoder_layers)

    def prefill(self, src_tokens: np.ndarray):
        """Encode the source and project the per-layer cross-attention K/V.

        Returns ``(memory, memory_kv)`` -- everything a sequence needs
        besides its (initially empty) self-attention :class:`DecodeCache`.
        """
        memory = self.encode(np.asarray(src_tokens, dtype=np.int64))
        return memory, self.memory_kv(memory)

    def start_cache(self, max_length: Optional[int] = None,
                    quantizer=None) -> DecodeCache:
        capacity = self.max_length if max_length is None else int(max_length)
        return DecodeCache(len(self.decoder_layers), capacity, quantizer=quantizer)

    def decode_step(self, tokens: np.ndarray, positions: np.ndarray,
                    cache, memory_kv, self_mask=None,
                    memory_mask=None) -> np.ndarray:
        """Next-token logits after one incremental decoder step.

        ``tokens`` (batch,) are the current tokens sitting at ``positions``
        (batch,); their K/V are appended to ``cache`` and every decoder layer
        attends over the cached prefix.  Returns (batch, vocab) logits --
        the same values ``run``'s last time-step produces, without re-running
        the prefix.  Sequences in one batch may sit at different positions
        (continuous batching); ``self_mask`` then masks cache padding.
        """
        tokens = np.asarray(tokens, dtype=np.int64).reshape(-1, 1)
        positions = np.asarray(positions, dtype=np.int64).reshape(-1)
        if positions.size and (positions.min() < 0 or positions.max() >= self.max_length):
            raise ValueError(
                f"positions must lie in [0, {self.max_length}), got "
                f"[{positions.min()}, {positions.max()}]")
        x = self.embedding.run(tokens) * float(np.sqrt(self.embed_dim))
        x = x + self.positional[positions][:, None, :]
        first_step = bool(positions.max() == 0) if positions.size else True
        for index, layer in enumerate(self.decoder_layers):
            x = layer.run_step(x, cache, index, memory_kv[index],
                               self_mask=self_mask, memory_mask=memory_mask,
                               first_step=first_step)
        x = self.decoder_norm.run(x)
        return self.output_projection.run(x)[:, 0, :]

    def greedy_decode_cached(self, src_tokens: np.ndarray, bos_index: int,
                             eos_index: int, max_length: Optional[int] = None,
                             cache_quantizer=None) -> np.ndarray:
        """KV-cached greedy decode: O(T) attention per emitted token.

        Token-identical to :meth:`greedy_decode` when ``cache_quantizer`` is
        ``None`` (gated in ``benchmarks/bench_perf_generation.py``); with an
        :class:`ActivationQuantizer` the cached K/V live on the BFP grid and
        the divergence is bounded, not zero.
        """
        max_length = max_length if max_length is not None else self.max_length
        src_tokens = np.asarray(src_tokens, dtype=np.int64)
        batch = src_tokens.shape[0]
        _, memory_kv = self.prefill(src_tokens)
        cache = self.start_cache(max_length=max_length, quantizer=cache_quantizer)
        generated = np.full((batch, 1), bos_index, dtype=np.int64)
        finished = np.zeros(batch, dtype=bool)
        tokens = generated[:, -1]
        for step in range(max_length - 1):
            logits = self.decode_step(tokens, np.full(batch, step, dtype=np.int64),
                                      cache, memory_kv)
            next_tokens = np.where(finished, self.pad_index, logits.argmax(axis=-1))
            generated = np.concatenate([generated, next_tokens[:, None]], axis=1)
            finished = finished | (next_tokens == eos_index)
            if finished.all():
                break
            tokens = next_tokens
        return generated

    def run(self, src_tokens: np.ndarray, tgt_tokens: np.ndarray) -> np.ndarray:
        """Teacher-forced logits (batch, tgt_len, vocab)."""
        memory = self.encode(src_tokens)
        decoded = self.decode(tgt_tokens, memory)
        return self.output_projection.run(decoded)

    def greedy_decode(self, src_tokens: np.ndarray, bos_index: int, eos_index: int,
                      max_length: Optional[int] = None, *,
                      early_retirement: bool = True) -> np.ndarray:
        """Full-recompute greedy decode (the O(T^2) reference path).

        Finished rows are retired from the compute: once a row emits EOS it
        stops flowing through the decoder (its remaining positions are pad by
        definition), so ragged batches pay for their active rows only.  The
        decoded token matrix is identical either way (``early_retirement``
        exists so tests can pin that); cross-attention memory K/V are
        projected once up front instead of once per step.
        """
        max_length = max_length if max_length is not None else self.max_length
        src_tokens = np.asarray(src_tokens, dtype=np.int64)
        batch = src_tokens.shape[0]
        memory = self.encode(src_tokens)
        memory_kv = self.memory_kv(memory)
        generated = np.full((batch, 1), bos_index, dtype=np.int64)
        finished = np.zeros(batch, dtype=bool)
        for _ in range(max_length - 1):
            next_tokens = np.full(batch, self.pad_index, dtype=np.int64)
            if early_retirement and finished.any():
                active = np.flatnonzero(~finished)
                decoded = self.decode(
                    generated[active], memory[active],
                    memory_kv=tuple((k[active], v[active]) for k, v in memory_kv))
                logits = self.output_projection.run(decoded)[:, -1, :]
                next_tokens[active] = logits.argmax(axis=-1)
            else:
                decoded = self.decode(generated, memory, memory_kv=memory_kv)
                logits = self.output_projection.run(decoded)[:, -1, :]
                next_tokens = np.where(finished, self.pad_index,
                                       logits.argmax(axis=-1))
            generated = np.concatenate([generated, next_tokens[:, None]], axis=1)
            finished = finished | (next_tokens == eos_index)
            if finished.all():
                break
        return generated

    def state(self):
        config = {"embed_dim": self.embed_dim, "max_length": self.max_length,
                  "pad_index": self.pad_index}
        arrays = {"positional": self.positional}
        children = {
            "embedding": self.embedding,
            "encoder_layers": self.encoder_layers,
            "decoder_layers": self.decoder_layers,
            "encoder_norm": self.encoder_norm,
            "decoder_norm": self.decoder_norm,
            "output_projection": self.output_projection,
        }
        return config, arrays, children

    @classmethod
    def from_state(cls, config, arrays, children):
        return cls(children["embedding"], arrays["positional"],
                   children["encoder_layers"], children["decoder_layers"],
                   children["encoder_norm"], children["decoder_norm"],
                   children["output_projection"], config["embed_dim"],
                   config["max_length"], config["pad_index"])

    def child_ops(self):
        return ([self.embedding] + self.encoder_layers + self.decoder_layers
                + [self.encoder_norm, self.decoder_norm, self.output_projection])


# --------------------------------------------------------------------------- #
# Freezer registry: live module type -> frozen op builder
# --------------------------------------------------------------------------- #
_FREEZERS: Dict[type, Callable] = {}


def register_freezer(*module_types):
    """Decorator registering a ``Module -> FrozenOp`` conversion function."""

    def decorator(fn):
        for module_type in module_types:
            _FREEZERS[module_type] = fn
        return fn

    return decorator


def freeze_module(module: M.Module) -> FrozenOp:
    """Convert one live module (and its subtree) into a frozen op."""
    for klass in type(module).__mro__:
        freezer = _FREEZERS.get(klass)
        if freezer is not None:
            return freezer(module)
    raise TypeError(
        f"no freezer registered for {type(module).__name__}; add one with "
        f"repro.serving.register_freezer"
    )


@register_freezer(QuantizedLinear)
def _freeze_quantized_linear(module: QuantizedLinear) -> FrozenLinear:
    values, packed, quantizer, desc = _freeze_scheme(module.scheme, module.weight.data)
    bias = None if module.bias is None else module.bias.data.copy()
    return FrozenLinear(values, bias, quantizer=quantizer, packed=packed,
                        scheme_desc=desc)


@register_freezer(M.Linear)
def _freeze_linear(module: M.Linear) -> FrozenLinear:
    bias = None if module.bias is None else module.bias.data.copy()
    return FrozenLinear(module.weight.data.copy(), bias)


@register_freezer(QuantizedConv2d)
def _freeze_quantized_conv(module: QuantizedConv2d) -> FrozenConv2d:
    values, packed, quantizer, desc = _freeze_scheme(module.scheme, module.weight.data)
    bias = None if module.bias is None else module.bias.data.copy()
    return FrozenConv2d(values, bias, module.stride, module.padding, module.groups,
                        quantizer=quantizer, packed=packed, scheme_desc=desc)


@register_freezer(M.Conv2d)
def _freeze_conv(module: M.Conv2d) -> FrozenConv2d:
    bias = None if module.bias is None else module.bias.data.copy()
    return FrozenConv2d(module.weight.data.copy(), bias, module.stride,
                        module.padding, module.groups)


@register_freezer(M.BatchNorm2d)
def _freeze_batchnorm(module: M.BatchNorm2d) -> FrozenBatchNorm2d:
    return FrozenBatchNorm2d(module.running_mean.copy(), module.running_var.copy(),
                             module.weight.data.copy(), module.bias.data.copy(),
                             module.eps)


@register_freezer(M.LayerNorm)
def _freeze_layernorm(module: M.LayerNorm) -> FrozenLayerNorm:
    return FrozenLayerNorm(module.weight.data.copy(), module.bias.data.copy(), module.eps)


@register_freezer(M.Embedding)
def _freeze_embedding(module: M.Embedding) -> FrozenEmbedding:
    return FrozenEmbedding(module.weight.data.copy())


@register_freezer(M.ReLU)
def _freeze_relu(module) -> FrozenReLU:
    return FrozenReLU()


@register_freezer(M.LeakyReLU)
def _freeze_leaky_relu(module: M.LeakyReLU) -> FrozenLeakyReLU:
    return FrozenLeakyReLU(module.negative_slope)


@register_freezer(M.Sigmoid)
def _freeze_sigmoid(module) -> FrozenSigmoid:
    return FrozenSigmoid()


@register_freezer(M.Tanh)
def _freeze_tanh(module) -> FrozenTanh:
    return FrozenTanh()


@register_freezer(M.GELU)
def _freeze_gelu(module) -> FrozenGELU:
    return FrozenGELU()


@register_freezer(M.MaxPool2d)
def _freeze_max_pool(module: M.MaxPool2d) -> FrozenMaxPool2d:
    return FrozenMaxPool2d(module.kernel_size, module.stride)


@register_freezer(M.AvgPool2d)
def _freeze_avg_pool(module: M.AvgPool2d) -> FrozenAvgPool2d:
    return FrozenAvgPool2d(module.kernel_size, module.stride)


@register_freezer(M.GlobalAvgPool2d)
def _freeze_global_avg_pool(module) -> FrozenGlobalAvgPool2d:
    return FrozenGlobalAvgPool2d()


@register_freezer(M.Flatten)
def _freeze_flatten(module: M.Flatten) -> FrozenFlatten:
    return FrozenFlatten(module.start_dim)


@register_freezer(M.Dropout)
def _freeze_dropout(module) -> FrozenIdentity:
    # Eval-mode dropout is the identity; the training branch is stripped.
    return FrozenIdentity()


@register_freezer(M.Identity)
def _freeze_identity(module) -> FrozenIdentity:
    return FrozenIdentity()


@register_freezer(M.Sequential)
def _freeze_sequential(module: M.Sequential) -> FrozenSequential:
    return FrozenSequential([freeze_module(child) for child in module])


@register_freezer(BasicBlock)
def _freeze_basic_block(module: BasicBlock) -> FrozenBasicBlock:
    return FrozenBasicBlock(freeze_module(module.conv1), freeze_module(module.conv2),
                            freeze_module(module.shortcut))


@register_freezer(BottleneckBlock)
def _freeze_bottleneck_block(module: BottleneckBlock) -> FrozenBottleneckBlock:
    return FrozenBottleneckBlock(freeze_module(module.conv1), freeze_module(module.conv2),
                                 freeze_module(module.conv3), freeze_module(module.shortcut))


@register_freezer(InvertedResidual)
def _freeze_inverted_residual(module: InvertedResidual) -> FrozenInvertedResidual:
    return FrozenInvertedResidual(freeze_module(module.expand),
                                  freeze_module(module.depthwise),
                                  freeze_module(module.project),
                                  module.use_residual)


@register_freezer(MLP)
def _freeze_mlp(module: MLP) -> FrozenMLP:
    return FrozenMLP(freeze_module(module.layers))


@register_freezer(VGG)
def _freeze_vgg(module: VGG) -> FrozenSequential:
    return FrozenSequential([freeze_module(module.features), freeze_module(module.pool),
                             freeze_module(module.classifier)])


@register_freezer(ResNet)
def _freeze_resnet(module: ResNet) -> FrozenSequential:
    return FrozenSequential([freeze_module(module.stem), FrozenReLU(),
                             freeze_module(module.stages), freeze_module(module.pool),
                             freeze_module(module.classifier)])


@register_freezer(MobileNetV2)
def _freeze_mobilenet(module: MobileNetV2) -> FrozenSequential:
    return FrozenSequential([freeze_module(module.stem), freeze_module(module.blocks),
                             freeze_module(module.head), freeze_module(module.pool),
                             freeze_module(module.classifier)])


@register_freezer(TinyYOLO)
def _freeze_tiny_yolo(module: TinyYOLO) -> FrozenSequential:
    return FrozenSequential([freeze_module(module.backbone), freeze_module(module.head),
                             FrozenTranspose((0, 2, 3, 1))])


@register_freezer(attention_mod.MultiHeadAttention)
def _freeze_mha(module: attention_mod.MultiHeadAttention) -> FrozenMultiHeadAttention:
    return FrozenMultiHeadAttention(freeze_module(module.q_proj),
                                    freeze_module(module.k_proj),
                                    freeze_module(module.v_proj),
                                    freeze_module(module.out_proj),
                                    module.num_heads)


@register_freezer(attention_mod.FeedForward)
def _freeze_feed_forward(module: attention_mod.FeedForward) -> FrozenFeedForward:
    return FrozenFeedForward(freeze_module(module.fc1), freeze_module(module.fc2))


@register_freezer(attention_mod.TransformerEncoderLayer)
def _freeze_encoder_layer(module) -> FrozenEncoderLayer:
    return FrozenEncoderLayer(freeze_module(module.self_attention),
                              freeze_module(module.feed_forward),
                              freeze_module(module.norm1), freeze_module(module.norm2))


@register_freezer(attention_mod.TransformerDecoderLayer)
def _freeze_decoder_layer(module) -> FrozenDecoderLayer:
    return FrozenDecoderLayer(freeze_module(module.self_attention),
                              freeze_module(module.cross_attention),
                              freeze_module(module.feed_forward),
                              freeze_module(module.norm1), freeze_module(module.norm2),
                              freeze_module(module.norm3))


@register_freezer(Seq2SeqTransformer)
def _freeze_seq2seq(module: Seq2SeqTransformer) -> FrozenSeq2SeqTransformer:
    return FrozenSeq2SeqTransformer(
        freeze_module(module.embedding),
        module.positional.copy(),
        [freeze_module(layer) for layer in module.encoder_layers],
        [freeze_module(layer) for layer in module.decoder_layers],
        freeze_module(module.encoder_norm),
        freeze_module(module.decoder_norm),
        freeze_module(module.output_projection),
        module.embed_dim,
        module.max_length,
        module.pad_index,
    )


# --------------------------------------------------------------------------- #
# FrozenModel
# --------------------------------------------------------------------------- #
class FrozenModel:
    """A frozen export of a trained model, ready to serve.

    ``predict`` runs the grad-free forward on a NumPy batch.  For sequence
    models the inputs are integer token batches and prediction greedy-decodes
    using the ``bos_index``/``eos_index`` recorded in ``meta``; for every
    other family the inputs are float batches and prediction returns logits
    (or raw detection maps for YOLO).
    """

    FORMAT_VERSION = 1

    def __init__(self, root: FrozenOp, family: str, meta: Optional[dict] = None):
        self.root = root
        self.family = family
        self.meta = dict(meta or {})

    # -------------------------------------------------------------- #
    def predict(self, inputs) -> np.ndarray:
        if self.family == "seq2seq":
            bos = self.meta.get("bos_index", 1)
            eos = self.meta.get("eos_index", 2)
            return self.root.greedy_decode(np.asarray(inputs, dtype=np.int64), bos, eos)
        compute_dtype = self.meta.get("compute_dtype")
        if compute_dtype is not None:
            return self.root.run(np.asarray(inputs).astype(compute_dtype, copy=False))
        return self.root.run(_as_float(inputs))

    __call__ = predict

    def cast(self, dtype) -> "FrozenModel":
        """Switch the serving compute dtype (in place); returns ``self``.

        ``float64`` (the default) is bit-identical to the live model.
        ``float32`` is the production serving mode: every BFP grid value
        (4-bit mantissas, shared 8-bit exponents) is *exactly* representable
        in float32, so quantized weights and activations are unchanged --
        only the matrix-product accumulations and normalization arithmetic
        run at float32 precision, at half the memory traffic.  The real FAST
        hardware accumulates in far less than float32; logits agree with the
        float64 path to single-precision rounding.
        """
        dtype = np.dtype(dtype)
        for op in iter_ops(self.root):
            for attr in ("weight", "bias", "mean", "var", "positional"):
                value = getattr(op, attr, None)
                if isinstance(value, np.ndarray) and np.issubdtype(value.dtype, np.floating):
                    setattr(op, attr, value.astype(dtype, copy=False))
        self.meta["compute_dtype"] = dtype.name
        return self

    def forward_logits(self, src_tokens, tgt_tokens) -> np.ndarray:
        """Teacher-forced logits (sequence models only)."""
        if self.family != "seq2seq":
            raise ValueError("forward_logits is only available for seq2seq models")
        return self.root.run(np.asarray(src_tokens, dtype=np.int64),
                             np.asarray(tgt_tokens, dtype=np.int64))

    # -------------------------------------------------------------- #
    def storage_report(self) -> dict:
        """Model-size accounting: packed BFP bits vs. an FP32 baseline."""
        packed_values = 0
        packed_bits = 0
        raw_values = 0
        for op in iter_ops(self.root):
            if isinstance(op, (FrozenLinear, FrozenConv2d)):
                if op.packed is not None:
                    packed_values += op.packed.num_values
                    packed_bits += op.packed.storage_bits()
                else:
                    raw_values += op.weight.size
                if op.bias is not None:
                    raw_values += op.bias.size
            elif isinstance(op, (FrozenBatchNorm2d, FrozenLayerNorm)):
                raw_values += op.weight.size + op.bias.size
                if isinstance(op, FrozenBatchNorm2d):
                    raw_values += op.mean.size + op.var.size
            elif isinstance(op, FrozenEmbedding):
                raw_values += op.weight.size
            elif isinstance(op, FrozenSeq2SeqTransformer):
                raw_values += op.positional.size
        raw_bits = raw_values * 32
        total_values = packed_values + raw_values
        total_bits = packed_bits + raw_bits
        fp32_bits = total_values * 32
        return {
            "total_values": total_values,
            "packed_values": packed_values,
            "packed_bits": packed_bits,
            "raw_values": raw_values,
            "total_bytes": total_bits / 8.0,
            "fp32_bytes": fp32_bits / 8.0,
            "compression_vs_fp32": fp32_bits / total_bits if total_bits else 1.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return f"FrozenModel(family={self.family!r}, ops={sum(1 for _ in iter_ops(self.root))})"


def _family_of(model: M.Module) -> str:
    if isinstance(model, Seq2SeqTransformer):
        return "seq2seq"
    if isinstance(model, TinyYOLO):
        return "detector"
    return "classifier"


def freeze(model: M.Module, meta: Optional[dict] = None) -> FrozenModel:
    """Export a trained model into a :class:`FrozenModel`.

    Walks the module tree, quantizes every quantized layer's weight exactly
    once into a packed BFP artifact, strips training-only branches, and
    returns a grad-free model whose outputs are bit-identical to the live
    model in eval mode.  ``meta`` carries serving metadata (for sequence
    models: ``bos_index``/``eos_index`` used by greedy decoding).
    """
    root = freeze_module(model)
    return FrozenModel(root, _family_of(model), meta=meta)
