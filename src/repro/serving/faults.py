"""Deterministic fault injection for the serving stack.

:class:`FaultInjectingEngine` wraps any engine exposing the
:class:`~repro.serving.engine.InferenceEngine` interface and injects faults
into ``predict``: latency spikes, transient exceptions, hard crashes
(:class:`~repro.serving.engine.EngineCrash` followed by a down state until
enough ``rewarm()`` attempts succeed), NaN-poisoned output rows, hard
process death (``worker_exit``: ``os._exit`` mid-batch, the fault that
exercises the sharded cluster's respawn path), and payload-triggered poison
faults (a batch containing a marked request always fails, the way a
malformed input crashes a real kernel).

Everything is deterministic.  Faults are driven either by explicit call
indices (``transient_calls=(3,)`` -- exact, thread-timing independent) or by
a seeded per-call RNG rate (``transient_rate=0.05`` -- reproducible for a
fixed call sequence).  This is what the chaos suite
(``tests/serving/test_faults.py``) and the degraded-mode section of
``benchmarks/bench_perf_serving.py`` drive the server with: the point is to
*prove* the robustness layer's isolation/recovery claims, not to hope.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from .engine import EngineCrash

__all__ = ["TransientEngineError", "FaultPlan", "FaultInjectingEngine"]


class TransientEngineError(RuntimeError):
    """An injected batch-level failure that is not an engine crash."""


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic description of which faults fire and when.

    Explicit call-index schedules (``*_calls``) fire exactly at those
    ``predict`` call indices (0-based, counted across the engine's life).
    Rate-based injection (``*_rate``) draws one uniform number per fault
    class per call from a generator seeded with ``seed``, so a fixed call
    sequence always sees the same faults.

    Parameters
    ----------
    seed:
        Seed for the rate-based draws.
    latency_rate / latency_calls / latency_ms:
        Sleep ``latency_ms`` before serving the batch (a slow-node stall).
    transient_rate / transient_calls:
        Raise :class:`TransientEngineError` instead of serving (a retryable
        blip: the next attempt may succeed).
    crash_rate / crash_calls:
        Raise :class:`~repro.serving.engine.EngineCrash` and go *down*:
        every later call fails the same way until ``rewarm()`` has been
        called ``rewarms_to_recover`` times (a supervised restart).
    exit_rate / exit_calls / exit_code:
        Hard **process death** mid-batch: the engine's exit hook runs
        (``os._exit(exit_code)`` by default -- no cleanup, no exception
        propagation, exactly like a segfaulted or OOM-killed worker).
        Inside a cluster worker this kills the process after it has read
        the request but before it responds, which is what makes the
        sharded server's respawn path deterministically testable.  Tests
        that must not die pass a recording ``exit_hook``; when the hook
        returns instead of exiting, the engine raises
        :class:`~repro.serving.engine.EngineCrash` so in-process callers
        still see a hard failure.
    nan_rate / nan_calls:
        Serve the batch but poison one output row (row ``call_index %
        batch``) with NaN -- silent numerical corruption.
    rewarms_to_recover:
        How many ``rewarm()`` attempts a crash takes to clear; values above
        the server's ``engine_restart_limit`` make the crash terminal.
    poison_marker:
        If set, any batch containing a request whose first element equals
        this value raises :class:`TransientEngineError` -- a deterministic
        poison-request fault for isolation tests.  The marker is finite on
        purpose: it must pass submit-time validation, like a real payload
        that is well-formed but crashes a kernel.
    """

    seed: int = 0
    latency_rate: float = 0.0
    latency_ms: float = 25.0
    latency_calls: Tuple[int, ...] = ()
    transient_rate: float = 0.0
    transient_calls: Tuple[int, ...] = ()
    crash_rate: float = 0.0
    crash_calls: Tuple[int, ...] = ()
    nan_rate: float = 0.0
    nan_calls: Tuple[int, ...] = ()
    exit_rate: float = 0.0
    exit_calls: Tuple[int, ...] = ()
    exit_code: int = 43
    rewarms_to_recover: int = 1
    poison_marker: Optional[float] = None

    def __post_init__(self):
        for name in ("latency_rate", "transient_rate", "crash_rate", "nan_rate",
                     "exit_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.rewarms_to_recover < 1:
            raise ValueError("rewarms_to_recover must be >= 1")
        for name in ("latency_calls", "transient_calls", "crash_calls", "nan_calls",
                     "exit_calls"):
            object.__setattr__(self, name,
                               tuple(sorted(int(i) for i in getattr(self, name))))


@dataclass
class FaultLog:
    """Counters of what was actually injected (for assertions and reports)."""

    calls: int = 0
    latency_spikes: int = 0
    transient_errors: int = 0
    crashes: int = 0
    nan_rows: int = 0
    worker_exits: int = 0
    poison_hits: int = 0
    rewarm_attempts: int = 0
    rewarm_failures: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


@dataclass
class _CallFaults:
    latency: bool = False
    transient: bool = False
    crash: bool = False
    nan: bool = False
    exit: bool = False


class FaultInjectingEngine:
    """Wrap an engine; inject deterministic faults into ``predict``.

    Delegates ``warmup`` / ``stats`` / ``reset_stats`` / ``model`` to the
    wrapped engine, so it drops into an :class:`InferenceServer` unchanged.
    ``gate`` (an optional ``threading.Event``) holds every ``predict`` until
    set -- the controllable-latency knob the lifecycle race tests use to
    freeze the worker at a known point.
    """

    def __init__(self, engine, plan: Optional[FaultPlan] = None,
                 gate: Optional[threading.Event] = None,
                 exit_hook=None):
        self.engine = engine
        self.plan = plan if plan is not None else FaultPlan()
        self.gate = gate
        #: What a ``worker_exit`` fault runs; ``None`` means hard process
        #: death via ``os._exit(plan.exit_code)``.  Tests inject a recorder.
        self.exit_hook = exit_hook
        #: Calls that have *entered* predict (bumped before blocking on the
        #: gate) -- lets tests wait until a plug request is verifiably in
        #: flight before submitting the batch under study.
        self.entered = 0
        self.log = FaultLog()
        self._rng = np.random.default_rng(self.plan.seed)
        self._down = False
        self._rewarms_since_crash = 0
        self._lock = threading.Lock()

    # -------------------------------------------------------------- #
    @property
    def model(self):
        return self.engine.model

    @property
    def warmed_up(self):
        return self.engine.warmed_up

    def warmup(self, example) -> float:
        return self.engine.warmup(example)

    def stats(self) -> dict:
        return self.engine.stats()

    def reset_stats(self) -> None:
        self.engine.reset_stats()

    # -------------------------------------------------------------- #
    def _draw_faults(self, index: int) -> _CallFaults:
        plan = self.plan
        faults = _CallFaults(
            latency=index in plan.latency_calls,
            transient=index in plan.transient_calls,
            crash=index in plan.crash_calls,
            nan=index in plan.nan_calls,
            exit=index in plan.exit_calls,
        )
        # One draw per fault class per call, even when the rate is zero, so
        # a given (seed, call index) always sees the same random stream
        # regardless of which rates are enabled.
        draws = self._rng.random(5)
        faults.latency |= bool(draws[0] < plan.latency_rate)
        faults.transient |= bool(draws[1] < plan.transient_rate)
        faults.crash |= bool(draws[2] < plan.crash_rate)
        faults.nan |= bool(draws[3] < plan.nan_rate)
        faults.exit |= bool(draws[4] < plan.exit_rate)
        return faults

    def _batch_is_poisoned(self, batch: np.ndarray) -> bool:
        marker = self.plan.poison_marker
        if marker is None or batch.ndim < 1 or batch.size == 0:
            return False
        rows = np.asarray(batch).reshape(batch.shape[0], -1)
        return bool(np.any(rows[:, 0] == marker))

    def predict(self, batch) -> np.ndarray:
        self.entered += 1
        if self.gate is not None:
            self.gate.wait()
        batch = np.asarray(batch)
        with self._lock:
            index = self.log.calls
            self.log.calls += 1
            if self._down:
                raise EngineCrash("engine is down (injected crash not yet recovered)")
            faults = self._draw_faults(index)
            if self._batch_is_poisoned(batch):
                self.log.poison_hits += 1
                raise TransientEngineError(
                    f"injected kernel fault: batch of {batch.shape[0]} contains a "
                    f"poison-marked request (marker={self.plan.poison_marker})")
            if faults.exit:
                self.log.worker_exits += 1
                if self.exit_hook is None:
                    os._exit(self.plan.exit_code)  # hard death: no unwind
                self.exit_hook(self.plan.exit_code)
                raise EngineCrash(
                    f"injected worker exit at call {index} "
                    "(exit hook returned instead of terminating)")
            if faults.crash:
                self.log.crashes += 1
                self._down = True
                self._rewarms_since_crash = 0
                raise EngineCrash(f"injected hard crash at call {index}")
            if faults.transient:
                self.log.transient_errors += 1
                raise TransientEngineError(f"injected transient error at call {index}")
            if faults.latency:
                self.log.latency_spikes += 1
                time.sleep(self.plan.latency_ms / 1e3)
        outputs = self.engine.predict(batch)
        if faults.nan:
            outputs = np.array(outputs, copy=True)
            if np.issubdtype(outputs.dtype, np.floating) and outputs.shape[0]:
                outputs[index % outputs.shape[0]] = np.nan
                with self._lock:
                    self.log.nan_rows += 1
        return outputs

    __call__ = predict

    def rewarm(self) -> float:
        """Simulated supervised restart: after ``rewarms_to_recover``
        attempts the injected crash clears and the inner engine re-warms."""
        with self._lock:
            self.log.rewarm_attempts += 1
            if self._down:
                self._rewarms_since_crash += 1
                if self._rewarms_since_crash < self.plan.rewarms_to_recover:
                    self.log.rewarm_failures += 1
                    raise EngineCrash(
                        f"injected restart failure "
                        f"({self._rewarms_since_crash}/{self.plan.rewarms_to_recover} "
                        "attempts)")
                self._down = False
        return self.engine.rewarm()
